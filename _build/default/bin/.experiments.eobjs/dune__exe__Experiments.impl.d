bin/experiments.ml: Arg Cmd Cmdliner List Netembed_workload Printf String Term Unix
