bin/experiments.mli:
