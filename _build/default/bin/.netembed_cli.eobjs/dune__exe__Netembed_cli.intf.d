bin/netembed_cli.mli:
