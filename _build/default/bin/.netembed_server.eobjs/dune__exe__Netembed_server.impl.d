bin/netembed_server.ml: Arg Buffer Netembed_rng Netembed_service
