bin/netembed_server.mli:
