(* Regenerate the paper's figures.

   Usage:
     dune exec bin/experiments.exe -- all           # every figure, default scale
     dune exec bin/experiments.exe -- fig13         # one figure
     dune exec bin/experiments.exe -- all --full    # paper-scale sweep (slow)
     dune exec bin/experiments.exe -- fig8 --timeout 10 --seed 3 *)

module Figures = Netembed_workload.Figures

let figures =
  [
    ("fig8", Figures.fig8);
    ("fig9", Figures.fig9);
    ("fig10", Figures.fig10);
    ("fig11", Figures.fig11);
    ("fig12", Figures.fig12);
    ("fig13", Figures.fig13);
    ("fig14", Figures.fig14);
    ("fig15", Figures.fig15);
    ("all", Figures.all);
  ]

open Cmdliner

let which =
  let doc =
    "Which figure to regenerate: " ^ String.concat ", " (List.map fst figures) ^ "."
  in
  Arg.(value & pos 0 string "all" & info [] ~docv:"FIGURE" ~doc)

let full =
  let doc = "Run at the paper's sweep ranges instead of the reduced defaults." in
  Arg.(value & flag & info [ "full" ] ~doc)

let timeout =
  let doc = "Per-search timeout override, in seconds." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS" ~doc)

let seed =
  let doc = "Workload seed override." in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let out_dir =
  let doc = "Write figN.txt files under DIR instead of printing (implies all figures)." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"DIR" ~doc)

let run which full timeout seed out_dir =
  match List.assoc_opt which figures with
  | None ->
      Printf.eprintf "unknown figure %S; expected one of %s\n" which
        (String.concat ", " (List.map fst figures));
      exit 2
  | Some driver ->
      let scale = if full then Figures.paper_scale else Figures.default_scale in
      let scale =
        match timeout with None -> scale | Some t -> { scale with Figures.timeout = t }
      in
      let scale = match seed with None -> scale | Some s -> { scale with Figures.seed = s } in
      let t0 = Unix.gettimeofday () in
      (match out_dir with
      | Some dir -> Figures.save_all ~dir scale
      | None -> driver scale);
      Printf.printf "# %s done in %.1f s (scale=%s, timeout=%.0fs, seed=%d)\n" which
        (Unix.gettimeofday () -. t0)
        scale.Figures.label scale.Figures.timeout scale.Figures.seed

let cmd =
  let doc = "Regenerate the NETEMBED paper's evaluation figures" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info Term.(const run $ which $ full $ timeout $ seed $ out_dir)

let () = exit (Cmd.eval cmd)
