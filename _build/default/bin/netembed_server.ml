(* A standalone NETEMBED mapping service speaking the text wire
   protocol over stdin/stdout — the paper's Fig.-1 deployment shape
   ("applications would submit their queries and get a list of possible
   mappings"), transport-agnostic: wrap it in inetd/socat/ssh as needed.

   Usage:
     netembed_server --host host.graphml [--monitor-every N]

   Protocol: frames as defined in Netembed_service.Wire; one answer per
   request; EOF terminates.  With --monitor-every N, a synthetic
   monitoring tick refreshes the model between every N requests, so
   long-running sessions see drifting measurements. *)

module Model = Netembed_service.Model
module Service = Netembed_service.Service
module Wire = Netembed_service.Wire
module Monitor = Netembed_service.Monitor
module Rng = Netembed_rng.Rng

let read_frame ic =
  let buf = Buffer.create 1024 in
  let rec go () =
    match input_line ic with
    | "." -> Some (Buffer.contents buf)
    | line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        go ()
    | exception End_of_file -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
  in
  go ()

let () =
  let host_file = ref "" in
  let monitor_every = ref 0 in
  let speclist =
    [
      ("--host", Arg.Set_string host_file, "FILE hosting network (GraphML), required");
      ("--monitor-every", Arg.Set_int monitor_every,
       "N run a synthetic monitoring tick every N requests (0 = off)");
    ]
  in
  Arg.parse speclist (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "netembed_server --host FILE [--monitor-every N]";
  if !host_file = "" then begin
    prerr_endline "netembed_server: --host is required";
    exit 2
  end;
  let model = Model.of_graphml_file !host_file in
  let service = Service.create model in
  let monitor =
    if !monitor_every > 0 then Some (Monitor.create (Rng.make 1) model) else None
  in
  let requests = ref 0 in
  let rec serve () =
    match read_frame stdin with
    | None -> ()
    | Some frame ->
        incr requests;
        (match (monitor, !monitor_every) with
        | Some mon, every when every > 0 && !requests mod every = 0 -> Monitor.tick mon
        | _ -> ());
        let reply =
          match Wire.decode_request frame with
          | Error e -> Wire.encode_error e
          | Ok request -> (
              match Service.submit service request with
              | Error e -> Wire.encode_error e
              | Ok answer -> Wire.encode_answer answer)
        in
        print_string reply;
        flush stdout;
        serve ()
  in
  serve ()
