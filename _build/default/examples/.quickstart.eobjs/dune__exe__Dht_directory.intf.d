examples/dht_directory.mli:
