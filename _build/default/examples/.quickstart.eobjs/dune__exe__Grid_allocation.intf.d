examples/grid_allocation.mli:
