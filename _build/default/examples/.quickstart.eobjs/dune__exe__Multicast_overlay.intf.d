examples/multicast_overlay.mli:
