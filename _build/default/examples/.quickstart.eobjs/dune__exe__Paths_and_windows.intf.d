examples/paths_and_windows.mli:
