examples/quickstart.ml: Array Engine Format List Mapping Netembed_attr Netembed_core Netembed_expr Netembed_graph Problem Verify
