examples/quickstart.mli:
