examples/sensor_network.ml: Engine Format Mapping Netembed_attr Netembed_core Netembed_expr Netembed_graph Netembed_rng Netembed_topology Option Printf Problem Verify
