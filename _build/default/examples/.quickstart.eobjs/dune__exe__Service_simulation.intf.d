examples/service_simulation.mli:
