examples/testbed_slicing.mli:
