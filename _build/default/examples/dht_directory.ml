(* Peer-to-peer directory-node selection — the paper's P2P scenario:
   "a peer-to-peer system, where location, bandwidth and delay of a
   subset of nodes, such as 'directory nodes' (e.g., the nodes of a
   distributed hash table) play an important role in the performance of
   the lookup service".

   The DHT wants k directory nodes arranged in its overlay ring, every
   ring hop under a latency bound, and each directory on a beefy
   machine.  Because a ring query is highly symmetric (its automorphism
   group is dihedral, 2k elements), the raw answer set is inflated by
   rotations/reflections; Symmetry.dedupe collapses it to genuinely
   distinct placements, which the optimizer then ranks by total
   latency.

   Run with:  dune exec examples/dht_directory.exe *)

module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Rng = Netembed_rng.Rng
module Trace = Netembed_planetlab.Trace
module Regular = Netembed_topology.Regular
module Expr = Netembed_expr.Expr
open Netembed_core

let () =
  let rng = Rng.make 4242 in
  let host = Trace.generate rng Trace.default in
  let k = 5 in
  let ring =
    Regular.ring
      ~edge:
        (Attrs.of_list
           [ ("minDelay", Value.Float 1.0); ("maxDelay", Value.Float 32.0) ])
      k
  in
  let problem =
    Problem.make
      ~node_constraint:(Expr.parse_exn "rSource.cpuMhz >= 2800")
      ~host ~query:ring Expr.avg_delay_within
  in
  (* The whole feasible region, then dedupe. *)
  let result =
    Engine.run
      ~options:
        { Engine.default_options with Engine.mode = Engine.All; timeout = Some 20.0 }
      Engine.ECF problem
  in
  Format.printf "raw placements sampled: %d (%s)@."
    (List.length result.Engine.mappings)
    (Engine.outcome_name result.Engine.outcome);
  let auts = Option.get (Symmetry.automorphisms ring) in
  Format.printf "ring-%d automorphism group: %d elements (dihedral)@." k
    (Symmetry.size auts);
  let distinct = Symmetry.dedupe auts result.Engine.mappings in
  Format.printf "distinct placements after symmetry compaction: %d@."
    (List.length distinct);

  match Optimize.rank problem ~cost:Optimize.total_avg_delay distinct with
  | [] -> Format.printf "no feasible directory ring.@."
  | (best, cost) :: _ ->
      Format.printf "@.best ring (total hop latency %.1f ms):@." cost;
      List.iter
        (fun (q, site) ->
          let a = Graph.node_attrs host site in
          Format.printf "  slot %d -> %s (%.0f MHz, %s)@." q
            (Option.value ~default:"?" (Attrs.string "name" a))
            (Option.value ~default:0.0 (Attrs.float "cpuMhz" a))
            (Option.value ~default:"?" (Attrs.string "region" a)))
        (Mapping.to_list best);
      assert (Verify.is_valid problem best)
