(* Grid resource allocation through the NETEMBED service — the paper's
   grid scenario: "a grid application that needs to allocate a subset of
   nodes with certain capabilities and some connectivity requirements
   between them", exercised through the full service stack (model ->
   request -> answer -> allocation -> reservation).

   Two applications arrive in turn.  Each wants a 4-node compute clique
   with intra-cluster latency below 120 ms and nodes of at least
   1.6 GHz.  The first allocation reserves its hosts; the second
   application's embedding must avoid them.

   Run with:  dune exec examples/grid_allocation.exe *)

module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Rng = Netembed_rng.Rng
module Trace = Netembed_planetlab.Trace
module Regular = Netembed_topology.Regular
module Model = Netembed_service.Model
module Request = Netembed_service.Request
module Service = Netembed_service.Service
open Netembed_core

let compute_clique () =
  Regular.clique
    ~edge:
      (Attrs.of_list
         [ ("minDelay", Value.Float 1.0); ("maxDelay", Value.Float 120.0) ])
    4

let edge_constraint = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"
let node_constraint = "rSource.cpuMhz >= 1600"

let hosts_of m = List.map snd (Mapping.to_list m)

let () =
  let rng = Rng.make 7 in
  let model = Model.create (Trace.generate rng Trace.default) in
  let service = Service.create model in
  Format.printf "Model: %a (revision %d)@."
    Graph.pp_summary (Model.snapshot model) (Model.revision model);

  let submit label =
    let request =
      Request.make ~node_constraint ~algorithm:Engine.LNS ~mode:Engine.First
        ~timeout:10.0 ~query:(compute_clique ()) edge_constraint
    in
    match Service.submit service request with
    | Error e -> failwith e
    | Ok answer -> (
        match answer.Service.result.Engine.mappings with
        | [] ->
            Format.printf "%s: no allocation available (%s)@." label
              (Engine.outcome_name answer.Service.result.Engine.outcome);
            None
        | m :: _ ->
            (match Service.allocate service answer m with
            | Ok () -> ()
            | Error e -> failwith e);
            Format.printf "%s: allocated hosts %s@." label
              (String.concat ", " (List.map string_of_int (hosts_of m)));
            Some m)
  in
  let first = submit "app-1" in
  let second = submit "app-2" in
  (match (first, second) with
  | Some m1, Some m2 ->
      let overlap =
        List.filter (fun h -> List.mem h (hosts_of m1)) (hosts_of m2)
      in
      if overlap = [] then
        Format.printf "No host shared between the two applications, as required.@."
      else failwith "reservation violated!"
  | _ -> ());
  Format.printf "Reserved hosts in the model: %s@."
    (String.concat ", " (List.map string_of_int (Model.reserved model)));

  (* Release the first application's slice and show the model recovers. *)
  (match first with
  | Some m1 ->
      Service.release_mapping service m1;
      Format.printf "After app-1 release: %d host(s) still reserved@."
        (List.length (Model.reserved model))
  | None -> ())
