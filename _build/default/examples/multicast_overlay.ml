(* Overlay multicast tree selection — the paper's first motivating
   scenario: "a dynamic multicast service, where an overlay distribution
   tree must be configured subject to a set of constraints so that some
   QoS requirements are satisfied."

   The hosting network is the synthetic PlanetLab all-pairs trace.  The
   requested virtual network is a two-level distribution tree: a source
   fanning out to regional relay heads over wide-area links (75-350 ms
   tolerated), each relay feeding a handful of leaf subscribers over
   nearby links (1-75 ms).  LNS is the algorithm of choice for such
   regular, under-constrained queries (paper, Fig. 14).

   Run with:  dune exec examples/multicast_overlay.exe *)

module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Rng = Netembed_rng.Rng
module Trace = Netembed_planetlab.Trace
module Query_gen = Netembed_workload.Query_gen
module Regular = Netembed_topology.Regular
open Netembed_core

let () =
  let rng = Rng.make 2024 in
  let host = Trace.generate rng Trace.default in
  Format.printf "Hosting network: %a@." Graph.pp_summary host;

  (* Star of stars: 1 root-level star over 4 relay groups of 5 nodes. *)
  let case =
    Query_gen.composite rng ~root:Regular.Star ~groups:4 ~group:Regular.Star
      ~group_size:5 ~constraints:Query_gen.Regular_bands
  in
  Format.printf "Distribution tree: %a@." Graph.pp_summary case.Query_gen.query;

  let problem =
    Problem.make ~host ~query:case.Query_gen.query case.Query_gen.edge_constraint
  in
  List.iter
    (fun alg ->
      let result =
        Engine.run
          ~options:
            { Engine.default_options with Engine.mode = Engine.First; timeout = Some 10.0 }
          alg problem
      in
      match result.Engine.mappings with
      | m :: _ ->
          assert (Verify.is_valid problem m);
          Format.printf "%s found a tree in %.1f ms@." (Engine.algorithm_name alg)
            (Option.value ~default:0.0 result.Engine.time_to_first *. 1000.0)
      | [] ->
          Format.printf "%s: no tree within the timeout (%s)@."
            (Engine.algorithm_name alg)
            (Engine.outcome_name result.Engine.outcome))
    Engine.all_algorithms;

  (* Show the selected relay sites for the LNS answer. *)
  match Engine.find_first ~timeout:10.0 Engine.LNS problem with
  | None -> Format.printf "No embedding found.@."
  | Some m ->
      Format.printf "@.Selected sites (relay heads marked *):@.";
      Graph.iter_nodes
        (fun q ->
          let site = Mapping.apply m q in
          let name =
            Option.value ~default:"?" (Attrs.string "name" (Graph.node_attrs host site))
          in
          let is_relay =
            Attrs.string "level" (Graph.node_attrs case.Query_gen.query q) = Some "root"
          in
          if is_relay then Format.printf "  * q%-2d -> %s@." q name)
        case.Query_gen.query
