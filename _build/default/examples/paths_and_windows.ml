(* The paper's "Current and Future Work" features, working together:

   1. link-to-path mapping — "mapping a link in the query network to a
      path in the real network" (Path_embed);
   2. optimization over the feasible set — "what assignment of
      resources minimizes some cost metric?" (Optimize);
   3. scheduling — "find a window of time in which some feasible
      embedding is available" (Schedule).

   The substrate is a sparse transit-stub WAN, where direct links
   rarely satisfy tight end-to-end delay requests, so virtual links
   must ride multi-hop paths.

   Run with:  dune exec examples/paths_and_windows.exe *)

module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Rng = Netembed_rng.Rng
module Transit_stub = Netembed_topology.Transit_stub
module Expr = Netembed_expr.Expr
module Schedule = Netembed_service.Schedule
open Netembed_core

let band lo hi =
  Attrs.of_list [ ("minDelay", Value.Float lo); ("maxDelay", Value.Float hi) ]

let triangle lo hi =
  let g = Graph.create ~name:"triangle" () in
  let v = Array.init 3 (fun _ -> Graph.add_node g Attrs.empty) in
  ignore (Graph.add_edge g v.(0) v.(1) (band lo hi));
  ignore (Graph.add_edge g v.(1) v.(2) (band lo hi));
  ignore (Graph.add_edge g v.(0) v.(2) (band lo hi));
  g

let () =
  let rng = Rng.make 31 in
  let host = Transit_stub.generate rng Transit_stub.default in
  Format.printf "WAN substrate: %a@." Graph.pp_summary host;

  (* A triangle of virtual links, each tolerating 40-160 ms: the stub
     links are far too short and many transit pairs are not directly
     connected, so one-to-one embedding usually fails... *)
  let query = triangle 40.0 160.0 in
  let direct = Problem.make ~host ~query Expr.avg_delay_within in
  (match Engine.find_first ~timeout:5.0 Engine.ECF direct with
  | Some _ -> Format.printf "direct (one-to-one) embedding: found@."
  | None -> Format.printf "direct (one-to-one) embedding: none@.");

  (* ... whereas 3-hop paths open up the search space. *)
  (match
     Path_embed.embed_with_paths ~max_hops:3 Engine.ECF ~host ~query
       Expr.avg_delay_within
   with
  | None -> Format.printf "path embedding: none@."
  | Some (m, decoded) ->
      Format.printf "path embedding found: nodes %s@."
        (String.concat ", "
           (List.map (fun (_, r) -> string_of_int r) (Mapping.to_list m)));
      List.iter
        (fun (qe, path) ->
          Format.printf "  virtual link %d -> host path %s@." qe
            (String.concat " - " (List.map string_of_int path)))
        decoded);

  (* Optimization stage: among all embeddings of a looser query, pick
     the latency-minimal one. *)
  let loose = triangle 1.0 300.0 in
  let p = Problem.make ~host ~query:loose Expr.avg_delay_within in
  (match Optimize.find_best Engine.ECF p ~cost:Optimize.total_avg_delay with
  | Some (_, cost) -> Format.printf "cheapest loose triangle: %.1f ms total@." cost
  | None -> Format.printf "loose triangle infeasible@.");

  (* Scheduling: book the whole network's best region, then ask again —
     the second request must wait for the lease to expire. *)
  let sched = Schedule.create host in
  (match
     Schedule.earliest sched ~now:0.0 ~duration:3600.0 ~query:loose
       Expr.avg_delay_within
   with
  | Error e -> Format.printf "no window: %s@." e
  | Ok placement ->
      Schedule.book sched placement;
      Format.printf "first task scheduled at t=%.0f s@." placement.Schedule.start;
      (* A conflicting second task (force it onto the same nodes by
         leasing everything else). *)
      let others =
        Graph.fold_nodes
          (fun v acc ->
            if List.exists (fun (_, r) -> r = v) (Mapping.to_list placement.Schedule.mapping)
            then acc
            else v :: acc)
          host []
      in
      Schedule.book sched
        { Schedule.mapping = Mapping.of_array (Array.of_list others);
          start = 0.0; finish = 1800.0 };
      match
        Schedule.earliest sched ~now:0.0 ~duration:600.0 ~query:loose
          Expr.avg_delay_within
      with
      | Error e -> Format.printf "second task: %s@." e
      | Ok p2 ->
          Format.printf "second task deferred to t=%.0f s (a lease expiry)@."
            p2.Schedule.start)
