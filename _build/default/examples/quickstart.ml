(* Quickstart: build a hosting network and a constrained query network
   in a few lines, then ask NETEMBED for embeddings with each of the
   three algorithms.

   Run with:  dune exec examples/quickstart.exe *)

module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Expr = Netembed_expr.Expr
open Netembed_core

let delay d = Attrs.of_list [ ("avgDelay", Value.Float d) ]

let band lo hi =
  Attrs.of_list [ ("minDelay", Value.Float lo); ("maxDelay", Value.Float hi) ]

let () =
  (* The hosting network: five sites with measured link delays (ms). *)
  let host = Graph.create ~name:"demo-host" () in
  let s = Array.init 5 (fun _ -> Graph.add_node host Attrs.empty) in
  List.iter
    (fun (u, v, d) -> ignore (Graph.add_edge host s.(u) s.(v) (delay d)))
    [ (0, 1, 12.0); (1, 2, 25.0); (2, 3, 14.0); (3, 4, 30.0); (4, 0, 9.0); (0, 2, 40.0) ];

  (* The query network: a path of three virtual nodes whose links must
     land on host links within the requested delay bands. *)
  let query = Graph.create ~name:"demo-query" () in
  let q = Array.init 3 (fun _ -> Graph.add_node query Attrs.empty) in
  ignore (Graph.add_edge query q.(0) q.(1) (band 5.0 15.0));
  ignore (Graph.add_edge query q.(1) q.(2) (band 20.0 35.0));

  (* The constraint expression pairs every virtual link with a real
     link (paper section VI-B syntax). *)
  let constraint_text =
    "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"
  in
  let problem = Problem.make ~host ~query (Expr.parse_exn constraint_text) in

  Format.printf "Host:  %a@." Graph.pp_summary host;
  Format.printf "Query: %a@." Graph.pp_summary query;
  Format.printf "Constraint: %s@.@." constraint_text;

  List.iter
    (fun alg ->
      let result =
        Engine.run
          ~options:{ Engine.default_options with Engine.mode = Engine.All }
          alg problem
      in
      Format.printf "%s: %d embedding(s), outcome %s, %.2f ms@."
        (Engine.algorithm_name alg)
        (List.length result.Engine.mappings)
        (Engine.outcome_name result.Engine.outcome)
        (result.Engine.elapsed *. 1000.0);
      List.iter
        (fun m ->
          assert (Verify.is_valid problem m);
          Format.printf "   %a@." Mapping.pp m)
        result.Engine.mappings)
    Engine.all_algorithms
