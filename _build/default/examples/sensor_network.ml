(* Sensor placement with binding and geographic constraints — the
   paper's sensor scenario: "a sensor network in which it is desirable
   to locate a subset of sensors that possess certain capabilities and
   satisfy some resource, location, and/or network connectivity
   constraints", plus the [isBoundTo] and Euclidean-distance examples
   from section VI-B.

   The hosting network is a BRITE topology whose nodes carry plane
   coordinates; one host is equipped with a "particular sensor".  The
   query pins its first node to that gateway via [bindTo], keeps every
   link short, and additionally requires (via the constraint language's
   arithmetic) that linked sensors sit within 300 km of each other.

   Run with:  dune exec examples/sensor_network.exe *)

module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Rng = Netembed_rng.Rng
module Brite = Netembed_topology.Brite
module Expr = Netembed_expr.Expr
open Netembed_core

let () =
  let rng = Rng.make 99 in
  let host = Brite.generate rng (Brite.default_waxman ~n:150) in
  (* Name every host and pick a well-connected gateway that carries the
     special sensor hardware. *)
  Graph.iter_nodes
    (fun v ->
      Graph.set_node_attrs host v
        (Attrs.add "name" (Value.String (Printf.sprintf "sensor-%03d" v))
           (Graph.node_attrs host v)))
    host;
  let gateway = ref 0 in
  Graph.iter_nodes
    (fun v -> if Graph.degree host v > Graph.degree host !gateway then gateway := v)
    host;
  Format.printf "Host: %a; gateway = sensor-%03d (degree %d)@."
    Graph.pp_summary host !gateway (Graph.degree host !gateway);

  (* Query: a star of 4 sensing nodes around a head that must bind to
     the gateway. *)
  let query = Graph.create ~name:"sensing-task" () in
  let head =
    Graph.add_node query
      (Attrs.of_list [ ("bindTo", Value.String (Printf.sprintf "sensor-%03d" !gateway)) ])
  in
  for _ = 1 to 4 do
    let leaf = Graph.add_node query Attrs.empty in
    ignore
      (Graph.add_edge query head leaf
         (Attrs.of_list [ ("minDelay", Value.Float 0.0); ("maxDelay", Value.Float 60.0) ]))
  done;

  (* Constraint: delay band + forced binding + geographic proximity
     (all three from the paper's own example fragments). *)
  let constraint_text =
    "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay \
     && isBoundTo(vSource.bindTo, rSource.name) \
     && sqrt( (rSource.x-rTarget.x)*(rSource.x-rTarget.x) + \
              (rSource.y-rTarget.y)*(rSource.y-rTarget.y) ) < 300.0"
  in
  let problem = Problem.make ~host ~query (Expr.parse_exn constraint_text) in
  match Engine.find_first ~timeout:10.0 Engine.ECF problem with
  | None -> Format.printf "No sensor placement satisfies the constraints.@."
  | Some m ->
      assert (Verify.is_valid problem m);
      assert (Mapping.apply m head = !gateway);
      Format.printf "Placement found:@.";
      Graph.iter_nodes
        (fun q ->
          let site = Mapping.apply m q in
          let attrs = Graph.node_attrs host site in
          Format.printf "  q%d -> %s at (%.0f, %.0f)@." q
            (Option.value ~default:"?" (Attrs.string "name" attrs))
            (Option.value ~default:0.0 (Attrs.float "x" attrs))
            (Option.value ~default:0.0 (Attrs.float "y" attrs)))
        query
