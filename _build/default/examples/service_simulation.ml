(* A day in the life of the NETEMBED service (paper, Fig. 1): the
   monitoring feed refreshes the network model while applications
   arrive, get embedded, hold their slices for a while and leave.
   Demonstrates every service-layer component cooperating:

   - Model: the characterized hosting network with reservations;
   - Monitor: synthetic measurements drifting, nodes flapping;
   - Request/Service: queries with edge + node constraints, relaxation;
   - allocation/release: slices come and go, later queries avoid
     reserved nodes.

   Run with:  dune exec examples/service_simulation.exe *)

module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Rng = Netembed_rng.Rng
module Trace = Netembed_planetlab.Trace
module Model = Netembed_service.Model
module Monitor = Netembed_service.Monitor
module Request = Netembed_service.Request
module Service = Netembed_service.Service
module Query_gen = Netembed_workload.Query_gen
open Netembed_core

let edge_constraint = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"
let node_constraint = "rSource.up"

type slice = { id : int; mapping : Mapping.t; expires : int }

let () =
  let rng = Rng.make 20260705 in
  let model = Model.create (Trace.generate rng Trace.default) in
  let service = Service.create model in
  let monitor =
    Monitor.create
      ~params:{ Monitor.default with Monitor.flap_probability = 0.002 }
      (Rng.make 2) model
  in
  let host () = Model.snapshot model in
  Format.printf "t=0  model %a@." Graph.pp_summary (host ());

  let active : slice list ref = ref [] in
  let next_id = ref 0 in
  let accepted = ref 0 and rejected = ref 0 and relaxed = ref 0 in

  for t = 1 to 40 do
    Monitor.tick monitor;
    (* Expire slices whose lease ended. *)
    let expired, live = List.partition (fun s -> s.expires <= t) !active in
    List.iter
      (fun s ->
        Service.release_mapping service s.mapping;
        Format.printf "t=%-2d slice %d released@." t s.id)
      expired;
    active := live;
    (* One application arrives every other tick. *)
    if t mod 2 = 0 then begin
      let n = 3 + Rng.int rng 5 in
      let case = Query_gen.subgraph rng ~host:(host ()) ~n ~widen:0.02 () in
      let request =
        Request.make ~node_constraint ~algorithm:Engine.LNS ~mode:Engine.First
          ~timeout:3.0 ~query:case.Query_gen.query edge_constraint
      in
      match Service.submit_with_relaxation service request ~steps:2 ~factor:0.25 with
      | Error e -> Format.printf "t=%-2d request error: %s@." t e
      | Ok (answer, rounds) -> (
          if rounds > 0 then incr relaxed;
          match answer.Service.result.Engine.mappings with
          | [] ->
              incr rejected;
              Format.printf "t=%-2d request (%d nodes) rejected (%s)@." t n
                (Engine.outcome_name answer.Service.result.Engine.outcome)
          | m :: _ -> (
              match Service.allocate service answer m with
              | Error e -> Format.printf "t=%-2d allocation raced: %s@." t e
              | Ok () ->
                  incr accepted;
                  incr next_id;
                  let hold = 4 + Rng.int rng 10 in
                  active :=
                    { id = !next_id; mapping = m; expires = t + hold } :: !active;
                  Format.printf
                    "t=%-2d slice %d allocated: %d nodes for %d ticks%s@." t !next_id
                    n hold
                    (if rounds > 0 then
                       Printf.sprintf " (after %d relaxation rounds)" rounds
                     else "")))
    end
  done;

  Format.printf "@.summary: %d accepted (%d needed relaxation), %d rejected@."
    !accepted !relaxed !rejected;
  Format.printf "model revision %d after %d monitor rounds; %d node(s) down; %d host(s) still reserved@."
    (Model.revision model) (Monitor.ticks monitor)
    (List.length (Monitor.down_nodes monitor))
    (List.length (Model.reserved model));
  (* Sanity: no overlapping reservations survived the run. *)
  let reserved = Model.reserved model in
  let from_active =
    List.concat_map (fun s -> List.map snd (Mapping.to_list s.mapping)) !active
    |> List.sort_uniq compare
  in
  assert (List.sort_uniq compare reserved = from_active)
