(* Testbed experiment embedding over GraphML and the wire protocol —
   the PlanetLab/Emulab scenario: "embedding a network experiment with
   specific resource constraints in a distributed testbed".

   This example exercises the interchange layer end to end:
   1. the requested experiment topology is written to GraphML and read
      back (what a user would upload);
   2. the request is serialized through the text wire protocol and
      decoded by the service side;
   3. an infeasible first attempt is negotiated via constraint
      relaxation until the testbed can satisfy it.

   Run with:  dune exec examples/testbed_slicing.exe *)

module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Rng = Netembed_rng.Rng
module Trace = Netembed_planetlab.Trace
module Graphml = Netembed_graphml.Graphml
module Model = Netembed_service.Model
module Request = Netembed_service.Request
module Service = Netembed_service.Service
module Wire = Netembed_service.Wire
open Netembed_core

let edge_constraint = "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"

(* The experiment: a dumbbell — two 3-node LANs joined by one
   wide-area link, with deliberately tight delay requirements. *)
let experiment () =
  let g = Graph.create ~name:"dumbbell" () in
  let lan lo hi =
    let v = Array.init 3 (fun _ -> Graph.add_node g Attrs.empty) in
    for i = 0 to 2 do
      for j = i + 1 to 2 do
        ignore
          (Graph.add_edge g v.(i) v.(j)
             (Attrs.of_list
                [ ("minDelay", Value.Float lo); ("maxDelay", Value.Float hi) ]))
      done
    done;
    v.(0)
  in
  let left = lan 1.0 40.0 and right = lan 1.0 40.0 in
  ignore
    (Graph.add_edge g left right
       (Attrs.of_list [ ("minDelay", Value.Float 60.0); ("maxDelay", Value.Float 80.0) ]));
  g

let () =
  let rng = Rng.make 11 in
  let service = Service.create (Model.create (Trace.generate rng Trace.default)) in

  (* 1. GraphML round trip, as a user upload would do. *)
  let path = Filename.temp_file "experiment" ".graphml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graphml.write_file (experiment ()) path;
      let query = Graphml.read_file path in
      Format.printf "Experiment read back from %s: %a@." (Filename.basename path)
        Graph.pp_summary query;

      (* 2. Serialize through the wire protocol and decode service-side. *)
      let request =
        Request.make ~algorithm:Engine.ECF ~mode:Engine.First ~timeout:15.0 ~query
          edge_constraint
      in
      let frame = Wire.encode_request request in
      Format.printf "Wire frame is %d bytes@." (String.length frame);
      let request =
        match Wire.decode_request frame with Ok r -> r | Error e -> failwith e
      in

      (* 3. Submit with negotiation: relax by 20% per round if needed. *)
      match Service.submit_with_relaxation service request ~steps:4 ~factor:0.2 with
      | Error e -> failwith e
      | Ok (answer, rounds) -> (
          match answer.Service.result.Engine.mappings with
          | [] -> Format.printf "Testbed cannot host the experiment even relaxed.@."
          | m :: _ ->
              Format.printf "Slice found after %d relaxation round(s):@." rounds;
              List.iter
                (fun (q, site) ->
                  let name =
                    Option.value ~default:"?"
                      (Attrs.string "name"
                         (Graph.node_attrs (Model.snapshot (Service.model service)) site))
                  in
                  Format.printf "  vnode %d -> %s@." q name)
                (Mapping.to_list m);
              (* Echo the answer over the wire, as the server would. *)
              let reply = Wire.encode_answer answer in
              Format.printf "Reply frame:@.%s@." reply))
