lib/attr/attrs.ml: Format List Map String Value
