lib/attr/attrs.mli: Format Value
