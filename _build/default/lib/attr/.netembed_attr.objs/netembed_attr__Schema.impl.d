lib/attr/schema.ml: Attrs Format List Printf Value
