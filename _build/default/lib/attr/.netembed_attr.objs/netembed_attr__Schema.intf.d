lib/attr/schema.mli: Attrs Format Value
