lib/attr/value.ml: Float Format Printf Stdlib String
