lib/attr/value.mli: Format
