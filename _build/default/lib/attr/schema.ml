type domain = Node | Edge | Graph

type entry = {
  name : string;
  domain : domain;
  ty : [ `Bool | `Int | `Float | `String ];
  default : Value.t option;
}

(* Declaration order matters for GraphML output stability, so we keep a
   reversed list and dedupe on lookup. *)
type t = entry list

let empty = []

let same_slot a b = a.name = b.name && a.domain = b.domain

let add e t =
  match List.find_opt (same_slot e) t with
  | Some prior when prior.ty <> e.ty ->
      invalid_arg
        (Printf.sprintf "Schema.add: %s redeclared with a different type" e.name)
  | Some _ -> t
  | None -> e :: t

let find domain name t = List.find_opt (fun e -> e.name = name && e.domain = domain) t
let entries t = List.rev t

let defaults domain t =
  List.fold_left
    (fun acc e ->
      match e.default with
      | Some v when e.domain = domain -> Attrs.add e.name v acc
      | Some _ | None -> acc)
    Attrs.empty t

let type_of_value = function
  | Value.Bool _ -> `Bool
  | Value.Int _ -> `Int
  | Value.Float _ -> `Float
  | Value.String _ | Value.Range _ -> `String

let infer domain attrs t =
  Attrs.fold
    (fun name v acc ->
      match find domain name acc with
      | Some _ -> acc
      | None -> add { name; domain; ty = type_of_value v; default = None } acc)
    attrs t

let pp_domain ppf = function
  | Node -> Format.pp_print_string ppf "node"
  | Edge -> Format.pp_print_string ppf "edge"
  | Graph -> Format.pp_print_string ppf "graph"

let pp_ty ppf = function
  | `Bool -> Format.pp_print_string ppf "bool"
  | `Int -> Format.pp_print_string ppf "int"
  | `Float -> Format.pp_print_string ppf "float"
  | `String -> Format.pp_print_string ppf "string"

let pp ppf t =
  let pp_entry ppf e =
    Format.fprintf ppf "%s:%a:%a" e.name pp_domain e.domain pp_ty e.ty
  in
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_entry)
    (entries t)
