(** Attribute schemas: typed declarations of the attributes a network
    carries, mirroring GraphML [<key>] elements.

    A schema entry declares an attribute name, the domain it applies to
    (nodes, edges or the whole graph), its payload type and an optional
    default value.  GraphML I/O uses schemas to parse and emit typed
    [<data>] payloads; the service layer uses them to validate queries
    against the hosting network's characterization. *)

type domain = Node | Edge | Graph

type entry = {
  name : string;
  domain : domain;
  ty : [ `Bool | `Int | `Float | `String ];
  default : Value.t option;
}

type t

val empty : t
val add : entry -> t -> t
(** @raise Invalid_argument if an entry with the same name and domain is
    already declared with a different type. *)

val find : domain -> string -> t -> entry option
val entries : t -> entry list
(** Entries in declaration order. *)

val defaults : domain -> t -> Attrs.t
(** Attribute table holding every declared default for [domain]. *)

val infer : domain -> Attrs.t -> t -> t
(** [infer domain attrs t] extends [t] with entries for any attribute of
    [attrs] not yet declared, inferring the type from the value (ranges
    are declared as two float keys [name ^ "_lo"] is {e not} used —
    ranges are encoded by GraphML as strings). *)

val pp : Format.formatter -> t -> unit
