type t =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Range of float * float

exception Type_error of string

let type_name = function
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | Range _ -> "range"

let type_error ~expected v =
  raise (Type_error (Printf.sprintf "expected %s, got %s" expected (type_name v)))

let equal a b =
  match a, b with
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Int x, Float y | Float y, Int x -> Float.equal (float_of_int x) y
  | String x, String y -> String.equal x y
  | Range (l1, h1), Range (l2, h2) -> Float.equal l1 l2 && Float.equal h1 h2
  | (Bool _ | Int _ | Float _ | String _ | Range _), _ -> false

let compare a b =
  match a, b with
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | _ -> Stdlib.compare a b

let pp ppf = function
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | String s -> Format.pp_print_string ppf s
  | Range (lo, hi) -> Format.fprintf ppf "[%g,%g]" lo hi

let to_string v = Format.asprintf "%a" pp v

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | (Bool _ | String _ | Range _) as v -> type_error ~expected:"number" v

let to_bool = function
  | Bool b -> b
  | (Int _ | Float _ | String _ | Range _) as v -> type_error ~expected:"bool" v

let range_lo = function
  | Range (lo, _) -> lo
  | Int i -> float_of_int i
  | Float f -> f
  | (Bool _ | String _) as v -> type_error ~expected:"number or range" v

let range_hi = function
  | Range (_, hi) -> hi
  | Int i -> float_of_int i
  | Float f -> f
  | (Bool _ | String _) as v -> type_error ~expected:"number or range" v

let is_numeric = function
  | Int _ | Float _ | Range _ -> true
  | Bool _ | String _ -> false

let range lo hi =
  if Float.is_nan lo || Float.is_nan hi then invalid_arg "Value.range: NaN bound";
  if lo > hi then invalid_arg "Value.range: lo > hi";
  Range (lo, hi)

let of_string_as ty s =
  let fail () = raise (Type_error (Printf.sprintf "cannot parse %S" s)) in
  match ty with
  | `String -> String s
  | `Bool -> (
      match String.lowercase_ascii (String.trim s) with
      | "true" | "1" -> Bool true
      | "false" | "0" -> Bool false
      | _ -> fail ())
  | `Int -> ( match int_of_string_opt (String.trim s) with Some i -> Int i | None -> fail ())
  | `Float -> (
      match float_of_string_opt (String.trim s) with Some f -> Float f | None -> fail ())
