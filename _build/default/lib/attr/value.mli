(** Typed attribute values.

    Hosting and query networks are "characterized" by attributes on their
    nodes and links (paper, section IV): measured metrics represented as
    numeric values or ranges, and categorical classes such as
    ["Link (n1,n2) is 802.11g"].  This module is the value universe shared
    by the graph substrate, GraphML I/O and the constraint expression
    evaluator. *)

type t =
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Range of float * float  (** inclusive [lo, hi]; invariant lo <= hi *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Coercions}

    The constraint language is dynamically typed in the style of Java
    expressions over boxed values: numeric contexts accept [Int], [Float]
    and booleans never coerce.  All coercion failures raise
    {!Type_error}. *)

exception Type_error of string

val to_float : t -> float
(** [to_float v] is the numeric value of [v].  [Int] widens to float;
    [Range] is rejected (ranges are accessed through {!range_lo} /
    {!range_hi}).  @raise Type_error on non-numeric values. *)

val to_bool : t -> bool
(** @raise Type_error if [v] is not [Bool]. *)

val range_lo : t -> float
(** Lower bound of a [Range]; a plain numeric value is treated as the
    degenerate range [v, v].  @raise Type_error on non-numeric values. *)

val range_hi : t -> float
(** Upper bound, symmetric to {!range_lo}. *)

val is_numeric : t -> bool

(** {1 Construction} *)

val range : float -> float -> t
(** [range lo hi] builds a range value.  @raise Invalid_argument if
    [lo > hi] or either bound is NaN. *)

val of_string_as : [ `Bool | `Int | `Float | `String ] -> string -> t
(** Parse a GraphML data payload according to the declared key type.
    @raise Type_error if the payload does not parse. *)

val type_name : t -> string
(** Human-readable type tag, used in error messages. *)
