lib/baselines/annealing.ml: Array Graph List Netembed_core Netembed_graph Netembed_rng
