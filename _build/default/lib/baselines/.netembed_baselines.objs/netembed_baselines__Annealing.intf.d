lib/baselines/annealing.mli: Netembed_core Netembed_rng
