lib/baselines/bruteforce.ml: Array Graph List Netembed_core Netembed_graph
