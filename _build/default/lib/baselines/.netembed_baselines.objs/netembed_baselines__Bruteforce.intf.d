lib/baselines/bruteforce.mli: Netembed_core
