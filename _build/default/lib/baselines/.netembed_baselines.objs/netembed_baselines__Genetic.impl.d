lib/baselines/genetic.ml: Array Graph Hashtbl List Netembed_core Netembed_graph Netembed_rng
