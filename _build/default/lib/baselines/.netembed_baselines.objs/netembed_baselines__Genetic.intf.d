lib/baselines/genetic.mli: Netembed_core Netembed_rng
