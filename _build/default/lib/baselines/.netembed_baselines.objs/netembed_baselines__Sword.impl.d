lib/baselines/sword.ml: Array Graph List Netembed_core Netembed_graph
