lib/baselines/sword.mli: Netembed_core
