lib/baselines/zhu_ammar.ml: Array Graph List Netembed_core Netembed_expr Netembed_graph
