lib/baselines/zhu_ammar.mli: Netembed_core Netembed_expr Netembed_graph
