open Netembed_graph
module Problem = Netembed_core.Problem
module Mapping = Netembed_core.Mapping
module Verify = Netembed_core.Verify
module Rng = Netembed_rng.Rng

type params = {
  iterations : int;
  initial_temperature : float;
  cooling : float;
  restarts : int;
}

let default_params =
  { iterations = 20_000; initial_temperature = 4.0; cooling = 0.9995; restarts = 3 }

let edge_satisfied p qe q_src q_dst r_src r_dst =
  r_src <> r_dst
  && List.exists
       (fun he -> Problem.edge_pair_ok p ~qe ~q_src ~q_dst ~he ~r_src ~r_dst)
       (Graph.edges_between p.Problem.host r_src r_dst)

let cost p assignment =
  let violations = ref 0 in
  Graph.iter_edges
    (fun qe q_src q_dst ->
      if not (edge_satisfied p qe q_src q_dst assignment.(q_src) assignment.(q_dst))
      then incr violations)
    p.Problem.query;
  Array.iteri
    (fun q r -> if not (Problem.node_ok p ~q ~r) then incr violations)
    assignment;
  !violations

(* Cost contribution local to query node [q] (its node filter and
   incident edges), accumulated into [c]; used to compute move deltas. *)
let local_cost p assignment q c =
  if not (Problem.node_ok p ~q ~r:assignment.(q)) then incr c;
  List.iter
    (fun (w, qe) ->
      let src, _ = Graph.endpoints p.Problem.query qe in
      let q_src, q_dst = if src = q then (q, w) else (w, q) in
      if
        not
          (edge_satisfied p qe q_src q_dst assignment.(q_src) assignment.(q_dst))
      then incr c)
    (Problem.query_neighbours p q)

let random_injective rng nq nr =
  Array.sub (Rng.sample_without_replacement rng nq nr) 0 nq

let anneal p ~rng ~params =
  let nq = Graph.node_count p.Problem.query in
  let nr = Graph.node_count p.Problem.host in
  let assignment = random_injective rng nq nr in
  let in_use = Array.make nr (-1) in
  Array.iteri (fun q r -> in_use.(r) <- q) assignment;
  let current_cost = ref (cost p assignment) in
  let temperature = ref params.initial_temperature in
  let best = ref (Array.copy assignment) in
  let best_cost = ref !current_cost in
  let iteration = ref 0 in
  while !iteration < params.iterations && !best_cost > 0 do
    incr iteration;
    let q = Rng.int rng nq in
    let r' = Rng.int rng nr in
    let r = assignment.(q) in
    if r' <> r then begin
      let occupant = in_use.(r') in
      (* Move q to r'; if r' is taken, swap the two assignments. *)
      let before =
        let c = ref 0 in
        local_cost p assignment q c;
        if occupant >= 0 && occupant <> q then local_cost p assignment occupant c;
        !c
      in
      assignment.(q) <- r';
      if occupant >= 0 && occupant <> q then assignment.(occupant) <- r;
      let after =
        let c = ref 0 in
        local_cost p assignment q c;
        if occupant >= 0 && occupant <> q then local_cost p assignment occupant c;
        !c
      in
      let delta = after - before in
      let accept =
        delta <= 0
        || Rng.float rng 1.0 < exp (-.float_of_int delta /. !temperature)
      in
      if accept then begin
        in_use.(r) <- (if occupant >= 0 && occupant <> q then occupant else -1);
        in_use.(r') <- q;
        current_cost := !current_cost + delta;
        (* Swaps double-count the q-occupant edge in the delta; recompute
           exactly when the tracked cost claims (near-)feasibility. *)
        if !current_cost <= 0 then current_cost := cost p assignment;
        if !current_cost < !best_cost then begin
          best_cost := !current_cost;
          best := Array.copy assignment
        end
      end
      else begin
        (* Undo. *)
        assignment.(q) <- r;
        if occupant >= 0 && occupant <> q then assignment.(occupant) <- r'
      end
    end;
    temperature := !temperature *. params.cooling
  done;
  if !best_cost = 0 then Some !best else None

let find_first ?(params = default_params) ~rng p =
  let nq = Graph.node_count p.Problem.query in
  if nq = 0 then Some (Mapping.of_array [||])
  else begin
    let rec attempt k =
      if k >= params.restarts then None
      else
        match anneal p ~rng ~params with
        | Some a ->
            let m = Mapping.of_array a in
            (* The cost function mirrors feasibility; double-check. *)
            if Verify.is_valid p m then Some m else attempt (k + 1)
        | None -> attempt (k + 1)
    in
    attempt 0
  end
