(** Simulated-annealing mapper in the style of Emulab's [assign]
    (Alfeld, Lepreau, Ricci [13]; paper section II).

    [assign] treats network embedding as an optimization problem:
    candidate assignments are perturbed by re-mapping a random virtual
    node, and a simulated-annealing schedule accepts cost-increasing
    moves with decreasing probability.  Here the cost is the number of
    violated query edges plus injectivity violations, so a cost of zero
    is a feasible embedding.

    As the paper notes for this class of techniques, there is {e no
    guarantee of convergence}: the search can return [None] even when a
    feasible embedding exists (tests and benches exhibit this). *)

type params = {
  iterations : int;  (** total proposal count *)
  initial_temperature : float;
  cooling : float;  (** per-iteration geometric cooling factor, < 1 *)
  restarts : int;  (** independent annealing runs *)
}

val default_params : params

val find_first :
  ?params:params ->
  rng:Netembed_rng.Rng.t ->
  Netembed_core.Problem.t ->
  Netembed_core.Mapping.t option
(** Every returned mapping passes {!Netembed_core.Verify.check} (the
    zero-cost condition is exactly feasibility). *)

val cost : Netembed_core.Problem.t -> int array -> int
(** The annealing cost of a (possibly infeasible) assignment: number of
    unsatisfied query edges + number of node-filter violations.
    Exposed for tests. *)
