open Netembed_graph
module Problem = Netembed_core.Problem
module Budget = Netembed_core.Budget
module Mapping = Netembed_core.Mapping

exception Stop_search

let search (p : Problem.t) ~budget ~on_solution =
  let nq = Graph.node_count p.Problem.query in
  let nr = Graph.node_count p.Problem.host in
  if nq = 0 then ignore (on_solution (Mapping.of_array [||]))
  else begin
    let assignment = Array.make nq (-1) in
    let used = Array.make nr false in
    (* Check only edges between q and already-assigned nodes (< q). *)
    let edges_into_prefix =
      Array.init nq (fun q ->
          List.filter_map
            (fun (w, e) ->
              if w < q then
                let src, _ = Graph.endpoints p.Problem.query e in
                Some (e, w, src = q)
              else None)
            (Problem.query_neighbours p q))
    in
    let consistent q r =
      Problem.node_ok p ~q ~r
      && List.for_all
           (fun (qe, w, q_is_src) ->
             let rw = assignment.(w) in
             let q_src, q_dst = if q_is_src then (q, w) else (w, q) in
             let r_src, r_dst = if q_is_src then (r, rw) else (rw, r) in
             List.exists
               (fun he -> Problem.edge_pair_ok p ~qe ~q_src ~q_dst ~he ~r_src ~r_dst)
               (Graph.edges_between p.Problem.host r_src r_dst))
           edges_into_prefix.(q)
    in
    let rec go q =
      Budget.tick budget;
      if q = nq then begin
        match on_solution (Mapping.of_array (Array.copy assignment)) with
        | `Continue -> ()
        | `Stop -> raise Stop_search
      end
      else
        for r = 0 to nr - 1 do
          if (not used.(r)) && consistent q r then begin
            assignment.(q) <- r;
            used.(r) <- true;
            go (q + 1);
            used.(r) <- false;
            assignment.(q) <- -1
          end
        done
    in
    match go 0 with () -> () | exception Stop_search -> ()
  end

let find_all ?timeout p =
  let budget = Budget.make ?timeout () in
  let acc = ref [] in
  (try
     search p ~budget ~on_solution:(fun m ->
         acc := m :: !acc;
         `Continue)
   with Budget.Exhausted -> ());
  List.rev !acc

let find_first ?timeout p =
  let budget = Budget.make ?timeout () in
  let acc = ref None in
  (try
     search p ~budget ~on_solution:(fun m ->
         acc := Some m;
         `Stop)
   with Budget.Exhausted -> ());
  !acc
