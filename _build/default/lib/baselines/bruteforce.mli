(** Naive exhaustive search: depth-first over the permutations tree in
    plain node order, checking each edge constraint only at assignment
    time — no filter matrix, no candidate ordering, no node-level
    pruning beyond feasibility of edges into the assigned prefix.

    This is the "brute-force approach" that constraint-satisfaction
    formulations start from (Considine & Byers [16] before their pruning
    techniques); NETEMBED's speedup over it is what the filter matrix
    and Lemma-1 ordering buy.  It is complete and correct, so tests use
    it as the ground-truth enumerator on small instances. *)

val search :
  Netembed_core.Problem.t ->
  budget:Netembed_core.Budget.t ->
  on_solution:(Netembed_core.Mapping.t -> [ `Continue | `Stop ]) ->
  unit
(** @raise Netembed_core.Budget.Exhausted when the budget runs out. *)

val find_all :
  ?timeout:float -> Netembed_core.Problem.t -> Netembed_core.Mapping.t list

val find_first :
  ?timeout:float -> Netembed_core.Problem.t -> Netembed_core.Mapping.t option
