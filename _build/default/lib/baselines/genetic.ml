open Netembed_graph
module Problem = Netembed_core.Problem
module Mapping = Netembed_core.Mapping
module Verify = Netembed_core.Verify
module Rng = Netembed_rng.Rng

type params = {
  population : int;
  generations : int;
  mutation_rate : float;
  tournament : int;
  elite : int;
}

let default_params =
  { population = 60; generations = 400; mutation_rate = 0.05; tournament = 3; elite = 2 }

let edge_satisfied p qe q_src q_dst r_src r_dst =
  r_src <> r_dst
  && List.exists
       (fun he -> Problem.edge_pair_ok p ~qe ~q_src ~q_dst ~he ~r_src ~r_dst)
       (Graph.edges_between p.Problem.host r_src r_dst)

let fitness p genome =
  let score = ref 0 in
  Graph.iter_edges
    (fun qe q_src q_dst ->
      if edge_satisfied p qe q_src q_dst genome.(q_src) genome.(q_dst) then incr score)
    p.Problem.query;
  Array.iteri (fun q r -> if Problem.node_ok p ~q ~r then incr score) genome;
  !score

let max_fitness p =
  Graph.edge_count p.Problem.query + Graph.node_count p.Problem.query

let random_genome rng nq nr = Array.sub (Rng.sample_without_replacement rng nq nr) 0 nq

(* Injectivity-preserving uniform crossover: copy parent A, then for
   genes chosen from parent B, swap values within the child so the
   result stays a partial permutation (PMX-style repair). *)
let crossover rng a b =
  let n = Array.length a in
  let child = Array.copy a in
  let pos_of = Hashtbl.create n in
  Array.iteri (fun i r -> Hashtbl.replace pos_of r i) child;
  for i = 0 to n - 1 do
    if Rng.bool rng && child.(i) <> b.(i) then begin
      match Hashtbl.find_opt pos_of b.(i) with
      | Some j ->
          let tmp = child.(i) in
          child.(i) <- child.(j);
          child.(j) <- tmp;
          Hashtbl.replace pos_of child.(i) i;
          Hashtbl.replace pos_of child.(j) j
      | None ->
          Hashtbl.remove pos_of child.(i);
          child.(i) <- b.(i);
          Hashtbl.replace pos_of child.(i) i
    end
  done;
  child

let mutate rng params nr genome =
  let n = Array.length genome in
  let in_use = Hashtbl.create n in
  Array.iteri (fun i r -> Hashtbl.replace in_use r i) genome;
  for i = 0 to n - 1 do
    if Rng.float rng 1.0 < params.mutation_rate then begin
      let r' = Rng.int rng nr in
      match Hashtbl.find_opt in_use r' with
      | Some j when j <> i ->
          (* Swap with the occupant to preserve injectivity. *)
          let tmp = genome.(i) in
          genome.(i) <- genome.(j);
          genome.(j) <- tmp;
          Hashtbl.replace in_use genome.(i) i;
          Hashtbl.replace in_use genome.(j) j
      | Some _ -> ()
      | None ->
          Hashtbl.remove in_use genome.(i);
          genome.(i) <- r';
          Hashtbl.replace in_use r' i
    end
  done

let find_first ?(params = default_params) ~rng p =
  let nq = Graph.node_count p.Problem.query in
  let nr = Graph.node_count p.Problem.host in
  if nq = 0 then Some (Mapping.of_array [||])
  else begin
    let target = max_fitness p in
    let pop = Array.init params.population (fun _ -> random_genome rng nq nr) in
    let scores = Array.map (fitness p) pop in
    let best_index () =
      let bi = ref 0 in
      Array.iteri (fun i s -> if s > scores.(!bi) then bi := i) scores;
      !bi
    in
    let tournament_pick () =
      let best = ref (Rng.int rng params.population) in
      for _ = 2 to params.tournament do
        let c = Rng.int rng params.population in
        if scores.(c) > scores.(!best) then best := c
      done;
      pop.(!best)
    in
    let generation = ref 0 in
    let solution = ref None in
    while !solution = None && !generation < params.generations do
      incr generation;
      let bi = best_index () in
      if scores.(bi) = target then begin
        let m = Mapping.of_array (Array.copy pop.(bi)) in
        if Verify.is_valid p m then solution := Some m
      end;
      if !solution = None then begin
        (* Build the next generation: elites + tournament offspring. *)
        let next = Array.make params.population pop.(bi) in
        let by_score = Array.init params.population (fun i -> i) in
        Array.sort (fun i j -> compare scores.(j) scores.(i)) by_score;
        for e = 0 to min params.elite params.population - 1 do
          next.(e) <- Array.copy pop.(by_score.(e))
        done;
        for i = params.elite to params.population - 1 do
          let child = crossover rng (tournament_pick ()) (tournament_pick ()) in
          mutate rng params nr child;
          next.(i) <- child
        done;
        Array.blit next 0 pop 0 params.population;
        Array.iteri (fun i g -> scores.(i) <- fitness p g) pop
      end
    done;
    (* Final check in case the last generation produced a solution. *)
    (match !solution with
    | Some _ -> ()
    | None ->
        let bi = best_index () in
        if scores.(bi) = target then begin
          let m = Mapping.of_array (Array.copy pop.(bi)) in
          if Verify.is_valid p m then solution := Some m
        end);
    !solution
  end
