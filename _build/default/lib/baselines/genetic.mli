(** Genetic-algorithm mapper in the style of Netbed's [wanassign]
    (White, Lepreau, Stoller et al. [10]; paper section II).

    [wanassign] evolves a population of candidate assignments with
    permutation-preserving crossover and mutation; fitness is the number
    of satisfied query constraints.  The paper reports it handling only
    small networks (16 nodes in [10], up to 160 in [14], at tens to
    hundreds of minutes) with no convergence guarantee — the properties
    the comparison benchmarks reproduce. *)

type params = {
  population : int;
  generations : int;
  mutation_rate : float;  (** per-gene probability of a random re-map *)
  tournament : int;  (** tournament selection size *)
  elite : int;  (** individuals copied unchanged each generation *)
}

val default_params : params

val find_first :
  ?params:params ->
  rng:Netembed_rng.Rng.t ->
  Netembed_core.Problem.t ->
  Netembed_core.Mapping.t option

val fitness : Netembed_core.Problem.t -> int array -> int
(** Satisfied query edges + satisfied node filters; the maximum equals
    [|EQ| + |VQ|] exactly on feasible embeddings.  Exposed for tests. *)
