open Netembed_graph
module Problem = Netembed_core.Problem
module Mapping = Netembed_core.Mapping
module Budget = Netembed_core.Budget

type pruning = Top_half | Top_k of int | First_only

type params = { pruning : pruning; phase_timeout : float }

let default_params = { pruning = Top_k 5; phase_timeout = 5.0 }

(* Phase 1: score host [r] for query node [q] by the number of q's
   incident edges for which at least one edge at r satisfies the
   constraint (a "non-infinity-penalty" count), then prune. *)
let phase1_candidates ?(params = default_params) (p : Problem.t) =
  let nq = Graph.node_count p.Problem.query in
  let nr = Graph.node_count p.Problem.host in
  Array.init nq (fun q ->
      let incident = Problem.query_neighbours p q in
      let scored = ref [] in
      for r = 0 to nr - 1 do
        if Problem.node_ok p ~q ~r then begin
          let score =
            List.fold_left
              (fun acc (w, qe) ->
                let src, _ = Graph.endpoints p.Problem.query qe in
                let q_is_src = src = q in
                let host_side =
                  (* Outgoing host edges when q is the edge source,
                     incoming ones when it is the target. *)
                  if q_is_src then Graph.succ p.Problem.host r
                  else Graph.pred p.Problem.host r
                in
                let satisfiable =
                  List.exists
                    (fun (r', he) ->
                      r' <> r
                      &&
                      let q_src, q_dst = if q_is_src then (q, w) else (w, q) in
                      let r_src, r_dst = if q_is_src then (r, r') else (r', r) in
                      Problem.edge_pair_ok p ~qe ~q_src ~q_dst ~he ~r_src ~r_dst)
                    host_side
                in
                if satisfiable then acc + 1 else acc)
              0 incident
          in
          if score = List.length incident then scored := (score, r) :: !scored
        end
      done;
      let sorted =
        List.sort (fun (s1, r1) (s2, r2) -> if s2 <> s1 then compare s2 s1 else compare r1 r2) !scored
      in
      let keep =
        match params.pruning with
        | Top_half -> max 1 ((List.length sorted + 1) / 2)
        | Top_k k -> k
        | First_only -> 1
      in
      Array.of_list (List.filteri (fun i _ -> i < keep) (List.map snd sorted)))

(* Phase 2: DFS over the pruned candidate sets only. *)
let find_first ?(params = default_params) (p : Problem.t) =
  let nq = Graph.node_count p.Problem.query in
  if nq = 0 then Some (Mapping.of_array [||])
  else begin
    let candidates = phase1_candidates ~params p in
    let budget = Budget.make ~timeout:params.phase_timeout () in
    let nr = Graph.node_count p.Problem.host in
    let assignment = Array.make nq (-1) in
    let used = Array.make nr false in
    let edges_into_prefix =
      Array.init nq (fun q ->
          List.filter_map
            (fun (w, e) ->
              if w < q then
                let src, _ = Graph.endpoints p.Problem.query e in
                Some (e, w, src = q)
              else None)
            (Problem.query_neighbours p q))
    in
    let consistent q r =
      List.for_all
        (fun (qe, w, q_is_src) ->
          let rw = assignment.(w) in
          let q_src, q_dst = if q_is_src then (q, w) else (w, q) in
          let r_src, r_dst = if q_is_src then (r, rw) else (rw, r) in
          List.exists
            (fun he -> Problem.edge_pair_ok p ~qe ~q_src ~q_dst ~he ~r_src ~r_dst)
            (Graph.edges_between p.Problem.host r_src r_dst))
        edges_into_prefix.(q)
    in
    let exception Found in
    let result = ref None in
    let rec go q =
      Budget.tick budget;
      if q = nq then begin
        result := Some (Mapping.of_array (Array.copy assignment));
        raise Found
      end
      else
        Array.iter
          (fun r ->
            if (not used.(r)) && consistent q r then begin
              assignment.(q) <- r;
              used.(r) <- true;
              go (q + 1);
              used.(r) <- false;
              assignment.(q) <- -1
            end)
          candidates.(q)
    in
    (try go 0 with Found -> () | Budget.Exhausted -> ());
    !result
  end
