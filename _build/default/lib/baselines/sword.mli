(** SWORD-style two-phase matcher with candidate pruning (Oppenheimer,
    Albrecht, Patterson, Vahdat [17]; paper section II).

    SWORD first matches groups of nodes to candidate sets using
    per-node requirements, then matches inter-group requirements by
    trying combinations of candidates.  To scale, it prunes phase-1
    candidates (top half / top five / first) and times out each phase
    — heuristics that "may well result in false negatives, i.e., the
    algorithm returns a 'no match' answer ... whereas in reality a
    feasible embedding may well exist".

    This implementation reproduces that behaviour: phase 1 scores each
    host per query node by how many of the node's incident constraints
    some host edge could satisfy, keeps only [keep] candidates, and
    phase 2 runs a DFS restricted to those candidates under a timeout.
    Tests demonstrate the false negatives against ECF's ground truth. *)

type pruning =
  | Top_half
  | Top_k of int
  | First_only

type params = { pruning : pruning; phase_timeout : float }

val default_params : params
(** [Top_k 5], 5 s per phase — SWORD's published middle setting. *)

val find_first :
  ?params:params ->
  Netembed_core.Problem.t ->
  Netembed_core.Mapping.t option
(** Complete {e only} relative to the pruned candidate sets: a [None]
    answer does not prove infeasibility. *)

val phase1_candidates : ?params:params -> Netembed_core.Problem.t -> int array array
(** The pruned per-query-node candidate sets (exposed for tests). *)
