open Netembed_graph
module Problem = Netembed_core.Problem
module Mapping = Netembed_core.Mapping

type t = { host_graph : Graph.t; stress : int array }

let create g = { host_graph = g; stress = Array.make (max 1 (Graph.node_count g)) 0 }
let host t = t.host_graph
let node_stress t v = t.stress.(v)
let total_stress t = Array.fold_left ( + ) 0 t.stress
let max_stress t = Array.fold_left max 0 t.stress

let embed ?(edge_constraint = Netembed_expr.Expr.always) t query =
  match Problem.make ~host:t.host_graph ~query edge_constraint with
  | exception Invalid_argument _ -> None
  | p ->
      let nq = Graph.node_count query in
      let nr = Graph.node_count t.host_graph in
      if nq = 0 then Some (Mapping.of_array [||])
      else begin
        let assignment = Array.make nq (-1) in
        let used = Array.make nr false in
        (* Place query nodes in decreasing-degree order. *)
        let order = Array.init nq (fun q -> q) in
        Array.sort
          (fun q1 q2 -> compare (Graph.degree query q2) (Graph.degree query q1))
          order;
        let feasible q r =
          (not used.(r))
          && Problem.node_ok p ~q ~r
          && List.for_all
               (fun (w, qe) ->
                 if assignment.(w) < 0 then true
                 else begin
                   let src, _ = Graph.endpoints query qe in
                   let q_src, q_dst = if src = q then (q, w) else (w, q) in
                   let rw = assignment.(w) in
                   let r_src, r_dst = if src = q then (r, rw) else (rw, r) in
                   List.exists
                     (fun he ->
                       Problem.edge_pair_ok p ~qe ~q_src ~q_dst ~he ~r_src ~r_dst)
                     (Graph.edges_between t.host_graph r_src r_dst)
                 end)
               (Problem.query_neighbours p q)
        in
        let ok =
          Array.for_all
            (fun q ->
              (* Minimum-stress feasible host; ties broken by id. *)
              let best = ref (-1) in
              for r = 0 to nr - 1 do
                if feasible q r && (!best = -1 || t.stress.(r) < t.stress.(!best)) then
                  best := r
              done;
              if !best >= 0 then begin
                assignment.(q) <- !best;
                used.(!best) <- true;
                true
              end
              else false)
            order
        in
        if ok then begin
          Array.iter (fun r -> t.stress.(r) <- t.stress.(r) + 1) assignment;
          Some (Mapping.of_array assignment)
        end
        else None
      end
