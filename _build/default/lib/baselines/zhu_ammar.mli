(** Stress-minimizing greedy assignment after Zhu & Ammar [15]
    (paper section II).

    Zhu and Ammar assign substrate resources to virtual-network
    components so as to balance {e stress} — the number of virtual
    components already hosted by each substrate node and link — thereby
    maximizing how many virtual networks the shared substrate can
    accommodate.  As the paper notes, the algorithm "can be extended to
    the constrained version of the problem by filtering out infeasible
    assignments", which is what this implementation does: query nodes
    are placed in decreasing-degree order onto the feasible host node of
    minimum current stress, with no backtracking.

    The allocator is stateful across queries: each successful embedding
    increments the stress of the hosts it uses, so successive virtual
    networks spread over the substrate.  Greedy placement is incomplete
    (it can miss feasible embeddings); tests exhibit that against ECF. *)

type t

val create : Netembed_graph.Graph.t -> t
(** A fresh allocator over the hosting network (stress all zero). *)

val host : t -> Netembed_graph.Graph.t
val node_stress : t -> Netembed_graph.Graph.node -> int

val embed :
  ?edge_constraint:Netembed_expr.Ast.t ->
  t ->
  Netembed_graph.Graph.t ->
  Netembed_core.Mapping.t option
(** Greedily embed the query (constraint defaults to
    {!Netembed_expr.Expr.always}); on success the stress of the used
    hosts is incremented.  Unlike NETEMBED, the same host may be reused
    by later queries (stress accrues), but within one query the mapping
    is injective. *)

val total_stress : t -> int
val max_stress : t -> int
