type t = { n : int; words : int array }

let bits_per_word = 62 (* OCaml native ints carry 63 bits incl. sign; use 62 so
                          a full word is exactly [max_int] *)

let word_count n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; words = Array.make (max 1 (word_count n)) 0 }

let universe_size t = t.n

(* Mask for the last, possibly partial word so that full/complement style
   operations never set bits beyond the universe. *)
let last_word_mask n =
  let rem = n mod bits_per_word in
  if rem = 0 then max_int else (1 lsl rem) - 1

let full n =
  let t = create n in
  let wc = word_count n in
  for i = 0 to wc - 1 do
    t.words.(i) <- max_int
  done;
  if n > 0 then t.words.(wc - 1) <- last_word_mask n;
  t

let copy t = { n = t.n; words = Array.copy t.words }

let check_index t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of universe"

let add t i =
  check_index t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check_index t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  if i < 0 || i >= t.n then false
  else
    let w = i / bits_per_word and b = i mod bits_per_word in
    t.words.(w) land (1 lsl b) <> 0

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t =
  let rec go i = i >= Array.length t.words || (t.words.(i) = 0 && go (i + 1)) in
  go 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let equal a b =
  a.n = b.n
  &&
  let rec go i = i >= Array.length a.words || (a.words.(i) = b.words.(i) && go (i + 1)) in
  go 0

let check_same a b = if a.n <> b.n then invalid_arg "Bitset: universe mismatch"

let inter_into ~dst src =
  check_same dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land src.words.(i)
  done

let union_into ~dst src =
  check_same dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let diff_into ~dst src =
  check_same dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land lnot src.words.(i)
  done

let inter a b =
  let r = copy a in
  inter_into ~dst:r b;
  r

let union a b =
  let r = copy a in
  union_into ~dst:r b;
  r

let diff a b =
  let r = copy a in
  diff_into ~dst:r b;
  r

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    while !word <> 0 do
      let lsb = !word land - !word in
      let b =
        (* index of least significant set bit *)
        let rec go x acc = if x = 1 then acc else go (x lsr 1) (acc + 1) in
        go lsb 0
      in
      f ((w * bits_per_word) + b);
      word := !word land lnot lsb
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])
let to_array t = Array.of_list (elements t)

let of_list n l =
  let t = create n in
  List.iter (fun i -> add t i) l;
  t

exception Found of int

let choose t =
  try
    iter (fun i -> raise (Found i)) t;
    None
  with Found i -> Some i

let nth t k =
  if k < 0 then None
  else
    (* Skip whole words by popcount, then scan within the word. *)
    let remaining = ref k in
    let result = ref None in
    (try
       for w = 0 to Array.length t.words - 1 do
         let c = popcount t.words.(w) in
         if !remaining < c then begin
           let word = ref t.words.(w) in
           for _ = 1 to !remaining do
             word := !word land (!word - 1)
           done;
           let lsb = !word land - !word in
           let rec bit_index x acc = if x = 1 then acc else bit_index (x lsr 1) (acc + 1) in
           result := Some ((w * bits_per_word) + bit_index lsb 0);
           raise Exit
         end
         else remaining := !remaining - c
       done
     with Exit -> ());
    !result

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (elements t)
