lib/core/budget.ml: Option Unix
