lib/core/budget.mli:
