lib/core/dfs.ml: Array Budget Filter Graph List Mapping Netembed_graph Netembed_rng Problem
