lib/core/dfs.mli: Budget Filter Mapping Netembed_rng Problem
