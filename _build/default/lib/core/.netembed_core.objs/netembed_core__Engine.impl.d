lib/core/engine.ml: Budget Dfs Filter List Lns Mapping Netembed_rng
