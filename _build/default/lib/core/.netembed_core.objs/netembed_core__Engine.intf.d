lib/core/engine.mli: Mapping Problem
