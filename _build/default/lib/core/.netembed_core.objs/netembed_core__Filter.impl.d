lib/core/filter.ml: Array Graph Hashtbl List Netembed_attr Netembed_expr Netembed_graph Problem
