lib/core/filter.mli: Graph Netembed_graph Problem
