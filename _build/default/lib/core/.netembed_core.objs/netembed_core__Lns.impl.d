lib/core/lns.ml: Array Budget Graph Hashtbl List Mapping Netembed_graph Problem
