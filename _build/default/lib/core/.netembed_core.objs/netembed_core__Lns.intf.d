lib/core/lns.mli: Budget Mapping Problem
