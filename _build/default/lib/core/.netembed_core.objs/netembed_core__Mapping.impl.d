lib/core/mapping.ml: Array Format Hashtbl Stdlib
