lib/core/mapping.mli: Format Graph Netembed_graph
