lib/core/optimize.ml: Array Engine Float Graph List Mapping Netembed_attr Netembed_graph Option Problem
