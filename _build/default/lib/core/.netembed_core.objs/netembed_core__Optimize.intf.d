lib/core/optimize.mli: Engine Mapping Problem
