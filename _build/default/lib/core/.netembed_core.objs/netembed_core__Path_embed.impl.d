lib/core/path_embed.ml: Engine Float Graph Hashtbl List Mapping Netembed_attr Netembed_graph Option Problem
