lib/core/path_embed.mli: Engine Graph Mapping Netembed_expr Netembed_graph Problem
