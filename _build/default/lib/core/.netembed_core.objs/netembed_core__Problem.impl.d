lib/core/problem.ml: Array Graph List Netembed_attr Netembed_expr Netembed_graph
