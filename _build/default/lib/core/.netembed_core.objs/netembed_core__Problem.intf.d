lib/core/problem.mli: Graph Netembed_expr Netembed_graph
