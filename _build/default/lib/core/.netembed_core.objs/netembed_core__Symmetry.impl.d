lib/core/symmetry.ml: Array Graph Hashtbl List Mapping Netembed_attr Netembed_graph
