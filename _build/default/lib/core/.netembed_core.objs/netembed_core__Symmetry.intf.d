lib/core/symmetry.mli: Graph Mapping Netembed_graph
