lib/core/verify.ml: Array Format Graph List Mapping Netembed_graph Problem Result
