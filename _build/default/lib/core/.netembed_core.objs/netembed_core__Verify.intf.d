lib/core/verify.mli: Format Mapping Problem
