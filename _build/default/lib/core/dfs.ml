open Netembed_graph
module Rng = Netembed_rng.Rng

type candidate_order =
  | Ascending
  | Random of Rng.t

exception Stop_search

let search ?root_candidates (p : Problem.t) (f : Filter.t) ~candidate_order ~budget ~on_solution =
  let nq = Graph.node_count p.query in
  let nr = Graph.node_count p.host in
  let order = Filter.order f in
  let assignment = Array.make (max 1 nq) (-1) in
  let used = Array.make (max 1 nr) false in
  (* Position of each query node in the search order, to find which
     neighbours are already assigned at a given depth. *)
  let position = Array.make (max 1 nq) 0 in
  Array.iteri (fun pos q -> position.(q) <- pos) order;
  (* Per-depth list of (already-assigned neighbour) query nodes. *)
  let assigned_neighbours =
    Array.init nq (fun depth ->
        let q = order.(depth) in
        List.filter_map
          (fun (w, _) -> if position.(w) < depth then Some w else None)
          (Problem.query_neighbours p q)
        |> List.sort_uniq compare)
  in
  (* Candidate set for the node at [depth]: intersect filter cells of
     assigned neighbours (smallest first), or node-level candidates when
     none is assigned yet.  [used] is filtered during enumeration. *)
  let candidates depth =
    let q = order.(depth) in
    match assigned_neighbours.(depth) with
    | [] -> (
        match root_candidates with
        | Some roots when depth = 0 -> roots
        | Some _ | None -> Filter.node_candidates f q)
    | nbrs ->
        let cells =
          List.map
            (fun w -> Filter.candidates_from f ~q_assigned:w ~r_assigned:assignment.(w) ~q_next:q)
            nbrs
        in
        let cells =
          List.sort (fun a b -> compare (Array.length a) (Array.length b)) cells
        in
        (match cells with
        | [] -> [||]
        | first :: rest ->
            (* Intersect progressively; bail out on empty. *)
            let acc = ref first in
            (try
               List.iter
                 (fun c ->
                   if Array.length !acc = 0 then raise Exit;
                   let out = Array.make (min (Array.length !acc) (Array.length c)) 0 in
                   let i = ref 0 and j = ref 0 and k = ref 0 in
                   let la = Array.length !acc and lb = Array.length c in
                   while !i < la && !j < lb do
                     let x = !acc.(!i) and y = c.(!j) in
                     if x = y then begin
                       out.(!k) <- x;
                       incr k;
                       incr i;
                       incr j
                     end
                     else if x < y then incr i
                     else incr j
                   done;
                   acc := Array.sub out 0 !k)
                 rest
             with Exit -> ());
            !acc)
  in
  let rec go depth =
    Budget.tick budget;
    if depth = nq then begin
      match on_solution (Mapping.of_array (Array.copy assignment)) with
      | `Continue -> ()
      | `Stop -> raise Stop_search
    end
    else begin
      let q = order.(depth) in
      let cands = candidates depth in
      (* No unwind protection: on abort (stop / budget) the whole search
         state is discarded, so it need not be restored. *)
      let try_candidate r =
        if not used.(r) then begin
          assignment.(q) <- r;
          used.(r) <- true;
          go (depth + 1);
          used.(r) <- false;
          assignment.(q) <- -1
        end
      in
      match candidate_order with
      | Ascending -> Array.iter try_candidate cands
      | Random rng ->
          let shuffled = Array.copy cands in
          Rng.shuffle_in_place rng shuffled;
          Array.iter try_candidate shuffled
    end
  in
  if nq = 0 then ignore (on_solution (Mapping.of_array [||]))
  else match go 0 with () -> () | exception Stop_search -> ()
