(** The shared depth-first search over the permutations tree used by
    both ECF and RWB (paper, sections V-A and V-B).

    Query nodes are examined in the Lemma-1 order of the filter matrix.
    The candidate set of the node at each depth is the intersection of
    the filter cells of its already-assigned query neighbours
    (expression (2)), within its node-level candidates (expression (1))
    and minus already-used host nodes.  ECF enumerates candidates in
    ascending order (deterministic, exhaustive); RWB enumerates them in
    uniformly random order — "by virtue of the randomness with which
    candidate mappings are selected, and the backtracking-nature of the
    search" — and is normally run in first-match mode. *)

type candidate_order =
  | Ascending
  | Random of Netembed_rng.Rng.t

val search :
  ?root_candidates:int array ->
  Problem.t ->
  Filter.t ->
  candidate_order:candidate_order ->
  budget:Budget.t ->
  on_solution:(Mapping.t -> [ `Continue | `Stop ]) ->
  unit
(** Runs to exhaustion of the (pruned) permutations tree, calling
    [on_solution] on every feasible mapping found; stops early if the
    callback answers [`Stop].

    [root_candidates] restricts the candidate set of the {e first} node
    in the search order (it must be a sorted subset of that node's
    candidates) — the root-partitioning hook of the parallel searcher.
    @raise Budget.Exhausted when the budget runs out. *)
