(** Lazy Neighborhood Search (paper, section V-C).

    LNS avoids the O(n·|EQ|·|ER|) space of the filter matrices by
    growing a connected partial match and checking constraints lazily.
    Three sets are maintained: [Covered] (matched query nodes),
    [Neighbors] (query nodes adjacent to a covered node) and [External]
    (the rest).  Heuristics (paper):
    + the seed is a maximum-degree query node, so the covered set grows
      into a highly connected region quickly;
    + the next node examined is the neighbour with the most links into
      the covered set, forcing "the largest possible conjunction of
      constraints" and pruning invalid paths early.

    Candidates for the chosen neighbour are enumerated from the
    host-side adjacency of its mapped covered neighbours only (no
    precomputed state), and every connecting edge is verified before the
    node enters the covered set, so covered sets are always valid
    partial matches (the "promising mappings" of the appendix proof).

    Extension over the paper: disconnected queries are handled by
    reseeding from [External] when [Neighbors] empties before the query
    is exhausted. *)

val search :
  Problem.t ->
  budget:Budget.t ->
  on_solution:(Mapping.t -> [ `Continue | `Stop ]) ->
  unit
(** @raise Budget.Exhausted when the budget runs out. *)
