type t = int array

let of_array a = a

let apply m q =
  if q < 0 || q >= Array.length m then invalid_arg "Mapping.apply: out of range";
  m.(q)

let size = Array.length
let to_array = Array.copy
let to_list m = Array.to_list (Array.mapi (fun q r -> (q, r)) m)

let is_injective m =
  let seen = Hashtbl.create (Array.length m) in
  Array.for_all
    (fun r ->
      if Hashtbl.mem seen r then false
      else begin
        Hashtbl.replace seen r ();
        true
      end)
    m

let equal = ( = )
let compare = Stdlib.compare

let pp ppf m =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (q, r) -> Format.fprintf ppf "%d->%d" q r))
    (to_list m)
