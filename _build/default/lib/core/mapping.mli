(** A mapping (embedding): the one-to-one function [m : Q -> R] of the
    paper, represented densely as an array indexed by query node. *)

open Netembed_graph

type t

val of_array : Graph.node array -> t
(** Takes ownership of the array (no copy); element [i] is the host
    node assigned to query node [i]. *)

val apply : t -> Graph.node -> Graph.node
(** [apply m q] is [m(q)].  @raise Invalid_argument out of range. *)

val size : t -> int
val to_array : t -> Graph.node array
(** Fresh copy. *)

val to_list : t -> (Graph.node * Graph.node) list
(** [(q, m q)] pairs in query-node order. *)

val is_injective : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
