open Netembed_graph
module Attrs = Netembed_attr.Attrs

type cost = Problem.t -> Mapping.t -> float

let best_of p ~cost mappings =
  List.fold_left
    (fun best m ->
      let c = cost p m in
      match best with
      | Some (_, bc) when bc <= c -> best
      | _ -> Some (m, c))
    None mappings
  |> Option.map fst

let rank p ~cost mappings =
  List.map (fun m -> (m, cost p m)) mappings
  |> List.stable_sort (fun (_, a) (_, b) -> Float.compare a b)

let find_best ?options algorithm p ~cost =
  let options =
    match options with
    | Some o -> o
    | None -> { Engine.default_options with Engine.mode = Engine.All }
  in
  let result = Engine.run ~options algorithm p in
  match rank p ~cost result.Engine.mappings with
  | [] -> None
  | best :: _ -> Some best

(* For each query edge, the attribute of the cheapest satisfying host
   edge between the mapped endpoints (several parallel host edges may
   qualify; take the best). *)
let fold_mapped_edges p m f init =
  Graph.fold_edges
    (fun qe q_src q_dst acc ->
      let r_src = Mapping.apply m q_src and r_dst = Mapping.apply m q_dst in
      let candidates =
        List.filter
          (fun he -> Problem.edge_pair_ok p ~qe ~q_src ~q_dst ~he ~r_src ~r_dst)
          (Graph.edges_between p.Problem.host r_src r_dst)
      in
      f acc candidates)
    p.Problem.query init

let edge_delay p he =
  Option.value ~default:0.0 (Attrs.float "avgDelay" (Graph.edge_attrs p.Problem.host he))

let total_avg_delay p m =
  fold_mapped_edges p m
    (fun acc candidates ->
      match candidates with
      | [] -> acc
      | hes -> acc +. List.fold_left (fun best he -> Float.min best (edge_delay p he)) infinity hes)
    0.0

let max_avg_delay p m =
  fold_mapped_edges p m
    (fun acc candidates ->
      match candidates with
      | [] -> acc
      | hes ->
          Float.max acc
            (List.fold_left (fun best he -> Float.min best (edge_delay p he)) infinity hes))
    0.0

let total_host_degree p m =
  List.fold_left
    (fun acc (_, r) -> acc +. float_of_int p.Problem.host_degree.(r))
    0.0 (Mapping.to_list m)

let node_attr_sum name p m =
  List.fold_left
    (fun acc (_, r) ->
      acc
      +. Option.value ~default:0.0 (Attrs.float name (Graph.node_attrs p.Problem.host r)))
    0.0 (Mapping.to_list m)
