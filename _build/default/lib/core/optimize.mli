(** Optimization over feasible embeddings.

    NETEMBED deliberately separates feasibility from optimality (paper,
    section III): "the solution to a constraint satisfaction problem may
    yield multiple feasible embeddings, in which case the embedding of
    choice would be the one that minimizes a specific cost metric".
    This module is that second stage — and one of the paper's stated
    follow-ups ("What assignment of resources minimizes some cost metric
    or objective function?").

    Costs are plain functions of a mapping, so applications bring their
    own objective; stock metrics cover the common cases. *)

type cost = Problem.t -> Mapping.t -> float

val best_of : Problem.t -> cost:cost -> Mapping.t list -> Mapping.t option
(** Minimum-cost mapping (ties: first in list order). *)

val rank : Problem.t -> cost:cost -> Mapping.t list -> (Mapping.t * float) list
(** All mappings with their costs, ascending. *)

val find_best :
  ?options:Engine.options -> Engine.algorithm -> Problem.t -> cost:cost ->
  (Mapping.t * float) option
(** Enumerate embeddings with the engine (mode forced to [All] unless
    the given options say otherwise) and return the cheapest found
    within the budget — the "explore a representative subset ... in
    order to optimize resource allocation over that subset" usage from
    section V-B. *)

(** {1 Stock cost metrics} *)

val total_avg_delay : cost
(** Sum of the mapped host links' ["avgDelay"] over all query links
    (missing attributes count 0): prefer low-latency embeddings. *)

val max_avg_delay : cost
(** Bottleneck latency. *)

val total_host_degree : cost
(** Sum of host degrees of the used nodes — a scarcity proxy: smaller
    means the embedding consumes less-connected (less precious) nodes,
    the [assign]-style "preserve future capacity" objective. *)

val node_attr_sum : string -> cost
(** [node_attr_sum "load"] sums a numeric node attribute over the used
    hosts (missing values count 0). *)
