open Netembed_graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value

type closure = {
  augmented : Graph.t;
  (* closure edge id -> underlying host node path *)
  paths : (Graph.edge, Graph.node list) Hashtbl.t;
}

let combine_path_attrs base attrs_list =
  (* Delays add along the path; bandwidth is the bottleneck. *)
  let sum name =
    List.fold_left
      (fun acc a -> match Attrs.float name a with Some v -> acc +. v | None -> acc)
      0.0 attrs_list
  in
  let bottleneck name =
    List.fold_left
      (fun acc a ->
        match Attrs.float name a with Some v -> Float.min acc v | None -> acc)
      infinity attrs_list
  in
  let base = Attrs.add "minDelay" (Value.Float (sum "minDelay")) base in
  let base = Attrs.add "avgDelay" (Value.Float (sum "avgDelay")) base in
  let base = Attrs.add "maxDelay" (Value.Float (sum "maxDelay")) base in
  let bw = bottleneck "bandwidth" in
  if Float.is_finite bw then Attrs.add "bandwidth" (Value.Float bw) base else base

let closure ?(max_hops = 2) host =
  if max_hops < 1 then invalid_arg "Path_embed.closure: max_hops < 1";
  let n = Graph.node_count host in
  (* Best (min total avgDelay) path of <= max_hops edges between every
     pair: bounded BFS/DFS from each source over edge sequences. *)
  let augmented = Graph.create ~kind:(Graph.kind host) ~name:(Graph.name host ^ "+paths") () in
  Graph.iter_nodes (fun v -> ignore (Graph.add_node augmented (Graph.node_attrs host v))) host;
  let paths = Hashtbl.create (4 * Graph.edge_count host) in
  let best : (int, float * Graph.node list * Attrs.t list) Hashtbl.t = Hashtbl.create 64 in
  for src = 0 to n - 1 do
    Hashtbl.reset best;
    (* DFS up to max_hops, tracking the delay-cheapest simple path. *)
    let rec explore node hops cost rev_path rev_attrs =
      if hops < max_hops then
        List.iter
          (fun (next, e) ->
            if not (List.mem next rev_path) then begin
              let attrs = Graph.edge_attrs host e in
              let delay = Option.value ~default:0.0 (Attrs.float "avgDelay" attrs) in
              let cost = cost +. delay in
              let rev_path' = next :: rev_path in
              let rev_attrs' = attrs :: rev_attrs in
              let better =
                match Hashtbl.find_opt best next with
                | Some (prior, _, _) -> cost < prior
                | None -> true
              in
              if better && next <> src then
                Hashtbl.replace best next (cost, List.rev rev_path', List.rev rev_attrs');
              explore next (hops + 1) cost rev_path' rev_attrs'
            end)
          (Graph.succ host node)
    in
    explore src 0 0.0 [ src ] [];
    Hashtbl.iter
      (fun dst (_, path, attrs_list) ->
        (* For undirected graphs, add each pair once. *)
        let skip = Graph.kind host = Graph.Undirected && dst < src in
        if not skip then begin
          let e = Graph.add_edge augmented src dst (combine_path_attrs Attrs.empty attrs_list) in
          Hashtbl.replace paths e path
        end)
      best
  done;
  { augmented; paths }

let host t = t.augmented

let path_of_edge t e =
  match Hashtbl.find_opt t.paths e with
  | Some p -> p
  | None -> invalid_arg "Path_embed.path_of_edge: unknown edge"

let decode t (p : Problem.t) m =
  Graph.fold_edges
    (fun qe q_src q_dst acc ->
      let r_src = Mapping.apply m q_src and r_dst = Mapping.apply m q_dst in
      let he =
        List.find_opt
          (fun he -> Problem.edge_pair_ok p ~qe ~q_src ~q_dst ~he ~r_src ~r_dst)
          (Graph.edges_between t.augmented r_src r_dst)
      in
      match he with
      | None -> acc (* cannot happen for a verified mapping *)
      | Some he ->
          let path = path_of_edge t he in
          (* Orient the decoded path from r_src to r_dst. *)
          let path =
            match path with
            | first :: _ when first = r_src -> path
            | _ -> List.rev path
          in
          (qe, path) :: acc)
    p.Problem.query []
  |> List.rev

let embed_with_paths ?max_hops ?options algorithm ~host:h ~query edge_constraint =
  let t = closure ?max_hops h in
  let p = Problem.make ~host:t.augmented ~query edge_constraint in
  let options =
    Option.value ~default:{ Engine.default_options with Engine.mode = Engine.First }
      options
  in
  match (Engine.run ~options algorithm p).Engine.mappings with
  | [] -> None
  | m :: _ -> Some (m, decode t p m)
