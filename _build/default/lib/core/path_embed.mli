(** Link-to-path embedding — the paper's first follow-up: "allow
    many-to-one mappings between virtual and real nodes (e.g., by
    mapping a link in the query network to a path in the real
    network)".

    Realized as a reduction to the standard one-to-one problem: the
    hosting network is augmented with {e path edges} — one synthetic
    edge per host pair connected by a path of at most [max_hops] links,
    carrying aggregated attributes (delays add up along a path,
    bandwidth is the bottleneck minimum).  Standard NETEMBED search over
    the augmented host then implicitly maps query links onto host
    paths; {!decode} translates a mapping's links back into the
    underlying path of real links.

    The reduction is sound and complete for constraints over the
    aggregated attributes: an embedding into the closure exists iff a
    link-to-path embedding with stretch <= [max_hops] exists. *)

open Netembed_graph

type closure

val closure : ?max_hops:int -> Graph.t -> closure
(** Build the [max_hops]-closure (default 2).  Aggregation per path:
    ["minDelay"], ["avgDelay"], ["maxDelay"] sum; ["bandwidth"] takes
    the minimum.  For each connected pair within the hop bound, the
    minimum-[avgDelay] path is retained.  Existing direct edges are
    kept as 1-hop paths.  O(|V|·b^h) construction; intended for sparse
    router-level hosts (BRITE, transit-stub), not dense overlays.

    @raise Invalid_argument if [max_hops < 1]. *)

val host : closure -> Graph.t
(** The augmented hosting network to run the ordinary engine against. *)

val path_of_edge : closure -> Graph.edge -> Graph.node list
(** Underlying host node sequence (length >= 2) of a closure edge. *)

val decode :
  closure -> Problem.t -> Mapping.t ->
  (Graph.edge * Graph.node list) list
(** For every query edge (in id order): the mapped host path.  The
    problem must have been built against {!host}. *)

val embed_with_paths :
  ?max_hops:int ->
  ?options:Engine.options ->
  Engine.algorithm ->
  host:Graph.t ->
  query:Graph.t ->
  Netembed_expr.Ast.t ->
  (Mapping.t * (Graph.edge * Graph.node list) list) option
(** One-call convenience: build the closure, embed, decode. *)
