open Netembed_graph
module Attrs = Netembed_attr.Attrs

type t = { n : int; elements : int array list }

exception Too_many

(* An automorphism must preserve node attributes exactly and carry each
   edge onto an edge with equal attributes.  For undirected graphs the
   image edge may be stored in either orientation; for directed graphs
   the direction must be preserved. *)
let edge_compatible g u' v' attrs =
  List.exists (fun e -> Attrs.equal attrs (Graph.edge_attrs g e)) (Graph.edges_between g u' v')

let automorphisms ?(limit = 10_000) g =
  let n = Graph.node_count g in
  let sigma = Array.make (max 1 n) (-1) in
  let used = Array.make (max 1 n) false in
  let found = ref [] in
  let count = ref 0 in
  (* Order nodes by (attrs, degree) buckets implicitly via candidate
     checks; plain 0..n-1 order is fine at these sizes. *)
  let degree = Array.init n (Graph.degree g) in
  let in_degree = Array.init n (Graph.in_degree g) in
  let node_compatible q r =
    degree.(q) = degree.(r)
    && in_degree.(q) = in_degree.(r)
    && Attrs.equal (Graph.node_attrs g q) (Graph.node_attrs g r)
  in
  let consistent q r =
    (* Check edges between q and already-mapped nodes. *)
    List.for_all
      (fun (w, e) ->
        sigma.(w) < 0
        ||
        let src, _ = Graph.endpoints g e in
        let u', v' = if src = q then (r, sigma.(w)) else (sigma.(w), r) in
        edge_compatible g u' v' (Graph.edge_attrs g e))
      (Graph.succ g q)
    && List.for_all
         (fun (w, e) ->
           sigma.(w) < 0
           ||
           let src, _ = Graph.endpoints g e in
           let u', v' = if src = q then (r, sigma.(w)) else (sigma.(w), r) in
           edge_compatible g u' v' (Graph.edge_attrs g e))
         (Graph.pred g q)
  in
  let rec go q =
    if q = n then begin
      incr count;
      if !count > limit then raise Too_many;
      found := Array.copy sigma :: !found
    end
    else
      for r = 0 to n - 1 do
        if (not used.(r)) && node_compatible q r && consistent q r then begin
          sigma.(q) <- r;
          used.(r) <- true;
          go (q + 1);
          used.(r) <- false;
          sigma.(q) <- -1
        end
      done
  in
  match go 0 with
  | () -> Some { n; elements = List.rev !found }
  | exception Too_many -> None

let size t = List.length t.elements
let is_trivial t = size t <= 1

let compose m sigma =
  (* (m ∘ σ)(q) = m(σ(q)) *)
  Array.init (Array.length sigma) (fun q -> Mapping.apply m sigma.(q))

let canonical t m =
  if t.n = 0 then m
  else begin
    let best = ref (Mapping.to_array m) in
    List.iter
      (fun sigma ->
        let candidate = compose m sigma in
        if candidate < !best then best := candidate)
      t.elements;
    Mapping.of_array !best
  end

let dedupe t mappings =
  let seen = Hashtbl.create (List.length mappings) in
  List.filter_map
    (fun m ->
      let c = canonical t m in
      let key = Mapping.to_array c in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.replace seen key ();
        Some c
      end)
    mappings

let orbit_count t mappings = List.length (dedupe t mappings)
