(** Query-network symmetry: compact representation of equivalent
    embeddings.

    The paper credits Considine & Byers [16] with "us[ing] automorphism
    to represent multiple equivalent mappings efficiently using a
    single mapping", and notes that regular query topologies are the
    worst case precisely because "any permutation of a partial match is
    also a partial match".  This module provides that compaction as a
    post-processing stage: if [σ] is an attribute-preserving
    automorphism of the query network, then [m ∘ σ] is feasible exactly
    when [m] is, so the feasible set partitions into orbits and only
    one representative per orbit is informative.

    Soundness requires σ to preserve everything the constraint can
    observe: node attribute tables must be equal and every query edge
    must map to a query edge with an equal attribute table (orientation
    respected for directed queries, either orientation allowed for
    undirected ones). *)

open Netembed_graph

type t
(** A computed automorphism group (as an explicit element list). *)

val automorphisms : ?limit:int -> Graph.t -> t option
(** All attribute-preserving automorphisms of the graph, by
    backtracking search.  [None] if the group exceeds [limit] elements
    (default 10,000 — a clique of 8 already has 40,320), in which case
    callers should skip deduplication rather than pay the blow-up. *)

val size : t -> int
(** Group order (>= 1: the identity is always present). *)

val is_trivial : t -> bool

val canonical : t -> Mapping.t -> Mapping.t
(** The lexicographically smallest element of the mapping's orbit
    [{ m ∘ σ }]; equal for two mappings iff they are equivalent. *)

val dedupe : t -> Mapping.t list -> Mapping.t list
(** Orbit representatives (canonical forms), in first-seen order.
    [List.length (dedupe g ms) * size g >= List.length ms] with
    equality when [ms] is a union of full orbits, e.g. the complete
    feasible set of an engine run. *)

val orbit_count : t -> Mapping.t list -> int
(** [List.length (dedupe g ms)] without building the list. *)
