open Netembed_graph

type violation =
  | Wrong_size of { expected : int; got : int }
  | Out_of_range of { q : int; r : int }
  | Not_injective of { q1 : int; q2 : int; r : int }
  | Node_rejected of { q : int; r : int }
  | Edge_unsatisfied of { qe : int; q_src : int; q_dst : int }

exception Bad of violation

let check (p : Problem.t) m =
  let nq = Graph.node_count p.query and nr = Graph.node_count p.host in
  try
    if Mapping.size m <> nq then
      raise (Bad (Wrong_size { expected = nq; got = Mapping.size m }));
    let owner = Array.make (max 1 nr) (-1) in
    for q = 0 to nq - 1 do
      let r = Mapping.apply m q in
      if r < 0 || r >= nr then raise (Bad (Out_of_range { q; r }));
      if owner.(r) >= 0 then raise (Bad (Not_injective { q1 = owner.(r); q2 = q; r }));
      owner.(r) <- q;
      if not (Problem.node_ok p ~q ~r) then raise (Bad (Node_rejected { q; r }))
    done;
    Graph.iter_edges
      (fun qe q_src q_dst ->
        let r_src = Mapping.apply m q_src and r_dst = Mapping.apply m q_dst in
        let satisfied =
          List.exists
            (fun he -> Problem.edge_pair_ok p ~qe ~q_src ~q_dst ~he ~r_src ~r_dst)
            (Graph.edges_between p.host r_src r_dst)
        in
        if not satisfied then raise (Bad (Edge_unsatisfied { qe; q_src; q_dst })))
      p.query;
    Ok ()
  with Bad v -> Error v

let is_valid p m = Result.is_ok (check p m)

let pp_violation ppf = function
  | Wrong_size { expected; got } ->
      Format.fprintf ppf "mapping has %d entries, query has %d nodes" got expected
  | Out_of_range { q; r } -> Format.fprintf ppf "query node %d mapped to bogus host %d" q r
  | Not_injective { q1; q2; r } ->
      Format.fprintf ppf "query nodes %d and %d both mapped to host %d" q1 q2 r
  | Node_rejected { q; r } ->
      Format.fprintf ppf "host %d fails the node filter for query node %d" r q
  | Edge_unsatisfied { qe; q_src; q_dst } ->
      Format.fprintf ppf "query edge %d (%d-%d) has no satisfying host edge" qe q_src q_dst
