(** Independent mapping verification — the correctness oracle.

    [check] revalidates a reported mapping from scratch (injectivity,
    per-node feasibility, existence of a constraint-satisfying host edge
    for every query edge) without using any search machinery, so it can
    be used as an oracle in tests for all algorithms and baselines. *)

type violation =
  | Wrong_size of { expected : int; got : int }
  | Out_of_range of { q : int; r : int }
  | Not_injective of { q1 : int; q2 : int; r : int }
  | Node_rejected of { q : int; r : int }
  | Edge_unsatisfied of { qe : int; q_src : int; q_dst : int }

val check : Problem.t -> Mapping.t -> (unit, violation) result

val is_valid : Problem.t -> Mapping.t -> bool

val pp_violation : Format.formatter -> violation -> unit
