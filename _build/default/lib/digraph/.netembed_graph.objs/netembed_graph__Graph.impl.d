lib/digraph/graph.ml: Array Format Hashtbl List Netembed_attr Option Vec
