lib/digraph/graph.mli: Format Netembed_attr
