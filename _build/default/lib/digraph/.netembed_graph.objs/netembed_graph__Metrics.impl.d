lib/digraph/metrics.ml: Float Format Graph Hashtbl List Option
