lib/digraph/metrics.mli: Format Graph
