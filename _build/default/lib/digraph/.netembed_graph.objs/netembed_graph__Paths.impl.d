lib/digraph/paths.ml: Array Float Graph List Netembed_rng Queue
