lib/digraph/paths.mli: Graph Netembed_rng
