lib/digraph/sample.ml: Array Graph Hashtbl List Netembed_rng
