lib/digraph/sample.mli: Graph Netembed_rng
