lib/digraph/traversal.ml: Array Graph List Queue
