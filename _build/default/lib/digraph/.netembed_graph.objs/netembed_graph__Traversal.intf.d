lib/digraph/traversal.mli: Graph
