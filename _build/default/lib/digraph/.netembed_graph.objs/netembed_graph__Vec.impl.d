lib/digraph/vec.ml: Array
