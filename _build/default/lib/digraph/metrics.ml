type degree_stats = {
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  degree_histogram : (int * int) list;
}

let degree_stats g =
  let n = Graph.node_count g in
  if n = 0 then
    { min_degree = 0; max_degree = 0; mean_degree = 0.0; degree_histogram = [] }
  else begin
    let hist = Hashtbl.create 16 in
    let mn = ref max_int and mx = ref 0 and total = ref 0 in
    Graph.iter_nodes
      (fun v ->
        let d = Graph.degree g v in
        mn := min !mn d;
        mx := max !mx d;
        total := !total + d;
        Hashtbl.replace hist d (1 + Option.value ~default:0 (Hashtbl.find_opt hist d)))
      g;
    let histogram =
      Hashtbl.fold (fun d c acc -> (d, c) :: acc) hist []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    {
      min_degree = !mn;
      max_degree = !mx;
      mean_degree = float_of_int !total /. float_of_int n;
      degree_histogram = histogram;
    }
  end

let clustering_coefficient g =
  let total = ref 0.0 and counted = ref 0 in
  Graph.iter_nodes
    (fun v ->
      let nbrs = List.map fst (Graph.succ g v) in
      let nbrs = List.sort_uniq compare (List.filter (fun w -> w <> v) nbrs) in
      let k = List.length nbrs in
      if k >= 2 then begin
        let links = ref 0 in
        let rec pairs = function
          | [] -> ()
          | a :: rest ->
              List.iter
                (fun b -> if Graph.mem_edge g a b || Graph.mem_edge g b a then incr links)
                rest;
              pairs rest
        in
        pairs nbrs;
        total := !total +. (2.0 *. float_of_int !links /. float_of_int (k * (k - 1)));
        incr counted
      end)
    g;
  if !counted = 0 then 0.0 else !total /. float_of_int !counted

let power_law_exponent g =
  let { degree_histogram; _ } = degree_stats g in
  let points =
    List.filter_map
      (fun (d, c) ->
        if d > 0 && c > 0 then Some (log (float_of_int d), log (float_of_int c))
        else None)
      degree_histogram
  in
  if List.length points < 3 then None
  else begin
    let n = float_of_int (List.length points) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
    let denom = (n *. sxx) -. (sx *. sx) in
    if Float.abs denom < 1e-12 then None else Some (((n *. sxy) -. (sx *. sy)) /. denom)
  end

let pp_degree_stats ppf s =
  Format.fprintf ppf "deg[min=%d max=%d mean=%.2f]" s.min_degree s.max_degree
    s.mean_degree
