(** Structural graph metrics, used to validate the synthetic topologies
    against their models (BRITE power laws, PlanetLab density) and
    reported by the experiment harness. *)

type degree_stats = {
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  degree_histogram : (int * int) list;  (** (degree, #nodes), ascending *)
}

val degree_stats : Graph.t -> degree_stats

val clustering_coefficient : Graph.t -> float
(** Mean local clustering coefficient over nodes of degree >= 2
    (undirected interpretation); 0 when no such node exists. *)

val power_law_exponent : Graph.t -> float option
(** Least-squares slope of log(count) vs log(degree) over the degree
    histogram — a quick check that preferential-attachment topologies
    exhibit a heavy tail.  [None] when fewer than 3 distinct degrees. *)

val pp_degree_stats : Format.formatter -> degree_stats -> unit
