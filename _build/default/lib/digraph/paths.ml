let hops_from g src =
  let n = Graph.node_count g in
  let dist = Array.make n max_int in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun (w, _) ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          Queue.push w q
        end)
      (Graph.succ g v)
  done;
  dist

(* Binary min-heap keyed by float priority, on (priority, node) pairs. *)
module Heap = struct
  type t = { mutable data : (float * int) array; mutable len : int }

  let create () = { data = Array.make 16 (0.0, -1); len = 0 }
  let is_empty h = h.len = 0

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h prio v =
    if h.len = Array.length h.data then begin
      let data = Array.make (2 * h.len) (0.0, -1) in
      Array.blit h.data 0 data 0 h.len;
      h.data <- data
    end;
    h.data.(h.len) <- (prio, v);
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    let top = h.data.(0) in
    h.len <- h.len - 1;
    h.data.(0) <- h.data.(h.len);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
      if r < h.len && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        swap h !i !smallest;
        i := !smallest
      end
      else continue := false
    done;
    top
end

let dijkstra g ~weight src =
  let n = Graph.node_count g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let heap = Heap.create () in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  while not (Heap.is_empty heap) do
    let d, v = Heap.pop heap in
    if d <= dist.(v) then
      List.iter
        (fun (w, e) ->
          let we = weight e in
          if we < 0.0 then invalid_arg "Paths.dijkstra: negative weight";
          let nd = d +. we in
          if nd < dist.(w) then begin
            dist.(w) <- nd;
            parent.(w) <- v;
            Heap.push heap nd w
          end)
        (Graph.succ g v)
  done;
  (dist, parent)

let shortest_path g ~weight src dst =
  let dist, parent = dijkstra g ~weight src in
  if Float.is_finite dist.(dst) then begin
    let rec walk v acc = if v = src then src :: acc else walk parent.(v) (v :: acc) in
    Some (dist.(dst), walk dst [])
  end
  else None

let eccentricity g v =
  let dist = hops_from g v in
  Array.fold_left (fun acc d -> if d <> max_int && d > acc then d else acc) 0 dist

let diameter_approx g ~rng ~samples =
  let n = Graph.node_count g in
  if n < 2 then 0
  else begin
    let best = ref 0 in
    for _ = 1 to samples do
      let start = Netembed_rng.Rng.int rng n in
      let dist = hops_from g start in
      (* Double sweep: re-run from the farthest reachable node. *)
      let far = ref start and far_d = ref 0 in
      Array.iteri
        (fun v d ->
          if d <> max_int && d > !far_d then begin
            far := v;
            far_d := d
          end)
        dist;
      let ecc = eccentricity g !far in
      if ecc > !best then best := ecc
    done;
    !best
  end
