(** Shortest paths over attributed graphs.

    Used by the topology substrate to derive end-to-end overlay delays
    from router-level links (the synthetic PlanetLab trace measures
    site-to-site paths, not physical links) and by the future-work
    link-to-path mapping extension. *)

val hops_from : Graph.t -> Graph.node -> int array
(** BFS hop counts from the source; [max_int] marks unreachable nodes. *)

val dijkstra :
  Graph.t -> weight:(Graph.edge -> float) -> Graph.node -> float array * Graph.node array
(** [dijkstra g ~weight src] is [(dist, parent)]: the shortest-path
    distance from [src] to every node ([infinity] if unreachable) and
    the predecessor on such a path ([-1] for [src] and unreachable
    nodes).  @raise Invalid_argument on negative edge weights. *)

val shortest_path :
  Graph.t -> weight:(Graph.edge -> float) -> Graph.node -> Graph.node ->
  (float * Graph.node list) option
(** Distance and node sequence (inclusive of both endpoints), if a path
    exists. *)

val eccentricity : Graph.t -> Graph.node -> int
(** Maximum finite hop distance from the node. *)

val diameter_approx : Graph.t -> rng:Netembed_rng.Rng.t -> samples:int -> int
(** Lower bound on the hop diameter from double-sweep BFS over random
    start nodes.  0 for graphs with < 2 nodes. *)
