module Rng = Netembed_rng.Rng

let random_node rng g =
  let n = Graph.node_count g in
  if n = 0 then invalid_arg "Sample.random_node: empty graph";
  Rng.int rng n

let random_connected_nodes rng g n =
  if n <= 0 then invalid_arg "Sample.random_connected_nodes: n <= 0";
  if n > Graph.node_count g then
    invalid_arg "Sample.random_connected_nodes: n > node count";
  (* Frontier expansion from a random seed; restart if the seed's
     component is too small. *)
  let attempts = 4 * Graph.node_count g in
  let rec try_from attempt =
    if attempt > attempts then
      invalid_arg "Sample.random_connected_nodes: no component of that size";
    let seed = random_node rng g in
    let in_set = Hashtbl.create n in
    Hashtbl.replace in_set seed ();
    let frontier = ref [] in
    let push_neighbours v =
      List.iter
        (fun (w, _) -> if not (Hashtbl.mem in_set w) then frontier := w :: !frontier)
        (Graph.succ g v)
    in
    push_neighbours seed;
    let rec grow count =
      if count = n then true
      else begin
        let cands =
          Array.of_list (List.filter (fun w -> not (Hashtbl.mem in_set w)) !frontier)
        in
        if Array.length cands = 0 then false
        else begin
          let v = Rng.pick rng cands in
          Hashtbl.replace in_set v ();
          frontier := List.filter (fun w -> w <> v) !frontier;
          push_neighbours v;
          grow (count + 1)
        end
      end
    in
    if grow 1 then begin
      let sel = Array.make n (-1) in
      let i = ref 0 in
      Hashtbl.iter
        (fun v () ->
          sel.(!i) <- v;
          incr i)
        in_set;
      Array.sort compare sel;
      sel
    end
    else try_from (attempt + 1)
  in
  try_from 1

let random_induced_subgraph rng g ~n =
  let sel = random_connected_nodes rng g n in
  Graph.induced_subgraph g sel

let random_connected_subgraph rng g ~n ~extra_edges =
  let sel = random_connected_nodes rng g n in
  let induced, orig = Graph.induced_subgraph g sel in
  (* Random spanning tree: BFS over a randomly relabelled frontier.  We
     shuffle adjacency exploration by shuffling node ids via a random
     start and randomized neighbour order. *)
  let n_nodes = Graph.node_count induced in
  let seen = Array.make n_nodes false in
  let tree = ref [] in
  let start = Rng.int rng n_nodes in
  let stack = ref [ start ] in
  seen.(start) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        let nbrs = Array.of_list (Graph.succ induced v) in
        Rng.shuffle_in_place rng nbrs;
        Array.iter
          (fun (w, e) ->
            if not seen.(w) then begin
              seen.(w) <- true;
              tree := e :: !tree;
              stack := w :: !stack
            end)
          nbrs
  done;
  let tree_edges = !tree in
  let in_tree = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace in_tree e ()) tree_edges;
  let other =
    Graph.fold_edges
      (fun e _ _ acc -> if Hashtbl.mem in_tree e then acc else e :: acc)
      induced []
  in
  let other = Array.of_list other in
  Rng.shuffle_in_place rng other;
  let extra = min extra_edges (Array.length other) in
  let keep = Array.append (Array.of_list tree_edges) (Array.sub other 0 extra) in
  (* Rebuild on the induced node set with only the kept edges, then map
     node ids back to the original graph. *)
  let all_nodes = Graph.nodes induced in
  let sub, _ = Graph.spanning_subgraph induced all_nodes keep in
  (sub, orig)
