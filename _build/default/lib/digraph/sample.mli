(** Random sampling over graphs — the query-generation primitives.

    The paper's PlanetLab experiments use "random connected subgraphs
    from the hosting network of size N nodes", with the number of edges
    varied per size (section VII-B). *)

val random_node : Netembed_rng.Rng.t -> Graph.t -> Graph.node
(** @raise Invalid_argument on the empty graph. *)

val random_connected_nodes :
  Netembed_rng.Rng.t -> Graph.t -> int -> Graph.node array
(** [random_connected_nodes rng g n] grows a uniform random connected
    node set of size [n] by frontier expansion from a random seed.
    @raise Invalid_argument if no component of [g] has [n] nodes. *)

val random_connected_subgraph :
  Netembed_rng.Rng.t -> Graph.t -> n:int -> extra_edges:int ->
  Graph.t * Graph.node array
(** Sample [n] connected nodes; keep a random spanning tree of the
    induced subgraph plus [extra_edges] additional induced edges chosen
    uniformly (clamped to availability).  Returns the subgraph and the
    original node id of every subgraph node.  The result is connected by
    construction and is a subgraph of [g], so an embedding of it into
    [g] always exists. *)

val random_induced_subgraph :
  Netembed_rng.Rng.t -> Graph.t -> n:int -> Graph.t * Graph.node array
(** Induced variant: keeps every edge between the sampled nodes. *)
