let neighbours_undirected g v =
  match Graph.kind g with
  | Graph.Undirected -> Graph.succ g v
  | Graph.Directed -> Graph.succ g v @ Graph.pred g v

let bfs_order g start =
  let n = Graph.node_count g in
  let seen = Array.make n false in
  let order = Queue.create () in
  let out = ref [] in
  seen.(start) <- true;
  Queue.push start order;
  while not (Queue.is_empty order) do
    let v = Queue.pop order in
    out := v :: !out;
    List.iter
      (fun (w, _) ->
        if not seen.(w) then begin
          seen.(w) <- true;
          Queue.push w order
        end)
      (Graph.succ g v)
  done;
  Array.of_list (List.rev !out)

let dfs_order g start =
  let n = Graph.node_count g in
  let seen = Array.make n false in
  let out = ref [] in
  let rec go v =
    if not seen.(v) then begin
      seen.(v) <- true;
      out := v :: !out;
      List.iter (fun (w, _) -> go w) (Graph.succ g v)
    end
  in
  go start;
  Array.of_list (List.rev !out)

let component_of g start =
  let n = Graph.node_count g in
  let seen = Array.make n false in
  let stack = ref [ start ] in
  let out = ref [] in
  seen.(start) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | v :: rest ->
        stack := rest;
        out := v :: !out;
        List.iter
          (fun (w, _) ->
            if not seen.(w) then begin
              seen.(w) <- true;
              stack := w :: !stack
            end)
          (neighbours_undirected g v)
  done;
  let arr = Array.of_list !out in
  Array.sort compare arr;
  arr

let components g =
  let n = Graph.node_count g in
  let assigned = Array.make n false in
  let comps = ref [] in
  for v = 0 to n - 1 do
    if not assigned.(v) then begin
      let comp = component_of g v in
      Array.iter (fun w -> assigned.(w) <- true) comp;
      comps := comp :: !comps
    end
  done;
  let arr = Array.of_list (List.rev !comps) in
  arr

let is_connected g = Graph.node_count g = 0 || Array.length (components g) = 1

let spanning_tree_edges g start =
  let n = Graph.node_count g in
  let seen = Array.make n false in
  let order = Queue.create () in
  let tree = ref [] in
  seen.(start) <- true;
  Queue.push start order;
  while not (Queue.is_empty order) do
    let v = Queue.pop order in
    List.iter
      (fun (w, e) ->
        if not seen.(w) then begin
          seen.(w) <- true;
          tree := e :: !tree;
          Queue.push w order
        end)
      (Graph.succ g v)
  done;
  List.rev !tree
