(** Graph traversal and connectivity.

    Query generators need connected subgraphs (the paper samples "random
    connected subgraphs from the hosting network"), and LNS reseeds per
    connected component; this module provides the underlying walks. *)

val bfs_order : Graph.t -> Graph.node -> Graph.node array
(** Nodes reachable from the start, in breadth-first order (following
    [succ] edges; for undirected graphs, the whole component). *)

val dfs_order : Graph.t -> Graph.node -> Graph.node array

val component_of : Graph.t -> Graph.node -> Graph.node array
(** Connected component of the node (undirected sense: directed graphs
    are traversed over [succ ∪ pred]). *)

val components : Graph.t -> Graph.node array array
(** Partition of all nodes into connected components (undirected
    sense), ordered by smallest member. *)

val is_connected : Graph.t -> bool
(** True for the empty graph. *)

val spanning_tree_edges : Graph.t -> Graph.node -> Graph.edge list
(** Edges of a BFS spanning tree of the component of the start node. *)
