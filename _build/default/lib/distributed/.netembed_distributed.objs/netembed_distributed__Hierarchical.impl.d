lib/distributed/hierarchical.ml: Array Fun Graph Hashtbl List Netembed_attr Netembed_core Netembed_graph Netembed_rng Option Printf Queue Seq
