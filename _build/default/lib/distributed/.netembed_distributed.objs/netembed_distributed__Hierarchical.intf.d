lib/distributed/hierarchical.mli: Graph Netembed_core Netembed_expr Netembed_graph Netembed_rng
