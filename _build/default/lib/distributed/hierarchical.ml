open Netembed_graph
module Attrs = Netembed_attr.Attrs
module Rng = Netembed_rng.Rng
module Problem = Netembed_core.Problem
module Engine = Netembed_core.Engine
module Mapping = Netembed_core.Mapping
module Verify = Netembed_core.Verify

type region = {
  name : string;
  host : Graph.t;
  to_global : Graph.node array;
}

let region_of_nodes g name nodes =
  let host, to_global = Graph.induced_subgraph g nodes in
  { name; host; to_global }

let partition_by_attr g attr =
  let buckets : (string, Graph.node list) Hashtbl.t = Hashtbl.create 8 in
  Graph.iter_nodes
    (fun v ->
      let key =
        Option.value ~default:"<none>" (Attrs.string attr (Graph.node_attrs g v))
      in
      Hashtbl.replace buckets key
        (v :: Option.value ~default:[] (Hashtbl.find_opt buckets key)))
    g;
  Hashtbl.fold
    (fun name nodes acc ->
      region_of_nodes g name (Array.of_list (List.rev nodes)) :: acc)
    buckets []
  |> List.sort (fun a b -> compare a.name b.name)

let partition_balanced rng g ~parts =
  let n = Graph.node_count g in
  if parts < 1 then invalid_arg "Hierarchical.partition_balanced: parts < 1";
  if n < parts then invalid_arg "Hierarchical.partition_balanced: graph too small";
  let owner = Array.make n (-1) in
  let seeds = Rng.sample_without_replacement rng parts n in
  let queues = Array.map (fun s -> Queue.of_seq (Seq.return s)) seeds in
  Array.iteri (fun i s -> owner.(s) <- i) seeds;
  let remaining = ref (n - parts) in
  (* Round-robin BFS growth: each region claims one frontier node per
     turn, keeping sizes balanced. *)
  while !remaining > 0 do
    let progressed = ref false in
    Array.iteri
      (fun i q ->
        let claimed = ref false in
        while (not !claimed) && not (Queue.is_empty q) do
          let v = Queue.pop q in
          List.iter
            (fun (w, _) ->
              if owner.(w) = -1 && not !claimed then begin
                owner.(w) <- i;
                decr remaining;
                claimed := true;
                progressed := true;
                Queue.push w q
              end)
            (Graph.succ g v);
          (* Re-enqueue v if it may still have free neighbours. *)
          if List.exists (fun (w, _) -> owner.(w) = -1) (Graph.succ g v) then
            Queue.push v q
        done)
      queues;
    if not !progressed then begin
      (* Disconnected leftovers: assign to the smallest region. *)
      let sizes = Array.make parts 0 in
      Array.iter (fun o -> if o >= 0 then sizes.(o) <- sizes.(o) + 1) owner;
      let smallest = ref 0 in
      Array.iteri (fun i s -> if s < sizes.(!smallest) then smallest := i) sizes;
      Array.iteri
        (fun v o ->
          if o = -1 && !remaining > 0 then begin
            owner.(v) <- !smallest;
            decr remaining
          end)
        owner
    end
  done;
  List.init parts (fun i ->
      let nodes =
        Array.of_list
          (List.filter (fun v -> owner.(v) = i) (List.init n Fun.id))
      in
      region_of_nodes g (Printf.sprintf "part%d" i) nodes)

type answer =
  | Local of string * Mapping.t
  | Global of Mapping.t
  | Not_found_anywhere

let translate region m =
  Mapping.of_array (Array.map (fun r -> region.to_global.(r)) (Mapping.to_array m))

let embed_first ?(algorithm = Engine.ECF) ?timeout_per_stage g ~regions ~query
    edge_constraint =
  let try_region region =
    if Graph.node_count region.host < Graph.node_count query then None
    else
      match Problem.make ~host:region.host ~query edge_constraint with
      | exception Invalid_argument _ -> None
      | p -> (
          match Engine.find_first ?timeout:timeout_per_stage algorithm p with
          | Some m -> Some (region, m)
          | None -> None)
  in
  let ordered =
    List.stable_sort
      (fun a b -> compare (Graph.node_count b.host) (Graph.node_count a.host))
      regions
  in
  let rec stage1 = function
    | [] -> None
    | region :: rest -> (
        match try_region region with
        | Some hit -> Some hit
        | None -> stage1 rest)
  in
  match stage1 ordered with
  | Some (region, m) ->
      let global = translate region m in
      (* A regional embedding must also verify against the full view. *)
      let p = Problem.make ~host:g ~query edge_constraint in
      assert (Verify.is_valid p global);
      Local (region.name, global)
  | None -> (
      match Problem.make ~host:g ~query edge_constraint with
      | exception Invalid_argument _ -> Not_found_anywhere
      | p -> (
          match Engine.find_first ?timeout:timeout_per_stage algorithm p with
          | Some m -> Global m
          | None -> Not_found_anywhere))
