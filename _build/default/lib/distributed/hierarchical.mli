(** Hierarchical (decentralized) embedding.

    The paper closes with: "for truly large-scale networks, a complete
    view of the network may not be available to a single domain (or
    authority).  Thus, it is desirable ... for services such as
    NETEMBED to be implemented in a distributed fashion ...  We are
    currently looking into a hierarchical approach to a decentralized
    implementation."

    This module realizes the two-level shape of that approach on a
    single machine: the hosting network is split into {e regions} (each
    standing for an authority that only knows its own slice); a query
    is first offered to every region in parallel — a regional answer
    uses only that region's nodes and links, so it is exactly what the
    regional authority could have computed alone — and only if no
    region can host it does the coordinator fall back to the global
    view.  Locality is also a quality: intra-region embeddings avoid
    inter-domain links.

    Regions may come from an existing node attribute (PlanetLab sites
    carry ["region"]) or from balanced BFS growth over the topology. *)

open Netembed_graph

type region = {
  name : string;
  host : Graph.t;  (** the region's induced subgraph *)
  to_global : Graph.node array;  (** region node id -> global node id *)
}

val partition_by_attr : Graph.t -> string -> region list
(** One region per distinct value of the given node attribute (nodes
    lacking it go to a ["<none>"] region), each the induced subgraph on
    its nodes.  Regions are sorted by name. *)

val partition_balanced :
  Netembed_rng.Rng.t -> Graph.t -> parts:int -> region list
(** [parts] regions of near-equal size grown by parallel BFS from
    random seeds (named "part0".."partN"); every node lands in exactly
    one region.  @raise Invalid_argument if [parts < 1] or the graph is
    smaller than [parts]. *)

type answer =
  | Local of string * Netembed_core.Mapping.t
      (** region name + mapping in {e global} node ids *)
  | Global of Netembed_core.Mapping.t
      (** only the coordinator's full view could host it *)
  | Not_found_anywhere

val embed_first :
  ?algorithm:Netembed_core.Engine.algorithm ->
  ?timeout_per_stage:float ->
  Graph.t ->
  regions:region list ->
  query:Graph.t ->
  Netembed_expr.Ast.t ->
  answer
(** Stage 1: offer the query to every region (largest first, since
    bigger regions are likelier hosts); first regional success wins.
    Stage 2: global fallback.  All returned mappings are in global node
    ids and verified against the global host. *)
