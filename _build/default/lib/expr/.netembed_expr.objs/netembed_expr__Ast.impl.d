lib/expr/ast.ml: Float List Netembed_attr Printf String
