lib/expr/ast.mli: Netembed_attr
