lib/expr/eval.ml: Ast Float List Netembed_attr Printf String
