lib/expr/eval.mli: Ast Netembed_attr
