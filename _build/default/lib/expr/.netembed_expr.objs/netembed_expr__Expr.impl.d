lib/expr/expr.ml: Ast Eval Parser Printf
