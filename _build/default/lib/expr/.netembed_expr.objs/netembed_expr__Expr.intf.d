lib/expr/expr.mli: Ast Eval
