lib/expr/lexer.ml: Buffer List Printf String
