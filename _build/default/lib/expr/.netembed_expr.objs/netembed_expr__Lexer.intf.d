lib/expr/lexer.mli:
