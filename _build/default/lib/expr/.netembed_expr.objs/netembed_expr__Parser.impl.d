lib/expr/parser.ml: Ast Lexer List Printf
