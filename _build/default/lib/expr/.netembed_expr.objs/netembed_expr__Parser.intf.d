lib/expr/parser.mli: Ast
