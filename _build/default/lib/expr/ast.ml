type obj = V_edge | R_edge | V_source | V_target | R_source | R_target

type binop = Or | And | Eq | Neq | Lt | Le | Gt | Ge | Add | Sub | Mul | Div
type unop = Not | Neg

type t =
  | Bool of bool
  | Num of float
  | Str of string
  | Lit of Netembed_attr.Value.t
  | Attr of obj * string
  | Unop of unop * t
  | Binop of binop * t * t
  | Call of string * t list

let obj_name = function
  | V_edge -> "vEdge"
  | R_edge -> "rEdge"
  | V_source -> "vSource"
  | V_target -> "vTarget"
  | R_source -> "rSource"
  | R_target -> "rTarget"

let obj_of_name = function
  | "vEdge" -> Some V_edge
  | "rEdge" -> Some R_edge
  | "vSource" -> Some V_source
  | "vTarget" -> Some V_target
  | "rSource" -> Some R_source
  | "rTarget" -> Some R_target
  | _ -> None

let binop_name = function
  | Or -> "||"
  | And -> "&&"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"

let precedence = function
  | Or -> 1
  | And -> 2
  | Eq | Neq -> 3
  | Lt | Le | Gt | Ge -> 4
  | Add | Sub -> 5
  | Mul | Div -> 6

let rec to_string_prec outer e =
  match e with
  | Bool b -> string_of_bool b
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%g" f
  | Str s -> Printf.sprintf "'%s'" s
  | Lit v -> (
      match v with
      | Netembed_attr.Value.String s -> Printf.sprintf "'%s'" s
      | v -> Netembed_attr.Value.to_string v)
  | Attr (o, name) -> Printf.sprintf "%s.%s" (obj_name o) name
  | Unop (Not, e) -> "!" ^ to_string_prec 7 e
  | Unop (Neg, e) -> "-" ^ to_string_prec 7 e
  | Binop (op, a, b) ->
      let p = precedence op in
      (* Left-associative: right operand printed at p+1. *)
      let s =
        Printf.sprintf "%s %s %s" (to_string_prec p a) (binop_name op)
          (to_string_prec (p + 1) b)
      in
      if p < outer then "(" ^ s ^ ")" else s
  | Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map (to_string_prec 0) args))

let to_string e = to_string_prec 0 e

let rec equal a b =
  match (a, b) with
  | Bool x, Bool y -> x = y
  | Num x, Num y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Lit x, Lit y -> Netembed_attr.Value.equal x y
  | Attr (o1, n1), Attr (o2, n2) -> o1 = o2 && String.equal n1 n2
  | Unop (op1, e1), Unop (op2, e2) -> op1 = op2 && equal e1 e2
  | Binop (op1, a1, b1), Binop (op2, a2, b2) -> op1 = op2 && equal a1 a2 && equal b1 b2
  | Call (f1, args1), Call (f2, args2) ->
      String.equal f1 f2
      && List.length args1 = List.length args2
      && List.for_all2 equal args1 args2
  | (Bool _ | Num _ | Str _ | Lit _ | Attr _ | Unop _ | Binop _ | Call _), _ -> false

let rec fold_attrs f e acc =
  match e with
  | Bool _ | Num _ | Str _ | Lit _ -> acc
  | Attr (o, name) -> f o name acc
  | Unop (_, e) -> fold_attrs f e acc
  | Binop (_, a, b) -> fold_attrs f b (fold_attrs f a acc)
  | Call (_, args) -> List.fold_left (fun acc e -> fold_attrs f e acc) acc args
