(** Abstract syntax of the NETEMBED constraint expression language
    (paper, section VI-B): Java-style boolean expressions over the
    attributes of the virtual/real edge under comparison and its
    endpoints (Table I). *)

type obj =
  | V_edge   (** [vEdge] — the query-network edge *)
  | R_edge   (** [rEdge] — the hosting-network edge *)
  | V_source (** [vSource] — query edge source node *)
  | V_target
  | R_source
  | R_target

type binop =
  | Or | And
  | Eq | Neq | Lt | Le | Gt | Ge
  | Add | Sub | Mul | Div

type unop = Not | Neg

type t =
  | Bool of bool
  | Num of float
  | Str of string
  | Lit of Netembed_attr.Value.t
      (** internal: produced by {!Eval.specialize}, never by the parser *)
  | Attr of obj * string  (** dot access, e.g. [vEdge.avgDelay] *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Call of string * t list
      (** [abs], [sqrt], [min], [max], [floor], [ceil], [isBoundTo] *)

val obj_name : obj -> string
val obj_of_name : string -> obj option

val binop_name : binop -> string
val precedence : binop -> int
(** Higher binds tighter; Java precedence: [||] 1, [&&] 2, [==]/[!=] 3,
    relational 4, additive 5, multiplicative 6. *)

val to_string : t -> string
(** Re-printable concrete syntax (fully parenthesized where needed);
    [parse (to_string e)] yields an AST equal to [e]. *)

val equal : t -> t -> bool

val fold_attrs : (obj -> string -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over every attribute reference; used to report which attributes
    a query's constraint requires of the hosting network. *)
