type t = Ast.t

let parse = Parser.parse_result

let parse_exn src =
  match Parser.parse_result src with
  | Ok e -> e
  | Error m -> invalid_arg ("Expr.parse_exn: " ^ m)

let to_string = Ast.to_string
let accepts = Eval.accepts
let always = Ast.Bool true

let delay_range_within =
  parse_exn "rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay"

let avg_delay_within =
  parse_exn "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"

let delay_tolerance tol =
  let lo = 1.0 -. tol and hi = 1.0 +. tol in
  parse_exn
    (Printf.sprintf
       "vEdge.avgDelay >= %g * rEdge.avgDelay && vEdge.avgDelay <= %g * rEdge.avgDelay"
       lo hi)

let os_bound =
  parse_exn
    "isBoundTo(vSource.osType, rSource.osType) && isBoundTo(vTarget.osType, rTarget.osType)"
