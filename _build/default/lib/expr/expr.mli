(** Facade over the constraint expression language: parse once, evaluate
    per edge pair.  See {!Ast}, {!Parser}, {!Eval} for the pieces. *)

type t = Ast.t

val parse : string -> (t, string) result
val parse_exn : string -> t
(** @raise Invalid_argument with the parse error message. *)

val to_string : t -> string
val accepts : Eval.env -> t -> bool
val always : t
(** The constant-true constraint (an unconstrained query: pure subgraph
    isomorphism, the paper's worst case). *)

(** {1 Stock constraints used throughout the evaluation} *)

val delay_range_within : t
(** ["rEdge.minDelay >= vEdge.minDelay && rEdge.maxDelay <= vEdge.maxDelay"]
    — the paper's PlanetLab experiment constraint ("the real link delay
    range is within the specified query-link delay range"). *)

val avg_delay_within : t
(** ["rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"]
    — the looser variant constraining only the measured average (used by
    the clique and composite experiments, which specify one band). *)

val delay_tolerance : float -> t
(** [delay_tolerance 0.10] is the paper's ±10% example:
    ["vEdge.avgDelay >= 0.90*rEdge.avgDelay && vEdge.avgDelay <= 1.10*rEdge.avgDelay"]. *)

val os_bound : t
(** ["isBoundTo(vSource.osType, rSource.osType) && isBoundTo(vTarget.osType, rTarget.osType)"]. *)
