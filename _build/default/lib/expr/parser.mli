(** Recursive-descent parser for the constraint language (the paper uses
    CUP; the grammar is the Java boolean-expression subset with standard
    precedence). *)

exception Parse_error of { pos : int; message : string }

val parse : string -> Ast.t
(** @raise Parse_error on syntax errors (with source offset).
    @raise Lexer.Lex_error on lexical errors. *)

val parse_result : string -> (Ast.t, string) result
(** Like {!parse} but folding both error kinds into a message. *)
