lib/graphml/graphml.ml: Array Filename Fun Graph Hashtbl List Netembed_attr Netembed_graph Netembed_xml Option Printf
