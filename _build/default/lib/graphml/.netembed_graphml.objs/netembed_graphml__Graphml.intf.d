lib/graphml/graphml.mli: Netembed_graph
