module Xml = Netembed_xml.Xml
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Schema = Netembed_attr.Schema
open Netembed_graph

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type key = { attr_name : string; domain : Schema.domain; ty : [ `Bool | `Int | `Float | `String ] }

let parse_key el =
  let id = match Xml.attr "id" el with Some v -> v | None -> fail "<key> without id" in
  let attr_name = Option.value ~default:id (Xml.attr "attr.name" el) in
  let domain =
    match Xml.attr "for" el with
    | Some "node" -> Schema.Node
    | Some "edge" -> Schema.Edge
    | Some "graph" | Some "all" | None -> Schema.Graph
    | Some other -> fail "unsupported key domain %S" other
  in
  let ty =
    match Xml.attr "attr.type" el with
    | Some "boolean" -> `Bool
    | Some ("int" | "long") -> `Int
    | Some ("float" | "double") -> `Float
    | Some "string" | None -> `String
    | Some other -> fail "unsupported attr.type %S" other
  in
  (id, { attr_name; domain; ty })

let parse_value (k : key) payload =
  try Value.of_string_as k.ty payload
  with Value.Type_error m -> fail "bad <data> for key %s: %s" k.attr_name m

(* Fuse the "_lo"/"_hi" float pairs written by [write] back into ranges. *)
let fuse_ranges attrs =
  Attrs.fold
    (fun name v acc ->
      match v with
      | Value.Float lo when Filename.check_suffix name "_lo" -> (
          let base = Filename.chop_suffix name "_lo" in
          match Attrs.float (base ^ "_hi") acc with
          | Some hi when hi >= lo ->
              acc
              |> Attrs.remove (base ^ "_lo")
              |> Attrs.remove (base ^ "_hi")
              |> Attrs.add base (Value.range lo hi)
          | Some _ | None -> acc)
      | _ -> acc)
    attrs attrs

let data_attrs keys el =
  List.fold_left
    (fun acc data ->
      match Xml.attr "key" data with
      | None -> fail "<data> without key"
      | Some id -> (
          match Hashtbl.find_opt keys id with
          | None -> fail "undeclared key %S" id
          | Some k -> Attrs.add k.attr_name (parse_value k (Xml.text_content data)) acc))
    Attrs.empty
    (Xml.find_children "data" el)
  |> fuse_ranges

let read_root root =
  if Xml.tag root <> "graphml" then fail "root element is <%s>, expected <graphml>" (Xml.tag root);
  let keys = Hashtbl.create 16 in
  List.iter
    (fun el ->
      let id, k = parse_key el in
      Hashtbl.replace keys id k)
    (Xml.find_children "key" root);
  let graph_el =
    match Xml.first_child "graph" root with
    | Some g -> g
    | None -> fail "no <graph> element"
  in
  let kind =
    match Xml.attr "edgedefault" graph_el with
    | Some "directed" -> Graph.Directed
    | Some "undirected" | None -> Graph.Undirected
    | Some other -> fail "unsupported edgedefault %S" other
  in
  let name = Option.value ~default:"" (Xml.attr "id" graph_el) in
  let g = Graph.create ~kind ~name () in
  let node_ids = Hashtbl.create 64 in
  List.iter
    (fun el ->
      let id = match Xml.attr "id" el with Some v -> v | None -> fail "<node> without id" in
      let attrs = data_attrs keys el in
      let attrs =
        if Attrs.mem "id" attrs then attrs else Attrs.add "id" (Value.String id) attrs
      in
      let v = Graph.add_node g attrs in
      if Hashtbl.mem node_ids id then fail "duplicate node id %S" id;
      Hashtbl.replace node_ids id v)
    (Xml.find_children "node" graph_el);
  List.iter
    (fun el ->
      let endpoint which =
        match Xml.attr which el with
        | Some v -> (
            match Hashtbl.find_opt node_ids v with
            | Some n -> n
            | None -> fail "edge endpoint %S is not a node" v)
        | None -> fail "<edge> without %s" which
      in
      let u = endpoint "source" and v = endpoint "target" in
      ignore (Graph.add_edge g u v (data_attrs keys el)))
    (Xml.find_children "edge" graph_el);
  (match Xml.find_children "data" graph_el with
  | [] -> ()
  | _ -> Graph.set_graph_attrs g (data_attrs keys graph_el));
  g

let read_string s =
  match Xml.parse_string s with
  | root -> read_root root
  | exception Xml.Parse_error { line; message } ->
      fail "XML parse error at line %d: %s" line message

let read_file path =
  match Xml.parse_file path with
  | root -> read_root root
  | exception Xml.Parse_error { line; message } ->
      fail "XML parse error in %s at line %d: %s" path line message

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

(* Ranges have no native GraphML type: encode [Range (lo, hi)] under
   attribute "d" as two float keys "d_lo" / "d_hi". *)
let flatten_ranges attrs =
  Attrs.fold
    (fun name v acc ->
      match v with
      | Value.Range (lo, hi) ->
          acc |> Attrs.remove name
          |> Attrs.add (name ^ "_lo") (Value.Float lo)
          |> Attrs.add (name ^ "_hi") (Value.Float hi)
      | _ -> acc)
    attrs attrs

let graphml_type = function
  | Value.Bool _ -> "boolean"
  | Value.Int _ -> "int"
  | Value.Float _ -> "float"
  | Value.String _ -> "string"
  | Value.Range _ -> assert false (* flattened before use *)

let payload = function
  | Value.Bool b -> string_of_bool b
  | Value.Int i -> string_of_int i
  | Value.Float f -> Printf.sprintf "%.17g" f
  | Value.String s -> s
  | Value.Range _ -> assert false

let write_string g =
  (* Collect key declarations per (domain, name) with their type.  A
     GraphML key has exactly one type; if the same attribute name holds
     differently-typed values on different elements, widen the declared
     type (int+float -> float, anything else -> string) so every
     payload stays parseable. *)
  let keys : (string * string, string * string) Hashtbl.t = Hashtbl.create 32 in
  let key_order = ref [] in
  let widen declared fresh =
    if declared = fresh then declared
    else
      match (declared, fresh) with
      | ("int" | "float"), ("int" | "float") -> "float"
      | _ -> "string"
  in
  let declare domain attrs =
    Attrs.iter
      (fun name v ->
        let slot = (domain, name) in
        match Hashtbl.find_opt keys slot with
        | None ->
            let id = Printf.sprintf "k%d" (Hashtbl.length keys) in
            Hashtbl.replace keys slot (id, graphml_type v);
            key_order := slot :: !key_order
        | Some (id, declared) ->
            Hashtbl.replace keys slot (id, widen declared (graphml_type v)))
      attrs
  in
  let node_attrs = Array.init (Graph.node_count g) (fun v -> flatten_ranges (Graph.node_attrs g v)) in
  let edge_attrs = Array.init (Graph.edge_count g) (fun e -> flatten_ranges (Graph.edge_attrs g e)) in
  Array.iter (declare "node") node_attrs;
  Array.iter (declare "edge") edge_attrs;
  let graph_attrs = flatten_ranges (Graph.graph_attrs g) in
  declare "graph" graph_attrs;
  let key_elements =
    List.rev_map
      (fun ((domain, name) as slot) ->
        let id, ty = Hashtbl.find keys slot in
        Xml.Element
          ( "key",
            [ ("id", id); ("for", domain); ("attr.name", name); ("attr.type", ty) ],
            [] ))
      !key_order
  in
  let data_of domain attrs =
    List.map
      (fun (name, v) ->
        let id, _ = Hashtbl.find keys (domain, name) in
        Xml.Element ("data", [ ("key", id) ], [ Xml.Text (payload v) ]))
      (Attrs.to_list attrs)
  in
  let node_id v =
    match Attrs.string "id" (Graph.node_attrs g v) with
    | Some id -> id
    | None -> Printf.sprintf "n%d" v
  in
  let nodes =
    List.init (Graph.node_count g) (fun v ->
        Xml.Element ("node", [ ("id", node_id v) ], data_of "node" node_attrs.(v)))
  in
  let edges =
    List.init (Graph.edge_count g) (fun e ->
        let u, v = Graph.endpoints g e in
        Xml.Element
          ( "edge",
            [ ("id", Printf.sprintf "e%d" e); ("source", node_id u); ("target", node_id v) ],
            data_of "edge" edge_attrs.(e) ))
  in
  let graph_el =
    Xml.Element
      ( "graph",
        [
          ("id", if Graph.name g = "" then "G" else Graph.name g);
          ( "edgedefault",
            match Graph.kind g with
            | Graph.Directed -> "directed"
            | Graph.Undirected -> "undirected" );
        ],
        data_of "graph" graph_attrs @ nodes @ edges )
  in
  let root =
    Xml.Element
      ( "graphml",
        [ ("xmlns", "http://graphml.graphdrawing.org/xmlns") ],
        key_elements @ [ graph_el ] )
  in
  "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n" ^ Xml.to_string root ^ "\n"

let write_file g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (write_string g))
