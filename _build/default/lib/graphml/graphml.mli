(** GraphML import/export — the paper's network representation
    (section VI-A): "we have adopted the GraphML standard as a more
    general way to describe the networks ... the top-level element is
    the graph and its children are the node and edge elements", with
    arbitrary typed attributes declared by [<key>] elements.

    Mapping rules:
    - [<key attr.type>] of [boolean|int|long|float|double|string]
      becomes the corresponding {!Netembed_attr.Value.t}; [long] maps to
      [Int], [double] to [Float].
    - [<data>] payloads of the form ["[lo,hi]"] under string keys whose
      name ends in ["Range"] stay strings; true range values are
      written as two float keys by {!write} using the ["_lo"]/["_hi"]
      suffix convention and re-fused by {!read}.
    - [edgedefault] selects {!Netembed_graph.Graph.kind}.
    - node ids are preserved in a ["id"] node attribute on import and
      re-used on export when present. *)

exception Error of string

val read_string : string -> Netembed_graph.Graph.t
(** @raise Error on malformed GraphML. *)

val read_file : string -> Netembed_graph.Graph.t

val write_string : Netembed_graph.Graph.t -> string
val write_file : Netembed_graph.Graph.t -> string -> unit
