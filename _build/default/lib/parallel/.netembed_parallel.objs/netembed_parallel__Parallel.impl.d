lib/parallel/parallel.ml: Array Atomic Domain List Netembed_core Netembed_rng Unix
