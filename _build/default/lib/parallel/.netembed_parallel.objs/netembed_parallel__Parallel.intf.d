lib/parallel/parallel.mli: Netembed_core
