lib/planetlab/trace.ml: Array Filename Float Fun Graph Netembed_attr Netembed_graph Netembed_rng Option Printf String
