lib/planetlab/trace.mli: Netembed_graph Netembed_rng
