(** Synthetic PlanetLab all-pairs ping trace.

    The paper's hosting network is the PlanetLab all-pairs ping data set
    [21]: 296 sites with min/avg/max inter-site delay; "some of the
    sites might not have been running the daemon or were down", leaving
    28,996 measured edges (66% of the full clique) — "a rich and large
    enough network".  The original trace is long gone, so this module
    generates a statistically equivalent one:

    - 296 sites in geographic clusters (NA 40%, EU 35%, Asia 20%,
      Oceania 5%), a few percent of sites down;
    - per-pair measurement success probability calibrated so the edge
      count lands near 28,996;
    - avg delay drawn from a cluster-pair model (intra-continent
      short, inter-continent long) tuned to the paper's two published
      quantiles: ≈23% of links in \[10,100\] ms (the clique-query
      experiment reports "about 6,700 edges" there) and ≈70% in
      \[25,175\] ms (the composite-query experiment);
    - [minDelay <= avgDelay <= maxDelay] with a long max tail, as ping
      traces show.

    Node attributes: ["name"], ["region"], ["osType"], ["cpuMhz"],
    ["memMB"].  Edge attributes: ["minDelay"], ["avgDelay"],
    ["maxDelay"] (ms). *)

type params = {
  sites : int;  (** total sites, paper: 296 *)
  down_fraction : float;  (** sites that never respond *)
  pair_success : float;  (** measurement probability for a live pair *)
}

val default : params
(** 296 sites, 3% down, pair success tuned for ≈29k edges. *)

val generate : Netembed_rng.Rng.t -> params -> Netembed_graph.Graph.t
(** Undirected; down sites are still present as isolated nodes (they are
    part of the inventory but offer no links), matching the paper's
    count of 296 with a lower active number. *)

val delay_fraction_in : Netembed_graph.Graph.t -> lo:float -> hi:float -> float
(** Fraction of edges whose [avgDelay] lies in [\[lo, hi\]] — the
    calibration check used by tests and EXPERIMENTS.md. *)

(** {1 Trace file I/O}

    A plain-text exchange format, one measured pair per line:
    ["src dst min avg max"], with a ["#sites N"] header and one
    ["site id name region osType cpuMhz memMB"] line per site. *)

val save : Netembed_graph.Graph.t -> string -> unit
val load : string -> Netembed_graph.Graph.t
(** @raise Failure on malformed input. *)
