lib/rng/rng.mli:
