lib/service/model.ml: Graph Hashtbl List Netembed_attr Netembed_graph Netembed_graphml
