lib/service/model.mli: Graph Netembed_attr Netembed_graph
