lib/service/monitor.ml: Array Float Graph Hashtbl List Model Netembed_attr Netembed_expr Netembed_graph Netembed_rng Option
