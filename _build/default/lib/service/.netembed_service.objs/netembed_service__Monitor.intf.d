lib/service/monitor.mli: Model Netembed_expr Netembed_graph Netembed_rng
