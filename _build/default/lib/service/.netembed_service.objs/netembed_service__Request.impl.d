lib/service/request.ml: Fun List Netembed_attr Netembed_core Netembed_expr Netembed_graph Netembed_graphml String
