lib/service/request.mli: Netembed_core Netembed_expr Netembed_graph
