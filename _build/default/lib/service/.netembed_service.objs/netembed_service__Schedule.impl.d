lib/service/schedule.ml: Float Graph List Netembed_attr Netembed_core Netembed_expr Netembed_graph
