lib/service/schedule.mli: Graph Netembed_core Netembed_expr Netembed_graph
