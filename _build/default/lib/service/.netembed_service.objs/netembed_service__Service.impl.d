lib/service/service.ml: List Logs Model Netembed_core Netembed_expr Netembed_graph Printf Request
