lib/service/service.mli: Model Netembed_core Request
