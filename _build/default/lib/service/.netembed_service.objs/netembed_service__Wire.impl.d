lib/service/wire.ml: Buffer List Netembed_core Netembed_graphml Option Printf Request Result Scanf Service String
