lib/service/wire.mli: Netembed_core Request Service
