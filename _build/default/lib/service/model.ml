open Netembed_graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value

type t = {
  graph : Graph.t;
  mutable rev : int;
  reserved_set : (Graph.node, unit) Hashtbl.t;
}

let create g =
  let graph = Graph.copy g in
  (* Every node carries an explicit reservation flag so the standard
     node constraint ["!rSource.reserved"] is total. *)
  Graph.iter_nodes
    (fun v ->
      if not (Attrs.mem "reserved" (Graph.node_attrs graph v)) then
        Graph.set_node_attrs graph v
          (Attrs.add "reserved" (Value.Bool false) (Graph.node_attrs graph v)))
    graph;
  { graph; rev = 0; reserved_set = Hashtbl.create 16 }
let of_graphml_file path = create (Netembed_graphml.Graphml.read_file path)
let snapshot t = t.graph
let revision t = t.rev

let update_edge_attrs t e fresh =
  Graph.set_edge_attrs t.graph e (Attrs.union (Graph.edge_attrs t.graph e) fresh);
  t.rev <- t.rev + 1

let update_node_attrs t v fresh =
  Graph.set_node_attrs t.graph v (Attrs.union (Graph.node_attrs t.graph v) fresh);
  t.rev <- t.rev + 1

exception Conflict of Graph.node

let set_reserved_attr t v flag =
  Graph.set_node_attrs t.graph v
    (Attrs.add "reserved" (Value.Bool flag) (Graph.node_attrs t.graph v))

let reserve t nodes =
  List.iter (fun v -> if Hashtbl.mem t.reserved_set v then raise (Conflict v)) nodes;
  List.iter
    (fun v ->
      Hashtbl.replace t.reserved_set v ();
      set_reserved_attr t v true)
    nodes;
  if nodes <> [] then t.rev <- t.rev + 1

let release t nodes =
  List.iter
    (fun v ->
      if Hashtbl.mem t.reserved_set v then begin
        Hashtbl.remove t.reserved_set v;
        set_reserved_attr t v false
      end)
    nodes;
  if nodes <> [] then t.rev <- t.rev + 1

let reserved t = List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) t.reserved_set [])
let is_reserved t v = Hashtbl.mem t.reserved_set v
