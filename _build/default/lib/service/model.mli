(** The network model: the service-side characterization of the hosting
    infrastructure (paper, section III component 1 — "a model of the
    real network that characterizes the resources available.  Such model
    could be maintained either by a monitoring service, a resource
    manager, or a combination of both").

    The model wraps the hosting graph with revisioned updates (a
    monitoring feed refreshing measured attributes) and reservations (an
    optional resource-reservation layer marking nodes as allocated,
    section III component 3). *)

open Netembed_graph

type t

val create : Graph.t -> t
(** Wrap a hosting network; the graph is copied so later monitor updates
    do not alias the caller's graph. *)

val of_graphml_file : string -> t
(** @raise Netembed_graphml.Graphml.Error on malformed input. *)

val snapshot : t -> Graph.t
(** The current hosting graph including reservation state.  Reserved
    nodes carry the ["reserved"] boolean attribute; embedding queries
    exclude them via the standard node filter used by {!Service}. *)

val revision : t -> int
(** Bumped on every update or reservation change. *)

(** {1 Monitoring updates} *)

val update_edge_attrs : t -> Graph.edge -> Netembed_attr.Attrs.t -> unit
(** Merge fresh measurements into an edge (new values win). *)

val update_node_attrs : t -> Graph.node -> Netembed_attr.Attrs.t -> unit

(** {1 Reservations} *)

exception Conflict of Graph.node

val reserve : t -> Graph.node list -> unit
(** Mark the nodes reserved.  @raise Conflict (naming the first already-
    reserved node) without reserving anything. *)

val release : t -> Graph.node list -> unit
val reserved : t -> Graph.node list
val is_reserved : t -> Graph.node -> bool
