open Netembed_graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Rng = Netembed_rng.Rng

type params = {
  sample_fraction : float;
  drift : float;
  spike_probability : float;
  spike_factor : float;
  flap_probability : float;
}

let default =
  {
    sample_fraction = 0.10;
    drift = 0.05;
    spike_probability = 0.02;
    spike_factor = 3.0;
    flap_probability = 0.005;
  }

type t = {
  params : params;
  rng : Rng.t;
  model : Model.t;
  mutable rounds : int;
  down : (Graph.node, unit) Hashtbl.t;
}

let create ?(params = default) rng model =
  let t = { params; rng; model; rounds = 0; down = Hashtbl.create 8 } in
  (* Stamp initial liveness so the guard is total. *)
  let g = Model.snapshot model in
  Graph.iter_nodes
    (fun v ->
      if not (Attrs.mem "up" (Graph.node_attrs g v)) then
        Model.update_node_attrs model v (Attrs.of_list [ ("up", Value.Bool true) ]))
    g;
  t

let remeasure t e =
  let g = Model.snapshot t.model in
  let attrs = Graph.edge_attrs g e in
  match Attrs.float "avgDelay" attrs with
  | None -> ()
  | Some avg ->
      (* Multiplicative drift bounded away from zero. *)
      let factor = 1.0 +. (t.params.drift *. (Rng.float t.rng 2.0 -. 1.0)) in
      let avg = Float.max 0.1 (avg *. factor) in
      let mn =
        Float.max 0.05 (Float.min avg (Option.value ~default:avg (Attrs.float "minDelay" attrs) *. factor))
      in
      let base_max = Float.max avg (Option.value ~default:avg (Attrs.float "maxDelay" attrs) *. factor) in
      let mx =
        if Rng.float t.rng 1.0 < t.params.spike_probability then
          base_max *. t.params.spike_factor
        else base_max
      in
      Model.update_edge_attrs t.model e
        (Attrs.of_list
           [
             ("minDelay", Value.Float mn);
             ("avgDelay", Value.Float avg);
             ("maxDelay", Value.Float mx);
           ])

let flap t v =
  if Hashtbl.mem t.down v then begin
    Hashtbl.remove t.down v;
    Model.update_node_attrs t.model v (Attrs.of_list [ ("up", Value.Bool true) ])
  end
  else begin
    Hashtbl.replace t.down v ();
    Model.update_node_attrs t.model v (Attrs.of_list [ ("up", Value.Bool false) ])
  end

let tick t =
  t.rounds <- t.rounds + 1;
  let g = Model.snapshot t.model in
  let m = Graph.edge_count g in
  let sample = max 1 (int_of_float (t.params.sample_fraction *. float_of_int m)) in
  if m > 0 then
    Array.iter (remeasure t) (Rng.sample_without_replacement t.rng (min sample m) m);
  Graph.iter_nodes
    (fun v -> if Rng.float t.rng 1.0 < t.params.flap_probability then flap t v)
    g

let ticks t = t.rounds

let down_nodes t =
  List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) t.down [])

let liveness_guard = Netembed_expr.Expr.parse_exn "rSource.up"
