(** Synthetic monitoring feed — the first component of the service
    architecture (paper, Fig. 1): "a model of the real network that
    characterizes the resources available.  Such model could be
    maintained either by a monitoring service, a resource manager, or a
    combination of both."  The paper's evaluation uses the PlanetLab
    all-pairs ping daemon; this module simulates such a daemon against
    a {!Model}: each tick re-measures a sample of links (delays drift
    multiplicatively and occasionally spike), flaps a few nodes up or
    down, and pushes the updates into the model.

    The simulation is deterministic in its RNG, so service tests can
    replay monitoring histories. *)

type params = {
  sample_fraction : float;  (** links re-measured per tick *)
  drift : float;  (** relative delay drift per measurement, e.g. 0.05 *)
  spike_probability : float;  (** chance a measured link spikes *)
  spike_factor : float;  (** multiplicative spike on maxDelay *)
  flap_probability : float;  (** chance a node changes up/down per tick *)
}

val default : params

type t

val create : ?params:params -> Netembed_rng.Rng.t -> Model.t -> t

val tick : t -> unit
(** Run one monitoring round against the model (bumps its revision when
    anything changed). *)

val ticks : t -> int
(** Rounds executed so far. *)

val down_nodes : t -> Netembed_graph.Graph.node list
(** Nodes currently marked down (their ["up"] attribute is false; the
    standard liveness guard ["rSource.up"] excludes them from
    embeddings). *)

val liveness_guard : Netembed_expr.Ast.t
(** The node constraint ["rSource.up"] to conjoin into requests that
    must avoid down nodes. *)
