module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Engine = Netembed_core.Engine

type t = {
  query : Graph.t;
  constraint_text : string;
  node_constraint_text : string option;
  algorithm : Engine.algorithm;
  mode : Engine.mode;
  timeout : float option;
}

let make ?node_constraint ?(algorithm = Engine.ECF) ?(mode = Engine.First) ?timeout
    ~query constraint_text =
  { query; constraint_text; node_constraint_text = node_constraint; algorithm; mode; timeout }

let read_constraint_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && not (String.length line > 0 && line.[0] = '#') then
             lines := line :: !lines
         done
       with End_of_file -> ());
      match List.rev !lines with
      | [] -> "true"
      | lines -> String.concat " && " (List.map (fun l -> "(" ^ l ^ ")") lines))

let of_files ?algorithm ?mode ?timeout ~query_file ~constraint_file () =
  let query = Netembed_graphml.Graphml.read_file query_file in
  make ?algorithm ?mode ?timeout ~query (read_constraint_file constraint_file)

let parse_constraints t =
  match Netembed_expr.Expr.parse t.constraint_text with
  | Error m -> Error ("edge constraint: " ^ m)
  | Ok edge -> (
      match t.node_constraint_text with
      | None -> Ok (edge, None)
      | Some text -> (
          match Netembed_expr.Expr.parse text with
          | Ok node -> Ok (edge, Some node)
          | Error m -> Error ("node constraint: " ^ m)))

let relax t factor =
  let query = Graph.copy t.query in
  Graph.iter_edges
    (fun e _ _ ->
      let attrs = Graph.edge_attrs query e in
      let widen name direction =
        match Attrs.float name attrs with
        | None -> None
        | Some v -> Some (name, Value.Float (v *. (1.0 +. (direction *. factor))))
      in
      let updates = List.filter_map Fun.id [ widen "minDelay" (-1.0); widen "maxDelay" 1.0 ] in
      if updates <> [] then
        Graph.set_edge_attrs query e
          (List.fold_left (fun acc (k, v) -> Attrs.add k v acc) attrs updates))
    t.query;
  { t with query }
