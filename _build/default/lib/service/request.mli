(** Query requests: the user-facing specification of a virtual network
    (paper, section III component 2).

    A request bundles the query topology (a graph, typically parsed from
    GraphML), the constraint expression (supplied {e separately} from
    the topology, "so adjustments can be easily made without modifying
    the virtual network description"), the algorithm choice and the
    answer mode/budget. *)

type t = {
  query : Netembed_graph.Graph.t;
  constraint_text : string;
  node_constraint_text : string option;
  algorithm : Netembed_core.Engine.algorithm;
  mode : Netembed_core.Engine.mode;
  timeout : float option;
}

val make :
  ?node_constraint:string ->
  ?algorithm:Netembed_core.Engine.algorithm ->
  ?mode:Netembed_core.Engine.mode ->
  ?timeout:float ->
  query:Netembed_graph.Graph.t ->
  string ->
  t
(** [make ~query constraint_text]; algorithm defaults to ECF, mode to
    [First], no timeout. *)

val of_files :
  ?algorithm:Netembed_core.Engine.algorithm ->
  ?mode:Netembed_core.Engine.mode ->
  ?timeout:float ->
  query_file:string ->
  constraint_file:string ->
  unit ->
  t
(** Load the query from a GraphML file and the constraint expression
    from a text file (blank lines and [#]-comments ignored, remaining
    lines joined with [&&]). *)

val read_constraint_file : string -> string
(** Read a constraint file: blank lines and [#]-comments dropped, the
    remaining lines conjoined with [&&].  Used by {!of_files} and the
    CLI's [@file] syntax. *)

val parse_constraints : t -> (Netembed_expr.Ast.t * Netembed_expr.Ast.t option, string) result
(** Parse both constraint texts. *)

val relax : t -> float -> t
(** [relax t factor] widens every numeric ["minDelay"]/["maxDelay"]
    range attribute on query links by the factor (e.g. [0.2] widens by
    ±20%) — the negotiation step of the interactive scenario ("begin
    with more stringent constraints and relax them if there is no
    compliant mapping"). *)
