(** Embedding with temporal resource allocation — the paper's
    scheduling follow-up: "when used in a real application, resources
    once assigned would not be available for some amount of time.  In
    such settings, the embedding problem must be tightly integrated with
    the scheduling problem — to find a window of time (or the closest
    window of time) in which some feasible embedding is available"
    (pursued in the snBench sensor-network framework).

    A {!t} tracks time-bounded leases on hosting nodes.  {!earliest}
    scans candidate start times (now plus every lease expiry — between
    expiries the available set is constant, so these are the only
    decision points) and returns the first window in which the query
    embeds on the then-free nodes. *)

open Netembed_graph

type t

val create : Graph.t -> t
(** A scheduler over the hosting network with no leases. *)

type lease = { hosts : Graph.node list; start : float; finish : float }

val leases : t -> lease list
(** Active leases, by start time. *)

val busy_at : t -> float -> Graph.node list
(** Nodes under lease at the given instant. *)

type placement = {
  mapping : Netembed_core.Mapping.t;
  start : float;
  finish : float;
}

val earliest :
  ?algorithm:Netembed_core.Engine.algorithm ->
  ?timeout:float ->
  t ->
  now:float ->
  duration:float ->
  query:Graph.t ->
  Netembed_expr.Ast.t ->
  (placement, string) result
(** Earliest start [>= now] at which the query embeds for [duration]
    seconds using only nodes free for the whole window.  The returned
    placement is {e not} booked; call {!book} to commit it.
    [Error] when no feasible window exists even with every lease
    expired, or on engine errors. *)

val book : t -> placement -> unit
(** Register the placement's hosts as leased for its window. *)

val release_expired : t -> now:float -> int
(** Drop leases that ended before [now]; returns how many. *)
