module Engine = Netembed_core.Engine
module Problem = Netembed_core.Problem
module Mapping = Netembed_core.Mapping
module Expr = Netembed_expr.Expr
module Ast = Netembed_expr.Ast

type t = { model : Model.t }

let create model = { model }
let model t = t.model

type answer = {
  request : Request.t;
  result : Engine.result;
  model_revision : int;
}

let src = Logs.Src.create "netembed.service" ~doc:"NETEMBED mapping service"

module Log = (val Logs.src_log src : Logs.LOG)

(* Reserved hosts are excluded by conjoining the reservation guard to
   the user's node constraint. *)
let reservation_guard = Expr.parse_exn "!rSource.reserved"

let submit t (request : Request.t) =
  match Request.parse_constraints request with
  | Error m -> Error m
  | Ok (edge_constraint, node_constraint) -> (
      let node_constraint =
        match node_constraint with
        | None -> reservation_guard
        | Some c -> Ast.Binop (Ast.And, reservation_guard, c)
      in
      let host = Model.snapshot t.model in
      match
        Problem.make ~node_constraint ~host ~query:request.Request.query edge_constraint
      with
      | exception Invalid_argument m -> Error m
      | problem ->
          let options =
            {
              Engine.default_options with
              Engine.mode = request.Request.mode;
              timeout = request.Request.timeout;
            }
          in
          let result = Engine.run ~options request.Request.algorithm problem in
          Log.debug (fun m ->
              m "query %d nodes via %s: %d mapping(s), %s"
                (Netembed_graph.Graph.node_count request.Request.query)
                (Engine.algorithm_name request.Request.algorithm)
                (List.length result.Engine.mappings)
                (Engine.outcome_name result.Engine.outcome));
          Ok { request; result; model_revision = Model.revision t.model })

let submit_with_relaxation t request ~steps ~factor =
  let rec go request round =
    match submit t request with
    | Error m -> Error m
    | Ok answer ->
        if answer.result.Engine.mappings <> [] || round >= steps then
          Ok (answer, round)
        else go (Request.relax request factor) (round + 1)
  in
  go request 0

let allocate t answer mapping =
  if Model.revision t.model <> answer.model_revision then
    Error "model changed since the answer was computed; re-submit the query"
  else begin
    let hosts = List.map snd (Mapping.to_list mapping) in
    match Model.reserve t.model hosts with
    | () -> Ok ()
    | exception Model.Conflict v -> Error (Printf.sprintf "host node %d already reserved" v)
  end

let release_mapping t mapping =
  Model.release t.model (List.map snd (Mapping.to_list mapping))
