(** Plain-text wire protocol for a standalone NETEMBED service.

    NETEMBED "can be integrated as a service and implemented in a
    distributed fashion"; this module defines the request/response
    framing used by the CLI and by the line-oriented server loop, so a
    deployment can put the engine behind any transport.

    Request frame (text, terminated by a line containing only [.]):
    {v
    EMBED alg=<ECF|RWB|LNS> mode=<first|all|atmost:k> [timeout=<sec>]
    CONSTRAINT <expression>
    [NODECONSTRAINT <expression>]
    GRAPHML
    <graphml document for the query network>
    .
    v}

    Response frame:
    {v
    OK outcome=<complete|partial|inconclusive> count=<n> elapsed=<ms>
    MAPPING q0->r17 q1->r4 ...       (one line per mapping)
    .
    v}
    or [ERR <message>] followed by [.]. *)

val mode_to_string : Netembed_core.Engine.mode -> string
val mode_of_string : string -> (Netembed_core.Engine.mode, string) result
val algorithm_of_string : string -> (Netembed_core.Engine.algorithm, string) result

val encode_request : Request.t -> string
val decode_request : string -> (Request.t, string) result

val encode_answer : Service.answer -> string
val encode_error : string -> string

type decoded_answer = {
  outcome : Netembed_core.Engine.outcome;
  elapsed_ms : float;
  mappings : (int * int) list list;  (** association lists per mapping *)
}

val decode_answer : string -> (decoded_answer, string) result
