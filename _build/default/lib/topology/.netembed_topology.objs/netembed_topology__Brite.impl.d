lib/topology/brite.ml: Float Graph Hashtbl List Netembed_attr Netembed_graph Netembed_rng Printf
