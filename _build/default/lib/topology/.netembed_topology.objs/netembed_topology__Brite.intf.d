lib/topology/brite.mli: Netembed_graph Netembed_rng
