lib/topology/brite_format.ml: Buffer Char Fun Graph Hashtbl List Netembed_attr Netembed_graph Option Printf Seq String
