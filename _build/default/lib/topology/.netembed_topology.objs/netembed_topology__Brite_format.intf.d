lib/topology/brite_format.mli: Netembed_graph
