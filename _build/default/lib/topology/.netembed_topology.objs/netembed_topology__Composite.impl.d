lib/topology/composite.ml: Array Graph Netembed_attr Netembed_graph Printf Regular
