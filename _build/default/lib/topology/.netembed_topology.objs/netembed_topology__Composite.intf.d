lib/topology/composite.mli: Netembed_attr Netembed_graph Regular
