lib/topology/overlay.ml: Array Float Graph Hashtbl Netembed_attr Netembed_graph Netembed_rng Option Printf
