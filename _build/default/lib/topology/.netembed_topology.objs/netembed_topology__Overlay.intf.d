lib/topology/overlay.mli: Graph Netembed_graph Netembed_rng
