lib/topology/regular.ml: Array Float Graph Netembed_attr Netembed_graph Printf
