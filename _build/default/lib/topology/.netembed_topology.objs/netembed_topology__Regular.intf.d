lib/topology/regular.mli: Graph Netembed_attr Netembed_graph
