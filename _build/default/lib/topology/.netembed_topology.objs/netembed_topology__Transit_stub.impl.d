lib/topology/transit_stub.ml: Array Float Graph Netembed_attr Netembed_graph Netembed_rng
