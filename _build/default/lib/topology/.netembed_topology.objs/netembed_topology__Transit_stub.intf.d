lib/topology/transit_stub.mli: Netembed_graph Netembed_rng
