open Netembed_graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let tokens line =
  String.split_on_char ' ' (String.trim line)
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse_int what s =
  match int_of_string_opt s with Some v -> v | None -> fail "bad %s %S" what s

let parse_float what s =
  match float_of_string_opt s with Some v -> v | None -> fail "bad %s %S" what s

(* Extract the first integer appearing in a header line such as
   "Nodes: ( 100 )". *)
let header_count line =
  let digits =
    String.to_seq line
    |> Seq.fold_left
         (fun (acc, in_num) c ->
           if c >= '0' && c <= '9' then
             match acc with
             | cur :: rest when in_num -> (((cur * 10) + Char.code c - 48) :: rest, true)
             | _ -> ((Char.code c - 48) :: acc, true)
           else (acc, false))
         ([], false)
    |> fst |> List.rev
  in
  match digits with [] -> fail "no count in header %S" line | n :: _ -> n

let read_string text =
  let lines = String.split_on_char '\n' text in
  (* Split into sections on the "Nodes:" / "Edges:" headers. *)
  let rec scan lines nodes edges state =
    match lines with
    | [] -> (List.rev nodes, List.rev edges)
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" then scan rest nodes edges state
        else if String.length trimmed >= 6 && String.sub trimmed 0 6 = "Nodes:" then
          scan rest nodes edges (`Nodes (header_count trimmed))
        else if String.length trimmed >= 6 && String.sub trimmed 0 6 = "Edges:" then
          scan rest nodes edges (`Edges (header_count trimmed))
        else begin
          match state with
          | `Preamble -> scan rest nodes edges state
          | `Nodes _ -> scan rest (trimmed :: nodes) edges state
          | `Edges _ -> scan rest nodes (trimmed :: edges) state
        end
  in
  let node_lines, edge_lines = scan lines [] [] `Preamble in
  if node_lines = [] then fail "no Nodes section";
  let g = Graph.create ~name:"brite-import" () in
  (* BRITE node ids may be arbitrary; remap densely. *)
  let id_map = Hashtbl.create (List.length node_lines) in
  List.iter
    (fun line ->
      match tokens line with
      | id :: x :: y :: rest ->
          let node_type =
            match List.rev rest with t :: _ when int_of_string_opt t = None -> Some t | _ -> None
          in
          let attrs =
            Attrs.of_list
              ([
                 ("x", Value.Float (parse_float "x" x));
                 ("y", Value.Float (parse_float "y" y));
               ]
              @ match node_type with Some t -> [ ("nodeType", Value.String t) ] | None -> [])
          in
          let v = Graph.add_node g attrs in
          Hashtbl.replace id_map (parse_int "node id" id) v
      | _ -> fail "malformed node line %S" line)
    node_lines;
  List.iter
    (fun line ->
      match tokens line with
      | _id :: from_ :: to_ :: length :: delay :: bandwidth :: _rest ->
          let resolve what s =
            match Hashtbl.find_opt id_map (parse_int what s) with
            | Some v -> v
            | None -> fail "edge references unknown node %s" s
          in
          let u = resolve "edge source" from_ and v = resolve "edge target" to_ in
          let d = parse_float "delay" delay in
          let attrs =
            Attrs.of_list
              [
                ("length", Value.Float (parse_float "length" length));
                ("minDelay", Value.Float d);
                ("avgDelay", Value.Float d);
                ("maxDelay", Value.Float d);
                ("bandwidth", Value.Float (parse_float "bandwidth" bandwidth));
              ]
          in
          ignore (Graph.add_edge g u v attrs)
      | _ -> fail "malformed edge line %S" line)
    edge_lines;
  g

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> read_string (really_input_string ic (in_channel_length ic)))

let write_string g =
  let buf = Buffer.create 4096 in
  let n = Graph.node_count g and m = Graph.edge_count g in
  Buffer.add_string buf (Printf.sprintf "Topology: ( %d Nodes, %d Edges )\n" n m);
  Buffer.add_string buf "Model ( 1 ): netembed export\n\n";
  Buffer.add_string buf (Printf.sprintf "Nodes: ( %d )\n" n);
  Graph.iter_nodes
    (fun v ->
      let attrs = Graph.node_attrs g v in
      let coord k = Option.value ~default:0.0 (Attrs.float k attrs) in
      Buffer.add_string buf
        (Printf.sprintf "%d %.2f %.2f %d %d -1 %s\n" v (coord "x") (coord "y")
           (Graph.in_degree g v) (Graph.out_degree g v)
           (Option.value ~default:"RT_NODE" (Attrs.string "nodeType" attrs))))
    g;
  Buffer.add_string buf (Printf.sprintf "\nEdges: ( %d )\n" m);
  let direction = match Graph.kind g with Graph.Directed -> "D" | Graph.Undirected -> "U" in
  Graph.iter_edges
    (fun e u v ->
      let attrs = Graph.edge_attrs g e in
      let num k = Option.value ~default:0.0 (Attrs.float k attrs) in
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d %.3f %.3f %.3f -1 -1 E_RT %s\n" e u v (num "length")
           (num "avgDelay") (num "bandwidth") direction))
    g;
  Buffer.contents buf

let write_file g path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (write_string g))
