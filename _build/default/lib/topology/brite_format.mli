(** Reader/writer for BRITE's native topology file format.

    The paper points out that "topology generators like BRITE or GT-ITM
    feature their own, different network description language"
    (section VI-A) — this module speaks BRITE's, so topologies produced
    by the original Java/C++ BRITE tool can be loaded as hosting
    networks, and our synthetic graphs can be fed to tools that consume
    BRITE output.

    Format (as produced by BRITE 2.x):
    {v
    Topology: ( <n> Nodes, <m> Edges )
    Model ( <id> ): <free text>

    Nodes: ( <n> )
    <id> <x> <y> <inDegree> <outDegree> <ASid> <type>

    Edges: ( <m> )
    <id> <from> <to> <length> <delay> <bandwidth> <ASfrom> <ASto> <type> <direction>
    v}

    Mapping: node [x]/[y] become float attributes; edge [delay] (ms)
    becomes ["avgDelay"] (with a degenerate min/max band so the stock
    constraints work), [length] -> ["length"], [bandwidth] ->
    ["bandwidth"].  Unknown [type] strings are kept as attributes. *)

exception Error of string

val read_string : string -> Netembed_graph.Graph.t
(** @raise Error on malformed input. *)

val read_file : string -> Netembed_graph.Graph.t

val write_string : Netembed_graph.Graph.t -> string
(** Nodes lacking coordinates are written at (0,0); edges lacking
    delay/bandwidth get 0 entries.  Undirected graphs are emitted with
    [direction] U, directed ones with D. *)

val write_file : Netembed_graph.Graph.t -> string -> unit
