open Netembed_graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value

type spec = {
  root : Regular.shape;
  groups : int;
  group : Regular.shape;
  group_size : int;
}

let with_level level attrs = Attrs.add "level" (Value.String level) attrs

let generate ?(node = Attrs.empty) ?(root_edge = Attrs.empty)
    ?(group_edge = Attrs.empty) spec =
  if spec.groups < 2 then invalid_arg "Composite.generate: groups < 2";
  if spec.group_size < 1 then invalid_arg "Composite.generate: group_size < 1";
  let g =
    Graph.create
      ~name:
        (Printf.sprintf "composite-%s(%d)-of-%s(%d)"
           (Regular.shape_name spec.root) spec.groups
           (Regular.shape_name spec.group) spec.group_size)
      ()
  in
  (* Build every group by instantiating the regular template and copying
     it into [g]; node 0 of each template is the gateway. *)
  let gateways = Array.make spec.groups (-1) in
  for gi = 0 to spec.groups - 1 do
    if spec.group_size = 1 then
      gateways.(gi) <- Graph.add_node g (with_level "root" node)
    else begin
      let template =
        Regular.of_shape ~node ~edge:(with_level "group" group_edge) spec.group
          spec.group_size
      in
      let base = Graph.node_count g in
      Graph.iter_nodes
        (fun v ->
          let level = if v = 0 then "root" else "leaf" in
          ignore (Graph.add_node g (with_level level (Graph.node_attrs template v))))
        template;
      Graph.iter_edges
        (fun e u v -> ignore (Graph.add_edge g (base + u) (base + v) (Graph.edge_attrs template e)))
        template;
      gateways.(gi) <- base
    end
  done;
  (* Root level: instantiate the root template on the gateways. *)
  let root_template =
    Regular.of_shape ~edge:(with_level "root" root_edge) spec.root spec.groups
  in
  Graph.iter_edges
    (fun e u v ->
      if u < spec.groups && v < spec.groups then
        ignore (Graph.add_edge g gateways.(u) gateways.(v) (Graph.edge_attrs root_template e)))
    root_template;
  g

let node_count spec =
  if spec.group_size = 1 then spec.groups
  else
    let template = Regular.of_shape spec.group spec.group_size in
    spec.groups * Graph.node_count template
