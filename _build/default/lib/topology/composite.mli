(** Composite two-level query topologies (paper, section VII-D last
    experiment set): "a two-level hierarchical topology, where both
    levels have regular structures.  So for example the root level could
    be a ring, a star, or a clique, and each vertex of the root level is
    also a regular structure.  Many practical applications follow these
    kinds of structures, including multicast trees, distributed hash
    tables, and rings."

    The root level connects one designated {e gateway} node of each
    group; [root_edge] attributes are stamped on root-level (inter-group)
    links and [group_edge] on intra-group links, so the paper's
    per-level delay constraints (75-350 ms wide-area vs 1-75 ms
    intra-site) can be expressed. *)

type attrs := Netembed_attr.Attrs.t

type spec = {
  root : Regular.shape;
  groups : int;  (** number of root-level vertices (>= 2) *)
  group : Regular.shape;
  group_size : int;  (** nodes per group (>= 1) *)
}

val generate :
  ?node:attrs -> ?root_edge:attrs -> ?group_edge:attrs ->
  spec -> Netembed_graph.Graph.t
(** Nodes carry ["level"] = "root" (gateways) or "leaf"; edges carry
    ["level"] = "root" or "group" in addition to the supplied
    attributes.  Group shapes of size 1 degenerate to a bare gateway. *)

val node_count : spec -> int
(** Exact size of the generated graph ([groups * group_size] except for
    shapes that round, e.g. hypercubes). *)
