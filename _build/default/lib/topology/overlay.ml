open Netembed_graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Rng = Netembed_rng.Rng
module Paths = Netembed_graph.Paths

type mesh = Full_mesh | Nearest of int

let delay_weight g e =
  Option.value ~default:1.0 (Attrs.float "avgDelay" (Graph.edge_attrs g e))

let build rng ~underlay ~nodes ~mesh =
  let n = Graph.node_count underlay in
  if nodes < 2 then invalid_arg "Overlay.build: nodes < 2";
  if nodes > n then invalid_arg "Overlay.build: more overlay nodes than routers";
  (match mesh with
  | Nearest k when k < 1 -> invalid_arg "Overlay.build: Nearest k < 1"
  | Nearest _ | Full_mesh -> ());
  (* Sample routers, retrying until all mutually reachable (guaranteed
     to terminate on connected underlays; bounded retries otherwise). *)
  let pick () = Rng.sample_without_replacement rng nodes n in
  let rec sample_reachable attempt =
    if attempt > 50 then invalid_arg "Overlay.build: underlay too disconnected";
    let routers = pick () in
    let dist, _ = Paths.dijkstra underlay ~weight:(delay_weight underlay) routers.(0) in
    if Array.for_all (fun r -> Float.is_finite dist.(r)) routers then routers
    else sample_reachable (attempt + 1)
  in
  let routers = sample_reachable 1 in
  let overlay = Graph.create ~name:(Printf.sprintf "overlay-%d" nodes) () in
  Array.iter
    (fun r ->
      ignore
        (Graph.add_node overlay
           (Attrs.add "router" (Value.Int r) (Graph.node_attrs underlay r))))
    routers;
  (* All-pairs (over the sample) delays and hop counts. *)
  let delays = Array.make_matrix nodes nodes infinity in
  let hops = Array.make_matrix nodes nodes 0 in
  Array.iteri
    (fun i ri ->
      let dist, parent = Paths.dijkstra underlay ~weight:(delay_weight underlay) ri in
      Array.iteri
        (fun j rj ->
          if i <> j then begin
            delays.(i).(j) <- dist.(rj);
            (* Count hops along the parent chain. *)
            let rec count v acc = if v = ri || v < 0 then acc else count parent.(v) (acc + 1) in
            hops.(i).(j) <- count rj 0
          end)
        routers)
    routers;
  let link i j =
    let d = delays.(i).(j) in
    ignore
      (Graph.add_edge overlay i j
         (Attrs.of_list
            [
              ("minDelay", Value.Float (0.9 *. d));
              ("avgDelay", Value.Float d);
              ("maxDelay", Value.Float (1.1 *. d));
              ("hops", Value.Int hops.(i).(j));
            ]))
  in
  (match mesh with
  | Full_mesh ->
      for i = 0 to nodes - 1 do
        for j = i + 1 to nodes - 1 do
          link i j
        done
      done
  | Nearest k ->
      (* Union of each node's k nearest peers (deduplicated). *)
      let wanted = Hashtbl.create (nodes * k) in
      for i = 0 to nodes - 1 do
        let peers = Array.init nodes (fun j -> j) in
        Array.sort (fun a b -> Float.compare delays.(i).(a) delays.(i).(b)) peers;
        let added = ref 0 in
        Array.iter
          (fun j ->
            if j <> i && !added < k then begin
              incr added;
              Hashtbl.replace wanted (min i j, max i j) ()
            end)
          peers
      done;
      Hashtbl.iter (fun (i, j) () -> link i j) wanted);
  overlay
