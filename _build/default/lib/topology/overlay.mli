(** Overlay networks derived from an underlay — the hosting-network
    shape the paper singles out as hard: "if the hosting network is
    dense (as with overlays, in which there is an overlay link between
    every two nodes), then the topological constraints implied by the
    virtual network do not help much" (section V-C footnote).

    Given a router-level underlay (e.g. a BRITE graph), an overlay
    places application nodes on a subset of the routers and connects
    either every pair ([Full_mesh]) or each node to its [k] lowest-
    latency peers ([Nearest of k]).  Overlay link delays are the
    underlay shortest-path delays (sum of ["avgDelay"] along the path),
    matching how all-pairs ping characterizes PlanetLab. *)

open Netembed_graph

type mesh =
  | Full_mesh
  | Nearest of int  (** connect each overlay node to its k closest peers *)

val build :
  Netembed_rng.Rng.t ->
  underlay:Graph.t ->
  nodes:int ->
  mesh:mesh ->
  Graph.t
(** Sample [nodes] distinct underlay routers (uniformly among routers
    reachable from the first sample) and build the overlay.  Overlay
    node attributes copy the underlying router's and add ["router"]
    (the underlay node id); edges carry ["minDelay"]/["avgDelay"]/
    ["maxDelay"] = path delay with a ±10% band and ["hops"] (underlay
    path length).

    @raise Invalid_argument if [nodes] exceeds the underlay size, is
    < 2, or [Nearest k] has [k < 1]. *)
