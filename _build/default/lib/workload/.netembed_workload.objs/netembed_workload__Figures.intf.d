lib/workload/figures.mli: Netembed_graph
