lib/workload/query_gen.ml: Array Graph Netembed_attr Netembed_expr Netembed_graph Netembed_rng Netembed_topology Option Printf
