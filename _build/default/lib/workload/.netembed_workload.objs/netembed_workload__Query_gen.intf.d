lib/workload/query_gen.mli: Graph Netembed_expr Netembed_graph Netembed_rng Netembed_topology
