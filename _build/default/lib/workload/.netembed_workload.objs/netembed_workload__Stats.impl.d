lib/workload/stats.ml: Array Float List
