lib/workload/stats.mli:
