lib/workload/table.ml: Array List Printf String
