lib/workload/table.mli:
