module Graph = Netembed_graph.Graph
module Rng = Netembed_rng.Rng
module Trace = Netembed_planetlab.Trace
module Brite = Netembed_topology.Brite
module Regular = Netembed_topology.Regular
module Problem = Netembed_core.Problem
module Engine = Netembed_core.Engine

type scale = {
  label : string;
  seed : int;
  timeout : float;
  pl_query_sizes : int list;
  pl_reps : int;
  brite_hosts : int list;
  brite_query_fractions : float list;
  brite_reps : int;
  clique_sizes : int list;
  composite_groups : int list;
  composite_group_size : int;
  composite_reps : int;
}

let default_scale =
  {
    label = "default";
    seed = 7;
    timeout = 5.0;
    pl_query_sizes = [ 20; 40; 60; 80; 100; 120 ];
    pl_reps = 3;
    brite_hosts = [ 300; 400; 500 ];
    brite_query_fractions = [ 0.2; 0.4; 0.6 ];
    brite_reps = 2;
    clique_sizes = [ 2; 3; 4; 5; 6; 8; 10; 12 ];
    composite_groups = [ 2; 3; 4; 6; 8 ];
    composite_group_size = 5;
    composite_reps = 3;
  }

let paper_scale =
  {
    label = "paper";
    seed = 7;
    timeout = 120.0;
    pl_query_sizes = [ 20; 40; 60; 80; 100; 120; 140; 160; 180; 200; 220 ];
    pl_reps = 5;
    brite_hosts = [ 1500; 2000; 2500 ];
    brite_query_fractions = [ 0.2; 0.4; 0.6; 0.8 ];
    brite_reps = 5;
    clique_sizes = [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ];
    composite_groups = [ 2; 3; 4; 6; 8; 10; 12 ];
    composite_group_size = 5;
    composite_reps = 5;
  }

let planetlab_host scale = Trace.generate (Rng.make scale.seed) Trace.default

(* ------------------------------------------------------------------ *)
(* Measurement helpers                                                 *)
(* ------------------------------------------------------------------ *)

type run = {
  algorithm : Engine.algorithm;
  case : Query_gen.case;
  result : Engine.result;  (** with [mappings] stripped — see below *)
  mapping_count : int;
}

(* Sweeps are cached across figures; retaining every mapping list would
   pin gigabytes (an all-matches run can return tens of thousands of
   mappings), so runs keep only the count. *)
let run_case ~mode ~timeout ~host algorithm (case : Query_gen.case) =
  let problem =
    Problem.make ~host ~query:case.Query_gen.query case.Query_gen.edge_constraint
  in
  let options =
    { Engine.default_options with Engine.mode; timeout = Some timeout; collect = false }
  in
  let result = Engine.run ~options algorithm problem in
  { algorithm; case; result; mapping_count = result.Engine.found }

(* Mean over runs that actually produced the quantity; [None] when no
   run qualifies (rendered as "-"). *)
let mean_of runs extract =
  match List.filter_map extract runs with
  | [] -> None
  | xs -> Some (Stats.summarize xs)

let cell_opt f = function None -> "-" | Some (s : Stats.summary) -> f s

let ms_mean = cell_opt (fun s -> Table.cell_ms s.Stats.mean)
let ms_ci = cell_opt (fun s -> Table.cell_ms s.Stats.ci95)

let total_time r = Some r.result.Engine.elapsed
let first_time r = r.result.Engine.time_to_first

let completed_total r =
  if r.result.Engine.outcome = Engine.Complete then Some r.result.Engine.elapsed
  else None

(* ------------------------------------------------------------------ *)
(* PlanetLab subgraph sweep (figs 8, 9)                                *)
(* ------------------------------------------------------------------ *)

type pl_point = { n : int; by_algorithm : (Engine.algorithm * run list) list }

(* fig8/fig9 (and fig11/fig12) render different views of one sweep;
   cache per scale label so `all` computes each sweep once. *)
let sweep_cache : (string, pl_point list) Hashtbl.t = Hashtbl.create 4

let planetlab_sweep_uncached scale =
  let host = planetlab_host scale in
  let rng = Rng.make (scale.seed + 1) in
  List.map
    (fun n ->
      let cases =
        List.init scale.pl_reps (fun i ->
            (* Vary the edge count across reps, as the paper does. *)
            let extra = (i + 1) * n / 4 in
            Query_gen.subgraph rng ~host ~n ~extra_edges:extra ())
      in
      let by_algorithm =
        List.map
          (fun alg ->
            let mode =
              (* RWB terminates at the first solution by design. *)
              match alg with Engine.RWB -> Engine.First | _ -> Engine.All
            in
            (alg, List.map (run_case ~mode ~timeout:scale.timeout ~host alg) cases))
          Engine.all_algorithms
      in
      { n; by_algorithm })
    scale.pl_query_sizes

let planetlab_sweep scale =
  match Hashtbl.find_opt sweep_cache ("pl-" ^ scale.label) with
  | Some sweep -> sweep
  | None ->
      let sweep = planetlab_sweep_uncached scale in
      Hashtbl.replace sweep_cache ("pl-" ^ scale.label) sweep;
      sweep

let fig8 ?(out = stdout) scale =
  let sweep = planetlab_sweep scale in
  List.iter
    (fun alg ->
      let rows =
        List.map
          (fun { n; by_algorithm } ->
            let runs = List.assoc alg by_algorithm in
            [
              string_of_int n;
              ms_mean (mean_of runs total_time);
              ms_ci (mean_of runs total_time);
              ms_mean (mean_of runs first_time);
            ])
          sweep
      in
      Table.print_series ~out
        ~title:
          (Printf.sprintf
             "Fig 8 (%s): %s on PlanetLab subgraph queries (host N=296-like)"
             scale.label (Engine.algorithm_name alg))
        ~header:[ "nodes"; "all_ms"; "ci95_ms"; "first_ms" ]
        rows)
    Engine.all_algorithms

let fig9 ?(out = stdout) scale =
  let sweep = planetlab_sweep scale in
  let row extract { n; by_algorithm } =
    string_of_int n
    :: List.map
         (fun alg -> ms_mean (mean_of (List.assoc alg by_algorithm) extract))
         Engine.all_algorithms
  in
  Table.print_series ~out
    ~title:(Printf.sprintf "Fig 9a (%s): mean search time, all matches" scale.label)
    ~header:[ "nodes"; "ECF_ms"; "RWB_ms"; "LNS_ms" ]
    (List.map (row total_time) sweep);
  Table.print_series ~out
    ~title:(Printf.sprintf "Fig 9b (%s): time to find first match" scale.label)
    ~header:[ "nodes"; "ECF_ms"; "RWB_ms"; "LNS_ms" ]
    (List.map (row first_time) sweep)

(* ------------------------------------------------------------------ *)
(* Fig 10: feasible vs infeasible                                      *)
(* ------------------------------------------------------------------ *)

let fig10 ?(out = stdout) scale =
  let host = planetlab_host scale in
  let rng = Rng.make (scale.seed + 2) in
  (* A prefix of the fig-8 sizes: no-match runs pay the full timeout for
     LNS, so the sweep is kept shorter. *)
  let sizes = List.filteri (fun i _ -> i < 4) scale.pl_query_sizes in
  let points =
    List.map
      (fun n ->
        let feasible =
          List.init scale.pl_reps (fun _ -> Query_gen.subgraph rng ~host ~n ())
        in
        let infeasible = List.map (Query_gen.make_infeasible rng) feasible in
        (n, feasible, infeasible))
      sizes
  in
  List.iter
    (fun alg ->
      let mode = match alg with Engine.RWB -> Engine.First | _ -> Engine.All in
      let rows =
        List.map
          (fun (n, feasible, infeasible) ->
            let run = run_case ~mode ~timeout:scale.timeout ~host alg in
            let fr = List.map run feasible and ir = List.map run infeasible in
            [
              string_of_int n;
              ms_mean (mean_of fr total_time);
              ms_mean (mean_of ir total_time);
            ])
          points
      in
      Table.print_series ~out
        ~title:
          (Printf.sprintf "Fig 10 (%s): %s, matching vs non-matching queries"
             scale.label (Engine.algorithm_name alg))
        ~header:[ "nodes"; "match_ms"; "nomatch_ms" ]
        rows)
    Engine.all_algorithms

(* ------------------------------------------------------------------ *)
(* Figs 11, 12: BRITE hosts                                            *)
(* ------------------------------------------------------------------ *)

let brite_cache : (string, (Graph.t * pl_point list) list) Hashtbl.t = Hashtbl.create 4

let brite_sweep_uncached scale =
  List.map
    (fun host_n ->
      let host = Brite.generate (Rng.make (scale.seed + host_n)) (Brite.default_barabasi ~n:host_n) in
      let rng = Rng.make (scale.seed + (2 * host_n) + 1) in
      let points =
        List.map
          (fun fraction ->
            let n = max 4 (int_of_float (fraction *. float_of_int host_n)) in
            let cases =
              List.init scale.brite_reps (fun _ -> Query_gen.brite_query rng ~host ~n)
            in
            let by_algorithm =
              List.map
                (fun alg ->
                  let mode =
                    match alg with Engine.RWB -> Engine.First | _ -> Engine.All
                  in
                  ( alg,
                    List.map (run_case ~mode ~timeout:scale.timeout ~host alg) cases ))
                Engine.all_algorithms
            in
            { n; by_algorithm })
          scale.brite_query_fractions
      in
      (host, points))
    scale.brite_hosts

let brite_sweep scale =
  match Hashtbl.find_opt brite_cache ("brite-" ^ scale.label) with
  | Some sweep -> sweep
  | None ->
      let sweep = brite_sweep_uncached scale in
      Hashtbl.replace brite_cache ("brite-" ^ scale.label) sweep;
      sweep

let brite_figure ?(out = stdout) ~title_prefix ~extract scale =
  List.iter
    (fun (host, points) ->
      let rows =
        List.map
          (fun { n; by_algorithm } ->
            string_of_int n
            :: List.map
                 (fun alg -> ms_mean (mean_of (List.assoc alg by_algorithm) extract))
                 Engine.all_algorithms)
          points
      in
      Table.print_series ~out
        ~title:
          (Printf.sprintf "%s (%s): BRITE host N=%d E=%d" title_prefix scale.label
             (Graph.node_count host) (Graph.edge_count host))
        ~header:[ "nodes"; "ECF_ms"; "RWB_ms"; "LNS_ms" ]
        rows)
    (brite_sweep scale)

let fig11 ?out scale = brite_figure ?out ~title_prefix:"Fig 11: mean search time" ~extract:total_time scale
let fig12 ?out scale = brite_figure ?out ~title_prefix:"Fig 12: time to first match" ~extract:first_time scale

(* ------------------------------------------------------------------ *)
(* Fig 13: cliques in PlanetLab                                        *)
(* ------------------------------------------------------------------ *)

let fig13 ?(out = stdout) scale =
  let host = planetlab_host scale in
  let points =
    List.map
      (fun k ->
        let case = Query_gen.clique ~k ~delay_lo:10.0 ~delay_hi:100.0 in
        let by_algorithm =
          List.map
            (fun alg ->
              let mode =
                match alg with Engine.RWB -> Engine.First | _ -> Engine.All
              in
              (alg, [ run_case ~mode ~timeout:scale.timeout ~host alg case ]))
            Engine.all_algorithms
        in
        { n = k; by_algorithm })
      scale.clique_sizes
  in
  let row extract { n; by_algorithm } =
    string_of_int n
    :: List.map
         (fun alg -> ms_mean (mean_of (List.assoc alg by_algorithm) extract))
         Engine.all_algorithms
  in
  (* Paper: "cases in which no solutions were found, or in which the
     algorithm timed out before returning any solution are excluded". *)
  Table.print_series ~out
    ~title:
      (Printf.sprintf
         "Fig 13a (%s): clique mean search time, all matches (timeouts excluded)"
         scale.label)
    ~header:[ "clique"; "ECF_ms"; "RWB_ms"; "LNS_ms" ]
    (List.map (row completed_total) points);
  Table.print_series ~out
    ~title:(Printf.sprintf "Fig 13b (%s): time to find first clique match" scale.label)
    ~header:[ "clique"; "ECF_ms"; "RWB_ms"; "LNS_ms" ]
    (List.map (row first_time) points)

(* ------------------------------------------------------------------ *)
(* Fig 14: composite queries                                           *)
(* ------------------------------------------------------------------ *)

let composite_cases rng scale constraints =
  (* Rotate root/group shapes across sizes as the paper mixes rings,
     stars and cliques at both levels. *)
  let shapes = [| Regular.Ring; Regular.Star; Regular.Clique |] in
  List.concat_map
    (fun groups ->
      List.init scale.composite_reps (fun i ->
          let root = shapes.(i mod Array.length shapes) in
          let group = shapes.((i + 1) mod Array.length shapes) in
          Query_gen.composite rng ~root ~groups ~group
            ~group_size:scale.composite_group_size ~constraints))
    scale.composite_groups

let fig14 ?(out = stdout) scale =
  let host = planetlab_host scale in
  let sub_figure tag constraints seed_offset =
    let rng = Rng.make (scale.seed + seed_offset) in
    let cases = composite_cases rng scale constraints in
    (* Group by query size. *)
    let by_size = Hashtbl.create 16 in
    List.iter
      (fun (case : Query_gen.case) ->
        let n = Graph.node_count case.Query_gen.query in
        Hashtbl.replace by_size n
          (case :: Option.value ~default:[] (Hashtbl.find_opt by_size n)))
      cases;
    let sizes = List.sort compare (Hashtbl.fold (fun n _ acc -> n :: acc) by_size []) in
    let rows =
      List.map
        (fun n ->
          let cases = Hashtbl.find by_size n in
          string_of_int n
          :: List.map
               (fun alg ->
                 let runs =
                   List.map
                     (run_case ~mode:Engine.First ~timeout:scale.timeout ~host alg)
                     cases
                 in
                 ms_mean (mean_of runs first_time))
               Engine.all_algorithms)
        sizes
    in
    Table.print_series ~out
      ~title:
        (Printf.sprintf "Fig 14%s (%s): composite queries, time to first match" tag
           scale.label)
      ~header:[ "nodes"; "ECF_ms"; "RWB_ms"; "LNS_ms" ]
      rows
  in
  sub_figure "a-regular" Query_gen.Regular_bands 3;
  sub_figure "b-irregular" Query_gen.Irregular_bands 4

(* ------------------------------------------------------------------ *)
(* Fig 15: outcome census                                              *)
(* ------------------------------------------------------------------ *)

let fig15 ?(out = stdout) scale =
  let host = planetlab_host scale in
  let rng = Rng.make (scale.seed + 5) in
  let mid_size =
    let sizes = scale.pl_query_sizes in
    List.nth sizes (List.length sizes / 2)
  in
  let families =
    [
      ( "subgraph",
        List.init scale.pl_reps (fun _ ->
            Query_gen.subgraph rng ~host ~n:mid_size ()) );
      ( "infeasible",
        List.init scale.pl_reps (fun _ ->
            Query_gen.make_infeasible rng (Query_gen.subgraph rng ~host ~n:mid_size ())) );
      ( "clique",
        (* Mid-range cliques: k < 4 is trivial, large k saturates the
           timeout for every algorithm and adds nothing to the census. *)
        List.filter_map
          (fun k ->
            if k >= 4 && k <= 8 then Some (Query_gen.clique ~k ~delay_lo:10.0 ~delay_hi:100.0)
            else None)
          scale.clique_sizes );
      ( "composite",
        composite_cases rng
          {
            scale with
            composite_reps = 1;
            composite_groups =
              List.filteri (fun i _ -> i < 3) scale.composite_groups;
          }
          Query_gen.Regular_bands );
    ]
  in
  let rows =
    List.concat_map
      (fun (family, cases) ->
        List.map
          (fun alg ->
            let runs =
              List.map (run_case ~mode:Engine.All ~timeout:scale.timeout ~host alg) cases
            in
            let frac pred = Table.cell_pct (Stats.fraction pred runs) in
            [
              family;
              Engine.algorithm_name alg;
              frac (fun r ->
                  r.result.Engine.outcome = Engine.Complete && r.mapping_count > 0);
              frac (fun r -> r.result.Engine.outcome = Engine.Partial);
              frac (fun r -> r.result.Engine.outcome = Engine.Inconclusive);
              frac (fun r ->
                  r.result.Engine.outcome = Engine.Complete && r.mapping_count = 0);
            ])
          Engine.all_algorithms)
      families
  in
  Table.print_series ~out
    ~title:
      (Printf.sprintf
         "Fig 15 (%s): outcome probabilities per query family (%% of runs)"
         scale.label)
    ~header:[ "family"; "alg"; "all%"; "some%"; "inconcl%"; "none%" ]
    rows

(* Not a figure from the paper: search-effort profile (mean visited
   permutation-tree nodes and filter-construction constraint
   evaluations) over the fig-8 sweep — the machine-independent
   counterpart of the timing curves. *)
let effort_profile ?(out = stdout) scale =
  let sweep = planetlab_sweep scale in
  let mean_int runs extract =
    match runs with
    | [] -> "-"
    | _ ->
        Printf.sprintf "%.0f"
          (Stats.mean (List.map (fun r -> float_of_int (extract r)) runs))
  in
  let rows =
    List.map
      (fun { n; by_algorithm } ->
        string_of_int n
        :: List.concat_map
             (fun alg ->
               let runs = List.assoc alg by_algorithm in
               [
                 mean_int runs (fun r -> r.result.Engine.visited);
                 mean_int runs (fun r -> r.result.Engine.filter_evals);
               ])
             Engine.all_algorithms)
      sweep
  in
  Table.print_series ~out
    ~title:
      (Printf.sprintf
         "Search effort (%s): mean visited nodes / filter evals (not a paper figure)"
         scale.label)
    ~header:
      [ "nodes"; "ECF_vis"; "ECF_evals"; "RWB_vis"; "RWB_evals"; "LNS_vis"; "LNS_evals" ]
    rows

(* Not a paper figure: the section V-C density claim made concrete.
   "If the hosting network is dense (as with overlays, in which there
   is an overlay link between every two nodes), then the topological
   constraints implied by the virtual network do not help much" — so
   LNS should dominate first-match search on a full-mesh overlay host,
   while the sparse underlay favours the filtered searches. *)
let overlay_density ?(out = stdout) scale =
  let rng = Rng.make (scale.seed + 9) in
  let underlay = Brite.generate (Rng.make (scale.seed + 8)) (Brite.default_barabasi ~n:200) in
  let overlay =
    Netembed_topology.Overlay.build rng ~underlay ~nodes:60
      ~mesh:Netembed_topology.Overlay.Full_mesh
  in
  let hosts = [ ("sparse-underlay", underlay); ("dense-overlay", overlay) ] in
  let rows =
    List.concat_map
      (fun (label, host) ->
        (* Ring query with a loose latency band relative to the host's
           own delay scale. *)
        let delays =
          Graph.fold_edges
            (fun e _ _ acc ->
              match Netembed_attr.Attrs.float "avgDelay" (Graph.edge_attrs host e) with
              | Some d -> d :: acc
              | None -> acc)
            host []
        in
        let hi = Stats.percentile 0.7 delays in
        let case =
          {
            Query_gen.name = "ring10";
            query =
              Regular.ring
                ~edge:
                  (Netembed_attr.Attrs.of_list
                     [
                       ("minDelay", Netembed_attr.Value.Float 0.0);
                       ("maxDelay", Netembed_attr.Value.Float hi);
                     ])
                10;
            edge_constraint = Netembed_expr.Expr.avg_delay_within;
            feasible_hint = None;
          }
        in
        List.map
          (fun alg ->
            let r = run_case ~mode:Engine.First ~timeout:scale.timeout ~host alg case in
            [
              label;
              Engine.algorithm_name alg;
              ms_mean (mean_of [ r ] first_time);
              string_of_int r.result.Engine.visited;
            ])
          Engine.all_algorithms)
      hosts
  in
  Table.print_series ~out
    ~title:
      (Printf.sprintf
         "Host density ablation (%s): ring-10 first match, sparse underlay vs full-mesh overlay (not a paper figure)"
         scale.label)
    ~header:[ "host"; "alg"; "first_ms"; "visited" ]
    rows

let all ?out scale =
  fig8 ?out scale;
  fig9 ?out scale;
  fig10 ?out scale;
  fig11 ?out scale;
  fig12 ?out scale;
  fig13 ?out scale;
  fig14 ?out scale;
  fig15 ?out scale;
  effort_profile ?out scale;
  overlay_density ?out scale

let save_all ~dir scale =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let drivers =
    [ ("fig8", fig8); ("fig9", fig9); ("fig10", fig10); ("fig11", fig11);
      ("fig12", fig12); ("fig13", fig13); ("fig14", fig14); ("fig15", fig15) ]
  in
  List.iter
    (fun (name, driver) ->
      let oc = open_out (Filename.concat dir (name ^ ".txt")) in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> driver ?out:(Some oc) scale))
    drivers
