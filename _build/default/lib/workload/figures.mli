(** Experiment drivers: one function per figure of the paper's
    evaluation (section VII).  Each prints gnuplot-style series via
    {!Table} and returns nothing; the printed rows are the reproduction
    artifact recorded in EXPERIMENTS.md.

    All drivers are parameterized by a {!scale} so the same code runs
    both container-friendly defaults and the paper-scale sweep
    ([--full] in bin/experiments). *)

type scale = {
  label : string;
  seed : int;
  timeout : float;  (** per-search timeout, seconds *)
  pl_query_sizes : int list;  (** Fig. 8-10 query sizes (paper: 20-220) *)
  pl_reps : int;  (** queries per (N,E) point (paper: 5) *)
  brite_hosts : int list;  (** BRITE host sizes (paper: 1500/2000/2500) *)
  brite_query_fractions : float list;  (** query size as host fraction *)
  brite_reps : int;
  clique_sizes : int list;  (** Fig. 13 (paper: 2-20) *)
  composite_groups : int list;  (** Fig. 14 root-level sizes *)
  composite_group_size : int;
  composite_reps : int;
}

val default_scale : scale
(** Container-friendly: finishes in minutes. *)

val paper_scale : scale
(** The sweep ranges of the paper (hours of compute). *)

val planetlab_host : scale -> Netembed_graph.Graph.t
(** The synthetic PlanetLab hosting network used by figs. 8-10, 13-15
    (deterministic in [scale.seed]). *)

val fig8 : ?out:out_channel -> scale -> unit
(** Fig. 8: mean search time (all matches and first match) per
    algorithm for PlanetLab subgraph queries vs query size. *)

val fig9 : ?out:out_channel -> scale -> unit
(** Fig. 9: the three algorithms overlaid — (a) all-matches mean time,
    (b) first-match mean time.  Same workload as fig. 8. *)

val fig10 : ?out:out_channel -> scale -> unit
(** Fig. 10: feasible vs infeasible query search times per algorithm. *)

val fig11 : ?out:out_channel -> scale -> unit
(** Fig. 11: mean search time on BRITE hosts of increasing size. *)

val fig12 : ?out:out_channel -> scale -> unit
(** Fig. 12: first-match time on the same BRITE hosts. *)

val fig13 : ?out:out_channel -> scale -> unit
(** Fig. 13: clique queries on PlanetLab — (a) mean time to find all
    embeddings (timeouts excluded, as in the paper), (b) time to first
    match. *)

val fig14 : ?out:out_channel -> scale -> unit
(** Fig. 14: composite two-level queries — first-match times under (a)
    regular per-level delay bands, (b) random 25-175 ms bands. *)

val fig15 : ?out:out_channel -> scale -> unit
(** Fig. 15: probability of result types (all matches / some matches /
    inconclusive / proved infeasible) per algorithm and query family. *)

val effort_profile : ?out:out_channel -> scale -> unit
(** Not a paper figure: mean visited search-tree nodes and filter
    constraint evaluations per algorithm over the Fig.-8 sweep — a
    machine-independent view of search effort. *)

val overlay_density : ?out:out_channel -> scale -> unit
(** Not a paper figure: first-match times on a sparse underlay vs a
    full-mesh overlay built on it — the section V-C density claim
    (dense hosts defeat the filter, favouring LNS) made measurable. *)

val all : ?out:out_channel -> scale -> unit
(** Run every figure in order. *)

val save_all : dir:string -> scale -> unit
(** Run every figure, writing [figN.txt] files under [dir] (created if
    missing) — the reference-run layout of [results/]. *)
