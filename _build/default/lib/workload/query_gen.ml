open Netembed_graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Expr = Netembed_expr.Expr
module Rng = Netembed_rng.Rng
module Regular = Netembed_topology.Regular
module Composite = Netembed_topology.Composite
module Sample = Netembed_graph.Sample

type case = {
  name : string;
  query : Graph.t;
  edge_constraint : Netembed_expr.Ast.t;
  feasible_hint : bool option;
}

let range_attrs ~lo ~hi =
  Attrs.of_list [ ("minDelay", Value.Float lo); ("maxDelay", Value.Float hi) ]

let subgraph rng ~host ~n ?extra_edges ?(widen = 0.0) () =
  let extra_edges = Option.value ~default:(n / 2) extra_edges in
  let sub, _orig = Sample.random_connected_subgraph rng host ~n ~extra_edges in
  let query = Graph.create ~name:(Printf.sprintf "subgraph-%d" n) () in
  Graph.iter_nodes (fun v -> ignore (Graph.add_node query (Graph.node_attrs sub v))) sub;
  Graph.iter_edges
    (fun e u v ->
      let attrs = Graph.edge_attrs sub e in
      let mn = Option.value ~default:0.0 (Attrs.float "minDelay" attrs) in
      let mx = Option.value ~default:1000.0 (Attrs.float "maxDelay" attrs) in
      ignore
        (Graph.add_edge query u v
           (range_attrs ~lo:(mn *. (1.0 -. widen)) ~hi:(mx *. (1.0 +. widen)))))
    sub;
  {
    name = Printf.sprintf "subgraph(n=%d,e=%d)" n (Graph.edge_count query);
    query;
    edge_constraint = Expr.delay_range_within;
    feasible_hint = Some true;
  }

let make_infeasible rng ?(fraction = 0.25) case =
  let query = Graph.copy case.query in
  let m = Graph.edge_count query in
  if m = 0 then { case with feasible_hint = None }
  else begin
    let k = max 1 (int_of_float (fraction *. float_of_int m)) in
    let victims = Rng.sample_without_replacement rng k m in
    Array.iter
      (fun e ->
        (* No physical link has a negative delay band. *)
        Graph.set_edge_attrs query e (range_attrs ~lo:(-2.0) ~hi:(-1.0)))
      victims;
    {
      case with
      name = case.name ^ "-infeasible";
      query;
      feasible_hint = Some false;
    }
  end

let clique ~k ~delay_lo ~delay_hi =
  let query =
    Regular.clique ~edge:(range_attrs ~lo:delay_lo ~hi:delay_hi) k
  in
  {
    name = Printf.sprintf "clique(%d)" k;
    query;
    edge_constraint = Expr.avg_delay_within;
    feasible_hint = None;
  }

type composite_constraints = Regular_bands | Irregular_bands

let composite rng ~root ~groups ~group ~group_size ~constraints =
  let root_edge, group_edge, tag =
    match constraints with
    | Regular_bands -> (range_attrs ~lo:75.0 ~hi:350.0, range_attrs ~lo:1.0 ~hi:75.0, "regular")
    | Irregular_bands ->
        (* Placeholder; Irregular re-stamps every edge below. *)
        (range_attrs ~lo:25.0 ~hi:175.0, range_attrs ~lo:25.0 ~hi:175.0, "irregular")
  in
  let query =
    Composite.generate ~root_edge ~group_edge
      { Composite.root; groups; group; group_size }
  in
  (match constraints with
  | Regular_bands -> ()
  | Irregular_bands ->
      (* Random per-link bands within 25-175 ms, width >= 25 ms so the
         query stays under-constrained as in the paper. *)
      Graph.iter_edges
        (fun e _ _ ->
          let a = Rng.uniform rng ~lo:25.0 ~hi:150.0 in
          let b = Rng.uniform rng ~lo:(a +. 25.0) ~hi:175.0 in
          let attrs =
            Attrs.union (Graph.edge_attrs query e) (range_attrs ~lo:a ~hi:b)
          in
          Graph.set_edge_attrs query e attrs)
        query);
  {
    name =
      Printf.sprintf "composite-%s(%s(%d) of %s(%d))" tag (Regular.shape_name root)
        groups (Regular.shape_name group) group_size;
    query;
    edge_constraint = Expr.avg_delay_within;
    feasible_hint = None;
  }

let brite_query rng ~host ~n =
  subgraph rng ~host ~n ~extra_edges:(n / 3) ~widen:0.02 ()
