(** Query-network generators — the paper's three query families
    (section VII-A) plus the infeasible mutation of section VII-B.

    Each generator returns the query graph together with the constraint
    expression the paper pairs it with, packaged as a {!case}. *)

open Netembed_graph

type case = {
  name : string;
  query : Graph.t;
  edge_constraint : Netembed_expr.Ast.t;
  feasible_hint : bool option;
      (** [Some true] when an embedding is guaranteed by construction,
          [Some false] when impossible by construction, [None] unknown *)
}

val subgraph : Netembed_rng.Rng.t -> host:Graph.t -> n:int -> ?extra_edges:int ->
  ?widen:float -> unit -> case
(** The paper's first approach: "the query network is a (typically
    small) subgraph selected at random from the hosting network ...
    since the query is sampled from the hosting network, we know that
    an embedding exists."  Query links copy the host link's
    min/maxDelay, widened by [widen] (default 0, i.e. the exact measured range) on each side; the
    constraint is {!Netembed_expr.Expr.delay_range_within}.
    [extra_edges] defaults to [n/2] beyond the spanning tree. *)

val make_infeasible : Netembed_rng.Rng.t -> ?fraction:float -> case -> case
(** The section-VII-B no-match experiment: "the infeasible queries were
    generated from the feasible queries by changing some of their link
    attributes (e.g., delays) to some infeasible values.  Notice that
    doing so does not change the topology of the query network."  A
    [fraction] (default 0.25, at least one) of the links get an
    unsatisfiable delay range. *)

val clique : k:int -> delay_lo:float -> delay_hi:float -> case
(** The section-VII-D worst case: "a series of cliques of increasing
    size, whose only constraint was to have an end-to-end delay between
    10 and 100 ms" — under-constrained and fully regular.  Constraint:
    {!Netembed_expr.Expr.avg_delay_within}. *)

type composite_constraints =
  | Regular_bands
      (** root links 75-350 ms (inter-site), group links 1-75 ms
          (intra-site) — the paper's first composite set *)
  | Irregular_bands
      (** per-link random bands within 25-175 ms (~70% of PlanetLab
          links) — the second set *)

val composite :
  Netembed_rng.Rng.t ->
  root:Netembed_topology.Regular.shape ->
  groups:int ->
  group:Netembed_topology.Regular.shape ->
  group_size:int ->
  constraints:composite_constraints ->
  case
(** Two-level composite queries (multicast trees, DHTs, rings...). *)

val brite_query :
  Netembed_rng.Rng.t -> host:Graph.t -> n:int -> case
(** The BRITE-host experiments: a random connected subgraph of the
    BRITE hosting network with the standard delay-range constraint
    (section VII-C). *)
