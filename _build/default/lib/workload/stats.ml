type summary = {
  n : int;
  mean : float;
  stddev : float;
  ci95 : float;
  min : float;
  max : float;
  median : float;
}

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let summarize = function
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | xs ->
      let n = List.length xs in
      let nf = float_of_int n in
      let m = mean xs in
      let var =
        if n < 2 then 0.0
        else
          List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
          /. (nf -. 1.0)
      in
      let stddev = sqrt var in
      let sorted = List.sort compare xs in
      let median =
        let a = Array.of_list sorted in
        if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0
      in
      {
        n;
        mean = m;
        stddev;
        ci95 = 1.96 *. stddev /. sqrt nf;
        min = List.nth sorted 0;
        max = List.nth sorted (n - 1);
        median;
      }

let fraction pred = function
  | [] -> 0.0
  | xs ->
      float_of_int (List.length (List.filter pred xs)) /. float_of_int (List.length xs)

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty sample"
  | xs ->
      if p < 0.0 || p > 1.0 then invalid_arg "Stats.percentile: p outside [0,1]";
      let sorted = Array.of_list (List.sort compare xs) in
      let n = Array.length sorted in
      let rank = int_of_float (Float.round (p *. float_of_int (n - 1))) in
      sorted.(rank)
