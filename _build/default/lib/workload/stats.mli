(** Summary statistics for experiment timings ("for each data point, the
    average and the confidence interval are shown" — paper Fig. 8). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  ci95 : float;  (** half-width of the normal-approximation 95% CI *)
  min : float;
  max : float;
  median : float;
}

val summarize : float list -> summary
(** @raise Invalid_argument on the empty list. *)

val mean : float list -> float

val percentile : float -> float list -> float
(** [percentile 0.95 xs] by nearest-rank on the sorted sample.
    @raise Invalid_argument on an empty list or p outside [0,1]. *)

val fraction : ('a -> bool) -> 'a list -> float
(** Fraction of elements satisfying the predicate; 0 on empty input. *)
