let cell_f x = Printf.sprintf "%.1f" x
let cell_ms seconds = Printf.sprintf "%.1f" (seconds *. 1000.0)
let cell_pct fraction = Printf.sprintf "%.1f" (fraction *. 100.0)

let print_series ?(out = stdout) ~title ~header rows =
  let all = header :: rows in
  let columns =
    List.fold_left (fun acc row -> max acc (List.length row)) 0 all
  in
  let widths = Array.make (max 1 columns) 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let pad i cell = Printf.sprintf "%-*s" widths.(i) cell in
  Printf.fprintf out "# %s\n" title;
  Printf.fprintf out "# %s\n" (String.concat "  " (List.mapi pad header));
  List.iter
    (fun row -> Printf.fprintf out "  %s\n" (String.concat "  " (List.mapi pad row)))
    rows;
  Printf.fprintf out "\n%!"

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let print_csv ?(out = stdout) ~header rows =
  List.iter
    (fun row -> Printf.fprintf out "%s\n" (String.concat "," (List.map csv_cell row)))
    (header :: rows);
  flush out
