(** Plain-text series/table output for the experiment harness: aligned
    columns with a [#]-prefixed header, the gnuplot-friendly format the
    paper's figures were plotted from. *)

val print_series :
  ?out:out_channel -> title:string -> header:string list -> string list list -> unit
(** Print a title comment, a header comment and the aligned rows. *)

val print_csv :
  ?out:out_channel -> header:string list -> string list list -> unit
(** Comma-separated output (cells containing commas or quotes are
    quoted), for downstream plotting tools. *)

val cell_f : float -> string
(** Format a float cell with 1 decimal. *)

val cell_ms : float -> string
(** Seconds rendered as milliseconds with 1 decimal. *)

val cell_pct : float -> string
(** Fraction rendered as a percentage with 1 decimal. *)
