lib/xmlite/xml.ml: Buffer Fun List Printf String Uchar
