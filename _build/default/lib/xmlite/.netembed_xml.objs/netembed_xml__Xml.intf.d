lib/xmlite/xml.mli:
