type t =
  | Element of string * (string * string) list * t list
  | Text of string

exception Parse_error of { line : int; message : string }

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int; mutable line : int }

let error st message = raise (Parse_error { line = st.line; message })

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (if st.pos < String.length st.src && st.src.[st.pos] = '\n' then
     st.line <- st.line + 1);
  st.pos <- st.pos + 1

let next st =
  match peek st with
  | Some c ->
      advance st;
      c
  | None -> error st "unexpected end of input"

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then
    for _ = 1 to String.length s do
      advance st
    done
  else error st (Printf.sprintf "expected %S" s)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  while (match peek st with Some c -> is_space c | None -> false) do
    advance st
  done

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let read_name st =
  let start = st.pos in
  while (match peek st with Some c -> is_name_char c | None -> false) do
    advance st
  done;
  if st.pos = start then error st "expected a name";
  String.sub st.src start (st.pos - start)

let decode_entity st ent =
  match ent with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "apos" -> "'"
  | "quot" -> "\""
  | _ ->
      if String.length ent > 1 && ent.[0] = '#' then begin
        let code =
          try
            if ent.[1] = 'x' || ent.[1] = 'X' then
              int_of_string ("0x" ^ String.sub ent 2 (String.length ent - 2))
            else int_of_string (String.sub ent 1 (String.length ent - 1))
          with Failure _ -> error st (Printf.sprintf "bad character reference &%s;" ent)
        in
        (* Encode the code point as UTF-8. *)
        let b = Buffer.create 4 in
        Buffer.add_utf_8_uchar b (Uchar.of_int code);
        Buffer.contents b
      end
      else error st (Printf.sprintf "unknown entity &%s;" ent)

let read_until st stop =
  (* Accumulate text until the [stop] character, decoding entities. *)
  let buf = Buffer.create 32 in
  let rec go () =
    match peek st with
    | None -> error st "unexpected end of input in text"
    | Some c when c = stop -> Buffer.contents buf
    | Some '&' ->
        advance st;
        let ent = Buffer.create 8 in
        let rec ent_loop () =
          match next st with
          | ';' -> ()
          | c ->
              Buffer.add_char ent c;
              if Buffer.length ent > 10 then error st "entity too long" else ent_loop ()
        in
        ent_loop ();
        Buffer.add_string buf (decode_entity st (Buffer.contents ent));
        go ()
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ()

let read_attribute st =
  let name = read_name st in
  skip_spaces st;
  expect st "=";
  skip_spaces st;
  let quote =
    match next st with
    | ('"' | '\'') as q -> q
    | _ -> error st "expected quoted attribute value"
  in
  let value = read_until st quote in
  expect st (String.make 1 quote);
  (name, value)

let rec skip_misc st =
  skip_spaces st;
  if looking_at st "<?" then begin
    while not (looking_at st "?>") do
      ignore (next st)
    done;
    expect st "?>";
    skip_misc st
  end
  else if looking_at st "<!--" then begin
    while not (looking_at st "-->") do
      ignore (next st)
    done;
    expect st "-->";
    skip_misc st
  end
  else if looking_at st "<!DOCTYPE" then begin
    (* Skip to the closing '>' of the doctype; internal subsets with
       brackets are rejected for simplicity. *)
    let rec go () =
      match next st with
      | '[' -> error st "DTD internal subsets are not supported"
      | '>' -> ()
      | _ -> go ()
    in
    go ();
    skip_misc st
  end

let rec parse_element st =
  expect st "<";
  let tag = read_name st in
  let rec attrs acc =
    skip_spaces st;
    match peek st with
    | Some '/' ->
        expect st "/>";
        Element (tag, List.rev acc, [])
    | Some '>' ->
        advance st;
        let children = parse_content st tag in
        Element (tag, List.rev acc, children)
    | Some _ -> attrs (read_attribute st :: acc)
    | None -> error st "unexpected end of input in tag"
  in
  attrs []

and parse_content st tag =
  let items = ref [] in
  let rec go () =
    if looking_at st "</" then begin
      expect st "</";
      let closing = read_name st in
      if closing <> tag then
        error st (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing tag);
      skip_spaces st;
      expect st ">"
    end
    else if looking_at st "<!--" then begin
      while not (looking_at st "-->") do
        ignore (next st)
      done;
      expect st "-->";
      go ()
    end
    else if looking_at st "<![CDATA[" then begin
      expect st "<![CDATA[";
      let buf = Buffer.create 32 in
      while not (looking_at st "]]>") do
        Buffer.add_char buf (next st)
      done;
      expect st "]]>";
      items := Text (Buffer.contents buf) :: !items;
      go ()
    end
    else if looking_at st "<?" then begin
      while not (looking_at st "?>") do
        ignore (next st)
      done;
      expect st "?>";
      go ()
    end
    else if looking_at st "<" then begin
      items := parse_element st :: !items;
      go ()
    end
    else begin
      let text = read_until st '<' in
      if String.trim text <> "" then items := Text text :: !items;
      go ()
    end
  in
  go ();
  List.rev !items

let parse_string src =
  let st = { src; pos = 0; line = 1 } in
  skip_misc st;
  if not (looking_at st "<") then error st "expected a root element";
  let root = parse_element st in
  skip_misc st;
  root

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_string (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(indent = true) t =
  let buf = Buffer.create 1024 in
  let rec emit depth t =
    let pad () =
      if indent then begin
        if Buffer.length buf > 0 then Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (2 * depth) ' ')
      end
    in
    match t with
    | Text s -> Buffer.add_string buf (escape s)
    | Element (tag, attrs, children) ->
        pad ();
        Buffer.add_char buf '<';
        Buffer.add_string buf tag;
        List.iter
          (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape v)))
          attrs;
        if children = [] then Buffer.add_string buf "/>"
        else begin
          Buffer.add_char buf '>';
          let only_elements = List.for_all (function Element _ -> true | Text _ -> false) children in
          List.iter (fun c -> emit (depth + 1) c) children;
          if indent && only_elements then begin
            Buffer.add_char buf '\n';
            Buffer.add_string buf (String.make (2 * depth) ' ')
          end;
          Buffer.add_string buf (Printf.sprintf "</%s>" tag)
        end
  in
  emit 0 t;
  Buffer.contents buf

let write_file ?indent path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
      output_string oc (to_string ?indent t);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let tag = function
  | Element (t, _, _) -> t
  | Text _ -> invalid_arg "Xml.tag: text node"

let attr name = function
  | Element (_, attrs, _) -> List.assoc_opt name attrs
  | Text _ -> None

let attr_exn name t = match attr name t with Some v -> v | None -> raise Not_found

let children = function Element (_, _, c) -> c | Text _ -> []

let child_elements t =
  List.filter (function Element _ -> true | Text _ -> false) (children t)

let find_children name t =
  List.filter (function Element (tag, _, _) -> tag = name | Text _ -> false) (children t)

let first_child name t = match find_children name t with [] -> None | c :: _ -> Some c

let rec text_content t =
  match t with
  | Text s -> s
  | Element (_, _, children) -> String.concat "" (List.map text_content children)

let text_content t = String.trim (text_content t)
