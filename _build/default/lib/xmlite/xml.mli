(** Minimal XML 1.0 reader/writer — just enough to carry GraphML.

    Supported: elements, attributes (single- or double-quoted), text
    nodes, comments, processing instructions and CDATA (skipped or
    captured as text), the five predefined entities and numeric
    character references.  Not supported (rejected): DTDs with internal
    subsets, namespaces beyond treating prefixed names as opaque
    strings.  This is a substrate, not a general XML library. *)

type t =
  | Element of string * (string * string) list * t list
      (** tag, attributes in document order, children *)
  | Text of string

exception Parse_error of { line : int; message : string }

val parse_string : string -> t
(** Parses a document and returns the root element.
    @raise Parse_error on malformed input. *)

val parse_file : string -> t

val to_string : ?indent:bool -> t -> string
(** Serialize with escaping; [indent] (default true) pretty-prints
    element-only content. *)

val write_file : ?indent:bool -> string -> t -> unit

(** {1 Convenience accessors} *)

val tag : t -> string
(** @raise Invalid_argument on a text node. *)

val attr : string -> t -> string option
val attr_exn : string -> t -> string
(** @raise Not_found when absent. *)

val children : t -> t list
val child_elements : t -> t list
val find_children : string -> t -> t list
(** Child elements with the given tag, in order. *)

val first_child : string -> t -> t option
val text_content : t -> string
(** Concatenated text descendants, trimmed. *)

val escape : string -> string
(** Entity-escape a string for use as attribute or text content. *)
