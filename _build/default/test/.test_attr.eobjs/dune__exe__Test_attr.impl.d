test/test_attr.ml: Alcotest Float Gen List Netembed_attr QCheck QCheck_alcotest
