test/test_attr.mli:
