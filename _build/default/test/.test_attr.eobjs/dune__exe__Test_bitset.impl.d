test/test_bitset.ml: Alcotest Fun List Netembed_bitset Printf QCheck QCheck_alcotest String
