test/test_expr.ml: Alcotest Array List Netembed_attr Netembed_expr QCheck QCheck_alcotest
