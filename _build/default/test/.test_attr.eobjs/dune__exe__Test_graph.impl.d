test/test_graph.ml: Alcotest Array Fun List Netembed_attr Netembed_graph Netembed_rng Netembed_topology Option QCheck QCheck_alcotest
