test/test_graphml.ml: Alcotest Filename Float Fun List Netembed_attr Netembed_graph Netembed_graphml Option QCheck QCheck_alcotest String Sys
