test/test_graphml.mli:
