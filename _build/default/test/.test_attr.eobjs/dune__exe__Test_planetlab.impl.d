test/test_planetlab.ml: Alcotest Filename Float Fun Netembed_attr Netembed_graph Netembed_planetlab Netembed_rng Option Sys
