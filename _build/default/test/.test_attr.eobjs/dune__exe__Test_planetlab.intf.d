test/test_planetlab.mli:
