test/test_rng.ml: Alcotest Array Float List Netembed_rng QCheck QCheck_alcotest
