test/test_service.ml: Alcotest Array Filename Fun List Netembed_attr Netembed_core Netembed_expr Netembed_graph Netembed_graphml Netembed_rng Netembed_service Option QCheck QCheck_alcotest Sys
