test/test_topology.ml: Alcotest Float List Netembed_attr Netembed_graph Netembed_rng Netembed_topology Option
