test/test_workload.ml: Alcotest Engine Filename Fun List Netembed_attr Netembed_core Netembed_graph Netembed_planetlab Netembed_rng Netembed_topology Netembed_workload Option Problem Sys
