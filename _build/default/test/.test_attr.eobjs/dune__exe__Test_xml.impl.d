test/test_xml.ml: Alcotest Char Filename Fun List Netembed_xml QCheck QCheck_alcotest String Sys
