  $ ../../bin/netembed_cli.exe generate --kind planetlab -n 40 --seed 2 -o host.graphml
  $ ../../bin/netembed_cli.exe info host.graphml | head -1
  $ cat > query.graphml <<'XML'
  > <graphml>
  >   <key id="d0" for="edge" attr.name="maxDelay" attr.type="double"/>
  >   <graph id="Q" edgedefault="undirected">
  >     <node id="a"/><node id="b"/><node id="c"/>
  >     <edge source="a" target="b"><data key="d0">400</data></edge>
  >     <edge source="b" target="c"><data key="d0">400</data></edge>
  >   </graph>
  > </graphml>
  > XML
  $ ../../bin/netembed_cli.exe embed --host host.graphml --query query.graphml \
  >   --constraint 'rEdge.avgDelay <= vEdge.maxDelay' --algorithm ecf --mode atmost:1 \
  >   | head -1 | sed 's/elapsed=[0-9.]*/elapsed=MS/'
  $ ../../bin/netembed_cli.exe embed --host host.graphml --query query.graphml \
  >   --constraint 'rEdge.>>>' 2>&1 | head -1; echo "exit=$?"
  $ cat > frame.txt <<'TXT'
  > EMBED alg=LNS mode=first timeout=5
  > CONSTRAINT rEdge.avgDelay < 500
  > GRAPHML
  > <graphml><graph edgedefault="undirected">
  > <node id="x"/><node id="y"/>
  > <edge source="x" target="y"/>
  > </graph></graphml>
  > .
  > TXT
  $ ../../bin/netembed_server.exe --host host.graphml < frame.txt | head -1 | sed 's/elapsed=[0-9.]*/elapsed=MS/'
  $ ../../bin/netembed_cli.exe generate --kind brite-ba -n 20 --seed 4 -o ba.graphml
  $ ../../bin/netembed_cli.exe convert ba.graphml ba.brite
  $ ../../bin/netembed_cli.exe convert ba.brite back.graphml
  $ head -1 ba.brite
  $ ../../bin/netembed_cli.exe embed --host host.graphml --query query.graphml \
  >   --constraint 'rEdge.avgDelay <= vEdge.maxDelay' --mode atmost:20 \
  >   --dedupe-symmetry --optimize total-delay \
  >   | head -1 | sed 's/elapsed=[0-9.]*/elapsed=MS/'
