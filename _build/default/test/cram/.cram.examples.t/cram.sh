  $ ../../examples/quickstart.exe | sed 's/[0-9.]* ms/T ms/' | head -8
