The quickstart example is deterministic apart from timings:

  $ ../../examples/quickstart.exe | sed 's/[0-9.]* ms/T ms/' | head -8
  Host:  demo-host: 5 nodes, 6 edges (undirected)
  Query: demo-query: 3 nodes, 2 edges (undirected)
  Constraint: rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay
  
  ECF: 4 embedding(s), outcome complete, T ms
     {0->0, 1->1,
  2->2}
     {0->3, 1->2,
