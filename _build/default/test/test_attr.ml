module Value = Netembed_attr.Value
module Attrs = Netembed_attr.Attrs
module Schema = Netembed_attr.Schema

let check = Alcotest.check
let fail_with = Alcotest.check_raises

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let test_value_equal () =
  check Alcotest.bool "int = int" true (Value.equal (Value.Int 3) (Value.Int 3));
  check Alcotest.bool "int = float cross" true (Value.equal (Value.Int 3) (Value.Float 3.0));
  check Alcotest.bool "float = int cross" true (Value.equal (Value.Float 3.0) (Value.Int 3));
  check Alcotest.bool "int <> float" false (Value.equal (Value.Int 3) (Value.Float 3.5));
  check Alcotest.bool "string" true (Value.equal (Value.String "a") (Value.String "a"));
  check Alcotest.bool "bool <> int" false (Value.equal (Value.Bool true) (Value.Int 1));
  check Alcotest.bool "range" true
    (Value.equal (Value.range 1.0 2.0) (Value.range 1.0 2.0))

let test_value_compare () =
  check Alcotest.bool "3 < 3.5" true (Value.compare (Value.Int 3) (Value.Float 3.5) < 0);
  check Alcotest.bool "3.5 > 3" true (Value.compare (Value.Float 3.5) (Value.Int 3) > 0);
  check Alcotest.int "3 = 3.0" 0 (Value.compare (Value.Int 3) (Value.Float 3.0))

let test_value_coercions () =
  check (Alcotest.float 0.0) "int to float" 4.0 (Value.to_float (Value.Int 4));
  check (Alcotest.float 0.0) "float to float" 2.5 (Value.to_float (Value.Float 2.5));
  check Alcotest.bool "bool" true (Value.to_bool (Value.Bool true));
  fail_with "to_float of string" (Value.Type_error "expected number, got string")
    (fun () -> ignore (Value.to_float (Value.String "x")));
  fail_with "to_bool of int" (Value.Type_error "expected bool, got int") (fun () ->
      ignore (Value.to_bool (Value.Int 1)))

let test_value_range () =
  let r = Value.range 1.5 9.0 in
  check (Alcotest.float 0.0) "lo" 1.5 (Value.range_lo r);
  check (Alcotest.float 0.0) "hi" 9.0 (Value.range_hi r);
  (* Degenerate ranges from plain numbers. *)
  check (Alcotest.float 0.0) "scalar lo" 4.0 (Value.range_lo (Value.Int 4));
  check (Alcotest.float 0.0) "scalar hi" 4.0 (Value.range_hi (Value.Float 4.0));
  Alcotest.check_raises "inverted" (Invalid_argument "Value.range: lo > hi") (fun () ->
      ignore (Value.range 2.0 1.0));
  Alcotest.check_raises "nan" (Invalid_argument "Value.range: NaN bound") (fun () ->
      ignore (Value.range Float.nan 1.0))

let test_value_parse () =
  check Alcotest.bool "bool true" true
    (Value.equal (Value.of_string_as `Bool "true") (Value.Bool true));
  check Alcotest.bool "bool 0" true
    (Value.equal (Value.of_string_as `Bool "0") (Value.Bool false));
  check Alcotest.bool "int" true (Value.equal (Value.of_string_as `Int " 42 ") (Value.Int 42));
  check Alcotest.bool "float" true
    (Value.equal (Value.of_string_as `Float "2.5") (Value.Float 2.5));
  check Alcotest.bool "string" true
    (Value.equal (Value.of_string_as `String "x y") (Value.String "x y"));
  (match Value.of_string_as `Int "nope" with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "expected Type_error")

let test_value_pp () =
  check Alcotest.string "int" "7" (Value.to_string (Value.Int 7));
  check Alcotest.string "float" "2.5" (Value.to_string (Value.Float 2.5));
  check Alcotest.string "range" "[1,2]" (Value.to_string (Value.range 1.0 2.0))

(* ------------------------------------------------------------------ *)
(* Attrs                                                               *)
(* ------------------------------------------------------------------ *)

let test_attrs_basic () =
  let a = Attrs.empty |> Attrs.add "x" (Value.Int 1) |> Attrs.add "y" (Value.Float 2.0) in
  check Alcotest.int "cardinal" 2 (Attrs.cardinal a);
  check Alcotest.bool "mem" true (Attrs.mem "x" a);
  check (Alcotest.option (Alcotest.float 0.0)) "float widens int" (Some 1.0) (Attrs.float "x" a);
  check (Alcotest.option (Alcotest.float 0.0)) "float" (Some 2.0) (Attrs.float "y" a);
  check (Alcotest.option Alcotest.string) "string miss" None (Attrs.string "x" a);
  let a = Attrs.remove "x" a in
  check Alcotest.bool "removed" false (Attrs.mem "x" a);
  check Alcotest.bool "find_exn raises" true
    (match Attrs.find_exn "x" a with exception Not_found -> true | _ -> false)

let test_attrs_union () =
  let a = Attrs.of_list [ ("x", Value.Int 1); ("y", Value.Int 2) ] in
  let b = Attrs.of_list [ ("y", Value.Int 9); ("z", Value.Int 3) ] in
  let u = Attrs.union a b in
  check (Alcotest.option (Alcotest.float 0.0)) "b wins" (Some 9.0) (Attrs.float "y" u);
  check Alcotest.int "all keys" 3 (Attrs.cardinal u)

let test_attrs_roundtrip =
  QCheck.Test.make ~name:"attrs of_list/to_list roundtrip" ~count:200
    QCheck.(small_list (pair (string_of_size (Gen.int_range 1 8)) small_int))
    (fun kvs ->
      let kvs = List.map (fun (k, v) -> (k, Value.Int v)) kvs in
      let attrs = Netembed_attr.Attrs.of_list kvs in
      (* Last binding per key wins; to_list is sorted and deduped. *)
      let expected =
        List.fold_left
          (fun acc (k, v) -> (k, v) :: List.remove_assoc k acc)
          [] kvs
        |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
      in
      List.length (Netembed_attr.Attrs.to_list attrs) = List.length expected
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> k1 = k2 && Netembed_attr.Value.equal v1 v2)
           (Netembed_attr.Attrs.to_list attrs)
           expected)

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)
(* ------------------------------------------------------------------ *)

let test_schema () =
  let e1 = { Schema.name = "delay"; domain = Schema.Edge; ty = `Float; default = None } in
  let e2 =
    {
      Schema.name = "os";
      domain = Schema.Node;
      ty = `String;
      default = Some (Value.String "linux");
    }
  in
  let s = Schema.empty |> Schema.add e1 |> Schema.add e2 in
  check Alcotest.int "entries" 2 (List.length (Schema.entries s));
  check Alcotest.bool "find edge key" true (Schema.find Schema.Edge "delay" s <> None);
  check Alcotest.bool "domain distinguishes" true (Schema.find Schema.Node "delay" s = None);
  let d = Schema.defaults Schema.Node s in
  check (Alcotest.option Alcotest.string) "default" (Some "linux") (Attrs.string "os" d);
  (* Re-adding the same entry is idempotent; conflicting type rejected. *)
  check Alcotest.int "idempotent" 2 (List.length (Schema.entries (Schema.add e1 s)));
  (match Schema.add { e1 with ty = `Int } s with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected type-conflict rejection")

let test_schema_infer () =
  let attrs = Attrs.of_list [ ("a", Value.Int 1); ("b", Value.String "s") ] in
  let s = Schema.infer Schema.Node attrs Schema.empty in
  check Alcotest.int "two inferred" 2 (List.length (Schema.entries s));
  match Schema.find Schema.Node "a" s with
  | Some e -> check Alcotest.bool "int type" true (e.Schema.ty = `Int)
  | None -> Alcotest.fail "missing inferred entry"

let () =
  Alcotest.run "attr"
    [
      ( "value",
        [
          Alcotest.test_case "equal" `Quick test_value_equal;
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "coercions" `Quick test_value_coercions;
          Alcotest.test_case "range" `Quick test_value_range;
          Alcotest.test_case "parse" `Quick test_value_parse;
          Alcotest.test_case "pp" `Quick test_value_pp;
        ] );
      ( "attrs",
        [
          Alcotest.test_case "basic" `Quick test_attrs_basic;
          Alcotest.test_case "union" `Quick test_attrs_union;
          QCheck_alcotest.to_alcotest test_attrs_roundtrip;
        ] );
      ( "schema",
        [
          Alcotest.test_case "declare" `Quick test_schema;
          Alcotest.test_case "infer" `Quick test_schema_infer;
        ] );
    ]
