module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Expr = Netembed_expr.Expr
module Rng = Netembed_rng.Rng
module Regular = Netembed_topology.Regular
open Netembed_core
open Netembed_baselines

let check = Alcotest.check

let delay d = Attrs.of_list [ ("avgDelay", Value.Float d) ]
let band lo hi = Attrs.of_list [ ("minDelay", Value.Float lo); ("maxDelay", Value.Float hi) ]

let small_host () =
  let g = Graph.create () in
  let v = Array.init 6 (fun _ -> Graph.add_node g Attrs.empty) in
  ignore (Graph.add_edge g v.(0) v.(1) (delay 10.0));
  ignore (Graph.add_edge g v.(1) v.(2) (delay 20.0));
  ignore (Graph.add_edge g v.(2) v.(3) (delay 10.0));
  ignore (Graph.add_edge g v.(3) v.(4) (delay 20.0));
  ignore (Graph.add_edge g v.(4) v.(5) (delay 10.0));
  ignore (Graph.add_edge g v.(5) v.(0) (delay 20.0));
  ignore (Graph.add_edge g v.(0) v.(3) (delay 15.0));
  g

let path_query k lo hi =
  let g = Graph.create () in
  let q = Array.init k (fun _ -> Graph.add_node g Attrs.empty) in
  for i = 0 to k - 2 do
    ignore (Graph.add_edge g q.(i) q.(i + 1) (band lo hi))
  done;
  g

let easy_problem () =
  Problem.make ~host:(small_host ()) ~query:(path_query 3 5.0 25.0) Expr.avg_delay_within

let infeasible_problem () =
  Problem.make ~host:(small_host ()) ~query:(path_query 3 100.0 200.0) Expr.avg_delay_within

(* ------------------------------------------------------------------ *)
(* Brute force                                                         *)
(* ------------------------------------------------------------------ *)

let test_bruteforce_matches_ecf () =
  let p = easy_problem () in
  let brute = List.sort_uniq Mapping.compare (Bruteforce.find_all p) in
  let ecf = List.sort_uniq Mapping.compare (Engine.find_all Engine.ECF p) in
  check Alcotest.int "same count" (List.length ecf) (List.length brute);
  check Alcotest.bool "same set" true (List.for_all2 Mapping.equal brute ecf);
  List.iter (fun m -> assert (Verify.is_valid p m)) brute

let test_bruteforce_first () =
  match Bruteforce.find_first (easy_problem ()) with
  | Some m -> check Alcotest.bool "valid" true (Verify.is_valid (easy_problem ()) m)
  | None -> Alcotest.fail "expected a solution"

let test_bruteforce_infeasible () =
  check Alcotest.int "none" 0 (List.length (Bruteforce.find_all (infeasible_problem ())));
  check Alcotest.bool "first none" true (Bruteforce.find_first (infeasible_problem ()) = None)

let test_bruteforce_timeout () =
  (* A large loose instance with a tiny timeout returns a partial set
     without hanging. *)
  let host = Regular.clique 12 in
  let query = Regular.clique 9 in
  let p = Problem.make ~host ~query Expr.always in
  let t0 = Unix.gettimeofday () in
  ignore (Bruteforce.find_all ~timeout:0.2 p);
  check Alcotest.bool "respected timeout" true (Unix.gettimeofday () -. t0 < 2.0)

(* ------------------------------------------------------------------ *)
(* Annealing                                                           *)
(* ------------------------------------------------------------------ *)

let test_annealing_finds_easy () =
  let p = easy_problem () in
  match Annealing.find_first ~rng:(Rng.make 1) p with
  | Some m -> check Alcotest.bool "valid" true (Verify.is_valid p m)
  | None -> Alcotest.fail "annealing failed on an easy instance"

let test_annealing_cost () =
  let p = easy_problem () in
  (* Identity assignment 0,1,2 is feasible -> cost 0. *)
  check Alcotest.int "feasible cost" 0 (Annealing.cost p [| 0; 1; 2 |]);
  (* Mapping q0,q1 to non-adjacent hosts violates an edge. *)
  check Alcotest.bool "violations counted" true (Annealing.cost p [| 0; 2; 4 |] > 0)

let test_annealing_never_invalid () =
  (* Whatever it returns must be verified; on infeasible instances it
     must return None (no convergence guarantee, but no false
     positives). *)
  let p = infeasible_problem () in
  check Alcotest.bool "no false positive" true
    (Annealing.find_first ~rng:(Rng.make 2) p = None)

(* ------------------------------------------------------------------ *)
(* Genetic                                                             *)
(* ------------------------------------------------------------------ *)

let test_genetic_finds_easy () =
  let p = easy_problem () in
  match Genetic.find_first ~rng:(Rng.make 3) p with
  | Some m -> check Alcotest.bool "valid" true (Verify.is_valid p m)
  | None -> Alcotest.fail "genetic failed on an easy instance"

let test_genetic_fitness () =
  let p = easy_problem () in
  (* Feasible assignment reaches max fitness |EQ| + |VQ| = 2 + 3. *)
  check Alcotest.int "max fitness" 5 (Genetic.fitness p [| 0; 1; 2 |]);
  check Alcotest.bool "partial fitness" true (Genetic.fitness p [| 0; 2; 4 |] < 5)

let test_genetic_no_false_positive () =
  let p = infeasible_problem () in
  check Alcotest.bool "no false positive" true
    (Genetic.find_first ~rng:(Rng.make 4) p = None)

(* ------------------------------------------------------------------ *)
(* SWORD                                                               *)
(* ------------------------------------------------------------------ *)

let test_sword_finds_easy () =
  let p = easy_problem () in
  match Sword.find_first p with
  | Some m -> check Alcotest.bool "valid" true (Verify.is_valid p m)
  | None -> Alcotest.fail "sword failed on an easy instance"

let test_sword_phase1 () =
  let p = easy_problem () in
  let cands = Sword.phase1_candidates ~params:{ Sword.pruning = Sword.Top_k 3; phase_timeout = 1.0 } p in
  check Alcotest.int "per query node" 3 (Array.length cands);
  Array.iter (fun c -> check Alcotest.bool "pruned to k" true (Array.length c <= 3)) cands

let test_sword_false_negative () =
  (* Demonstrate the paper's point: pruning can cause false negatives.
     Host: hub 0 with high score for every query node, but the only
     feasible embedding avoids the hub.  With First_only pruning each
     query node keeps exactly one candidate, making a match impossible
     while ECF still finds one. *)
  let host = small_host () in
  let query = path_query 4 5.0 25.0 in
  let p = Problem.make ~host ~query Expr.avg_delay_within in
  let ecf = Engine.find_first Engine.ECF p in
  check Alcotest.bool "ECF finds it" true (ecf <> None);
  let strict = { Sword.pruning = Sword.First_only; phase_timeout = 1.0 } in
  (* With one candidate per node, all query nodes may collide on the
     same host or fail edges; across this fixture it must miss. *)
  match Sword.find_first ~params:strict p with
  | None -> () (* false negative exhibited *)
  | Some m ->
      (* If it happens to find one, it must at least be valid. *)
      check Alcotest.bool "valid anyway" true (Verify.is_valid p m)

(* ------------------------------------------------------------------ *)
(* Zhu-Ammar                                                           *)
(* ------------------------------------------------------------------ *)

let test_zhu_ammar_embeds () =
  let t = Zhu_ammar.create (small_host ()) in
  match Zhu_ammar.embed ~edge_constraint:Expr.avg_delay_within t (path_query 3 5.0 25.0) with
  | Some m ->
      let p = Problem.make ~host:(small_host ()) ~query:(path_query 3 5.0 25.0) Expr.avg_delay_within in
      check Alcotest.bool "valid" true (Verify.is_valid p m);
      check Alcotest.int "stress accrued" 3 (Zhu_ammar.total_stress t)
  | None -> Alcotest.fail "zhu-ammar failed on an easy instance"

let test_zhu_ammar_balances_stress () =
  let t = Zhu_ammar.create (Regular.clique ~edge:(delay 10.0) 8) in
  let q () = path_query 2 5.0 15.0 in
  for _ = 1 to 4 do
    match Zhu_ammar.embed ~edge_constraint:Expr.avg_delay_within t (q ()) with
    | Some _ -> ()
    | None -> Alcotest.fail "embedding failed"
  done;
  (* 4 queries x 2 nodes over 8 hosts: stress spreads to 1 each. *)
  check Alcotest.int "total stress" 8 (Zhu_ammar.total_stress t);
  check Alcotest.int "max stress balanced" 1 (Zhu_ammar.max_stress t)

let test_zhu_ammar_incomplete () =
  (* Greedy no-backtracking placement misses embeddings ECF finds:
     host is a path a-b-c with a "tempting" low-stress wrong choice.
     Query: path of 3 with tight bands forcing the exact host path.
     Force wrong greedy start by pre-stressing. *)
  let host = Graph.create () in
  let v = Array.init 4 (fun _ -> Graph.add_node host Attrs.empty) in
  ignore (Graph.add_edge host v.(0) v.(1) (delay 10.0));
  ignore (Graph.add_edge host v.(1) v.(2) (delay 10.0));
  ignore (Graph.add_edge host v.(1) v.(3) (delay 50.0));
  let query = path_query 3 5.0 15.0 in
  let p = Problem.make ~host ~query Expr.avg_delay_within in
  check Alcotest.bool "ECF finds it" true (Engine.find_first Engine.ECF p <> None);
  (* Zhu-Ammar places the degree-2 middle node first (onto min-stress
     feasible host); whether it succeeds depends on tie-breaking.  The
     guarantee tested: a returned mapping is always valid. *)
  let t = Zhu_ammar.create host in
  match Zhu_ammar.embed ~edge_constraint:Expr.avg_delay_within t query with
  | Some m -> check Alcotest.bool "valid" true (Verify.is_valid p m)
  | None -> () (* incompleteness exhibited *)

let () =
  Alcotest.run "baselines"
    [
      ( "bruteforce",
        [
          Alcotest.test_case "matches ECF" `Quick test_bruteforce_matches_ecf;
          Alcotest.test_case "first" `Quick test_bruteforce_first;
          Alcotest.test_case "infeasible" `Quick test_bruteforce_infeasible;
          Alcotest.test_case "timeout" `Quick test_bruteforce_timeout;
        ] );
      ( "annealing",
        [
          Alcotest.test_case "finds easy" `Quick test_annealing_finds_easy;
          Alcotest.test_case "cost" `Quick test_annealing_cost;
          Alcotest.test_case "no false positives" `Quick test_annealing_never_invalid;
        ] );
      ( "genetic",
        [
          Alcotest.test_case "finds easy" `Quick test_genetic_finds_easy;
          Alcotest.test_case "fitness" `Quick test_genetic_fitness;
          Alcotest.test_case "no false positives" `Quick test_genetic_no_false_positive;
        ] );
      ( "sword",
        [
          Alcotest.test_case "finds easy" `Quick test_sword_finds_easy;
          Alcotest.test_case "phase 1 pruning" `Quick test_sword_phase1;
          Alcotest.test_case "false negatives possible" `Quick test_sword_false_negative;
        ] );
      ( "zhu-ammar",
        [
          Alcotest.test_case "embeds" `Quick test_zhu_ammar_embeds;
          Alcotest.test_case "balances stress" `Quick test_zhu_ammar_balances_stress;
          Alcotest.test_case "incomplete but sound" `Quick test_zhu_ammar_incomplete;
        ] );
    ]
