module Bitset = Netembed_bitset.Bitset

let check = Alcotest.check

let test_empty () =
  let s = Bitset.create 100 in
  check Alcotest.bool "empty" true (Bitset.is_empty s);
  check Alcotest.int "cardinal" 0 (Bitset.cardinal s);
  check Alcotest.bool "mem" false (Bitset.mem s 5);
  check (Alcotest.option Alcotest.int) "choose" None (Bitset.choose s)

let test_add_remove () =
  let s = Bitset.create 200 in
  Bitset.add s 0;
  Bitset.add s 61;
  Bitset.add s 62;
  Bitset.add s 63;
  Bitset.add s 199;
  check Alcotest.int "cardinal" 5 (Bitset.cardinal s);
  check Alcotest.bool "mem 62 (word boundary)" true (Bitset.mem s 62);
  check Alcotest.bool "mem 199" true (Bitset.mem s 199);
  check Alcotest.bool "not mem 100" false (Bitset.mem s 100);
  Bitset.remove s 62;
  check Alcotest.bool "removed" false (Bitset.mem s 62);
  check Alcotest.int "cardinal after remove" 4 (Bitset.cardinal s);
  (* Idempotent add. *)
  Bitset.add s 0;
  check Alcotest.int "idempotent" 4 (Bitset.cardinal s);
  Alcotest.check_raises "out of universe"
    (Invalid_argument "Bitset: index out of universe") (fun () -> Bitset.add s 200)

let test_full () =
  List.iter
    (fun n ->
      let s = Bitset.full n in
      check Alcotest.int (Printf.sprintf "full %d" n) n (Bitset.cardinal s);
      if n > 0 then begin
        check Alcotest.bool "first" true (Bitset.mem s 0);
        check Alcotest.bool "last" true (Bitset.mem s (n - 1))
      end)
    [ 0; 1; 61; 62; 63; 124; 300 ]

let test_elements_ordered () =
  let s = Bitset.of_list 150 [ 149; 3; 77; 0; 62 ] in
  check Alcotest.(list int) "ascending" [ 0; 3; 62; 77; 149 ] (Bitset.elements s)

let test_nth () =
  let s = Bitset.of_list 150 [ 5; 62; 63; 130 ] in
  check (Alcotest.option Alcotest.int) "0th" (Some 5) (Bitset.nth s 0);
  check (Alcotest.option Alcotest.int) "1st" (Some 62) (Bitset.nth s 1);
  check (Alcotest.option Alcotest.int) "2nd" (Some 63) (Bitset.nth s 2);
  check (Alcotest.option Alcotest.int) "3rd" (Some 130) (Bitset.nth s 3);
  check (Alcotest.option Alcotest.int) "4th" None (Bitset.nth s 4);
  check (Alcotest.option Alcotest.int) "negative" None (Bitset.nth s (-1))

let test_universe_mismatch () =
  let a = Bitset.create 10 and b = Bitset.create 20 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: universe mismatch")
    (fun () -> Bitset.inter_into ~dst:a b)

(* Model-based property tests: compare against sorted-int-list sets. *)

let gen_set n =
  QCheck.Gen.(
    map
      (fun l -> List.sort_uniq compare (List.filter (fun x -> x >= 0 && x < n) l))
      (small_list (int_range 0 (n - 1))))

let arbitrary_pair n =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "(%s, %s)"
        (String.concat "," (List.map string_of_int a))
        (String.concat "," (List.map string_of_int b)))
    QCheck.Gen.(pair (gen_set n) (gen_set n))

let model_test name op list_op =
  QCheck.Test.make ~name ~count:500 (arbitrary_pair 130) (fun (la, lb) ->
      let a = Bitset.of_list 130 la and b = Bitset.of_list 130 lb in
      let result = op a b in
      Bitset.elements result = list_op la lb)

let list_inter a b = List.filter (fun x -> List.mem x b) a
let list_union a b = List.sort_uniq compare (a @ b)
let list_diff a b = List.filter (fun x -> not (List.mem x b)) a

let prop_inter = model_test "inter matches model" Bitset.inter list_inter
let prop_union = model_test "union matches model" Bitset.union list_union
let prop_diff = model_test "diff matches model" Bitset.diff list_diff

let prop_cardinal =
  QCheck.Test.make ~name:"cardinal = |elements|" ~count:500
    (QCheck.make (gen_set 130))
    (fun l ->
      let s = Bitset.of_list 130 l in
      Bitset.cardinal s = List.length l && Bitset.elements s = l)

let prop_inplace_agree =
  QCheck.Test.make ~name:"in-place ops agree with pure ops" ~count:300
    (arbitrary_pair 130) (fun (la, lb) ->
      let a = Bitset.of_list 130 la and b = Bitset.of_list 130 lb in
      let i = Bitset.copy a in
      Bitset.inter_into ~dst:i b;
      let u = Bitset.copy a in
      Bitset.union_into ~dst:u b;
      let d = Bitset.copy a in
      Bitset.diff_into ~dst:d b;
      Bitset.equal i (Bitset.inter a b)
      && Bitset.equal u (Bitset.union a b)
      && Bitset.equal d (Bitset.diff a b))

let prop_nth_total =
  QCheck.Test.make ~name:"nth enumerates elements" ~count:300
    (QCheck.make (gen_set 130))
    (fun l ->
      let s = Bitset.of_list 130 l in
      List.for_all2
        (fun i x -> Bitset.nth s i = Some x)
        (List.init (List.length l) Fun.id)
        l)

let () =
  Alcotest.run "bitset"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "add/remove" `Quick test_add_remove;
          Alcotest.test_case "full" `Quick test_full;
          Alcotest.test_case "elements ordered" `Quick test_elements_ordered;
          Alcotest.test_case "nth" `Quick test_nth;
          Alcotest.test_case "universe mismatch" `Quick test_universe_mismatch;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_inter; prop_union; prop_diff; prop_cardinal; prop_inplace_agree; prop_nth_total ]
      );
    ]
