module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Expr = Netembed_expr.Expr
module Rng = Netembed_rng.Rng
module Hierarchical = Netembed_distributed.Hierarchical
module Trace = Netembed_planetlab.Trace
open Netembed_core

let check = Alcotest.check

let delay d = Attrs.of_list [ ("avgDelay", Value.Float d) ]
let band lo hi = Attrs.of_list [ ("minDelay", Value.Float lo); ("maxDelay", Value.Float hi) ]

(* Host with two labelled regions: a triangle in "west" (short links),
   a triangle in "east" (short links), joined by one long link. *)
let two_region_host () =
  let g = Graph.create () in
  let node region = Graph.add_node g (Attrs.of_list [ ("region", Value.String region) ]) in
  let w = Array.init 3 (fun _ -> node "west") in
  let e = Array.init 3 (fun _ -> node "east") in
  let triangle v =
    ignore (Graph.add_edge g v.(0) v.(1) (delay 5.0));
    ignore (Graph.add_edge g v.(1) v.(2) (delay 5.0));
    ignore (Graph.add_edge g v.(0) v.(2) (delay 5.0))
  in
  triangle w;
  triangle e;
  ignore (Graph.add_edge g w.(0) e.(0) (delay 100.0));
  g

let path_query k lo hi =
  let g = Graph.create () in
  let q = Array.init k (fun _ -> Graph.add_node g Attrs.empty) in
  for i = 0 to k - 2 do
    ignore (Graph.add_edge g q.(i) q.(i + 1) (band lo hi))
  done;
  g

let test_partition_by_attr () =
  let g = two_region_host () in
  let regions = Hierarchical.partition_by_attr g "region" in
  check Alcotest.int "two regions" 2 (List.length regions);
  check Alcotest.(list string) "names sorted" [ "east"; "west" ]
    (List.map (fun r -> r.Hierarchical.name) regions);
  List.iter
    (fun r ->
      check Alcotest.int "three nodes each" 3 (Graph.node_count r.Hierarchical.host);
      check Alcotest.int "intra-region edges only" 3 (Graph.edge_count r.Hierarchical.host))
    regions;
  (* Partition covers all nodes disjointly. *)
  let all =
    List.concat_map (fun r -> Array.to_list r.Hierarchical.to_global) regions
  in
  check Alcotest.(list int) "cover" [ 0; 1; 2; 3; 4; 5 ] (List.sort compare all)

let test_partition_missing_attr () =
  let g = two_region_host () in
  Graph.set_node_attrs g 0 Attrs.empty;
  let regions = Hierarchical.partition_by_attr g "region" in
  check Alcotest.int "extra <none> region" 3 (List.length regions)

let test_partition_balanced () =
  let g = Trace.generate (Rng.make 2) { Trace.default with Trace.sites = 60 } in
  let regions = Hierarchical.partition_balanced (Rng.make 3) g ~parts:4 in
  check Alcotest.int "four parts" 4 (List.length regions);
  let sizes = List.map (fun r -> Graph.node_count r.Hierarchical.host) regions in
  check Alcotest.int "cover all" 60 (List.fold_left ( + ) 0 sizes);
  List.iter
    (fun s -> if s < 5 then Alcotest.failf "region too small: %d" s)
    sizes;
  (* Disjoint. *)
  let all = List.concat_map (fun r -> Array.to_list r.Hierarchical.to_global) regions in
  check Alcotest.int "no overlap" 60 (List.length (List.sort_uniq compare all))

let test_embed_local () =
  let g = two_region_host () in
  let regions = Hierarchical.partition_by_attr g "region" in
  (* A short-delay triangle fits inside one region. *)
  let query = path_query 3 1.0 10.0 in
  match Hierarchical.embed_first g ~regions ~query Expr.avg_delay_within with
  | Hierarchical.Local (name, m) ->
      check Alcotest.bool "a real region" true (name = "west" || name = "east");
      let p = Problem.make ~host:g ~query Expr.avg_delay_within in
      check Alcotest.bool "valid globally" true (Verify.is_valid p m)
  | Hierarchical.Global _ -> Alcotest.fail "should embed locally"
  | Hierarchical.Not_found_anywhere -> Alcotest.fail "should embed"

let test_embed_global_fallback () =
  let g = two_region_host () in
  let regions = Hierarchical.partition_by_attr g "region" in
  (* Requires the 100ms inter-region link: no single region has it. *)
  let query = path_query 2 50.0 150.0 in
  match Hierarchical.embed_first g ~regions ~query Expr.avg_delay_within with
  | Hierarchical.Global m ->
      let p = Problem.make ~host:g ~query Expr.avg_delay_within in
      check Alcotest.bool "valid" true (Verify.is_valid p m)
  | Hierarchical.Local (name, _) -> Alcotest.failf "region %s cannot host this" name
  | Hierarchical.Not_found_anywhere -> Alcotest.fail "global view hosts it"

let test_embed_nowhere () =
  let g = two_region_host () in
  let regions = Hierarchical.partition_by_attr g "region" in
  let query = path_query 2 500.0 600.0 in
  match Hierarchical.embed_first g ~regions ~query Expr.avg_delay_within with
  | Hierarchical.Not_found_anywhere -> ()
  | _ -> Alcotest.fail "expected failure"

let test_embed_planetlab_regions () =
  (* End-to-end: the synthetic PlanetLab trace carries a region
     attribute; intra-continent queries should resolve locally. *)
  let g = Trace.generate (Rng.make 5) { Trace.default with Trace.sites = 80 } in
  let regions = Hierarchical.partition_by_attr g "region" in
  check Alcotest.bool "several continents" true (List.length regions >= 3);
  let query = path_query 3 1.0 120.0 in
  match
    Hierarchical.embed_first ~timeout_per_stage:5.0 g ~regions ~query
      Expr.avg_delay_within
  with
  | Hierarchical.Local (_, m) | Hierarchical.Global m ->
      let p = Problem.make ~host:g ~query Expr.avg_delay_within in
      check Alcotest.bool "valid" true (Verify.is_valid p m)
  | Hierarchical.Not_found_anywhere -> Alcotest.fail "should embed somewhere"

let () =
  Alcotest.run "distributed"
    [
      ( "partition",
        [
          Alcotest.test_case "by attribute" `Quick test_partition_by_attr;
          Alcotest.test_case "missing attribute" `Quick test_partition_missing_attr;
          Alcotest.test_case "balanced" `Quick test_partition_balanced;
        ] );
      ( "embed",
        [
          Alcotest.test_case "local" `Quick test_embed_local;
          Alcotest.test_case "global fallback" `Quick test_embed_global_fallback;
          Alcotest.test_case "nowhere" `Quick test_embed_nowhere;
          Alcotest.test_case "planetlab regions" `Quick test_embed_planetlab_regions;
        ] );
    ]
