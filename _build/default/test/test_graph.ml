module Graph = Netembed_graph.Graph
module Traversal = Netembed_graph.Traversal
module Paths = Netembed_graph.Paths
module Metrics = Netembed_graph.Metrics
module Sample = Netembed_graph.Sample
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Rng = Netembed_rng.Rng

let check = Alcotest.check

let attrs k v = Attrs.of_list [ (k, Value.Float v) ]

(* A small fixture: path 0-1-2-3 plus chord 0-2. *)
let fixture () =
  let g = Graph.create ~name:"fixture" () in
  let v = Array.init 4 (fun _ -> Graph.add_node g Attrs.empty) in
  let e01 = Graph.add_edge g v.(0) v.(1) (attrs "w" 1.0) in
  let e12 = Graph.add_edge g v.(1) v.(2) (attrs "w" 1.0) in
  let e23 = Graph.add_edge g v.(2) v.(3) (attrs "w" 5.0) in
  let e02 = Graph.add_edge g v.(0) v.(2) (attrs "w" 1.5) in
  (g, v, (e01, e12, e23, e02))

let test_counts () =
  let g, _, _ = fixture () in
  check Alcotest.int "nodes" 4 (Graph.node_count g);
  check Alcotest.int "edges" 4 (Graph.edge_count g);
  check Alcotest.string "name" "fixture" (Graph.name g)

let test_adjacency () =
  let g, v, (e01, _, _, e02) = fixture () in
  let nbrs = List.map fst (Graph.succ g v.(0)) |> List.sort compare in
  check Alcotest.(list int) "succ 0" [ v.(1); v.(2) ] nbrs;
  check Alcotest.int "degree 2" 3 (Graph.degree g v.(2));
  check (Alcotest.option Alcotest.int) "find_edge 0-1" (Some e01) (Graph.find_edge g v.(0) v.(1));
  check (Alcotest.option Alcotest.int) "find_edge reversed" (Some e01) (Graph.find_edge g v.(1) v.(0));
  check (Alcotest.option Alcotest.int) "no edge 1-3" None (Graph.find_edge g v.(1) v.(3));
  check Alcotest.(list int) "edges_between" [ e02 ] (Graph.edges_between g v.(0) v.(2));
  (* The index must rebuild after mutation. *)
  let e03 = Graph.add_edge g v.(0) v.(3) Attrs.empty in
  check Alcotest.(list int) "post-mutation lookup" [ e03 ] (Graph.edges_between g v.(0) v.(3))

let test_endpoints_attrs () =
  let g, v, (e01, _, e23, _) = fixture () in
  check (Alcotest.pair Alcotest.int Alcotest.int) "endpoints" (v.(0), v.(1)) (Graph.endpoints g e01);
  check (Alcotest.option (Alcotest.float 0.0)) "edge attr" (Some 5.0)
    (Attrs.float "w" (Graph.edge_attrs g e23));
  Graph.set_edge_attrs g e23 (attrs "w" 7.0);
  check (Alcotest.option (Alcotest.float 0.0)) "updated" (Some 7.0)
    (Attrs.float "w" (Graph.edge_attrs g e23))

let test_rejections () =
  let g, v, _ = fixture () in
  Alcotest.check_raises "self-loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> ignore (Graph.add_edge g v.(0) v.(0) Attrs.empty));
  Alcotest.check_raises "bad endpoint" (Invalid_argument "Graph.add_edge: unknown node")
    (fun () -> ignore (Graph.add_edge g v.(0) 99 Attrs.empty))

let test_directed () =
  let g = Graph.create ~kind:Graph.Directed () in
  let a = Graph.add_node g Attrs.empty and b = Graph.add_node g Attrs.empty in
  ignore (Graph.add_edge g a b Attrs.empty);
  check Alcotest.int "succ a" 1 (List.length (Graph.succ g a));
  check Alcotest.int "succ b" 0 (List.length (Graph.succ g b));
  check Alcotest.int "pred b" 1 (List.length (Graph.pred g b));
  check Alcotest.bool "a->b" true (Graph.mem_edge g a b);
  check Alcotest.bool "not b->a" false (Graph.mem_edge g b a);
  check Alcotest.int "in_degree b" 1 (Graph.in_degree g b);
  check Alcotest.int "out_degree b" 0 (Graph.out_degree g b)

let test_handshake () =
  (* Handshake lemma: sum of degrees = 2|E| for undirected graphs. *)
  let rng = Rng.make 13 in
  let g = Graph.create () in
  let n = 40 in
  let vs = Array.init n (fun _ -> Graph.add_node g Attrs.empty) in
  for _ = 1 to 120 do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then ignore (Graph.add_edge g vs.(u) vs.(v) Attrs.empty)
  done;
  let sum = Graph.fold_nodes (fun v acc -> acc + Graph.degree g v) g 0 in
  check Alcotest.int "handshake" (2 * Graph.edge_count g) sum

let test_copy_independent () =
  let g, v, (e01, _, _, _) = fixture () in
  let h = Graph.copy g in
  Graph.set_edge_attrs h e01 (attrs "w" 99.0);
  check (Alcotest.option (Alcotest.float 0.0)) "original untouched" (Some 1.0)
    (Attrs.float "w" (Graph.edge_attrs g e01));
  ignore (Graph.add_node h Attrs.empty);
  check Alcotest.int "original node count" 4 (Graph.node_count g);
  ignore v

let test_induced_subgraph () =
  let g, v, _ = fixture () in
  let sub, orig = Graph.induced_subgraph g [| v.(0); v.(1); v.(2) |] in
  check Alcotest.int "nodes" 3 (Graph.node_count sub);
  (* Edges among {0,1,2}: 0-1, 1-2, 0-2. *)
  check Alcotest.int "edges" 3 (Graph.edge_count sub);
  check Alcotest.(array int) "orig ids" [| v.(0); v.(1); v.(2) |] orig;
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Graph.induced_subgraph: duplicate node") (fun () ->
      ignore (Graph.induced_subgraph g [| v.(0); v.(0) |]))

let test_density () =
  let g, _, _ = fixture () in
  (* 4 edges of max 6. *)
  check (Alcotest.float 1e-9) "density" (4.0 /. 6.0) (Graph.density g)

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

let two_components () =
  let g = Graph.create () in
  let vs = Array.init 6 (fun _ -> Graph.add_node g Attrs.empty) in
  ignore (Graph.add_edge g vs.(0) vs.(1) Attrs.empty);
  ignore (Graph.add_edge g vs.(1) vs.(2) Attrs.empty);
  ignore (Graph.add_edge g vs.(3) vs.(4) Attrs.empty);
  (g, vs)

let test_components () =
  let g, _ = two_components () in
  let comps = Traversal.components g in
  check Alcotest.int "three components" 3 (Array.length comps);
  let sizes = Array.to_list (Array.map Array.length comps) |> List.sort compare in
  check Alcotest.(list int) "sizes" [ 1; 2; 3 ] sizes;
  (* Partition: every node in exactly one component. *)
  let all = Array.concat (Array.to_list comps) in
  Array.sort compare all;
  check Alcotest.(array int) "partition" (Array.init 6 Fun.id) all;
  check Alcotest.bool "not connected" false (Traversal.is_connected g)

let test_bfs_dfs () =
  let g, vs = two_components () in
  let bfs = Traversal.bfs_order g vs.(0) in
  check Alcotest.int "bfs covers component" 3 (Array.length bfs);
  check Alcotest.int "bfs starts at source" vs.(0) bfs.(0);
  let dfs = Traversal.dfs_order g vs.(0) in
  check Alcotest.int "dfs covers component" 3 (Array.length dfs)

let test_spanning_tree () =
  let g, v, _ = fixture () in
  let tree = Traversal.spanning_tree_edges g v.(0) in
  check Alcotest.int "n-1 edges" 3 (List.length tree)

let test_empty_graph () =
  let g = Graph.create () in
  check Alcotest.bool "empty is connected" true (Traversal.is_connected g);
  check Alcotest.int "no components" 0 (Array.length (Traversal.components g))

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let test_hops () =
  let g, v, _ = fixture () in
  let d = Paths.hops_from g v.(0) in
  check Alcotest.int "self" 0 d.(v.(0));
  check Alcotest.int "direct" 1 d.(v.(1));
  check Alcotest.int "chord" 1 d.(v.(2));
  check Alcotest.int "two hops" 2 d.(v.(3))

let test_dijkstra () =
  let g, v, _ = fixture () in
  let weight e = Option.get (Attrs.float "w" (Graph.edge_attrs g e)) in
  let dist, _parent = Paths.dijkstra g ~weight v.(0) in
  check (Alcotest.float 1e-9) "0->2 via chord" 1.5 dist.(v.(2));
  check (Alcotest.float 1e-9) "0->3" 6.5 dist.(v.(3));
  match Paths.shortest_path g ~weight v.(0) v.(3) with
  | Some (d, path) ->
      check (Alcotest.float 1e-9) "path dist" 6.5 d;
      check Alcotest.(list int) "path nodes" [ v.(0); v.(2); v.(3) ] path
  | None -> Alcotest.fail "expected a path"

let test_dijkstra_unreachable () =
  let g, vs = two_components () in
  let dist, _ = Paths.dijkstra g ~weight:(fun _ -> 1.0) vs.(0) in
  check Alcotest.bool "unreachable is inf" true (dist.(vs.(5)) = infinity)

let test_diameter () =
  let line = Netembed_topology.Regular.line 10 in
  check Alcotest.int "eccentricity of end" 9 (Paths.eccentricity line 0);
  let rng = Rng.make 3 in
  let d = Paths.diameter_approx line ~rng ~samples:4 in
  check Alcotest.int "line diameter" 9 d

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_degree_stats () =
  let g, _, _ = fixture () in
  let s = Metrics.degree_stats g in
  check Alcotest.int "min" 1 s.Metrics.min_degree;
  check Alcotest.int "max" 3 s.Metrics.max_degree;
  check (Alcotest.float 1e-9) "mean" 2.0 s.Metrics.mean_degree

let test_clustering () =
  let clique = Netembed_topology.Regular.clique 5 in
  check (Alcotest.float 1e-9) "clique cc = 1" 1.0 (Metrics.clustering_coefficient clique);
  let star = Netembed_topology.Regular.star 6 in
  check (Alcotest.float 1e-9) "star cc = 0" 0.0 (Metrics.clustering_coefficient star)

(* ------------------------------------------------------------------ *)
(* Sampling                                                            *)
(* ------------------------------------------------------------------ *)

let test_random_connected_nodes () =
  let rng = Rng.make 5 in
  let g = Netembed_topology.Regular.grid ~rows:6 6 in
  for _ = 1 to 20 do
    let sel = Sample.random_connected_nodes rng g 10 in
    check Alcotest.int "size" 10 (Array.length sel);
    let sub, _ = Graph.induced_subgraph g sel in
    check Alcotest.bool "connected" true (Traversal.is_connected sub)
  done

let test_random_connected_subgraph () =
  let rng = Rng.make 6 in
  let g = Netembed_topology.Regular.grid ~rows:6 6 in
  for extra = 0 to 5 do
    let sub, orig = Sample.random_connected_subgraph rng g ~n:12 ~extra_edges:extra in
    check Alcotest.int "nodes" 12 (Graph.node_count sub);
    check Alcotest.int "orig ids size" 12 (Array.length orig);
    check Alcotest.bool "connected" true (Traversal.is_connected sub);
    check Alcotest.bool "tree + extras" true (Graph.edge_count sub >= 11);
    (* Every subgraph edge exists in the host between the original ids. *)
    Graph.iter_edges
      (fun _ u v ->
        if not (Graph.mem_edge g orig.(u) orig.(v)) then
          Alcotest.fail "edge not in host")
      sub
  done

let test_sample_too_large () =
  let rng = Rng.make 7 in
  let g, _ = two_components () in
  (* No component has 5 nodes. *)
  match Sample.random_connected_nodes rng g 5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected failure"

let prop_subgraph_connected =
  QCheck.Test.make ~name:"sampled subgraphs are connected subgraphs" ~count:50
    QCheck.(pair small_int (int_range 3 20))
    (fun (seed, n) ->
      let rng = Rng.make seed in
      let host =
        Netembed_topology.Brite.generate (Rng.make (seed + 1))
          (Netembed_topology.Brite.default_barabasi ~n:40)
      in
      let n = min n (Graph.node_count host) in
      let sub, _ = Sample.random_connected_subgraph rng host ~n ~extra_edges:2 in
      Graph.node_count sub = n && Traversal.is_connected sub)

let () =
  Alcotest.run "graph"
    [
      ( "core",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "adjacency" `Quick test_adjacency;
          Alcotest.test_case "endpoints/attrs" `Quick test_endpoints_attrs;
          Alcotest.test_case "rejections" `Quick test_rejections;
          Alcotest.test_case "directed" `Quick test_directed;
          Alcotest.test_case "handshake" `Quick test_handshake;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "induced subgraph" `Quick test_induced_subgraph;
          Alcotest.test_case "density" `Quick test_density;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "bfs/dfs" `Quick test_bfs_dfs;
          Alcotest.test_case "spanning tree" `Quick test_spanning_tree;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
        ] );
      ( "paths",
        [
          Alcotest.test_case "hops" `Quick test_hops;
          Alcotest.test_case "dijkstra" `Quick test_dijkstra;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
          Alcotest.test_case "diameter" `Quick test_diameter;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "degree stats" `Quick test_degree_stats;
          Alcotest.test_case "clustering" `Quick test_clustering;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "connected nodes" `Quick test_random_connected_nodes;
          Alcotest.test_case "connected subgraph" `Quick test_random_connected_subgraph;
          Alcotest.test_case "too large" `Quick test_sample_too_large;
          QCheck_alcotest.to_alcotest prop_subgraph_connected;
        ] );
    ]
