module Graph = Netembed_graph.Graph
module Graphml = Netembed_graphml.Graphml
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value

let check = Alcotest.check

let sample_graph () =
  let g = Graph.create ~name:"sample" () in
  let a =
    Graph.add_node g
      (Attrs.of_list
         [ ("osType", Value.String "linux-2.6"); ("cpuMhz", Value.Int 2000) ])
  in
  let b = Graph.add_node g (Attrs.of_list [ ("osType", Value.String "linux-2.4") ]) in
  let c = Graph.add_node g Attrs.empty in
  ignore
    (Graph.add_edge g a b
       (Attrs.of_list [ ("avgDelay", Value.Float 12.5); ("up", Value.Bool true) ]));
  ignore (Graph.add_edge g b c (Attrs.of_list [ ("band", Value.range 1.0 9.0) ]));
  g

let test_roundtrip () =
  let g = sample_graph () in
  let h = Graphml.read_string (Graphml.write_string g) in
  check Alcotest.int "nodes" 3 (Graph.node_count h);
  check Alcotest.int "edges" 2 (Graph.edge_count h);
  check (Alcotest.option Alcotest.string) "node attr" (Some "linux-2.6")
    (Attrs.string "osType" (Graph.node_attrs h 0));
  check (Alcotest.option (Alcotest.float 0.0)) "int attr" (Some 2000.0)
    (Attrs.float "cpuMhz" (Graph.node_attrs h 0));
  check (Alcotest.option (Alcotest.float 0.0)) "edge float" (Some 12.5)
    (Attrs.float "avgDelay" (Graph.edge_attrs h 0));
  check Alcotest.bool "bool attr" true
    (Value.equal (Attrs.find_exn "up" (Graph.edge_attrs h 0)) (Value.Bool true));
  (* Range values survive through the _lo/_hi convention. *)
  check Alcotest.bool "range attr" true
    (Value.equal (Attrs.find_exn "band" (Graph.edge_attrs h 1)) (Value.range 1.0 9.0))

let test_directed_roundtrip () =
  let g = Graph.create ~kind:Graph.Directed () in
  let a = Graph.add_node g Attrs.empty and b = Graph.add_node g Attrs.empty in
  ignore (Graph.add_edge g a b Attrs.empty);
  let h = Graphml.read_string (Graphml.write_string g) in
  check Alcotest.bool "directed" true (Graph.kind h = Graph.Directed);
  check Alcotest.bool "a->b" true (Graph.mem_edge h 0 1);
  check Alcotest.bool "not b->a" false (Graph.mem_edge h 1 0)

let test_read_handwritten () =
  let doc =
    {|<?xml version="1.0"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key id="d0" for="edge" attr.name="avgDelay" attr.type="double"/>
  <key id="d1" for="node" attr.name="osType" attr.type="string"/>
  <graph id="G" edgedefault="undirected">
    <node id="alpha"><data key="d1">linux</data></node>
    <node id="beta"/>
    <edge id="e0" source="alpha" target="beta"><data key="d0">42.0</data></edge>
  </graph>
</graphml>|}
  in
  let g = Graphml.read_string doc in
  check Alcotest.int "nodes" 2 (Graph.node_count g);
  check Alcotest.string "graph name" "G" (Graph.name g);
  (* Node ids preserved as an attribute. *)
  check (Alcotest.option Alcotest.string) "id attr" (Some "alpha")
    (Attrs.string "id" (Graph.node_attrs g 0));
  check (Alcotest.option (Alcotest.float 0.0)) "edge data" (Some 42.0)
    (Attrs.float "avgDelay" (Graph.edge_attrs g 0))

let expect_error doc name =
  match Graphml.read_string doc with
  | exception Graphml.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected Graphml.Error" name

let test_errors () =
  expect_error "<graphml><graph><node/></graph></graphml>" "node without id";
  expect_error
    "<graphml><graph><node id=\"a\"/><node id=\"a\"/></graph></graphml>"
    "duplicate node id";
  expect_error
    "<graphml><graph><node id=\"a\"/><edge source=\"a\" target=\"zz\"/></graph></graphml>"
    "dangling endpoint";
  expect_error
    "<graphml><graph><node id=\"a\"><data key=\"nope\">1</data></node></graph></graphml>"
    "undeclared key";
  expect_error "<notgraphml/>" "wrong root";
  expect_error "<graphml></graphml>" "no graph";
  expect_error "not xml at all" "not xml"

let test_file_io () =
  let g = sample_graph () in
  let path = Filename.temp_file "netembed" ".graphml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Graphml.write_file g path;
      let h = Graphml.read_file path in
      check Alcotest.int "nodes" (Graph.node_count g) (Graph.node_count h);
      check Alcotest.int "edges" (Graph.edge_count g) (Graph.edge_count h))

let test_node_id_reuse () =
  (* Ids read from a file are reused on write. *)
  let doc =
    {|<graphml><graph edgedefault="undirected">
      <node id="custom-name"/><node id="other"/>
      <edge source="custom-name" target="other"/>
    </graph></graphml>|}
  in
  let g = Graphml.read_string doc in
  let out = Graphml.write_string g in
  let contains hay needle =
    let n = String.length needle in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "id preserved" true (contains out "custom-name")

(* Property: random attributed graphs survive a write/read cycle. *)

let gen_graph =
  let open QCheck.Gen in
  (* Each key name has a fixed type (as a real schema would); the
     mixed-type case is covered by the widening unit test below. *)
  let gen_attrs =
    let* i = opt (int_range (-100) 100) in
    let* f = opt (map (fun f -> Float.of_int f /. 4.0) (int_range 0 1000)) in
    let* b = opt bool in
    let* s = opt (map (fun s -> "s" ^ string_of_int s) (int_range 0 50)) in
    return
      (Attrs.of_list
         (List.filter_map Fun.id
            [
              Option.map (fun v -> ("ki", Value.Int v)) i;
              Option.map (fun v -> ("kf", Value.Float v)) f;
              Option.map (fun v -> ("kb", Value.Bool v)) b;
              Option.map (fun v -> ("ks", Value.String v)) s;
            ]))
  in
  let* n = int_range 1 12 in
  let* node_attrs = list_repeat n gen_attrs in
  let* extra = int_range 0 20 in
  let* edge_ends = list_repeat extra (pair (int_range 0 (n - 1)) (int_range 0 (n - 1))) in
  let* edge_attrs = list_repeat extra gen_attrs in
  let g = Graph.create ~name:"rand" () in
  List.iter (fun a -> ignore (Graph.add_node g a)) node_attrs;
  List.iter2
    (fun (u, v) a -> if u <> v then ignore (Graph.add_edge g u v a))
    edge_ends edge_attrs;
  return g

let attrs_equal_modulo_id a b =
  (* Import adds an "id" node attribute; ignore it. *)
  Attrs.equal (Attrs.remove "id" a) (Attrs.remove "id" b)

let prop_roundtrip_random =
  QCheck.Test.make ~name:"graphml roundtrip on random graphs" ~count:200
    (QCheck.make gen_graph)
    (fun g ->
      let h = Graphml.read_string (Graphml.write_string g) in
      Graph.node_count g = Graph.node_count h
      && Graph.edge_count g = Graph.edge_count h
      && List.for_all
           (fun v -> attrs_equal_modulo_id (Graph.node_attrs g v) (Graph.node_attrs h v))
           (List.init (Graph.node_count g) Fun.id)
      && List.for_all
           (fun e ->
             Graph.endpoints g e = Graph.endpoints h e
             && Attrs.equal (Graph.edge_attrs g e) (Graph.edge_attrs h e))
           (List.init (Graph.edge_count g) Fun.id))

let test_type_widening () =
  (* The same attribute name with conflicting types must still produce
     a readable document: int+float widens to float, others to string. *)
  let g = Graph.create () in
  let a = Graph.add_node g (Attrs.of_list [ ("n", Value.Int 3); ("m", Value.Int 1) ]) in
  let b = Graph.add_node g (Attrs.of_list [ ("n", Value.Float 2.5); ("m", Value.Bool true) ]) in
  ignore (Graph.add_edge g a b Attrs.empty);
  let h = Graphml.read_string (Graphml.write_string g) in
  (* int+float -> float: numeric equality preserved. *)
  check (Alcotest.option (Alcotest.float 1e-9)) "n on a" (Some 3.0)
    (Attrs.float "n" (Graph.node_attrs h a));
  check (Alcotest.option (Alcotest.float 1e-9)) "n on b" (Some 2.5)
    (Attrs.float "n" (Graph.node_attrs h b));
  (* int+bool -> string: stringified but readable. *)
  check (Alcotest.option Alcotest.string) "m on a" (Some "1")
    (Attrs.string "m" (Graph.node_attrs h a));
  check (Alcotest.option Alcotest.string) "m on b" (Some "true")
    (Attrs.string "m" (Graph.node_attrs h b))

let () =
  Alcotest.run "graphml"
    [
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "directed" `Quick test_directed_roundtrip;
          Alcotest.test_case "handwritten" `Quick test_read_handwritten;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "file io" `Quick test_file_io;
          Alcotest.test_case "node id reuse" `Quick test_node_id_reuse;
          QCheck_alcotest.to_alcotest prop_roundtrip_random;
          Alcotest.test_case "type widening" `Quick test_type_widening;
        ] );
    ]
