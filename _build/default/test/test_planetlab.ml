module Graph = Netembed_graph.Graph
module Trace = Netembed_planetlab.Trace
module Attrs = Netembed_attr.Attrs
module Rng = Netembed_rng.Rng

let check = Alcotest.check

let generate seed = Trace.generate (Rng.make seed) Trace.default

let test_size () =
  let g = generate 1 in
  check Alcotest.int "296 sites" 296 (Graph.node_count g);
  (* Paper: 28,996 measured edges; the calibrated generator should land
     within a few percent. *)
  let edges = Graph.edge_count g in
  if edges < 26_000 || edges > 32_000 then
    Alcotest.failf "edge count %d too far from 28,996" edges

let test_delay_invariants () =
  let g = generate 2 in
  Graph.iter_edges
    (fun e _ _ ->
      let a = Graph.edge_attrs g e in
      let mn = Option.get (Attrs.float "minDelay" a) in
      let avg = Option.get (Attrs.float "avgDelay" a) in
      let mx = Option.get (Attrs.float "maxDelay" a) in
      if not (0.0 < mn && mn <= avg && avg <= mx) then
        Alcotest.failf "delay band violated: %g %g %g" mn avg mx)
    g

let test_delay_calibration () =
  let g = generate 3 in
  (* Paper quantiles: ~23% of links in [10,100] ms (6,700 of 28,996),
     ~70% in [25,175] ms.  Accept generous windows. *)
  let f1 = Trace.delay_fraction_in g ~lo:10.0 ~hi:100.0 in
  let f2 = Trace.delay_fraction_in g ~lo:25.0 ~hi:175.0 in
  if f1 < 0.15 || f1 > 0.40 then Alcotest.failf "[10,100] fraction %.3f off" f1;
  if f2 < 0.60 || f2 > 0.80 then Alcotest.failf "[25,175] fraction %.3f off" f2

let test_site_metadata () =
  let g = generate 4 in
  Graph.iter_nodes
    (fun v ->
      let a = Graph.node_attrs g v in
      if Attrs.string "name" a = None then Alcotest.fail "missing name";
      (match Attrs.string "region" a with
      | Some ("na" | "eu" | "as" | "oc") -> ()
      | Some r -> Alcotest.failf "unknown region %s" r
      | None -> Alcotest.fail "missing region");
      if Attrs.string "osType" a = None then Alcotest.fail "missing osType";
      if Attrs.float "cpuMhz" a = None then Alcotest.fail "missing cpuMhz")
    g

let test_down_sites () =
  let g = generate 5 in
  (* Some sites are down: they have no edges but still exist. *)
  let isolated = Graph.fold_nodes (fun v acc -> if Graph.degree g v = 0 then acc + 1 else acc) g 0 in
  check Alcotest.bool "some sites down" true (isolated > 0);
  check Alcotest.bool "most sites up" true (isolated < 30)

let test_not_a_clique () =
  let g = generate 6 in
  (* "the underlying graph is not a clique" *)
  check Alcotest.bool "density < 1" true (Graph.density g < 0.9);
  check Alcotest.bool "but dense" true (Graph.density g > 0.4)

let test_determinism () =
  let g1 = generate 7 and g2 = generate 7 in
  check Alcotest.int "same edge count" (Graph.edge_count g1) (Graph.edge_count g2);
  check Alcotest.bool "same first-edge attrs" true
    (Attrs.equal (Graph.edge_attrs g1 0) (Graph.edge_attrs g2 0))

let test_save_load_roundtrip () =
  let g = Trace.generate (Rng.make 8) { Trace.default with Trace.sites = 40 } in
  let path = Filename.temp_file "netembed" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save g path;
      let h = Trace.load path in
      check Alcotest.int "nodes" (Graph.node_count g) (Graph.node_count h);
      check Alcotest.int "edges" (Graph.edge_count g) (Graph.edge_count h);
      (* Spot-check attrs survive (delays rounded to 3 decimals). *)
      Graph.iter_edges
        (fun e _ _ ->
          let a = Graph.edge_attrs g e and b = Graph.edge_attrs h e in
          let close k =
            match (Attrs.float k a, Attrs.float k b) with
            | Some x, Some y -> Float.abs (x -. y) < 0.001
            | _ -> false
          in
          if not (close "minDelay" && close "avgDelay" && close "maxDelay") then
            Alcotest.fail "delays not preserved")
        g;
      (* Site metadata preserved. *)
      Graph.iter_nodes
        (fun v ->
          if
            Attrs.string "region" (Graph.node_attrs g v)
            <> Attrs.string "region" (Graph.node_attrs h v)
          then Alcotest.fail "region not preserved")
        g)

let test_load_malformed () =
  let path = Filename.temp_file "netembed" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "#sites 2\nnot a valid line at all\n";
      close_out oc;
      match Trace.load path with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "expected Failure")

let test_small_params () =
  let g = Trace.generate (Rng.make 9) { Trace.sites = 10; down_fraction = 0.0; pair_success = 1.0 } in
  check Alcotest.int "clique when all up+measured" 45 (Graph.edge_count g);
  match Trace.generate (Rng.make 9) { Trace.default with Trace.sites = 1 } with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection"

let () =
  Alcotest.run "planetlab"
    [
      ( "trace",
        [
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "delay invariants" `Quick test_delay_invariants;
          Alcotest.test_case "delay calibration" `Quick test_delay_calibration;
          Alcotest.test_case "site metadata" `Quick test_site_metadata;
          Alcotest.test_case "down sites" `Quick test_down_sites;
          Alcotest.test_case "not a clique" `Quick test_not_a_clique;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "io",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_save_load_roundtrip;
          Alcotest.test_case "malformed input" `Quick test_load_malformed;
          Alcotest.test_case "small params" `Quick test_small_params;
        ] );
    ]
