module Graph = Netembed_graph.Graph
module Traversal = Netembed_graph.Traversal
module Metrics = Netembed_graph.Metrics
module Regular = Netembed_topology.Regular
module Brite = Netembed_topology.Brite
module Transit_stub = Netembed_topology.Transit_stub
module Composite = Netembed_topology.Composite
module Attrs = Netembed_attr.Attrs
module Rng = Netembed_rng.Rng

let check = Alcotest.check

let counts name g (nodes, edges) =
  check Alcotest.int (name ^ " nodes") nodes (Graph.node_count g);
  check Alcotest.int (name ^ " edges") edges (Graph.edge_count g);
  check Alcotest.bool (name ^ " connected") true (Traversal.is_connected g)

let test_ring () =
  counts "ring 7" (Regular.ring 7) (7, 7);
  Graph.iter_nodes
    (fun v -> check Alcotest.int "ring degree" 2 (Graph.degree (Regular.ring 7) v))
    (Regular.ring 7);
  Alcotest.check_raises "ring 2" (Invalid_argument "Regular.ring: n < 3") (fun () ->
      ignore (Regular.ring 2))

let test_star () =
  let g = Regular.star 8 in
  counts "star 8" g (8, 7);
  check Alcotest.int "hub degree" 7 (Graph.degree g 0)

let test_clique () =
  counts "clique 6" (Regular.clique 6) (6, 15);
  counts "clique 1" (Regular.clique 1) (1, 0)

let test_line () = counts "line 5" (Regular.line 5) (5, 4)

let test_tree () =
  (* Complete binary tree of depth 3: 1+2+4+8 = 15 nodes, 14 edges. *)
  counts "tree 2^3" (Regular.balanced_tree ~arity:2 3) (15, 14);
  counts "tree depth 0" (Regular.balanced_tree ~arity:3 0) (1, 0)

let test_grid () =
  (* 3x4 grid: 12 nodes, 3*3 + 2*4 = 17 edges. *)
  counts "grid 3x4" (Regular.grid ~rows:3 4) (12, 17)

let test_torus () =
  (* Torus rows*cols nodes, 2*rows*cols edges. *)
  counts "torus 3x4" (Regular.torus ~rows:3 4) (12, 24);
  Graph.iter_nodes
    (fun v -> check Alcotest.int "torus degree" 4 (Graph.degree (Regular.torus ~rows:3 4) v))
    (Regular.torus ~rows:3 4)

let test_hypercube () =
  (* d-cube: 2^d nodes, d * 2^(d-1) edges. *)
  counts "hypercube 4" (Regular.hypercube 4) (16, 32);
  Graph.iter_nodes
    (fun v -> check Alcotest.int "cube degree" 4 (Graph.degree (Regular.hypercube 4) v))
    (Regular.hypercube 4)

let test_of_shape () =
  List.iter
    (fun shape ->
      let g = Regular.of_shape shape 12 in
      check Alcotest.bool
        (Regular.shape_name shape ^ " connected")
        true (Traversal.is_connected g);
      check Alcotest.bool
        (Regular.shape_name shape ^ " size near request")
        true
        (Graph.node_count g >= 8))
    [ Regular.Ring; Regular.Star; Regular.Clique; Regular.Line; Regular.Tree 2;
      Regular.Grid; Regular.Torus; Regular.Hypercube ]

let test_edge_attrs_stamped () =
  let edge = Attrs.of_list [ ("minDelay", Netembed_attr.Value.Float 1.0) ] in
  let g = Regular.ring ~edge 5 in
  Graph.iter_edges
    (fun e _ _ ->
      check Alcotest.bool "edge attr present" true
        (Attrs.mem "minDelay" (Graph.edge_attrs g e)))
    g

(* ------------------------------------------------------------------ *)
(* BRITE                                                               *)
(* ------------------------------------------------------------------ *)

let test_brite_ba () =
  let rng = Rng.make 42 in
  let g = Brite.generate rng (Brite.default_barabasi ~n:300) in
  check Alcotest.int "n" 300 (Graph.node_count g);
  (* Incremental growth with m=2: 1 + 2*(n-2) edges. *)
  check Alcotest.int "edges ~2n" (1 + (2 * 298)) (Graph.edge_count g);
  check Alcotest.bool "connected" true (Traversal.is_connected g);
  (* Preferential attachment yields a heavy tail: hub degree >> mean. *)
  let s = Metrics.degree_stats g in
  check Alcotest.bool "hub exists" true
    (float_of_int s.Metrics.max_degree > 3.0 *. s.Metrics.mean_degree)

let test_brite_waxman () =
  let rng = Rng.make 43 in
  let g = Brite.generate rng (Brite.default_waxman ~n:200) in
  check Alcotest.int "n" 200 (Graph.node_count g);
  check Alcotest.bool "connected" true (Traversal.is_connected g);
  check Alcotest.bool "edges >= n-1" true (Graph.edge_count g >= 199)

let test_brite_attrs () =
  let rng = Rng.make 44 in
  let g = Brite.generate rng (Brite.default_barabasi ~n:50) in
  Graph.iter_edges
    (fun e _ _ ->
      let a = Graph.edge_attrs g e in
      let mn = Option.get (Attrs.float "minDelay" a) in
      let avg = Option.get (Attrs.float "avgDelay" a) in
      let mx = Option.get (Attrs.float "maxDelay" a) in
      if not (mn <= avg && avg <= mx && mn > 0.0) then
        Alcotest.fail "delay band violated";
      if Option.get (Attrs.float "bandwidth" a) <= 0.0 then
        Alcotest.fail "bandwidth not positive")
    g;
  Graph.iter_nodes
    (fun v ->
      let a = Graph.node_attrs g v in
      if Attrs.float "x" a = None || Attrs.float "y" a = None then
        Alcotest.fail "missing coordinates")
    g;
  check Alcotest.bool "distance positive" true (Brite.edge_distance g 0 >= 0.0)

let test_brite_rejects () =
  let rng = Rng.make 45 in
  Alcotest.check_raises "n < 2" (Invalid_argument "Brite.generate: n < 2") (fun () ->
      ignore (Brite.generate rng { (Brite.default_waxman ~n:1) with Brite.n = 1 }))

let test_brite_determinism () =
  let g1 = Brite.generate (Rng.make 7) (Brite.default_barabasi ~n:80) in
  let g2 = Brite.generate (Rng.make 7) (Brite.default_barabasi ~n:80) in
  check Alcotest.int "same edges" (Graph.edge_count g1) (Graph.edge_count g2);
  let ok = ref true in
  Graph.iter_edges
    (fun e u v ->
      let u', v' = Graph.endpoints g2 e in
      if u <> u' || v <> v' then ok := false)
    g1;
  check Alcotest.bool "same structure" true !ok

(* ------------------------------------------------------------------ *)
(* Transit-stub                                                        *)
(* ------------------------------------------------------------------ *)

let test_transit_stub () =
  let rng = Rng.make 46 in
  let p = Transit_stub.default in
  let g = Transit_stub.generate rng p in
  let expected_nodes =
    p.Transit_stub.transit_nodes
    + (p.Transit_stub.transit_nodes * p.Transit_stub.stubs_per_transit * p.Transit_stub.stub_size)
  in
  check Alcotest.int "node count" expected_nodes (Graph.node_count g);
  check Alcotest.bool "connected" true (Traversal.is_connected g);
  (* Tier attributes present. *)
  let transit = ref 0 and stub = ref 0 in
  Graph.iter_nodes
    (fun v ->
      match Attrs.string "tier" (Graph.node_attrs g v) with
      | Some "transit" -> incr transit
      | Some "stub" -> incr stub
      | Some _ | None -> Alcotest.fail "missing tier")
    g;
  check Alcotest.int "transit tier" p.Transit_stub.transit_nodes !transit;
  check Alcotest.int "stub tier" (expected_nodes - p.Transit_stub.transit_nodes) !stub

let test_transit_stub_delays () =
  let rng = Rng.make 47 in
  let p = Transit_stub.default in
  let g = Transit_stub.generate rng p in
  Graph.iter_edges
    (fun e _ _ ->
      let a = Graph.edge_attrs g e in
      let mn = Option.get (Attrs.float "minDelay" a) in
      let mx = Option.get (Attrs.float "maxDelay" a) in
      if mn > mx || mn <= 0.0 then Alcotest.fail "bad delay band")
    g

(* ------------------------------------------------------------------ *)
(* Composite                                                           *)
(* ------------------------------------------------------------------ *)

let test_composite_structure () =
  let spec =
    { Composite.root = Regular.Ring; groups = 4; group = Regular.Star; group_size = 5 }
  in
  let g = Composite.generate spec in
  check Alcotest.int "node count" (Composite.node_count spec) (Graph.node_count g);
  check Alcotest.int "node count formula" 20 (Graph.node_count g);
  check Alcotest.bool "connected" true (Traversal.is_connected g);
  (* 4 gateways (root level), the rest leaves. *)
  let roots = ref 0 in
  Graph.iter_nodes
    (fun v ->
      if Attrs.string "level" (Graph.node_attrs g v) = Some "root" then incr roots)
    g;
  check Alcotest.int "gateways" 4 !roots;
  (* Root ring has 4 edges; each star of 5 has 4 edges -> 4 + 16. *)
  check Alcotest.int "edges" 20 (Graph.edge_count g);
  let root_edges = ref 0 and group_edges = ref 0 in
  Graph.iter_edges
    (fun e _ _ ->
      match Attrs.string "level" (Graph.edge_attrs g e) with
      | Some "root" -> incr root_edges
      | Some "group" -> incr group_edges
      | Some _ | None -> Alcotest.fail "missing edge level")
    g;
  check Alcotest.int "root edges" 4 !root_edges;
  check Alcotest.int "group edges" 16 !group_edges

let test_composite_single_node_groups () =
  let spec =
    { Composite.root = Regular.Clique; groups = 5; group = Regular.Ring; group_size = 1 }
  in
  let g = Composite.generate spec in
  check Alcotest.int "degenerates to root" 5 (Graph.node_count g);
  check Alcotest.int "clique edges" 10 (Graph.edge_count g)

let test_composite_rejects () =
  Alcotest.check_raises "groups < 2" (Invalid_argument "Composite.generate: groups < 2")
    (fun () ->
      ignore
        (Composite.generate
           { Composite.root = Regular.Ring; groups = 1; group = Regular.Ring; group_size = 3 }))

module Overlay = Netembed_topology.Overlay

let test_overlay_full_mesh () =
  let rng = Rng.make 50 in
  let underlay = Brite.generate (Rng.make 51) (Brite.default_barabasi ~n:80) in
  let o = Overlay.build rng ~underlay ~nodes:12 ~mesh:Overlay.Full_mesh in
  check Alcotest.int "nodes" 12 (Graph.node_count o);
  check Alcotest.int "clique" 66 (Graph.edge_count o);
  (* Delays are path delays: positive, triangle-inequality-ish. *)
  Graph.iter_edges
    (fun e _ _ ->
      let a = Graph.edge_attrs o e in
      let avg = Option.get (Attrs.float "avgDelay" a) in
      let hops = Option.get (Attrs.float "hops" a) in
      if avg <= 0.0 || hops < 1.0 then Alcotest.fail "bad overlay link")
    o;
  (* Router back-references are distinct underlay nodes. *)
  let routers =
    Graph.fold_nodes
      (fun v acc -> Option.get (Attrs.float "router" (Graph.node_attrs o v)) :: acc)
      o []
  in
  check Alcotest.int "distinct routers" 12 (List.length (List.sort_uniq compare routers))

let test_overlay_nearest () =
  let rng = Rng.make 52 in
  let underlay = Brite.generate (Rng.make 53) (Brite.default_barabasi ~n:80) in
  let o = Overlay.build rng ~underlay ~nodes:15 ~mesh:(Overlay.Nearest 3) in
  check Alcotest.int "nodes" 15 (Graph.node_count o);
  (* Between k*n/2 (all shared) and k*n (no shared) edges. *)
  check Alcotest.bool "edge count in range" true
    (Graph.edge_count o >= (3 * 15) / 2 && Graph.edge_count o <= 3 * 15);
  Graph.iter_nodes
    (fun v -> if Graph.degree o v < 3 then Alcotest.fail "node under-connected")
    o

let test_overlay_rejects () =
  let underlay = Brite.generate (Rng.make 54) (Brite.default_barabasi ~n:10) in
  let rng = Rng.make 55 in
  (match Overlay.build rng ~underlay ~nodes:1 ~mesh:Overlay.Full_mesh with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nodes < 2");
  (match Overlay.build rng ~underlay ~nodes:11 ~mesh:Overlay.Full_mesh with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nodes > routers");
  match Overlay.build rng ~underlay ~nodes:4 ~mesh:(Overlay.Nearest 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k < 1"

module Brite_format = Netembed_topology.Brite_format

let test_brite_format_roundtrip () =
  let g = Brite.generate (Rng.make 60) (Brite.default_barabasi ~n:40) in
  let h = Brite_format.read_string (Brite_format.write_string g) in
  check Alcotest.int "nodes" 40 (Graph.node_count h);
  check Alcotest.int "edges" (Graph.edge_count g) (Graph.edge_count h);
  (* Delays survive (written at 3 decimals). *)
  Graph.iter_edges
    (fun e _ _ ->
      let orig = Option.get (Attrs.float "avgDelay" (Graph.edge_attrs g e)) in
      let got = Option.get (Attrs.float "avgDelay" (Graph.edge_attrs h e)) in
      if Float.abs (orig -. got) > 0.001 then Alcotest.fail "delay not preserved")
    g;
  (* Coordinates survive (written at 2 decimals). *)
  Graph.iter_nodes
    (fun v ->
      let orig = Option.get (Attrs.float "x" (Graph.node_attrs g v)) in
      let got = Option.get (Attrs.float "x" (Graph.node_attrs h v)) in
      if Float.abs (orig -. got) > 0.01 then Alcotest.fail "x not preserved")
    g

let test_brite_format_handwritten () =
  let text = {|Topology: ( 3 Nodes, 2 Edges )
Model ( 2 ): Waxman

Nodes: ( 3 )
0 10.0 20.0 1 1 -1 RT_NODE
1 30.0 40.0 2 2 -1 RT_NODE
2 50.0 60.0 1 1 -1 RT_NODE

Edges: ( 2 )
0 0 1 22.36 0.15 10.0 -1 -1 E_RT U
1 1 2 28.28 0.19 100.0 -1 -1 E_RT U
|} in
  let g = Brite_format.read_string text in
  check Alcotest.int "nodes" 3 (Graph.node_count g);
  check Alcotest.int "edges" 2 (Graph.edge_count g);
  check (Alcotest.option (Alcotest.float 1e-9)) "delay" (Some 0.15)
    (Attrs.float "avgDelay" (Graph.edge_attrs g 0));
  check (Alcotest.option (Alcotest.float 1e-9)) "bandwidth" (Some 100.0)
    (Attrs.float "bandwidth" (Graph.edge_attrs g 1));
  check (Alcotest.option (Alcotest.float 1e-9)) "x" (Some 30.0)
    (Attrs.float "x" (Graph.node_attrs g 1))

let test_brite_format_errors () =
  (match Brite_format.read_string "garbage with no sections" with
  | exception Brite_format.Error _ -> ()
  | _ -> Alcotest.fail "expected Error on missing sections");
  match
    Brite_format.read_string
      "Nodes: ( 1 )
0 1.0 2.0 0 0 -1 RT
Edges: ( 1 )
0 0 99 1 1 1 -1 -1 E U
"
  with
  | exception Brite_format.Error _ -> ()
  | _ -> Alcotest.fail "expected Error on dangling edge"

let () =
  Alcotest.run "topology"
    [
      ( "regular",
        [
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "star" `Quick test_star;
          Alcotest.test_case "clique" `Quick test_clique;
          Alcotest.test_case "line" `Quick test_line;
          Alcotest.test_case "tree" `Quick test_tree;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "torus" `Quick test_torus;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "of_shape" `Quick test_of_shape;
          Alcotest.test_case "edge attrs" `Quick test_edge_attrs_stamped;
        ] );
      ( "brite",
        [
          Alcotest.test_case "barabasi-albert" `Quick test_brite_ba;
          Alcotest.test_case "waxman" `Quick test_brite_waxman;
          Alcotest.test_case "attributes" `Quick test_brite_attrs;
          Alcotest.test_case "rejects" `Quick test_brite_rejects;
          Alcotest.test_case "determinism" `Quick test_brite_determinism;
        ] );
      ( "transit-stub",
        [
          Alcotest.test_case "structure" `Quick test_transit_stub;
          Alcotest.test_case "delays" `Quick test_transit_stub_delays;
        ] );
      ( "composite",
        [
          Alcotest.test_case "structure" `Quick test_composite_structure;
          Alcotest.test_case "single-node groups" `Quick test_composite_single_node_groups;
          Alcotest.test_case "rejects" `Quick test_composite_rejects;
        ] );
      ( "overlay",
        [
          Alcotest.test_case "full mesh" `Quick test_overlay_full_mesh;
          Alcotest.test_case "nearest-k" `Quick test_overlay_nearest;
          Alcotest.test_case "rejects" `Quick test_overlay_rejects;
        ] );
      ( "brite-format",
        [
          Alcotest.test_case "roundtrip" `Quick test_brite_format_roundtrip;
          Alcotest.test_case "handwritten" `Quick test_brite_format_handwritten;
          Alcotest.test_case "errors" `Quick test_brite_format_errors;
        ] );
    ]
