module Xml = Netembed_xml.Xml

let check = Alcotest.check

let test_basic_parse () =
  let doc = Xml.parse_string "<a x=\"1\"><b>text</b><c/></a>" in
  check Alcotest.string "tag" "a" (Xml.tag doc);
  check (Alcotest.option Alcotest.string) "attr" (Some "1") (Xml.attr "x" doc);
  check Alcotest.int "children" 2 (List.length (Xml.child_elements doc));
  match Xml.first_child "b" doc with
  | Some b -> check Alcotest.string "text" "text" (Xml.text_content b)
  | None -> Alcotest.fail "missing <b>"

let test_entities () =
  let doc = Xml.parse_string "<a x='&lt;&amp;&gt;'>&quot;q&apos; &#65;&#x42;</a>" in
  check (Alcotest.option Alcotest.string) "attr entities" (Some "<&>") (Xml.attr "x" doc);
  check Alcotest.string "text entities" "\"q' AB" (Xml.text_content doc)

let test_single_quotes () =
  let doc = Xml.parse_string "<a x='v'/>" in
  check (Alcotest.option Alcotest.string) "single-quoted" (Some "v") (Xml.attr "x" doc)

let test_prolog_comment_doctype () =
  let doc =
    Xml.parse_string
      "<?xml version=\"1.0\"?><!-- preamble --><!DOCTYPE a SYSTEM \"x\"><a><!-- in --><b/></a>"
  in
  check Alcotest.string "root" "a" (Xml.tag doc);
  check Alcotest.int "comment skipped" 1 (List.length (Xml.child_elements doc))

let test_cdata () =
  let doc = Xml.parse_string "<a><![CDATA[<not parsed> && stuff]]></a>" in
  check Alcotest.string "cdata" "<not parsed> && stuff" (Xml.text_content doc)

let test_nested () =
  let doc = Xml.parse_string "<a><b><c><d>deep</d></c></b></a>" in
  check Alcotest.string "deep text" "deep" (Xml.text_content doc)

let expect_parse_error s name =
  match Xml.parse_string s with
  | exception Xml.Parse_error _ -> ()
  | _ -> Alcotest.failf "%s: expected Parse_error" name

let test_errors () =
  expect_parse_error "<a><b></a></b>" "mismatched tags";
  expect_parse_error "<a" "truncated tag";
  expect_parse_error "<a x=1/>" "unquoted attr";
  expect_parse_error "<a>&bogus;</a>" "unknown entity";
  expect_parse_error "" "empty document";
  expect_parse_error "<!DOCTYPE a [<!ENTITY x \"y\">]><a/>" "internal subset"

let test_print_roundtrip () =
  let original =
    Xml.Element
      ( "graph",
        [ ("id", "G"); ("note", "a<b & \"c\"") ],
        [
          Xml.Element ("node", [ ("id", "n0") ], [ Xml.Text "label & <stuff>" ]);
          Xml.Element ("node", [ ("id", "n1") ], []);
        ] )
  in
  let reparsed = Xml.parse_string (Xml.to_string original) in
  check (Alcotest.option Alcotest.string) "attr escaped" (Some "a<b & \"c\"")
    (Xml.attr "note" reparsed);
  match Xml.find_children "node" reparsed with
  | [ n0; n1 ] ->
      check Alcotest.string "text escaped" "label & <stuff>" (Xml.text_content n0);
      check (Alcotest.option Alcotest.string) "second node" (Some "n1") (Xml.attr "id" n1)
  | _ -> Alcotest.fail "wrong child count"

let test_file_io () =
  let path = Filename.temp_file "netembed" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let doc = Xml.Element ("root", [], [ Xml.Element ("x", [ ("k", "v") ], []) ]) in
      Xml.write_file path doc;
      let r = Xml.parse_file path in
      check Alcotest.string "root" "root" (Xml.tag r);
      match Xml.first_child "x" r with
      | Some x -> check (Alcotest.option Alcotest.string) "attr" (Some "v") (Xml.attr "k" x)
      | None -> Alcotest.fail "missing child")

let test_escape () =
  check Alcotest.string "escape" "&lt;a&gt; &amp; &quot;b&quot; &apos;c&apos;"
    (Xml.escape "<a> & \"b\" 'c'")

let test_error_line () =
  (* The reported line number should point at the failing construct. *)
  match Xml.parse_string "<a>\n<b>\n</c>\n</a>" with
  | exception Xml.Parse_error { line; _ } ->
      check Alcotest.int "line" 3 line
  | _ -> Alcotest.fail "expected Parse_error"

let prop_text_roundtrip =
  QCheck.Test.make ~name:"escaped text roundtrips" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_range 0 60))
    (fun s ->
      (* Restrict to printable ASCII (the parser rejects raw controls is
         not the concern here; whitespace-only text is dropped). *)
      let s =
        String.map
          (fun c -> if Char.code c < 32 || Char.code c > 126 then 'x' else c)
          s
      in
      QCheck.assume (String.trim s <> "");
      let doc = Xml.Element ("t", [ ("a", s) ], [ Xml.Text s ]) in
      let r = Xml.parse_string (Xml.to_string ~indent:false doc) in
      Xml.attr "a" r = Some s && Xml.text_content r = String.trim s)

let prop_no_crash_on_garbage =
  QCheck.Test.make ~name:"parser never crashes: Parse_error or success" ~count:500
    QCheck.(string_of_size (QCheck.Gen.int_range 0 80))
    (fun s ->
      match Xml.parse_string s with
      | _ -> true
      | exception Xml.Parse_error _ -> true
      | exception _ -> false)

let () =
  Alcotest.run "xml"
    [
      ( "parse",
        [
          Alcotest.test_case "basic" `Quick test_basic_parse;
          Alcotest.test_case "entities" `Quick test_entities;
          Alcotest.test_case "single quotes" `Quick test_single_quotes;
          Alcotest.test_case "prolog/comment/doctype" `Quick test_prolog_comment_doctype;
          Alcotest.test_case "cdata" `Quick test_cdata;
          Alcotest.test_case "nesting" `Quick test_nested;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "error line" `Quick test_error_line;
        ] );
      ( "print",
        [
          Alcotest.test_case "roundtrip" `Quick test_print_roundtrip;
          Alcotest.test_case "file io" `Quick test_file_io;
          Alcotest.test_case "escape" `Quick test_escape;
          QCheck_alcotest.to_alcotest prop_text_roundtrip;
          QCheck_alcotest.to_alcotest prop_no_crash_on_garbage;
        ] );
    ]
