(* NETEMBED benchmark harness.

   Part 1 — Bechamel micro/meso benchmarks: one Test.make per evaluation
   family of the paper (figs. 8-15) on small fixed instances, plus
   kernel benches (bitset algebra, constraint evaluation, filter
   construction) and baseline comparisons.

   Part 2 — figure regeneration: the same row printers the paper's
   figures were plotted from, at the reduced default scale
   (bin/experiments.exe --full runs the paper-scale sweep).

   Run with:  dune exec bench/main.exe
   Skip part 2 with:  dune exec bench/main.exe -- --micro-only *)

open Bechamel
open Toolkit

module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Bitset = Netembed_bitset.Bitset
module Rng = Netembed_rng.Rng
module Trace = Netembed_planetlab.Trace
module Brite = Netembed_topology.Brite
module Expr = Netembed_expr.Expr
module Eval = Netembed_expr.Eval
module Problem = Netembed_core.Problem
module Engine = Netembed_core.Engine
module Filter = Netembed_core.Filter
module Query_gen = Netembed_workload.Query_gen
module Figures = Netembed_workload.Figures
module Ledger = Netembed_ledger.Ledger

(* ------------------------------------------------------------------ *)
(* Shared fixtures (built once; the staged closures only search)       *)
(* ------------------------------------------------------------------ *)

let small_scale =
  { Figures.default_scale with Figures.label = "bench"; timeout = 2.0 }

let planetlab = lazy (Figures.planetlab_host small_scale)

let problem_of (case : Query_gen.case) host =
  Problem.make ~host ~query:case.Query_gen.query case.Query_gen.edge_constraint

let pl_subgraph_problem =
  lazy
    (let host = Lazy.force planetlab in
     problem_of (Query_gen.subgraph (Rng.make 1) ~host ~n:20 ()) host)

let pl_infeasible_problem =
  lazy
    (let host = Lazy.force planetlab in
     let rng = Rng.make 2 in
     problem_of (Query_gen.make_infeasible rng (Query_gen.subgraph rng ~host ~n:20 ())) host)

let brite_problem =
  lazy
    (let host = Brite.generate (Rng.make 3) (Brite.default_barabasi ~n:200) in
     problem_of (Query_gen.brite_query (Rng.make 4) ~host ~n:30) host)

let clique_problem =
  lazy
    (let host = Lazy.force planetlab in
     problem_of (Query_gen.clique ~k:6 ~delay_lo:10.0 ~delay_hi:100.0) host)

let composite_problem =
  lazy
    (let host = Lazy.force planetlab in
     problem_of
       (Query_gen.composite (Rng.make 5) ~root:Netembed_topology.Regular.Ring
          ~groups:3 ~group:Netembed_topology.Regular.Star ~group_size:5
          ~constraints:Query_gen.Regular_bands)
       host)

let first alg problem () =
  ignore
    (Engine.run
       ~options:{ Engine.default_options with Engine.mode = Engine.First; timeout = Some 2.0 }
       alg problem)

let all alg problem () =
  ignore
    (Engine.run
       ~options:{ Engine.default_options with Engine.mode = Engine.All; timeout = Some 2.0 }
       alg problem)

let staged f = Staged.stage f

(* ------------------------------------------------------------------ *)
(* Test inventory                                                      *)
(* ------------------------------------------------------------------ *)

let kernel_tests =
  let bitset_a = Bitset.of_list 296 (List.init 148 (fun i -> 2 * i)) in
  let bitset_b = Bitset.of_list 296 (List.init 99 (fun i -> 3 * i)) in
  let residual = Expr.delay_range_within in
  let env =
    Eval.env
      ~v_edge:(Attrs.of_list [ ("minDelay", Value.Float 10.0); ("maxDelay", Value.Float 90.0) ])
      ~r_edge:(Attrs.of_list [ ("minDelay", Value.Float 12.0); ("maxDelay", Value.Float 80.0) ])
      ~v_source:Attrs.empty ~v_target:Attrs.empty ~r_source:Attrs.empty
      ~r_target:Attrs.empty
  in
  [
    Test.make ~name:"kernel/bitset_inter"
      (staged (fun () -> ignore (Bitset.inter bitset_a bitset_b)));
    Test.make ~name:"kernel/expr_eval"
      (staged (fun () -> ignore (Eval.accepts env residual)));
    Test.make ~name:"kernel/filter_build_n20"
      (staged (fun () -> ignore (Filter.build (Lazy.force pl_subgraph_problem))));
  ]

let figure_tests =
  [
    (* Fig 8/9: subgraph queries on PlanetLab. *)
    Test.make ~name:"fig8/ecf_all_n20" (staged (all Engine.ECF (Lazy.force pl_subgraph_problem)));
    Test.make ~name:"fig8/rwb_first_n20" (staged (first Engine.RWB (Lazy.force pl_subgraph_problem)));
    Test.make ~name:"fig8/lns_first_n20" (staged (first Engine.LNS (Lazy.force pl_subgraph_problem)));
    (* Fig 10: infeasible queries. *)
    Test.make ~name:"fig10/ecf_nomatch_n20" (staged (all Engine.ECF (Lazy.force pl_infeasible_problem)));
    (* Fig 11/12: BRITE hosts. *)
    Test.make ~name:"fig11/ecf_all_brite200" (staged (all Engine.ECF (Lazy.force brite_problem)));
    Test.make ~name:"fig12/lns_first_brite200" (staged (first Engine.LNS (Lazy.force brite_problem)));
    (* Fig 13: cliques. *)
    Test.make ~name:"fig13/ecf_all_clique6" (staged (all Engine.ECF (Lazy.force clique_problem)));
    Test.make ~name:"fig13/lns_first_clique6" (staged (first Engine.LNS (Lazy.force clique_problem)));
    (* Fig 14: composite queries. *)
    Test.make ~name:"fig14/ecf_first_composite" (staged (first Engine.ECF (Lazy.force composite_problem)));
    Test.make ~name:"fig14/lns_first_composite" (staged (first Engine.LNS (Lazy.force composite_problem)));
  ]

let symmetry_tests =
  (* Automorphism compaction on the fig-13 worst case: a clique's
     feasible set collapses by |S_k|. *)
  let clique5 =
    lazy
      (let host = Lazy.force planetlab in
       let case = Query_gen.clique ~k:5 ~delay_lo:10.0 ~delay_hi:100.0 in
       let p = problem_of case host in
       let ms =
         (Engine.run
            ~options:{ Engine.default_options with Engine.mode = Engine.At_most 720; timeout = Some 2.0 }
            Engine.RWB p)
           .Engine.mappings
       in
       let auts = Option.get (Netembed_core.Symmetry.automorphisms case.Query_gen.query) in
       (auts, ms))
  in
  [
    Test.make ~name:"symmetry/dedupe_clique5"
      (staged (fun () ->
           let auts, ms = Lazy.force clique5 in
           ignore (Netembed_core.Symmetry.dedupe auts ms)));
  ]

let baseline_tests =
  [
    Test.make ~name:"baseline/bruteforce_first_n20"
      (staged (fun () ->
           ignore
             (Netembed_baselines.Bruteforce.find_first ~timeout:2.0
                (Lazy.force pl_subgraph_problem))));
    Test.make ~name:"baseline/annealing_n20"
      (staged (fun () ->
           ignore
             (Netembed_baselines.Annealing.find_first ~rng:(Rng.make 9)
                (Lazy.force pl_subgraph_problem))));
    Test.make ~name:"baseline/sword_first_n20"
      (staged (fun () ->
           ignore (Netembed_baselines.Sword.find_first (Lazy.force pl_subgraph_problem))));
  ]

(* Ablations of the design choices DESIGN.md calls out: the connected
   Lemma-1 search order, the degree filter, and root-partitioned
   multicore search.  Measured on a search-dominated instance (n=60
   first match): on n=20 the filter construction dwarfs the search and
   every variant looks alike. *)
let ablation_problem =
  lazy
    (let host = Lazy.force planetlab in
     problem_of (Query_gen.subgraph (Rng.make 13) ~host ~n:60 ~extra_edges:20 ()) host)

let ablation_tests =
  let dfs_first ordering p () =
    let filter = Filter.build ~ordering p in
    let budget = Netembed_core.Budget.make ~timeout:2.0 () in
    try
      Netembed_core.Dfs.search p filter ~candidate_order:Netembed_core.Dfs.Ascending
        ~budget ~on_solution:(fun _ -> `Stop)
    with Netembed_core.Budget.Exhausted -> ()
  in
  let rep_first search p () =
    let filter = Filter.build p in
    let budget = Netembed_core.Budget.make ~timeout:2.0 () in
    try
      search p filter ~candidate_order:Netembed_core.Dfs.Ascending ~budget
        ~on_solution:(fun _ -> `Stop)
    with Netembed_core.Budget.Exhausted -> ()
  in
  let no_degree_filter =
    lazy
      (let p = Lazy.force ablation_problem in
       Problem.make ~degree_filter:false ~host:p.Problem.host ~query:p.Problem.query
         p.Problem.edge_constraint)
  in
  [
    Test.make ~name:"ablation/order_connected_n60"
      (staged (fun () -> dfs_first Filter.Connected_lemma1 (Lazy.force ablation_problem) ()));
    Test.make ~name:"ablation/order_lemma1_n60"
      (staged (fun () -> dfs_first Filter.Lemma1 (Lazy.force ablation_problem) ()));
    Test.make ~name:"ablation/order_input_n60"
      (staged (fun () -> dfs_first Filter.Input_order (Lazy.force ablation_problem) ()));
    Test.make ~name:"ablation/degree_filter_off"
      (staged (first Engine.ECF (Lazy.force no_degree_filter)));
    Test.make ~name:"ablation/rep_bitset_n60"
      (staged (fun () ->
           rep_first
             (fun p f -> Netembed_core.Dfs.search p f)
             (Lazy.force ablation_problem) ()));
    Test.make ~name:"ablation/rep_arrays_n60"
      (staged (fun () ->
           rep_first
             (Netembed_core.Dfs.search_arrays ?root_candidates:None)
             (Lazy.force ablation_problem) ()));
  ]

(* ------------------------------------------------------------------ *)
(* Gc-aware measurements + JSON emission                               *)
(*                                                                     *)
(* Bechamel reports time only; the representation refactor's win is    *)
(* allocation, so these rows also record Gc minor/promoted words and   *)
(* land in BENCH_RESULTS.json for cross-PR trajectories.               *)
(* ------------------------------------------------------------------ *)

type gc_row = {
  row_name : string;
  row_ms : float;
  row_minor_words : float;
  row_promoted_words : float;
  row_visited : int;
  row_found : int;
}

let gc_rows : gc_row list ref = ref []

let words_per_visit r =
  if r.row_visited > 0 then r.row_minor_words /. float_of_int r.row_visited else 0.0

(* [f ()] must return (visited search nodes, solutions found). *)
let measure_gc ~name ?(repeat = 1) f =
  Gc.full_major ();
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let visited = ref 0 and found = ref 0 in
  for _ = 1 to repeat do
    let v, c = f () in
    visited := !visited + v;
    found := !found + c
  done;
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int repeat in
  let s1 = Gc.quick_stat () in
  let row =
    {
      row_name = name;
      row_ms = ms;
      row_minor_words = (s1.Gc.minor_words -. s0.Gc.minor_words) /. float_of_int repeat;
      row_promoted_words =
        (s1.Gc.promoted_words -. s0.Gc.promoted_words) /. float_of_int repeat;
      row_visited = !visited / repeat;
      row_found = !found / repeat;
    }
  in
  gc_rows := row :: !gc_rows;
  row

let engine_gc_row name alg mode problem =
  measure_gc ~name (fun () ->
      let r =
        Engine.run
          ~options:
            { Engine.default_options with Engine.mode; timeout = Some 2.0; collect = false }
          alg problem
      in
      (r.Engine.visited, r.Engine.found))

(* Scheduler-ablation rows: static root partitioning vs work stealing
   on a root-skewed instance.  This container may expose a single CPU,
   in which case the domains time-slice and wall clock cannot show a
   parallel win; what the scheduler controls either way is the load
   balance, so each row also records the per-domain visited-node
   breakdown and an estimated makespan — the critical path a multi-core
   run would pay, priced at this run's measured per-visit cost
   (makespan_est = wall_ms / visited_total * visited_max_domain). *)
type sched_row = {
  sched_name : string;
  sched_strategy : string;
  sched_domains : int;
  sched_wall_ms : float;
  sched_visited : int array;
  sched_makespan_ms : float;
  sched_steals : int;
  sched_frames : int;
  sched_found : int;
}

let sched_rows : sched_row list ref = ref []

let bench_json_file = "BENCH_RESULTS.json"

let write_gc_json () =
  let rows = List.rev !gc_rows in
  (* Other tools own sections of the same file (the load generator
     writes "service_load" and "runtime_ablation", the churn simulator
     writes "online_churn"); carry them across our rewrite so the
     tools can be run in any order without clobbering each other. *)
  let foreign =
    match Netembed_workload.Bench_io.read_file bench_json_file with
    | None -> []
    | Some doc ->
        List.filter_map
          (fun key ->
            match Netembed_workload.Bench_io.extract_section doc ~key with
            | None -> None
            | Some text -> Some (key, text))
          [ "service_load"; "runtime_ablation"; "online_churn" ]
  in
  let oc = open_out bench_json_file in
  Printf.fprintf oc "{\n  \"benches\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"name\": %S, \"ms\": %.3f, \"minor_words\": %.0f, \"promoted_words\": \
         %.0f, \"visited\": %d, \"found\": %d, \"minor_words_per_visit\": %.2f}%s\n"
        r.row_name r.row_ms r.row_minor_words r.row_promoted_words r.row_visited
        r.row_found (words_per_visit r)
        (if i = n - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  let srows = List.rev !sched_rows in
  Printf.fprintf oc
    "  \"scheduler_ablation_note\": \"wall_ms is measured on this machine (domains \
     time-slice when cores are scarce); makespan_est_ms = wall_ms / visited_total * \
     max(visited_by_domain) prices the critical path an unshared-core run would pay\",\n";
  Printf.fprintf oc "  \"scheduler_ablation\": [\n";
  let ns = List.length srows in
  List.iteri
    (fun i r ->
      let total = Array.fold_left ( + ) 0 r.sched_visited in
      let maxv = Array.fold_left max 0 r.sched_visited in
      Printf.fprintf oc
        "    {\"name\": %S, \"strategy\": %S, \"domains\": %d, \"wall_ms\": %.3f, \
         \"visited_total\": %d, \"visited_max_domain\": %d, \"visited_by_domain\": [%s], \
         \"makespan_est_ms\": %.3f, \"steals\": %d, \"frames\": %d, \"found\": %d}%s\n"
        r.sched_name r.sched_strategy r.sched_domains r.sched_wall_ms total maxv
        (String.concat ", " (Array.to_list (Array.map string_of_int r.sched_visited)))
        r.sched_makespan_ms r.sched_steals r.sched_frames r.sched_found
        (if i = ns - 1 then "" else ","))
    srows;
  Printf.fprintf oc "  ]";
  List.iter
    (fun (key, text) -> Printf.fprintf oc ",\n  %S: %s" key text)
    foreign;
  Printf.fprintf oc "\n}\n";
  close_out oc;
  Printf.printf "# Gc-aware rows written to %s\n\n" bench_json_file

(* The representation ablation proper: old sorted-array candidate sets
   vs bitset scratch domains on the same all-matches ECF enumeration.
   A shared visited-node cap makes both paths do identical work (the
   ascending search visits the identical tree), so wall time and minor
   words are directly comparable. *)
let representation_ablation () =
  Printf.printf
    "# Representation ablation (all-matches ECF, shared filter, visited cap)\n%!";
  let run_case label p ~cap =
    let filter = Filter.build p in
    let store =
      Netembed_core.Domain_store.create
        ~universe:(Graph.node_count p.Problem.host)
        ~depths:(Graph.node_count p.Problem.query)
    in
    let run_path search () =
      let budget = Netembed_core.Budget.make ~max_visited:cap () in
      let found = ref 0 in
      (try
         search p filter ~candidate_order:Netembed_core.Dfs.Ascending ~budget
           ~on_solution:(fun _ ->
             incr found;
             `Continue)
       with Netembed_core.Budget.Exhausted -> ());
      (Netembed_core.Budget.visited budget, !found)
    in
    let arrays =
      measure_gc
        ~name:(Printf.sprintf "representation/%s/sorted_arrays" label)
        ~repeat:3
        (run_path (Netembed_core.Dfs.search_arrays ?root_candidates:None))
    in
    let bitset =
      measure_gc
        ~name:(Printf.sprintf "representation/%s/bitset" label)
        ~repeat:3
        (run_path (fun p f -> Netembed_core.Dfs.search ~store p f))
    in
    let speedup = if bitset.row_ms > 0.0 then arrays.row_ms /. bitset.row_ms else 0.0 in
    let alloc_ratio =
      if words_per_visit bitset > 0.0 then words_per_visit arrays /. words_per_visit bitset
      else infinity
    in
    Printf.printf
      "  %-22s arrays %8.1f ms %10.0f minor w (%6.1f w/visit) | bitset %8.1f ms \
       %10.0f minor w (%6.1f w/visit) | speedup %.2fx, %.0fx fewer w/visit (%d \
       visited, %d found)\n%!"
      label arrays.row_ms arrays.row_minor_words (words_per_visit arrays) bitset.row_ms
      bitset.row_minor_words (words_per_visit bitset) speedup alloc_ratio
      bitset.row_visited bitset.row_found
  in
  let host = Lazy.force planetlab in
  (* The headline case: a tight clique band admits many partial
     assignments but few complete cliques, so the run is pure
     backtracking and minor words per visited node measure the candidate
     representation alone, with no per-solution mapping allocation
     (shared by both paths) diluting the ratio. *)
  run_case "clique6_tight"
    (problem_of (Query_gen.clique ~k:6 ~delay_lo:10.0 ~delay_hi:35.0) host)
    ~cap:120_000;
  run_case "clique7_tight"
    (problem_of (Query_gen.clique ~k:7 ~delay_lo:10.0 ~delay_hi:50.0) host)
    ~cap:120_000;
  run_case "subgraph_n60"
    (Lazy.force ablation_problem)
    ~cap:60_000;
  run_case "clique5"
    (problem_of (Query_gen.clique ~k:5 ~delay_lo:10.0 ~delay_hi:100.0) host)
    ~cap:60_000;
  Printf.printf "\n"

(* Evaluator ablation: the filter build of clique7_tight under the
   seed tree-walking interpreter, the bytecode VM, and the VM with the
   Bounds pre-filter sweeping sorted attribute columns first.  The
   build is the evaluation-dominated phase (every (query edge, host
   edge) pair is tested), so it isolates what the compiler pipeline
   buys: row "visited" counts constraint evaluations, so minor words
   per visit is allocation per evaluation.  On the tiny residuals this
   instance specializes to (~9 instructions) the VM's per-eval wall
   time is comparable to the tree-walker's — its wins are zero
   allocation and the Bounds pre-filter, which skips the evaluations
   wholesale; steady-state rows at the end price both paths on one hot
   pair with no build structures in the measurement window. *)
let evaluator_ablation () =
  Printf.printf
    "# Evaluator ablation (clique7_tight filter build: interp vs bytecode vs \
     bytecode+prefilter)\n%!";
  let host = Lazy.force planetlab in
  let case = Query_gen.clique ~k:7 ~delay_lo:10.0 ~delay_hi:50.0 in
  let build name evaluator ~prefilter =
    measure_gc ~name ~repeat:3 (fun () ->
        let p =
          Problem.make ~evaluator ~host ~query:case.Query_gen.query
            case.Query_gen.edge_constraint
        in
        let before = Problem.constraint_evals p in
        ignore (Filter.build ~prefilter p);
        (Problem.constraint_evals p - before, 0))
  in
  let interp = build "evaluator/filter_build/interp" Problem.Interp ~prefilter:false in
  let bytecode =
    build "evaluator/filter_build/bytecode" Problem.Bytecode ~prefilter:false
  in
  let prefiltered =
    build "evaluator/filter_build/bytecode_prefilter" Problem.Bytecode ~prefilter:true
  in
  let vs a b = if b.row_ms > 0.0 then a.row_ms /. b.row_ms else 0.0 in
  Printf.printf
    "  interp    %8.1f ms %10.0f minor w (%7d evals)\n\
    \  bytecode  %8.1f ms %10.0f minor w (%7d evals)  %.2fx vs interp\n\
    \  +prefilter%8.1f ms %10.0f minor w (%7d evals)  %.2fx vs interp, %.2fx vs \
     bytecode\n%!"
    interp.row_ms interp.row_minor_words interp.row_visited bytecode.row_ms
    bytecode.row_minor_words bytecode.row_visited (vs interp bytecode)
    prefiltered.row_ms prefiltered.row_minor_words prefiltered.row_visited
    (vs interp prefiltered) (vs bytecode prefiltered)
  ;
  (* Steady-state per-evaluation cost of each path: one problem, one
     host edge pair, re-evaluated hot — no build structures in the
     window.  Warm up first so lazy residual/program state is built
     outside it.  The bytecode row's minor-words column must read 0
     (the VM evaluates on a preallocated scratch; the zero is also
     pinned by a unit test). *)
  let evals = 100_000 in
  let steady name evaluator =
    let p =
      Problem.make ~evaluator ~host ~query:case.Query_gen.query
        case.Query_gen.edge_constraint
    in
    let qe, q_src, q_dst =
      let e, u, v = (Graph.edges p.Problem.query).(0) in
      (e, u, v)
    in
    let he, r_src, r_dst =
      let e, u, v = (Graph.edges p.Problem.host).(0) in
      (e, u, v)
    in
    let eval () = Problem.edge_pair_ok p ~qe ~q_src ~q_dst ~he ~r_src ~r_dst in
    for _ = 1 to 1000 do
      ignore (eval ())
    done;
    measure_gc ~name (fun () ->
        for _ = 1 to evals do
          ignore (eval ())
        done;
        (evals, 0))
  in
  let hot_interp = steady "evaluator/steady_state_interp+gc" Problem.Interp in
  let hot_vm = steady "evaluator/steady_state_bytecode+gc" Problem.Bytecode in
  let per r = r.row_ms *. 1e6 /. float_of_int evals in
  Printf.printf
    "  steady state (%d evals of one residual):\n\
    \    interp    %8.1f ms (%4.0f ns/eval) %9.0f minor words\n\
    \    bytecode  %8.1f ms (%4.0f ns/eval) %9.0f minor words\n\n%!"
    evals hot_interp.row_ms (per hot_interp) hot_interp.row_minor_words hot_vm.row_ms
    (per hot_vm) hot_vm.row_minor_words

(* Explain-mode ablation: the same capped clique7_tight enumeration
   with the blame/flight-recorder instrumentation off vs on.  The off
   row must stay within noise of the uninstrumented engine (the
   instrumented domain path is selected once per run, so the plain path
   carries no extra branches); the on row prices what the service pays
   by always running with explain enabled. *)
let explain_ablation () =
  Printf.printf "# Explain-mode ablation (all-matches ECF, visited cap)\n%!";
  let host = Lazy.force planetlab in
  let p = problem_of (Query_gen.clique ~k:7 ~delay_lo:10.0 ~delay_hi:50.0) host in
  let run explain () =
    let r =
      Engine.run
        ~options:
          {
            Engine.default_options with
            Engine.mode = Engine.All;
            max_visited = Some 120_000;
            collect = false;
            explain;
          }
        Engine.ECF p
    in
    (r.Engine.visited, r.Engine.found)
  in
  let off = measure_gc ~name:"explain/clique7_tight/off" ~repeat:3 (run false) in
  let on = measure_gc ~name:"explain/clique7_tight/on" ~repeat:3 (run true) in
  let overhead =
    if off.row_ms > 0.0 then 100.0 *. ((on.row_ms /. off.row_ms) -. 1.0) else 0.0
  in
  Printf.printf
    "  clique7_tight          off %8.1f ms %10.0f minor w | on %8.1f ms %10.0f \
     minor w | explain-on overhead %+.1f%% (%d visited)\n\n%!"
    off.row_ms off.row_minor_words on.row_ms on.row_minor_words overhead
    off.row_visited

(* Trace ablation: the same capped clique7_tight enumeration with
   request-scoped span tracing off vs on.  The filter is prebuilt and
   shared so both rows measure pure search (comparable to the
   representation/clique7_tight/bitset row); the off row must stay
   within noise of it — the untraced path pays only a [None] branch at
   each phase boundary, never per visited node — while the on row
   prices what a --chrome-trace'd request pays. *)
let trace_ablation () =
  Printf.printf
    "# Trace ablation (all-matches ECF, prebuilt filter, visited cap)\n%!";
  let host = Lazy.force planetlab in
  let p = problem_of (Query_gen.clique ~k:7 ~delay_lo:10.0 ~delay_hi:50.0) host in
  let filter = Filter.build p in
  let run trace () =
    let r =
      Engine.run
        ~options:
          {
            Engine.default_options with
            Engine.mode = Engine.All;
            max_visited = Some 120_000;
            collect = false;
          }
        ~filter ?trace Engine.ECF p
    in
    (r.Engine.visited, r.Engine.found)
  in
  let off = measure_gc ~name:"trace/clique7_tight/off" ~repeat:3 (run None) in
  let on =
    measure_gc ~name:"trace/clique7_tight/on" ~repeat:3 (fun () ->
        run (Some (Netembed_telemetry.Telemetry.Trace.create ())) ())
  in
  let overhead =
    if off.row_ms > 0.0 then 100.0 *. ((on.row_ms /. off.row_ms) -. 1.0) else 0.0
  in
  Printf.printf
    "  clique7_tight          off %8.1f ms %10.0f minor w | on %8.1f ms %10.0f \
     minor w | trace-on overhead %+.1f%% (%d visited)\n\n%!"
    off.row_ms off.row_minor_words on.row_ms on.row_minor_words overhead
    off.row_visited

(* ------------------------------------------------------------------ *)
(* Scheduler ablation: static root partitioning vs work stealing       *)
(* ------------------------------------------------------------------ *)

(* A root-skewed instance, the pathology static partitioning cannot
   survive: the query root admits exactly four host candidates (a tier
   attribute gates them), one of which fronts a dense in-band cluster
   while the other three lead nowhere — their edges exist (so the
   degree filter keeps them) but sit far outside the delay band.
   Static partitioning at four domains hands each root to one domain
   and the cluster root's domain does essentially all the work; work
   stealing splits that subtree into frames the idle domains take. *)
let skewed_problem =
  lazy
    (let tier t = [ ("tier", Value.Int t) ] in
     let d v = ("avgDelay", Value.Float v) in
     let host = Graph.create ~name:"skewed-host" () in
     let cluster = Array.init 16 (fun _ -> Graph.add_node host (Attrs.of_list (tier 0))) in
     for i = 0 to 15 do
       for j = i + 1 to 15 do
         ignore
           (Graph.add_edge host cluster.(i) cluster.(j)
              (Attrs.of_list [ d (10.0 +. float_of_int (((i * 7) + (j * 13)) mod 30)) ]))
       done
     done;
     let hot = Graph.add_node host (Attrs.of_list (tier 1)) in
     for i = 0 to 11 do
       ignore (Graph.add_edge host hot cluster.(i) (Attrs.of_list [ d (15.0 +. float_of_int i) ]))
     done;
     for k = 0 to 2 do
       let decoy = Graph.add_node host (Attrs.of_list (tier 1)) in
       for i = 0 to 3 do
         ignore
           (Graph.add_edge host decoy cluster.(((k * 4) + i) mod 16) (Attrs.of_list [ d 20.0 ]))
       done
     done;
     let query = Graph.create ~name:"skewed-query" () in
     let band = Attrs.of_list [ ("minDelay", Value.Float 5.0); ("maxDelay", Value.Float 50.0) ] in
     let root = Graph.add_node query (Attrs.of_list (tier 1)) in
     for _ = 1 to 5 do
       let leaf = Graph.add_node query (Attrs.of_list (tier 0)) in
       ignore (Graph.add_edge query root leaf band)
     done;
     Problem.make
       ~node_constraint:(Expr.parse_exn "rSource.tier >= vSource.tier")
       ~host ~query Expr.avg_delay_within)

let scheduling_ablation () =
  Printf.printf "# Scheduler ablation (root-skewed instance, static vs work stealing)\n%!";
  let p = Lazy.force skewed_problem in
  let filter = Filter.build p in
  let makespans = Hashtbl.create 16 in
  List.iter
    (fun domains ->
      List.iter
        (fun (strategy, sname) ->
          let st =
            Netembed_parallel.Parallel.ecf_all_stats ~strategy ~domains ~timeout:60.0
              ~split_depth:3 ~filter p
          in
          let wall_ms = st.Netembed_parallel.Parallel.elapsed *. 1000.0 in
          let visited = st.Netembed_parallel.Parallel.visited_by_domain in
          let total = Array.fold_left ( + ) 0 visited in
          let maxv = Array.fold_left max 0 visited in
          let makespan =
            if total > 0 then wall_ms /. float_of_int total *. float_of_int maxv
            else wall_ms
          in
          Hashtbl.replace makespans (sname, domains) makespan;
          sched_rows :=
            {
              sched_name = "scheduler/skewed_star5";
              sched_strategy = sname;
              sched_domains = domains;
              sched_wall_ms = wall_ms;
              sched_visited = visited;
              sched_makespan_ms = makespan;
              sched_steals = st.Netembed_parallel.Parallel.steals;
              sched_frames = st.Netembed_parallel.Parallel.frames;
              sched_found = List.length st.Netembed_parallel.Parallel.mappings;
            }
            :: !sched_rows;
          Printf.printf
            "  %-14s domains=%d  wall %8.1f ms  visited %7d (max share %7d)  \
             makespan est %8.1f ms  steals %4d  frames %4d  (%d mappings)\n%!"
            sname domains wall_ms total maxv makespan
            st.Netembed_parallel.Parallel.steals st.Netembed_parallel.Parallel.frames
            (List.length st.Netembed_parallel.Parallel.mappings))
        [ (Netembed_parallel.Parallel.Static, "static"); (Netembed_parallel.Parallel.Work_stealing, "work_stealing") ])
    [ 1; 2; 4; 8 ];
  (match
     ( Hashtbl.find_opt makespans ("static", 4),
       Hashtbl.find_opt makespans ("work_stealing", 4) )
   with
  | Some s, Some w when w > 0.0 ->
      Printf.printf
        "  critical-path speedup at 4 domains (static makespan / ws makespan): %.2fx\n%!"
        (s /. w)
  | _ -> ());
  Printf.printf "\n"

(* Cold vs warm filter cache through the service: the same request
   twice against an unchanged model; the warm submit skips the filter
   build.  Rows land in the benches array of BENCH_RESULTS.json. *)
let filter_cache_bench () =
  Printf.printf "# Service filter cache (identical request, unchanged model)\n%!";
  let module Model = Netembed_service.Model in
  let module Service = Netembed_service.Service in
  let module Request = Netembed_service.Request in
  let host = Lazy.force planetlab in
  let svc = Service.create (Model.create host) in
  let query = (Query_gen.subgraph (Rng.make 9) ~host ~n:12 ()).Query_gen.query in
  let request =
    Request.make ~mode:Engine.All ~timeout:5.0 ~query
      "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay"
  in
  let submit name =
    measure_gc ~name (fun () ->
        match Service.submit svc request with
        | Error m -> failwith m
        | Ok a ->
            (a.Service.result.Engine.visited, a.Service.result.Engine.found))
  in
  let cold = submit "service/filter_cache_cold" in
  let warm = submit "service/filter_cache_warm" in
  Printf.printf
    "  cold %8.1f ms | warm %8.1f ms  (build skipped, %.1f%% of cold latency)\n\n%!"
    cold.row_ms warm.row_ms
    (if cold.row_ms > 0.0 then 100.0 *. warm.row_ms /. cold.row_ms else 0.0)

(* ------------------------------------------------------------------ *)
(* Multi-tenant churn: the ledger's allocate/release loop              *)
(* ------------------------------------------------------------------ *)

(* Two measurements on the PlanetLab host with 2-node tenants:
   1. the full service loop — residual snapshot, residual-aware search,
      commit — with the oldest tenant released once 16 are live
      (allocations/sec with the search in the loop);
   2. the ledger alone — charge_of_mapping + try_commit + release on a
      fixed mapping — the pure accounting overhead per commit. *)

let churn_query ~cpu ~bw =
  let q = Graph.create () in
  let node_attrs = Attrs.of_list [ ("cpuMhz", Value.Float cpu) ] in
  let a = Graph.add_node q node_attrs in
  let b = Graph.add_node q node_attrs in
  let _ =
    Graph.add_edge q a b
      (Attrs.of_list
         [
           ("minDelay", Value.Float 0.0);
           ("maxDelay", Value.Float 500.0);
           ("bandwidth", Value.Float bw);
         ])
  in
  q

let churn_edge_constraint =
  Expr.parse_exn
    "rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay && \
     rEdge.bandwidth >= vEdge.bandwidth"

let churn_node_constraint = Expr.parse_exn "rSource.cpuMhz >= vSource.cpuMhz"

let ledger_churn () =
  Printf.printf "# Multi-tenant ledger churn (PlanetLab host, 2-node tenants)\n%!";
  let host = Lazy.force planetlab in
  let query = churn_query ~cpu:200.0 ~bw:5.0 in
  let ledger = Ledger.of_graph host in
  let live = Queue.create () in
  let rounds = 40 in
  let search_row =
    measure_gc ~name:"ledger/churn_search_commit" (fun () ->
        let committed = ref 0 in
        for _ = 1 to rounds do
          if Queue.length live >= 16 then
            ignore (Ledger.release ledger (Queue.pop live));
          let residual = Ledger.residual_graph ledger in
          let p =
            Problem.make ~node_constraint:churn_node_constraint ~host:residual
              ~query churn_edge_constraint
          in
          match Engine.find_first ~timeout:2.0 Engine.LNS p with
          | None -> ()
          | Some m -> (
              match Ledger.charge_of_mapping ledger ~query m with
              | Error _ -> ()
              | Ok charge -> (
                  match Ledger.try_commit ledger charge with
                  | Ok id ->
                      incr committed;
                      Queue.push id live
                  | Error _ -> ()))
        done;
        (rounds, !committed))
  in
  Printf.printf
    "  search+commit   %4d rounds %8.1f ms  (%.0f allocations/s, %d committed)\n%!"
    rounds search_row.row_ms
    (if search_row.row_ms > 0.0 then
       float_of_int search_row.row_found /. (search_row.row_ms /. 1000.0)
     else 0.0)
    search_row.row_found;
  let ledger2 = Ledger.of_graph host in
  let p0 =
    Problem.make ~node_constraint:churn_node_constraint ~host ~query
      churn_edge_constraint
  in
  match Engine.find_first ~timeout:2.0 Engine.LNS p0 with
  | None -> Printf.printf "  (no feasible mapping; ledger-only row skipped)\n%!"
  | Some m ->
      let pairs = 10_000 in
      let ledger_row =
        measure_gc ~name:"ledger/commit_release_pair" (fun () ->
            let n = ref 0 in
            for _ = 1 to pairs do
              match Ledger.charge_of_mapping ledger2 ~query m with
              | Error _ -> ()
              | Ok charge -> (
                  match Ledger.try_commit ledger2 charge with
                  | Ok id ->
                      ignore (Ledger.release ledger2 id);
                      incr n
                  | Error _ -> ())
            done;
            (pairs, !n))
      in
      Printf.printf
        "  ledger only     %4d pairs  %8.1f ms  (%.2f us per commit+release)\n\n%!"
        pairs ledger_row.row_ms
        (ledger_row.row_ms *. 1000.0 /. float_of_int pairs)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let micro_only = Array.exists (fun a -> a = "--micro-only") Sys.argv in
  (* --ablation-only: the representation ablation, Gc-aware rows and
     the ledger churn scenario plus the BENCH_RESULTS.json rewrite — a
     ~5 s run for perf-regression checks (CI, before/after comparisons)
     instead of the full suite. *)
  let ablation_only = Array.exists (fun a -> a = "--ablation-only") Sys.argv in
  let t0 = Unix.gettimeofday () in
  if ablation_only then begin
    representation_ablation ();
    evaluator_ablation ();
    explain_ablation ();
    trace_ablation ();
    ignore (engine_gc_row "fig8/ecf_all_n20+gc" Engine.ECF Engine.All (Lazy.force pl_subgraph_problem));
    ignore (engine_gc_row "fig8/rwb_first_n20+gc" Engine.RWB Engine.First (Lazy.force pl_subgraph_problem));
    ignore (engine_gc_row "fig8/lns_first_n20+gc" Engine.LNS Engine.First (Lazy.force pl_subgraph_problem));
    ignore (engine_gc_row "fig13/ecf_all_clique6+gc" Engine.ECF Engine.All (Lazy.force clique_problem));
    ledger_churn ();
    scheduling_ablation ();
    filter_cache_bench ();
    write_gc_json ();
    Printf.printf "# bench complete in %.1f s\n" (Unix.gettimeofday () -. t0);
    exit 0
  end;
  (* Part 1: micro benchmarks. *)
  let tests = kernel_tests @ figure_tests @ baseline_tests @ ablation_tests @ symmetry_tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  Printf.printf "# Bechamel benchmarks (time per run)\n";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              if est > 1e6 then Printf.printf "  %-36s %10.2f ms/run\n" name (est /. 1e6)
              else Printf.printf "  %-36s %10.0f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-36s (no estimate)\n" name)
        analyzed)
    tests;
  Printf.printf "\n";
  (* Part 1a: the representation ablation and Gc-aware engine rows. *)
  representation_ablation ();
  evaluator_ablation ();
  explain_ablation ();
  trace_ablation ();
  ignore (engine_gc_row "fig8/ecf_all_n20+gc" Engine.ECF Engine.All (Lazy.force pl_subgraph_problem));
  ignore (engine_gc_row "fig8/rwb_first_n20+gc" Engine.RWB Engine.First (Lazy.force pl_subgraph_problem));
  ignore (engine_gc_row "fig8/lns_first_n20+gc" Engine.LNS Engine.First (Lazy.force pl_subgraph_problem));
  ignore (engine_gc_row "fig13/ecf_all_clique6+gc" Engine.ECF Engine.All (Lazy.force clique_problem));
  ledger_churn ();
  scheduling_ablation ();
  filter_cache_bench ();
  write_gc_json ();
  (* Part 1b: multicore speedup table.  The instance must be
     search-dominated for root partitioning to pay: a clique's
     all-matches enumeration is, a subgraph query's filter-heavy run
     is not. *)
  (* Search-phase scaling: the filter is built once and shared (its
     construction is sequential — Amdahl's bite on filter-heavy
     instances); the domains then enumerate a clique's large feasible
     set from partitioned roots. *)
  let speedup_problem =
    let host = Lazy.force planetlab in
    problem_of (Query_gen.clique ~k:4 ~delay_lo:10.0 ~delay_hi:60.0) host
  in
  let shared_filter = Filter.build speedup_problem in
  Printf.printf
    "# Parallel ECF search-phase speedup (clique-4 enumeration, shared filter)\n%!";
  let baseline = ref 0.0 in
  List.iter
    (fun domains ->
      let t = Unix.gettimeofday () in
      let mappings, _ =
        Netembed_parallel.Parallel.ecf_all ~domains ~timeout:30.0
          ~filter:shared_filter speedup_problem
      in
      let dt = Unix.gettimeofday () -. t in
      if domains = 1 then baseline := dt;
      Printf.printf "  domains=%d  %8.1f ms  (%d mappings, speedup %.2fx)\n%!" domains
        (dt *. 1000.0) (List.length mappings)
        (if dt > 0.0 then !baseline /. dt else 0.0))
    [ 1; 2; 4 ];
  Printf.printf "\n";
  (* Racing RWB: independent searches with different seeds, first
     solution cancels the rest — multicore as variance reduction on
     high-variance first-match searches (clique-8). *)
  let race_problem =
    let host = Lazy.force planetlab in
    problem_of (Query_gen.clique ~k:8 ~delay_lo:10.0 ~delay_hi:100.0) host
  in
  Printf.printf "# Racing RWB first match (clique-8 in PlanetLab)\n%!";
  List.iter
    (fun domains ->
      let t = Unix.gettimeofday () in
      let won =
        Netembed_parallel.Parallel.rwb_race ~domains ~timeout:30.0 ~seed:5 race_problem
      in
      Printf.printf "  racers=%d  %8.1f ms  (%s)\n%!" domains
        ((Unix.gettimeofday () -. t) *. 1000.0)
        (match won with Some _ -> "found" | None -> "none"))
    [ 1; 2; 4 ];
  Printf.printf "\n";
  (* Part 2: regenerate every figure at default scale. *)
  if not micro_only then Figures.all Figures.default_scale;
  Printf.printf "# bench complete in %.1f s\n" (Unix.gettimeofday () -. t0)
