(* The netembed command-line interface.

   Subcommands:
     generate   synthesize a hosting network and write it as GraphML
     info       summarize a GraphML network
     embed      find embeddings of a query network into a hosting network
     top        phase-latency triage report for a request workload

   Examples:
     netembed generate --kind planetlab -o host.graphml
     netembed generate --kind brite-ba -n 500 -o host.graphml
     netembed info host.graphml
     netembed embed --host host.graphml --query query.graphml \
       --constraint 'rEdge.avgDelay >= vEdge.minDelay && rEdge.avgDelay <= vEdge.maxDelay' \
       --algorithm lns --mode first --timeout 30 *)

module Graph = Netembed_graph.Graph
module Metrics = Netembed_graph.Metrics
module Rng = Netembed_rng.Rng
module Trace = Netembed_planetlab.Trace
module Brite = Netembed_topology.Brite
module Transit_stub = Netembed_topology.Transit_stub
module Graphml = Netembed_graphml.Graphml
module Ledger = Netembed_ledger.Ledger
module Request = Netembed_service.Request
module Model = Netembed_service.Model
module Service = Netembed_service.Service
module Wire = Netembed_service.Wire
module Engine = Netembed_core.Engine
module Mapping = Netembed_core.Mapping
module Telemetry = Netembed_telemetry.Telemetry

open Cmdliner

(* ------------------------------------------------------------------ *)
(* generate                                                            *)
(* ------------------------------------------------------------------ *)

let generate kind n seed output =
  let rng = Rng.make seed in
  let graph =
    match kind with
    | `Planetlab -> Trace.generate rng { Trace.default with Trace.sites = n }
    | `Brite_ba -> Brite.generate rng (Brite.default_barabasi ~n)
    | `Brite_waxman -> Brite.generate rng (Brite.default_waxman ~n)
    | `Transit_stub ->
        let per_stub = max 2 (n / 16) in
        Transit_stub.generate rng
          { Transit_stub.default with Transit_stub.stub_size = per_stub }
  in
  Graphml.write_file graph output;
  Format.printf "wrote %a to %s@." Graph.pp_summary graph output

let kind_conv =
  Arg.enum
    [
      ("planetlab", `Planetlab);
      ("brite-ba", `Brite_ba);
      ("brite-waxman", `Brite_waxman);
      ("transit-stub", `Transit_stub);
    ]

let generate_cmd =
  let kind =
    Arg.(value & opt kind_conv `Planetlab & info [ "kind" ] ~docv:"KIND"
           ~doc:"Topology family: planetlab, brite-ba, brite-waxman or transit-stub.")
  in
  let n =
    Arg.(value & opt int 296 & info [ "n" ] ~docv:"N" ~doc:"Number of nodes/sites.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.") in
  let output =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output GraphML file.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize a hosting network as GraphML")
    Term.(const generate $ kind $ n $ seed $ output)

(* ------------------------------------------------------------------ *)
(* convert                                                             *)
(* ------------------------------------------------------------------ *)

(* File formats are chosen by extension: .graphml / .brite. *)
let load_any path =
  if Filename.check_suffix path ".brite" then
    Netembed_topology.Brite_format.read_file path
  else Graphml.read_file path

let save_any g path =
  if Filename.check_suffix path ".brite" then
    Netembed_topology.Brite_format.write_file g path
  else Graphml.write_file g path

let convert input output =
  let g = load_any input in
  save_any g output;
  Format.printf "converted %a: %s -> %s@." Graph.pp_summary g input output;
  `Ok ()

let convert_cmd =
  let input =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT"
           ~doc:"Input topology (.graphml or .brite).")
  in
  let output =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUTPUT"
           ~doc:"Output topology (.graphml or .brite).")
  in
  Cmd.v
    (Cmd.info "convert" ~doc:"Convert between GraphML and BRITE topology formats")
    Term.(ret (const convert $ input $ output))

(* ------------------------------------------------------------------ *)
(* info                                                                *)
(* ------------------------------------------------------------------ *)

let info_run file =
  let g = load_any file in
  let stats = Metrics.degree_stats g in
  Format.printf "%a@." Graph.pp_summary g;
  Format.printf "density %.4f, %a@." (Graph.density g) Metrics.pp_degree_stats stats;
  (match Metrics.power_law_exponent g with
  | Some e -> Format.printf "degree power-law slope %.2f@." e
  | None -> ());
  `Ok ()

let info_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"GraphML file.")
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Summarize a GraphML network")
    Term.(ret (const info_run $ file))

(* ------------------------------------------------------------------ *)
(* embed                                                               *)
(* ------------------------------------------------------------------ *)

let algorithm_conv =
  Arg.enum [ ("ecf", Engine.ECF); ("rwb", Engine.RWB); ("lns", Engine.LNS) ]

let mode_conv =
  let parse s =
    match Wire.mode_of_string s with Ok m -> Ok m | Error e -> Error (`Msg e)
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Wire.mode_to_string m))

let embed host_file query_file constraint_arg node_constraint algorithm mode timeout
    path_hops dedupe optimize_cost stats trace_file trace_format domains =
  (* --trace-format spans (default) streams the global JSONL span log;
     chrome records a request-scoped span buffer instead and writes one
     Chrome trace-event JSON document at the end. *)
  let trace_oc =
    match (trace_file, trace_format) with
    | Some path, `Spans ->
        let oc = open_out path in
        Telemetry.Span.enable oc;
        Some oc
    | _ -> None
  in
  let chrome_trace = trace_file <> None && trace_format = `Chrome in
  let finally_trace () =
    match trace_oc with
    | None -> ()
    | Some oc ->
        Telemetry.Span.disable ();
        close_out oc
  in
  Fun.protect ~finally:finally_trace @@ fun () ->
  let host = Graphml.read_file host_file in
  let host =
    (* --paths K: virtual links may ride host paths of up to K hops
       (the link-to-path extension, realized as a host closure). *)
    match path_hops with
    | None -> host
    | Some k -> Netembed_core.Path_embed.host (Netembed_core.Path_embed.closure ~max_hops:k host)
  in
  let query = Graphml.read_file query_file in
  (* --constraint is either an inline expression or @file. *)
  let constraint_text =
    if String.length constraint_arg > 0 && constraint_arg.[0] = '@' then
      Request.read_constraint_file
        (String.sub constraint_arg 1 (String.length constraint_arg - 1))
    else constraint_arg
  in
  let request =
    Request.make ?node_constraint ~algorithm ~mode ?timeout ~query constraint_text
  in
  let service = Service.create ~domains (Model.create host) in
  match Service.submit ~trace:chrome_trace service request with
  | Error e -> `Error (false, e)
  | Ok answer ->
      let answer =
        (* --dedupe-symmetry: collapse orbit-equivalent mappings. *)
        if not dedupe then answer
        else
          match Netembed_core.Symmetry.automorphisms query with
          | None -> answer (* group too large: skip compaction *)
          | Some auts ->
              let result = answer.Service.result in
              { answer with
                Service.result =
                  { result with
                    Engine.mappings = Netembed_core.Symmetry.dedupe auts result.Engine.mappings } }
      in
      let answer =
        (* --optimize METRIC: keep only the cheapest mapping. *)
        match optimize_cost with
        | None -> answer
        | Some cost_name ->
            let cost =
              match cost_name with
              | "total-delay" -> Netembed_core.Optimize.total_avg_delay
              | "max-delay" -> Netembed_core.Optimize.max_avg_delay
              | "host-degree" -> Netembed_core.Optimize.total_host_degree
              | other -> Netembed_core.Optimize.node_attr_sum other
            in
            let result = answer.Service.result in
            let problem =
              Netembed_core.Problem.make ~host ~query
                (Netembed_expr.Expr.parse_exn request.Request.constraint_text)
            in
            let best =
              Netembed_core.Optimize.best_of problem ~cost result.Engine.mappings
            in
            { answer with
              Service.result =
                { result with Engine.mappings = Option.to_list best } }
      in
      if stats then
        prerr_endline
          (Telemetry.snapshot_to_json answer.Service.result.Engine.telemetry);
      (match (trace_file, answer.Service.trace) with
      | Some path, Some buf when chrome_trace ->
          let oc = open_out path in
          output_string oc
            (Telemetry.Trace.to_chrome_json ~trace_id:answer.Service.trace_id buf);
          output_char oc '\n';
          close_out oc
      | _ -> ());
      print_string (Wire.encode_answer answer);
      `Ok ()

let embed_cmd =
  let host_file =
    Arg.(required & opt (some file) None & info [ "host" ] ~docv:"FILE"
           ~doc:"Hosting network (GraphML).")
  in
  let query_file =
    Arg.(required & opt (some file) None & info [ "query" ] ~docv:"FILE"
           ~doc:"Query network (GraphML).")
  in
  let constraint_arg =
    Arg.(value & opt string "true" & info [ "constraint" ] ~docv:"EXPR"
           ~doc:"Constraint expression, or @FILE to load one expression per line.")
  in
  let node_constraint =
    Arg.(value & opt (some string) None & info [ "node-constraint" ] ~docv:"EXPR"
           ~doc:"Optional per-node constraint over rSource/vSource.")
  in
  let algorithm =
    Arg.(value & opt algorithm_conv Engine.ECF & info [ "algorithm"; "a" ] ~docv:"ALG"
           ~doc:"Search algorithm: ecf, rwb or lns.")
  in
  let mode =
    Arg.(value & opt mode_conv Engine.First & info [ "mode" ] ~docv:"MODE"
           ~doc:"Answer mode: first, all or atmost:K.")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Search timeout.")
  in
  let path_hops =
    Arg.(value & opt (some int) None & info [ "paths" ] ~docv:"K"
           ~doc:"Allow virtual links to map onto host paths of up to K hops.")
  in
  let dedupe =
    Arg.(value & flag & info [ "dedupe-symmetry" ]
           ~doc:"Collapse mappings equivalent under query automorphisms.")
  in
  let optimize_cost =
    Arg.(value & opt (some string) None & info [ "optimize" ] ~docv:"METRIC"
           ~doc:"Return only the cheapest mapping by METRIC: total-delay, \
                 max-delay, host-degree, or a numeric node attribute name.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Print the engine telemetry snapshot (visited nodes, constraint \
                 evaluations, backtracks, depth and domain-size histograms) as \
                 one JSON line on stderr.")
  in
  let trace_file =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a trace of the run to FILE (see --trace-format).")
  in
  let trace_format =
    Arg.(value
         & opt (enum [ ("spans", `Spans); ("chrome", `Chrome) ]) `Spans
         & info [ "trace-format" ] ~docv:"FORMAT"
             ~doc:"Trace format for --trace: 'spans' (JSONL span log of filter \
                   build, descent, solutions) or 'chrome' (request-scoped \
                   Chrome trace-event JSON with per-phase and per-worker-domain \
                   spans — open in chrome://tracing or Perfetto).")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Run exhaustive ECF searches (--mode all) on N domains with \
                 work stealing; 1 (the default) stays sequential.")
  in
  Cmd.v
    (Cmd.info "embed" ~doc:"Embed a query network into a hosting network")
    Term.(
      ret
        (const embed $ host_file $ query_file $ constraint_arg $ node_constraint
        $ algorithm $ mode $ timeout $ path_hops $ dedupe $ optimize_cost $ stats
        $ trace_file $ trace_format $ domains))

(* ------------------------------------------------------------------ *)
(* explain                                                             *)
(* ------------------------------------------------------------------ *)

(* Run the request with explain mode on (the service always does) and
   print the resulting diagnosis: why did the search fail, which
   (query node, constraint) pairs emptied the domains, which hosts came
   closest.  Successful runs still print a certificate (hot spot,
   flight-recorder tail) — slow_threshold 0 forces every request into
   the diagnostics log. *)
(* --dump-bytecode: print the compiled form of what the search will
   actually evaluate — one program per query edge (the constraint
   specialized against that edge's attributes, constant-folded, then
   compiled) plus the node-constraint program — before running the
   diagnosis.  The disassembly shows the slot table the Bounds
   pre-filter reads its atoms from, so "why did the filter drop this
   host" questions can be answered against the real instruction
   stream. *)
let dump_bytecode_programs ~query ~constraint_text ~node_constraint problem =
  let module Compile = Netembed_expr.Compile in
  let module Expr = Netembed_expr.Expr in
  let module Problem = Netembed_core.Problem in
  Printf.printf "constraint: %s\n" constraint_text;
  Array.iter
    (fun (e, u, v) ->
      Printf.printf "; query edge %d (%d -> %d), specialized and compiled:\n%s"
        e u v
        (Compile.disassemble (Problem.program problem e ~q_src:u ~q_dst:v)))
    (Graph.edges query);
  (match node_constraint with
  | None -> ()
  | Some text ->
      Printf.printf "node constraint: %s\n; compiled:\n%s" text
        (Compile.disassemble (Compile.compile (Expr.parse_exn text))));
  print_newline ()

let explain_run host_file query_file constraint_arg node_constraint algorithm mode
    timeout json dump_bytecode =
  let host = Graphml.read_file host_file in
  let query = Graphml.read_file query_file in
  let constraint_text =
    if String.length constraint_arg > 0 && constraint_arg.[0] = '@' then
      Request.read_constraint_file
        (String.sub constraint_arg 1 (String.length constraint_arg - 1))
    else constraint_arg
  in
  let request =
    Request.make ?node_constraint ~algorithm ~mode ?timeout ~query constraint_text
  in
  (if dump_bytecode then
     (* Parse failures fall through silently: the submit below reports
        them on the normal error path. *)
     match Netembed_expr.Expr.parse constraint_text with
     | Error _ -> ()
     | Ok edge_c -> (
         match Netembed_core.Problem.make ~host ~query edge_c with
         | exception Invalid_argument _ -> ()
         | problem ->
             dump_bytecode_programs ~query ~constraint_text ~node_constraint problem));
  let service =
    Service.create
      ~registry:(Netembed_telemetry.Telemetry.Registry.create ())
      ~slow_threshold:0.0 (Model.create host)
  in
  let print_entry (entry : Service.entry) =
    match entry.Service.certificate with
    | None -> `Error (false, entry.Service.summary)
    | Some cert ->
        if json then
          print_endline (Netembed_explain.Explain.Certificate.to_json cert)
        else begin
          Printf.printf "request %d: %s\n" entry.Service.id entry.Service.summary;
          print_string (Netembed_explain.Explain.Certificate.to_text cert)
        end;
        `Ok ()
  in
  match Service.submit service request with
  | Error e -> (
      (* Admission rejections and shape errors still leave a certificate
         in the diagnostics log; only parse errors have nothing to show. *)
      match Service.last_entry service with
      | Some entry -> print_entry entry
      | None -> `Error (false, e))
  | Ok answer -> (
      match Service.explain service answer.Service.id with
      | Some entry -> print_entry entry
      | None -> `Error (false, "no diagnostics retained for this run"))

let explain_cmd =
  let host_file =
    Arg.(required & opt (some file) None & info [ "host" ] ~docv:"FILE"
           ~doc:"Hosting network (GraphML).")
  in
  let query_file =
    Arg.(required & opt (some file) None & info [ "query" ] ~docv:"FILE"
           ~doc:"Query network (GraphML).")
  in
  let constraint_arg =
    Arg.(value & opt string "true" & info [ "constraint" ] ~docv:"EXPR"
           ~doc:"Constraint expression, or @FILE to load one expression per line.")
  in
  let node_constraint =
    Arg.(value & opt (some string) None & info [ "node-constraint" ] ~docv:"EXPR"
           ~doc:"Optional per-node constraint over rSource/vSource.")
  in
  let algorithm =
    Arg.(value & opt algorithm_conv Engine.ECF & info [ "algorithm"; "a" ] ~docv:"ALG"
           ~doc:"Search algorithm: ecf, rwb or lns.")
  in
  let mode =
    Arg.(value & opt mode_conv Engine.First & info [ "mode" ] ~docv:"MODE"
           ~doc:"Answer mode: first, all or atmost:K.")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Search timeout.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the failure certificate as one JSON document instead of text.")
  in
  let dump_bytecode =
    Arg.(value & flag & info [ "dump-bytecode" ]
           ~doc:"Before the diagnosis, disassemble the compiled bytecode of each \
                 per-query-edge specialized constraint (and the node constraint) — \
                 the programs the filter and search actually evaluate.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Diagnose an embedding request: constraint blame, near-miss hosts and \
             the search flight recorder")
    Term.(
      ret
        (const explain_run $ host_file $ query_file $ constraint_arg
        $ node_constraint $ algorithm $ mode $ timeout $ json $ dump_bytecode))

(* ------------------------------------------------------------------ *)
(* top                                                                 *)
(* ------------------------------------------------------------------ *)

(* Run a request (optionally several times) against a private service
   and print the phase-latency triage report: where the wall-clock time
   went per phase (with sliding-window quantiles) and the slowest
   retained requests with their per-phase breakdowns — the local twin
   of the TOP wire verb. *)
let top_run host_file query_file constraint_arg node_constraint algorithm mode
    timeout repeat worst domains =
  let host = Graphml.read_file host_file in
  let query = Graphml.read_file query_file in
  let constraint_text =
    if String.length constraint_arg > 0 && constraint_arg.[0] = '@' then
      Request.read_constraint_file
        (String.sub constraint_arg 1 (String.length constraint_arg - 1))
    else constraint_arg
  in
  let request =
    Request.make ?node_constraint ~algorithm ~mode ?timeout ~query constraint_text
  in
  let service =
    (* slow_threshold 0 retains every request, so the worst-requests
       table is populated even for fast runs. *)
    Service.create
      ~registry:(Telemetry.Registry.create ())
      ~slow_threshold:0.0 ~domains (Model.create host)
  in
  let errors = ref [] in
  for _ = 1 to max 1 repeat do
    match Service.submit service request with
    | Ok _ -> ()
    | Error e -> errors := e :: !errors
  done;
  let report = Service.top ~worst service in
  Format.printf "%-14s %12s %7s %10s %10s %10s@." "PHASE" "TOTAL-S" "COUNT"
    "P50-MS" "P95-MS" "P99-MS";
  List.iter
    (fun (s : Service.phase_stat) ->
      Format.printf "%-14s %12.6f %7d %10.3f %10.3f %10.3f@."
        (Telemetry.Phase.name s.Service.phase)
        s.Service.total_s s.Service.window_count
        (s.Service.p50_s *. 1000.0)
        (s.Service.p95_s *. 1000.0)
        (s.Service.p99_s *. 1000.0))
    report.Service.busiest;
  Format.printf "@.slowest retained requests (quantile window %gs):@."
    report.Service.window_s;
  List.iter
    (fun (e : Service.entry) ->
      Format.printf "  id=%d trace=%d verdict=%s elapsed=%.3fms%s  %s@."
        e.Service.id e.Service.trace_id e.Service.verdict
        (e.Service.elapsed *. 1000.0)
        (if e.Service.slow_search then " slow-search" else "")
        e.Service.summary)
    report.Service.worst;
  match !errors with
  | [] -> `Ok ()
  | e :: _ when repeat <= 1 -> `Error (false, e)
  | e :: _ ->
      Format.printf "@.%d of %d requests failed (last: %s)@." (List.length !errors)
        repeat e;
      `Ok ()

let top_cmd =
  let host_file =
    Arg.(required & opt (some file) None & info [ "host" ] ~docv:"FILE"
           ~doc:"Hosting network (GraphML).")
  in
  let query_file =
    Arg.(required & opt (some file) None & info [ "query" ] ~docv:"FILE"
           ~doc:"Query network (GraphML).")
  in
  let constraint_arg =
    Arg.(value & opt string "true" & info [ "constraint" ] ~docv:"EXPR"
           ~doc:"Constraint expression, or @FILE to load one expression per line.")
  in
  let node_constraint =
    Arg.(value & opt (some string) None & info [ "node-constraint" ] ~docv:"EXPR"
           ~doc:"Optional per-node constraint over rSource/vSource.")
  in
  let algorithm =
    Arg.(value & opt algorithm_conv Engine.ECF & info [ "algorithm"; "a" ] ~docv:"ALG"
           ~doc:"Search algorithm: ecf, rwb or lns.")
  in
  let mode =
    Arg.(value & opt mode_conv Engine.First & info [ "mode" ] ~docv:"MODE"
           ~doc:"Answer mode: first, all or atmost:K.")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Search timeout.")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Submit the request N times before reporting, so window \
                 quantiles have a population.")
  in
  let worst =
    Arg.(value & opt int 5 & info [ "worst" ] ~docv:"K"
           ~doc:"How many slowest retained requests to list.")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N"
           ~doc:"Run exhaustive ECF searches (--mode all) on N domains with \
                 work stealing; 1 (the default) stays sequential.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Phase-latency triage: busiest request phases with sliding-window \
             quantiles, and the slowest retained requests")
    Term.(
      ret
        (const top_run $ host_file $ query_file $ constraint_arg $ node_constraint
        $ algorithm $ mode $ timeout $ repeat $ worst $ domains))

(* ------------------------------------------------------------------ *)
(* allocate / free / utilization                                       *)
(* ------------------------------------------------------------------ *)

(* The stateless ledger workflow: the residual GraphML file *is* the
   allocation state.  `allocate` starts from the host (or a prior
   residual) and commits query charges; `free` hands a query's charge
   back; `utilization` reports usage.  All three rebuild the ledger by
   syncing it to the residual snapshot. *)

let open_ledger host_file residual_file =
  let host = Graphml.read_file host_file in
  let ledger = Ledger.of_graph host in
  (match residual_file with
  | Some path when Sys.file_exists path ->
      Ledger.sync_residual ledger (Graphml.read_file path)
  | Some _ | None -> ());
  (host, ledger)

let print_utilization rows =
  Format.printf "%-12s %-5s %14s %14s %8s@." "RESOURCE" "KIND" "USED" "CAPACITY" "UTIL";
  List.iter
    (fun (resource, kind, used, cap) ->
      Format.printf "%-12s %-5s %14.1f %14.1f %7.1f%%@." resource
        (match kind with `Node -> "node" | `Edge -> "edge")
        used cap
        (if cap > 0.0 then 100.0 *. used /. cap else 0.0))
    rows

let allocate_run host_file query_file constraint_arg node_constraint algorithm
    timeout count residual_file =
  let host, ledger = open_ledger host_file residual_file in
  ignore host;
  let query = Graphml.read_file query_file in
  let constraint_text =
    if String.length constraint_arg > 0 && constraint_arg.[0] = '@' then
      Request.read_constraint_file
        (String.sub constraint_arg 1 (String.length constraint_arg - 1))
    else constraint_arg
  in
  let edge_constraint =
    match Netembed_expr.Expr.parse constraint_text with
    | Ok e -> e
    | Error m -> failwith m
  in
  let node_expr =
    Option.map
      (fun c ->
        match Netembed_expr.Expr.parse c with
        | Ok e -> e
        | Error m -> failwith m)
      node_constraint
  in
  let committed = ref 0 in
  let stop = ref None in
  (try
     for i = 1 to count do
       if !stop = None then begin
         match Ledger.admissible ledger ~query with
         | Error f ->
             stop := Some (Printf.sprintf "admission: %s" (Ledger.failure_to_string f))
         | Ok () -> (
             let residual = Ledger.residual_graph ledger in
             let problem =
               Netembed_core.Problem.make ?node_constraint:node_expr ~host:residual
                 ~query edge_constraint
             in
             match Engine.find_first ?timeout algorithm problem with
             | None -> stop := Some "no feasible mapping on the residual network"
             | Some mapping -> (
                 match Ledger.charge_of_mapping ledger ~query mapping with
                 | Error m -> stop := Some m
                 | Ok charge -> (
                     match Ledger.try_commit ledger charge with
                     | Error f -> stop := Some (Ledger.failure_to_string f)
                     | Ok _id ->
                         incr committed;
                         Format.printf "tenant %d:%s@." i
                           (String.concat ""
                              (List.map
                                 (fun (q, r) -> Printf.sprintf " q%d->r%d" q r)
                                 (Mapping.to_list mapping))))))
       end
     done
   with Failure m -> stop := Some m);
  (match residual_file with
  | Some path when !committed > 0 ->
      Graphml.write_file (Ledger.residual_graph ledger) path;
      Format.printf "residual network written to %s@." path
  | Some _ | None -> ());
  Format.printf "committed %d/%d allocation(s)@." !committed count;
  print_utilization (Ledger.utilization ledger);
  match !stop with
  | Some m when !committed = 0 -> `Error (false, m)
  | Some m ->
      Format.printf "stopped: %s@." m;
      `Ok ()
  | None -> `Ok ()

let parse_mapping_arg query text =
  let pairs =
    List.filter_map
      (fun tok -> Scanf.sscanf_opt tok "q%d->r%d" (fun q r -> (q, r)))
      (String.split_on_char ' ' (String.trim text))
  in
  let n = Graph.node_count query in
  if List.length pairs <> n then
    Error
      (Printf.sprintf "mapping names %d of %d query nodes" (List.length pairs) n)
  else
    let arr = Array.make n (-1) in
    List.iter (fun (q, r) -> if q >= 0 && q < n then arr.(q) <- r) pairs;
    if Array.exists (fun r -> r < 0) arr then
      Error "mapping must name every query node exactly once (q<i>->r<j> pairs)"
    else Ok (Mapping.of_array arr)

let free_run host_file residual_file query_file mapping_arg =
  let _host, ledger = open_ledger host_file (Some residual_file) in
  if not (Sys.file_exists residual_file) then
    `Error (false, Printf.sprintf "residual file %s does not exist" residual_file)
  else
    let query = Graphml.read_file query_file in
    match parse_mapping_arg query mapping_arg with
    | Error m -> `Error (false, m)
    | Ok mapping -> (
        match Ledger.charge_of_mapping ledger ~query mapping with
        | Error m -> `Error (false, m)
        | Ok charge -> (
            match Ledger.credit ledger charge with
            | Error m -> `Error (false, m)
            | Ok () ->
                Graphml.write_file (Ledger.residual_graph ledger) residual_file;
                Format.printf "credited; residual network written to %s@."
                  residual_file;
                print_utilization (Ledger.utilization ledger);
                `Ok ()))

let utilization_run host_file residual_file =
  let _host, ledger = open_ledger host_file residual_file in
  print_utilization (Ledger.utilization ledger);
  `Ok ()

let residual_opt =
  Arg.(value & opt (some string) None & info [ "residual" ] ~docv:"FILE"
         ~doc:"Residual-network GraphML file: read as the starting state when \
               it exists, rewritten after successful commits.  This file is \
               the allocation state between CLI invocations.")

let allocate_cmd =
  let host_file =
    Arg.(required & opt (some file) None & info [ "host" ] ~docv:"FILE"
           ~doc:"Hosting network (GraphML) declaring capacities.")
  in
  let query_file =
    Arg.(required & opt (some file) None & info [ "query" ] ~docv:"FILE"
           ~doc:"Query network (GraphML) whose attributes are the demand vector.")
  in
  let constraint_arg =
    Arg.(value & opt string "true" & info [ "constraint" ] ~docv:"EXPR"
           ~doc:"Constraint expression, or @FILE.")
  in
  let node_constraint =
    Arg.(value & opt (some string) None & info [ "node-constraint" ] ~docv:"EXPR"
           ~doc:"Optional per-node constraint over rSource/vSource.")
  in
  let algorithm =
    Arg.(value & opt algorithm_conv Engine.ECF & info [ "algorithm"; "a" ]
           ~docv:"ALG" ~doc:"Search algorithm: ecf, rwb or lns.")
  in
  let timeout =
    Arg.(value & opt (some float) None & info [ "timeout" ] ~docv:"SECONDS"
           ~doc:"Per-tenant search timeout.")
  in
  let count =
    Arg.(value & opt int 1 & info [ "count" ] ~docv:"N"
           ~doc:"Commit up to N tenants of the same query (stops at the first \
                 rejection).")
  in
  Cmd.v
    (Cmd.info "allocate"
       ~doc:"Embed a query and commit its capacity charge in the resource ledger")
    Term.(
      ret
        (const allocate_run $ host_file $ query_file $ constraint_arg
        $ node_constraint $ algorithm $ timeout $ count $ residual_opt))

let free_cmd =
  let host_file =
    Arg.(required & opt (some file) None & info [ "host" ] ~docv:"FILE"
           ~doc:"Hosting network (GraphML) declaring capacities.")
  in
  let residual_file =
    Arg.(required & opt (some string) None & info [ "residual" ] ~docv:"FILE"
           ~doc:"Residual-network GraphML file holding the allocation state; \
                 rewritten after the credit.")
  in
  let query_file =
    Arg.(required & opt (some file) None & info [ "query" ] ~docv:"FILE"
           ~doc:"The query network that was allocated.")
  in
  let mapping_arg =
    Arg.(required & opt (some string) None & info [ "mapping" ] ~docv:"PAIRS"
           ~doc:"The mapping that was committed, as printed by allocate: \
                 'q0->r17 q1->r4 ...'.")
  in
  Cmd.v
    (Cmd.info "free"
       ~doc:"Credit a previously committed allocation back to the residual network")
    Term.(ret (const free_run $ host_file $ residual_file $ query_file $ mapping_arg))

let utilization_cmd =
  let host_file =
    Arg.(required & opt (some file) None & info [ "host" ] ~docv:"FILE"
           ~doc:"Hosting network (GraphML) declaring capacities.")
  in
  Cmd.v
    (Cmd.info "utilization"
       ~doc:"Report per-resource ledger utilization of a hosting network")
    Term.(ret (const utilization_run $ host_file $ residual_opt))

(* ------------------------------------------------------------------ *)
(* watch                                                               *)
(* ------------------------------------------------------------------ *)

(* A polling terminal view over a running server's HEALTH and TOP wire
   verbs — `top(1)` for the mapping service.  Each tick opens a fresh
   connection (so a wedged server shows up as a connect error, not a
   silent stall), prints the health line and the triage report, and
   sleeps.  --once prints a single snapshot and exits; the cram tests
   and shell scripts use it. *)
let watch_run connect interval once =
  let fail fmt = Printf.ksprintf (fun m -> `Error (false, m)) fmt in
  if interval <= 0.0 then fail "watch: --interval must be positive"
  else
    match String.split_on_char ':' connect with
    | [ host; port_s ] -> (
        match int_of_string_opt port_s with
        | None -> fail "watch: --connect expects HOST:PORT"
        | Some port -> (
            let resolve () =
              try Unix.inet_addr_of_string host
              with Failure _ -> (
                try (Unix.gethostbyname host).Unix.h_addr_list.(0)
                with Not_found -> failwith ("unknown host " ^ host))
            in
            let ask fd frame =
              let len = String.length frame in
              let pos = ref 0 in
              while !pos < len do
                pos := !pos + Unix.write_substring fd frame !pos (len - !pos)
              done
            in
            let read_frame ic =
              let rec go acc =
                let line = input_line ic in
                if line = "." then List.rev acc else go (line :: acc)
              in
              go []
            in
            let drop_ok line =
              if String.length line >= 3 && String.sub line 0 3 = "OK " then
                String.sub line 3 (String.length line - 3)
              else line
            in
            let snapshot addr =
              let fd =
                Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0
              in
              Fun.protect
                ~finally:(fun () ->
                  try Unix.close fd with Unix.Unix_error _ -> ())
              @@ fun () ->
              Unix.connect fd (Unix.ADDR_INET (addr, port));
              let ic = Unix.in_channel_of_descr fd in
              (* Pipelined on one connection; replies come back in
                 order. *)
              ask fd "HEALTH\n.\nTOP\n.\n";
              (match read_frame ic with
              | health :: rest ->
                  Printf.printf "HEALTH %s\n" (drop_ok health);
                  List.iter print_endline rest
              | [] -> ());
              (match read_frame ic with
              | top :: rest ->
                  Printf.printf "TOP %s\n" (drop_ok top);
                  List.iter print_endline rest
              | [] -> ());
              flush stdout
            in
            try
              let addr = resolve () in
              if once then begin
                snapshot addr;
                `Ok ()
              end
              else
                let rec loop () =
                  snapshot addr;
                  print_newline ();
                  flush stdout;
                  Unix.sleepf interval;
                  loop ()
                in
                loop ()
            with
            | Unix.Unix_error (e, _, _) ->
                fail "watch: %s:%d: %s" host port (Unix.error_message e)
            | End_of_file -> fail "watch: server closed the connection"
            | Failure m | Sys_error m -> fail "watch: %s" m))
    | _ -> fail "watch: --connect expects HOST:PORT"

let watch_cmd =
  let connect =
    Arg.(required & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT"
           ~doc:"The running server's TCP endpoint.")
  in
  let interval =
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"SEC"
           ~doc:"Seconds between polls (default 2).")
  in
  let once =
    Arg.(value & flag & info [ "once" ]
           ~doc:"Print one snapshot and exit instead of polling.")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Poll a running server's HEALTH and TOP verbs: health state, SLO \
             window inputs, busiest phases and slowest requests")
    Term.(ret (const watch_run $ connect $ interval $ once))

let main_cmd =
  let doc = "NETEMBED: a network resource mapping service" in
  Cmd.group (Cmd.info "netembed" ~doc ~version:"1.0.0")
    [
      generate_cmd; info_cmd; embed_cmd; explain_cmd; top_cmd; convert_cmd;
      allocate_cmd; free_cmd; utilization_cmd; watch_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
