(* Open-loop load generator for the TCP front-end.

   Closed-loop harnesses (send, wait, send) measure the server's pace,
   not its capacity: under overload they politely slow down with it.
   This generator is open-loop — each connection sends on a fixed
   arrival schedule derived from the target rate whether or not earlier
   replies have arrived (the front-end's pipelining makes that legal on
   one connection) — so pushing the rate past capacity surfaces the
   saturation knee: latency quantiles blow up and, once the admission
   queue fills, backpressure rejects appear instead of unbounded
   queueing.

   Usage (spawn mode — the generator runs the server itself):
     netembed_loadgen --server-bin _build/default/bin/netembed_server.exe \
       --host host.graphml --workers-list 1,2 --rates 50,100,200 \
       --duration 3 --connections 4 [--json BENCH_RESULTS.json]

   or against a running server:  --connect HOST:PORT

   Each (workers, rate) trial reports sent/completed/rejected/errors,
   sustained req/s and p50/p95/p99 reply latency; rows are printed as
   JSON and, with --json FILE, spliced into the file's top-level
   "service_load" section (the bench harness preserves it).  --strict
   exits nonzero on any protocol error — the CI smoke gate. *)

module Bench_io = Netembed_workload.Bench_io

(* ------------------------------------------------------------------ *)
(* Seeded query mix                                                    *)
(* ------------------------------------------------------------------ *)

(* splitmix64: tiny, seedable, good enough to shuffle a query mix. *)
let rng_state = ref 0L

let rng_init seed = rng_state := Int64.of_int seed

let rng_next () =
  let open Int64 in
  rng_state := add !rng_state 0x9E3779B97F4A7C15L;
  let z = !rng_state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (logxor z (shift_right_logical z 31)) land Stdlib.max_int

let query_graphml =
  "<graphml><graph edgedefault=\"undirected\">\n\
   <node id=\"x\"/><node id=\"y\"/>\n\
   <edge source=\"x\" target=\"y\"/>\n\
   </graph></graphml>\n"

let frame_lns_first =
  "EMBED alg=LNS mode=first timeout=5\nCONSTRAINT rEdge.avgDelay < 500\nGRAPHML\n"
  ^ query_graphml ^ ".\n"

let frame_ecf_all =
  "EMBED alg=ECF mode=all timeout=5\nCONSTRAINT rEdge.avgDelay < 100\nGRAPHML\n"
  ^ query_graphml ^ ".\n"

let frame_unsat =
  "EMBED alg=ECF mode=all\nCONSTRAINT true\nNODECONSTRAINT rSource.cpuMhz >= \
   99999999\nGRAPHML\n" ^ query_graphml ^ ".\n"

let frame_util = "UTIL\n.\n"

let frame_top = "TOP\n.\n"

(* 60% cheap feasible search, 15% exhaustive search, 5% infeasible
   (answers OK verdict=unsat), 20% diagnostics verbs. *)
let pick_frame () =
  let r = rng_next () mod 100 in
  if r < 60 then frame_lns_first
  else if r < 75 then frame_ecf_all
  else if r < 80 then frame_unsat
  else if r < 90 then frame_util
  else frame_top

(* ------------------------------------------------------------------ *)
(* One connection: writer on a fixed schedule, reader matching FIFO    *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    let n = Unix.write_substring fd s !pos (len - !pos) in
    if n <= 0 then raise Exit;
    pos := !pos + n
  done

type conn_stats = {
  mutable sent : int;
  mutable completed : int;
  mutable rejected : int;
  mutable errors : int;
  mutable latencies : float list;  (* seconds, completed requests only *)
  mutable last_reply : float;  (* wall clock of the newest reply *)
  phase_sum_ms : (string, float) Hashtbl.t;
      (* per-phase milliseconds summed over phased OK replies *)
  mutable phased : int;  (* OK replies that carried a phases= token *)
}

(* Parse the [phases=<name>:<ms>,...] token off an OK header line.
   Kept local and tolerant — the generator links only the workload
   library, and TOP's header reuses [phases=] for a plain count (no
   colon), which this parser simply yields nothing for. *)
let phases_of_line line =
  let token = " phases=" in
  let n = String.length line and m = String.length token in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = token then Some (i + m)
    else find (i + 1)
  in
  match find 0 with
  | None -> []
  | Some start ->
      let stop =
        match String.index_from_opt line start ' ' with Some j -> j | None -> n
      in
      String.sub line start (stop - start)
      |> String.split_on_char ','
      |> List.filter_map (fun part ->
             match String.split_on_char ':' part with
             | [ name; ms ] -> (
                 match float_of_string_opt ms with
                 | Some v when name <> "" -> Some (name, v)
                 | _ -> None)
             | _ -> None)

(* Replies come back in request order per connection, so matching the
   reply stream FIFO against the send-timestamp queue is exact. *)
let run_connection ~host ~port ~interval ~offset ~duration stats =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  (* A short receive timeout: the reader wakes to re-check whether the
     writer finished (the check/read pair is racy by design), and the
     drain grace below bounds how long unanswered sends are waited
     for. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.25
   with Unix.Unix_error _ -> ());
  let pending = Queue.create () in
  let pending_lock = Mutex.create () in
  let writer_done = ref false in
  let grace_deadline = ref infinity in
  let reader =
    Thread.create
      (fun () ->
        let ic = Unix.in_channel_of_descr fd in
        let read_reply () =
          (* One reply frame: lines through the "." terminator; the
             first line classifies it. *)
          let first = input_line ic in
          let rec drain () =
            if input_line ic <> "." then drain ()
          in
          if first <> "." then drain ();
          first
        in
        let rec loop () =
          let more =
            Mutex.lock pending_lock;
            let m = (not (Queue.is_empty pending)) || not !writer_done in
            Mutex.unlock pending_lock;
            m
          in
          if more then
            match read_reply () with
            | exception End_of_file ->
                (* Server hung up: unanswered sends are errors. *)
                Mutex.lock pending_lock;
                stats.errors <- stats.errors + Queue.length pending;
                Queue.clear pending;
                Mutex.unlock pending_lock
            | exception _ ->
                (* Receive timeout: keep waiting while the trial is live
                   or inside the drain grace; afterwards whatever is
                   still unanswered counts as errors. *)
                let give_up =
                  Mutex.lock pending_lock;
                  let drained = Queue.is_empty pending in
                  let expired =
                    !writer_done && Unix.gettimeofday () > !grace_deadline
                  in
                  if expired && not drained then begin
                    stats.errors <- stats.errors + Queue.length pending;
                    Queue.clear pending
                  end;
                  Mutex.unlock pending_lock;
                  (drained && !writer_done) || expired
                in
                if not give_up then loop ()
            | first ->
                let t1 = Unix.gettimeofday () in
                Mutex.lock pending_lock;
                let t0 = if Queue.is_empty pending then None else Some (Queue.pop pending) in
                Mutex.unlock pending_lock;
                (match t0 with
                | None -> stats.errors <- stats.errors + 1  (* unsolicited *)
                | Some t0 ->
                    stats.last_reply <- t1;
                    (* Replies are still flowing: extend the drain
                       grace (it bounds silence, not total drain). *)
                    grace_deadline := t1 +. 5.0;
                    if String.length first >= 2 && String.sub first 0 2 = "OK"
                    then begin
                      stats.completed <- stats.completed + 1;
                      stats.latencies <- (t1 -. t0) :: stats.latencies;
                      match phases_of_line first with
                      | [] -> ()
                      | ps ->
                          stats.phased <- stats.phased + 1;
                          List.iter
                            (fun (name, ms) ->
                              let prev =
                                Option.value ~default:0.0
                                  (Hashtbl.find_opt stats.phase_sum_ms name)
                              in
                              Hashtbl.replace stats.phase_sum_ms name (prev +. ms))
                            ps
                    end
                    else if
                      (* The backpressure reject is load shedding, not a
                         protocol failure. *)
                      String.length first >= 3
                      && String.sub first 0 3 = "ERR"
                    then
                      let saturated =
                        let sub = "admission queue full" in
                        let n = String.length first and m = String.length sub in
                        let rec has i =
                          i + m <= n && (String.sub first i m = sub || has (i + 1))
                        in
                        has 0
                      in
                      if saturated then stats.rejected <- stats.rejected + 1
                      else stats.errors <- stats.errors + 1
                    else stats.errors <- stats.errors + 1);
                loop ()
        in
        loop ())
      ()
  in
  (* Open loop: absolute schedule, no reply coupling. *)
  let start = Unix.gettimeofday () +. offset in
  let stop_at = start +. duration in
  let rec send i =
    let due = start +. (float_of_int i *. interval) in
    if due >= stop_at then ()
    else begin
      let now = Unix.gettimeofday () in
      if due > now then Thread.delay (due -. now);
      let frame = pick_frame () in
      Mutex.lock pending_lock;
      Queue.push (Unix.gettimeofday ()) pending;
      Mutex.unlock pending_lock;
      (match write_all fd frame with
      | () -> stats.sent <- stats.sent + 1
      | exception _ ->
          Mutex.lock pending_lock;
          ignore (Queue.pop pending);
          Mutex.unlock pending_lock;
          stats.errors <- stats.errors + 1);
      send (i + 1)
    end
  in
  send 0;
  grace_deadline := Unix.gettimeofday () +. 5.0;
  writer_done := true;
  Thread.join reader;
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Trials                                                              *)
(* ------------------------------------------------------------------ *)

type row = {
  workers : int;
  rate : float;
  connections : int;
  duration_s : float;
  sent : int;
  completed : int;
  rejected : int;
  errors : int;
  sustained_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  phase_mean_ms : (string * float) list;
      (* mean per-phase ms over replies that carried phases=, slowest
         first (queue_wait included once the server stamps it) *)
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1) +. 0.5)))

let run_trial ~host ~port ~workers ~rate ~connections ~duration =
  let t0 = Unix.gettimeofday () in
  let stats =
    Array.init connections (fun _ ->
        {
          sent = 0;
          completed = 0;
          rejected = 0;
          errors = 0;
          latencies = [];
          last_reply = t0;
          phase_sum_ms = Hashtbl.create 16;
          phased = 0;
        })
  in
  let interval = float_of_int connections /. rate in
  let threads =
    Array.init connections (fun i ->
        (* Stagger connection schedules so the aggregate arrival
           process approximates the target rate instead of bursting. *)
        let offset = float_of_int i *. interval /. float_of_int connections in
        Thread.create
          (fun () -> run_connection ~host ~port ~interval ~offset ~duration stats.(i))
          ())
  in
  Array.iter Thread.join threads;
  (* Completed work over the time replies actually spanned — the idle
     tail the readers spend confirming the stream is dry is not load. *)
  let t_end = Array.fold_left (fun m s -> Float.max m s.last_reply) t0 stats in
  let elapsed = Float.max 1e-6 (t_end -. t0) in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 stats in
  let latencies =
    Array.of_list (Array.fold_left (fun acc s -> s.latencies @ acc) [] stats)
  in
  Array.sort compare latencies;
  let ms q = percentile latencies q *. 1000.0 in
  let phase_mean_ms =
    let sums = Hashtbl.create 16 in
    let phased = sum (fun s -> s.phased) in
    Array.iter
      (fun s ->
        Hashtbl.iter
          (fun name v ->
            let prev = Option.value ~default:0.0 (Hashtbl.find_opt sums name) in
            Hashtbl.replace sums name (prev +. v))
          s.phase_sum_ms)
      stats;
    if phased = 0 then []
    else
      Hashtbl.fold
        (fun name v acc -> (name, v /. float_of_int phased) :: acc)
        sums []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    workers;
    rate;
    connections;
    duration_s = duration;
    sent = sum (fun s -> s.sent);
    completed = sum (fun s -> s.completed);
    rejected = sum (fun s -> s.rejected);
    errors = sum (fun s -> s.errors);
    sustained_rps = float_of_int (sum (fun s -> s.completed)) /. elapsed;
    p50_ms = ms 0.50;
    p95_ms = ms 0.95;
    p99_ms = ms 0.99;
    phase_mean_ms;
  }

let row_json r =
  let phases =
    String.concat ", "
      (List.map
         (fun (name, v) -> Printf.sprintf "\"%s\": %.3f" name v)
         r.phase_mean_ms)
  in
  Printf.sprintf
    "{\"workers\": %d, \"rate\": %.1f, \"connections\": %d, \"duration_s\": %.1f, \
     \"sent\": %d, \"completed\": %d, \"rejected\": %d, \"errors\": %d, \
     \"sustained_rps\": %.1f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f, \
     \"phase_mean_ms\": {%s}}"
    r.workers r.rate r.connections r.duration_s r.sent r.completed r.rejected
    r.errors r.sustained_rps r.p50_ms r.p95_ms r.p99_ms phases

(* ------------------------------------------------------------------ *)
(* Spawning the server under test                                      *)
(* ------------------------------------------------------------------ *)

let spawn_server ~bin ~host_file ~workers ~queue_capacity ~runtime_sample =
  let r, w = Unix.pipe ~cloexec:false () in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process bin
      [|
        bin; "--host"; host_file; "--tcp-port"; "0"; "--workers";
        string_of_int workers; "--queue-capacity"; string_of_int queue_capacity;
        "--runtime-sample"; Printf.sprintf "%g" runtime_sample;
      |]
      null w Unix.stderr
  in
  Unix.close w;
  Unix.close null;
  let ic = Unix.in_channel_of_descr r in
  (* The server announces its ephemeral port as "LISTEN port=N". *)
  let rec wait_listen () =
    let line = input_line ic in
    match String.split_on_char '=' line with
    | [ "LISTEN port"; p ] -> int_of_string (String.trim p)
    | _ -> wait_listen ()
  in
  let port = wait_listen () in
  (pid, port, ic)

let stop_server (pid, _port, ic) =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] pid);
  try close_in ic with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let () =
  let server_bin = ref "" in
  let host_file = ref "" in
  let connect = ref "" in
  let workers_list = ref "1" in
  let rates = ref "100" in
  let duration = ref 3.0 in
  let connections = ref 4 in
  let seed = ref 42 in
  let queue_capacity = ref 64 in
  let runtime_sample = ref 1.0 in
  let json_file = ref "" in
  let strict = ref false in
  let speclist =
    [
      ("--server-bin", Arg.Set_string server_bin,
       "PATH netembed_server binary to spawn (one instance per --workers-list entry)");
      ("--host", Arg.Set_string host_file,
       "FILE hosting network (GraphML) for spawned servers");
      ("--connect", Arg.Set_string connect,
       "HOST:PORT drive an already-running server instead of spawning");
      ("--workers-list", Arg.Set_string workers_list,
       "N,M,... front-end worker-domain counts to measure (spawn mode; default 1)");
      ("--rates", Arg.Set_string rates,
       "R1,R2,... target open-loop arrival rates, req/s (default 100)");
      ("--duration", Arg.Set_float duration, "SEC per-trial send window (default 3)");
      ("--connections", Arg.Set_int connections,
       "M concurrent client connections (default 4)");
      ("--seed", Arg.Set_int seed, "N query-mix seed (default 42)");
      ("--queue-capacity", Arg.Set_int queue_capacity,
       "N admission queue capacity for spawned servers (default 64)");
      ("--runtime-sample", Arg.Set_float runtime_sample,
       "SEC GC sampler interval for spawned servers, 0 disables (default 1; \
        the runtime-ablation knob)");
      ("--json", Arg.Set_string json_file,
       "FILE splice the rows into FILE's top-level service_load section");
      ("--strict", Arg.Set strict, " exit 1 on any protocol error (CI gate)");
    ]
  in
  Arg.parse speclist (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "netembed_loadgen (--server-bin BIN --host FILE | --connect HOST:PORT) \
     [--workers-list N,M] [--rates R1,R2] [--duration SEC] [--connections M] \
     [--seed N] [--json FILE] [--strict]";
  if !connect = "" && (!server_bin = "" || !host_file = "") then begin
    prerr_endline
      "netembed_loadgen: need --connect HOST:PORT, or --server-bin and --host";
    exit 2
  end;
  let ints s = List.map int_of_string (String.split_on_char ',' s) in
  let floats s = List.map float_of_string (String.split_on_char ',' s) in
  let rate_list = floats !rates in
  let rows = ref [] in
  let trial ~host ~port ~workers =
    List.iter
      (fun rate ->
        rng_init !seed;
        let row =
          run_trial ~host ~port ~workers ~rate ~connections:!connections
            ~duration:!duration
        in
        Printf.printf "%s\n%!" (row_json row);
        rows := row :: !rows)
      rate_list
  in
  (match !connect with
  | "" ->
      List.iter
        (fun workers ->
          let server =
            spawn_server ~bin:!server_bin ~host_file:!host_file ~workers
              ~queue_capacity:!queue_capacity ~runtime_sample:!runtime_sample
          in
          let _, port, _ = server in
          Fun.protect
            (fun () -> trial ~host:"127.0.0.1" ~port ~workers)
            ~finally:(fun () -> stop_server server))
        (ints !workers_list)
  | hostport -> (
      match String.split_on_char ':' hostport with
      | [ host; port ] -> trial ~host ~port:(int_of_string port) ~workers:0
      | _ ->
          prerr_endline "netembed_loadgen: --connect expects HOST:PORT";
          exit 2));
  let rows = List.rev !rows in
  let section =
    Printf.sprintf
      "{\n\
      \    \"note\": \"open-loop fixed-arrival-rate trials over the TCP \
       front-end; rejected counts backpressure sheds, not failures; the \
       saturation knee is where p99 departs p50 across the rate sweep\",\n\
      \    \"rows\": [\n%s\n    ]\n  }"
      (String.concat ",\n"
         (List.map (fun r -> "      " ^ row_json r) rows))
  in
  if !json_file <> "" then begin
    let doc =
      match Bench_io.read_file !json_file with Some d -> d | None -> "{\n}\n"
    in
    Bench_io.write_file !json_file
      (Bench_io.splice_section doc ~key:"service_load" ~value:section);
    Printf.printf "# service_load section written to %s\n%!" !json_file
  end;
  let total_errors = List.fold_left (fun a r -> a + r.errors) 0 rows in
  let total_completed = List.fold_left (fun a r -> a + r.completed) 0 rows in
  Printf.printf "# total completed=%d errors=%d\n%!" total_completed total_errors;
  if !strict && (total_errors > 0 || total_completed = 0) then exit 1
