(* A standalone NETEMBED mapping service speaking the text wire
   protocol over stdin/stdout — the paper's Fig.-1 deployment shape
   ("applications would submit their queries and get a list of possible
   mappings"), transport-agnostic: wrap it in inetd/socat/ssh as needed.

   Usage:
     netembed_server --host host.graphml [--monitor-every N]
                     [--metrics-port PORT] [--flight-dump FILE]

   Protocol: frames as defined in Netembed_service.Wire — EMBED
   (search), ALLOC (search and commit the first mapping as a fractional
   ledger allocation), FREE <id>, UTIL, EXPLAIN <request-id> (fetch
   the failure certificate of an earlier request) and TOP (the
   phase-latency triage report); one answer per request; EOF
   terminates.  With --monitor-every N, a synthetic monitoring tick
   refreshes the model between every N requests, so long-running
   sessions see drifting measurements.  With --flight-dump FILE, the
   certificate (including the flight-recorder tail) of every
   diagnosable request is written to FILE as it happens — the
   post-mortem artifact a CI run uploads.  With --chrome-trace FILE,
   every request runs with span tracing on and FILE is rewritten with
   the latest request's Chrome trace-event JSON (open in
   chrome://tracing or Perfetto).

   With --metrics-port PORT, a minimal HTTP listener on
   127.0.0.1:PORT serves the telemetry registry: GET /metrics
   (Prometheus text exposition), GET /metrics.json, GET /healthz.
   It runs in its own OCaml domain and reads the live metric cells —
   safe by the telemetry module's single-writer/racy-reader model. *)

module Model = Netembed_service.Model
module Service = Netembed_service.Service
module Wire = Netembed_service.Wire
module Monitor = Netembed_service.Monitor
module Rng = Netembed_rng.Rng
module Telemetry = Netembed_telemetry.Telemetry

let read_frame ic =
  let buf = Buffer.create 1024 in
  let rec go () =
    match input_line ic with
    | "." -> Some (Buffer.contents buf)
    | line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n';
        go ()
    | exception End_of_file -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Metrics exposition (HTTP, one connection at a time)                 *)
(* ------------------------------------------------------------------ *)

let http_response status content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let route registry path =
  match path with
  | "/metrics" ->
      http_response "200 OK" "text/plain; version=0.0.4; charset=utf-8"
        (Telemetry.Registry.to_prometheus registry)
  | "/metrics.json" ->
      http_response "200 OK" "application/json"
        (Telemetry.Registry.to_json registry)
  | "/healthz" -> http_response "200 OK" "text/plain" "ok\n"
  | _ -> http_response "404 Not Found" "text/plain" "not found\n"

let serve_metrics registry port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 16;
  let rec loop () =
    let client, _ = Unix.accept sock in
    (try
       let ic = Unix.in_channel_of_descr client in
       let request_line = try input_line ic with End_of_file -> "" in
       (* Drain request headers; scrapes have no body. *)
       (try
          while String.trim (input_line ic) <> "" do
            ()
          done
        with End_of_file -> ());
       let path =
         match String.split_on_char ' ' request_line with
         | _meth :: p :: _ -> p
         | _ -> "/"
       in
       let response = route registry path in
       ignore (Unix.write_substring client response 0 (String.length response))
     with _ -> ());
    (try Unix.close client with Unix.Unix_error _ -> ());
    loop ()
  in
  loop ()

let () =
  let host_file = ref "" in
  let monitor_every = ref 0 in
  let metrics_port = ref 0 in
  let flight_dump = ref "" in
  let chrome_trace = ref "" in
  let domains = ref 1 in
  let speclist =
    [
      ("--host", Arg.Set_string host_file, "FILE hosting network (GraphML), required");
      ("--monitor-every", Arg.Set_int monitor_every,
       "N run a synthetic monitoring tick every N requests (0 = off)");
      ("--metrics-port", Arg.Set_int metrics_port,
       "PORT serve GET /metrics on 127.0.0.1:PORT (0 = off)");
      ("--flight-dump", Arg.Set_string flight_dump,
       "FILE write the latest failure certificate (JSON) here");
      ("--chrome-trace", Arg.Set_string chrome_trace,
       "FILE trace every request; write the latest request's Chrome trace JSON here");
      ("--domains", Arg.Set_int domains,
       "N run exhaustive ECF requests on N domains with work stealing (default 1 = \
        sequential)");
    ]
  in
  Arg.parse speclist (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "netembed_server --host FILE [--monitor-every N] [--metrics-port PORT] [--flight-dump FILE] [--chrome-trace FILE] [--domains N]";
  if !host_file = "" then begin
    prerr_endline "netembed_server: --host is required";
    exit 2
  end;
  let model = Model.of_graphml_file !host_file in
  let service = Service.create ~domains:!domains model in
  if !metrics_port > 0 then begin
    (* A dying scrape connection must not kill the service. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    ignore (Domain.spawn (fun () -> serve_metrics (Service.registry service) !metrics_port))
  end;
  let monitor =
    if !monitor_every > 0 then Some (Monitor.create (Rng.make 1) model) else None
  in
  let requests = ref 0 in
  (* Persist the certificate of the request that was just diagnosed —
     [entry] is {!Service.last_entry} right after a failed submit, or
     the entry matching the answered id, so old certificates are never
     re-dumped for unrelated requests. *)
  let dump_certificate entry =
    match (!flight_dump, entry) with
    | "", _ | _, None -> ()
    | file, Some e -> (
        match e.Service.certificate with
        | None -> ()
        | Some cert ->
            let oc = open_out file in
            output_string oc (Netembed_explain.Explain.Certificate.to_json cert);
            output_char oc '\n';
            close_out oc)
  in
  (* A submit error has always just logged a diagnostic entry; answer
     with its id so the client can EXPLAIN it. *)
  let submit_error e =
    let entry = Service.last_entry service in
    dump_certificate entry;
    Wire.encode_error
      ?id:(Option.map (fun (en : Service.entry) -> en.Service.id) entry)
      e
  in
  let trace = !chrome_trace <> "" in
  let dump_trace (answer : Service.answer) =
    match (!chrome_trace, answer.Service.trace) with
    | "", _ | _, None -> ()
    | file, Some buf ->
        let oc = open_out file in
        output_string oc
          (Telemetry.Trace.to_chrome_json ~trace_id:answer.Service.trace_id buf);
        output_char oc '\n';
        close_out oc
  in
  (* Reply serialization is a request phase too: stamp it onto the
     windowed series (it cannot appear in its own OK header — the
     header is already built by the time the cost is known). *)
  let timed_encode f =
    let t0 = Unix.gettimeofday () in
    let reply = f () in
    Service.record_phase service Telemetry.Phase.Encode
      (Unix.gettimeofday () -. t0);
    reply
  in
  let rec serve () =
    match read_frame stdin with
    | None -> ()
    | Some frame ->
        incr requests;
        (match (monitor, !monitor_every) with
        | Some mon, every when every > 0 && !requests mod every = 0 -> Monitor.tick mon
        | _ -> ());
        let reply =
          match Wire.decode_command frame with
          | Error e -> Wire.encode_error e
          | Ok (Wire.Submit request) -> (
              match Service.submit ~trace service request with
              | Error e -> submit_error e
              | Ok answer ->
                  dump_certificate (Service.explain service answer.Service.id);
                  dump_trace answer;
                  timed_encode (fun () -> Wire.encode_answer answer))
          | Ok (Wire.Allocate request) -> (
              match Service.submit ~trace service request with
              | Error e -> submit_error e
              | Ok answer -> (
                  dump_certificate (Service.explain service answer.Service.id);
                  dump_trace answer;
                  match answer.Service.result.Netembed_core.Engine.mappings with
                  | [] -> timed_encode (fun () -> Wire.encode_answer answer)
                  | mapping :: _ -> (
                      match Service.allocate_shared service answer mapping with
                      | Ok id ->
                          timed_encode (fun () ->
                              Wire.encode_answer ~allocation:id answer)
                      | Error e -> Wire.encode_error ~id:answer.Service.id e)))
          | Ok (Wire.Free id) ->
              if Service.free service id then Wire.encode_freed id
              else Wire.encode_error (Printf.sprintf "unknown allocation %d" id)
          | Ok Wire.Utilization ->
              Wire.encode_utilization (Service.utilization service)
          | Ok (Wire.Explain id) -> (
              match Service.explain service id with
              | Some entry -> Wire.encode_explanation entry
              | None ->
                  Wire.encode_error
                    (Printf.sprintf
                       "no diagnostics retained for request %d (unknown, evicted, \
                        or completed quickly)"
                       id))
          | Ok Wire.Top -> Wire.encode_top (Service.top service)
        in
        print_string reply;
        flush stdout;
        serve ()
  in
  serve ()
