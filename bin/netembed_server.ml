(* A standalone NETEMBED mapping service speaking the text wire
   protocol — the paper's Fig.-1 deployment shape ("applications would
   submit their queries and get a list of possible mappings") — over
   stdin/stdout, or over TCP through the concurrent front-end.

   Usage:
     netembed_server --host host.graphml
                     [--tcp-port PORT] [--workers N] [--queue-capacity N]
                     [--idle-timeout SEC] [--max-frame-bytes N]
                     [--monitor-every N] [--metrics-port PORT]
                     [--flight-dump FILE] [--chrome-trace FILE]
                     [--domains N] [--runtime-sample SEC]
                     [--alloc-profile FILE] [--health-fast-window SEC]

   Protocol: frames as defined in Netembed_service.Wire — EMBED
   (search), ALLOC (search and commit the first mapping as a fractional
   ledger allocation), FREE <id>, UTIL, EXPLAIN <request-id> (fetch
   the failure certificate of an earlier request) and TOP (the
   phase-latency triage report); one answer per request, answers in
   request order per connection; EOF terminates a session.  Frames are
   bounded (--max-frame-bytes, default 1 MiB): an oversized frame gets
   a clean ERR and the stream resynchronizes at its terminator.

   Without --tcp-port the server is the historical stdio filter (wrap
   it in inetd/socat/ssh as needed).  With --tcp-port PORT it serves
   TCP on 127.0.0.1:PORT (0 = pick an ephemeral port) through
   Netembed_frontend: an acceptor domain feeds a bounded admission
   queue drained by --workers worker domains (0 = size from the
   machine); when the queue is saturated new frames are rejected
   immediately with a backpressure certificate the client can EXPLAIN.
   The bound port is announced on stdout as "LISTEN port=N".  SIGTERM
   and SIGINT drain gracefully: stop accepting, finish in-flight
   requests, then exit.

   With --monitor-every N, a synthetic monitoring tick refreshes the
   model between every N requests, so long-running sessions see
   drifting measurements.  With --flight-dump FILE, the certificate
   (including the flight-recorder tail) of every diagnosable request is
   written to FILE as it happens — the post-mortem artifact a CI run
   uploads.  With --chrome-trace FILE, every request runs with span
   tracing on and FILE is rewritten with the latest request's Chrome
   trace-event JSON (open in chrome://tracing or Perfetto).

   With --metrics-port PORT, an HTTP listener on 127.0.0.1:PORT serves
   the telemetry registry: GET /metrics (Prometheus text exposition),
   GET /metrics.json, GET /healthz (liveness — non-200 only once the
   drain began) and GET /readyz (readiness — non-200 whenever the SLO
   health machine is not Healthy).  It runs in its own OCaml domain
   with one thread per scrape and socket timeouts, so a stalled scraper
   cannot wedge health checks.

   The runtime health plane: --runtime-sample SEC (default 1, 0 = off)
   runs the GC sampler domain exporting netembed_gc_* gauges;
   --alloc-profile FILE samples allocation sites through Gc.Memprof
   and writes a folded-stack profile to FILE at exit (a marker line
   when the runtime lacks Memprof); --health-fast-window SEC (default
   10) sets the fast SLO burn-rate window.  In TCP mode the main
   thread evaluates the health machine every 250 ms against the live
   admission-queue depth; the state is served as the
   netembed_health_state gauge, the HEALTH wire verb and /readyz. *)

module Model = Netembed_service.Model
module Service = Netembed_service.Service
module Wire = Netembed_service.Wire
module Monitor = Netembed_service.Monitor
module Health = Netembed_service.Health
module Frontend = Netembed_frontend.Frontend
module Rng = Netembed_rng.Rng
module Telemetry = Netembed_telemetry.Telemetry
module Runtime = Netembed_telemetry.Runtime

let () =
  let host_file = ref "" in
  let monitor_every = ref 0 in
  let metrics_port = ref 0 in
  let flight_dump = ref "" in
  let chrome_trace = ref "" in
  let domains = ref 0 in
  let tcp_port = ref (-1) in
  let workers = ref 0 in
  let queue_capacity = ref 64 in
  let idle_timeout = ref 30.0 in
  let max_frame_bytes = ref Wire.default_max_frame_bytes in
  let runtime_sample = ref 1.0 in
  let alloc_profile = ref "" in
  let health_fast_window = ref Health.default_config.Health.fast_window in
  let speclist =
    [
      ("--host", Arg.Set_string host_file, "FILE hosting network (GraphML), required");
      ("--tcp-port", Arg.Set_int tcp_port,
       "PORT serve TCP on 127.0.0.1:PORT through the concurrent front-end (0 = \
        ephemeral; announced as LISTEN port=N; default: stdio mode)");
      ("--workers", Arg.Set_int workers,
       "N front-end worker domains (0 = size from the machine)");
      ("--queue-capacity", Arg.Set_int queue_capacity,
       "N bounded admission queue capacity (default 64)");
      ("--idle-timeout", Arg.Set_float idle_timeout,
       "SEC close idle TCP connections after SEC seconds (0 = never, default 30)");
      ("--max-frame-bytes", Arg.Set_int max_frame_bytes,
       "N reject request frames larger than N bytes (default 1 MiB)");
      ("--monitor-every", Arg.Set_int monitor_every,
       "N run a synthetic monitoring tick every N requests (0 = off)");
      ("--metrics-port", Arg.Set_int metrics_port,
       "PORT serve GET /metrics on 127.0.0.1:PORT (0 = off)");
      ("--flight-dump", Arg.Set_string flight_dump,
       "FILE write the latest failure certificate (JSON) here");
      ("--chrome-trace", Arg.Set_string chrome_trace,
       "FILE trace every request; write the latest request's Chrome trace JSON here");
      ("--domains", Arg.Set_int domains,
       "N run exhaustive ECF requests on N domains with work stealing (default: \
        stdio 1 = sequential; TCP mode sizes from the cores the front end leaves \
        free)");
      ("--runtime-sample", Arg.Set_float runtime_sample,
       "SEC poll Gc.quick_stat every SEC seconds and export netembed_gc_* gauges \
        (0 = off, default 1)");
      ("--alloc-profile", Arg.Set_string alloc_profile,
       "FILE sample allocation sites (Gc.Memprof) and write a folded-stack \
        profile here at exit");
      ("--health-fast-window", Arg.Set_float health_fast_window,
       "SEC fast SLO burn-rate window for the health state machine (default 10)");
    ]
  in
  Arg.parse speclist (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "netembed_server --host FILE [--tcp-port PORT] [--workers N] [--queue-capacity N] \
     [--idle-timeout SEC] [--max-frame-bytes N] [--monitor-every N] [--metrics-port \
     PORT] [--flight-dump FILE] [--chrome-trace FILE] [--domains N] [--runtime-sample \
     SEC] [--alloc-profile FILE] [--health-fast-window SEC]";
  if !host_file = "" then begin
    prerr_endline "netembed_server: --host is required";
    exit 2
  end;
  (* Size the two pools together so TCP mode does not oversubscribe:
     front-end workers first, search domains from what is left. *)
  let sizing =
    Frontend.plan
      ?workers:(if !workers > 0 then Some !workers else None)
      ?search_domains:(if !domains > 0 then Some !domains else None)
      ()
  in
  let search_domains =
    if !tcp_port >= 0 then sizing.Frontend.search_domains
    else if !domains > 0 then !domains
    else 1
  in
  let model = Model.of_graphml_file !host_file in
  let health_config =
    { Health.default_config with Health.fast_window = !health_fast_window }
  in
  let service = Service.create ~domains:search_domains ~health_config model in
  (* Runtime health plane: GC sampler domain and (optional) allocation
     profiler; both torn down via [finish_runtime] on every exit path. *)
  if !runtime_sample > 0.0 then
    Runtime.start ~registry:(Service.registry service)
      ~interval:!runtime_sample ();
  if !alloc_profile <> "" then Runtime.Alloc_profile.start ();
  let finish_runtime () =
    Runtime.stop ();
    if !alloc_profile <> "" then begin
      Runtime.Alloc_profile.stop ();
      let oc = open_out !alloc_profile in
      Runtime.Alloc_profile.dump_folded oc;
      close_out oc
    end
  in
  (* /healthz is pure liveness until the drain begins; /readyz follows
     the SLO health machine. *)
  let draining = Atomic.make false in
  if !metrics_port > 0 then begin
    (* A dying scrape connection must not kill the service. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    ignore
      (Frontend.Http.start ~registry:(Service.registry service)
         ~healthz:(fun () ->
           if Atomic.get draining then (false, "draining") else (true, "ok"))
         ~readyz:(fun () ->
           let s = Health.state (Service.health service) in
           (s = Health.Healthy, Health.state_name s))
         ~port:!metrics_port ())
  end;
  let monitor =
    if !monitor_every > 0 then Some (Monitor.create (Rng.make 1) model) else None
  in
  let requests = Atomic.make 0 in
  (* Worker domains share the dump files and the monitor; serialize
     both behind one lock (dumps are rare: failures and slow paths). *)
  let io_lock = Mutex.create () in
  let with_io f =
    Mutex.lock io_lock;
    Fun.protect f ~finally:(fun () -> Mutex.unlock io_lock)
  in
  (* Persist the certificate of the request that was just diagnosed —
     [entry] is {!Service.last_entry} right after a failed submit, or
     the entry matching the answered id, so old certificates are never
     re-dumped for unrelated requests. *)
  let dump_certificate entry =
    match (!flight_dump, entry) with
    | "", _ | _, None -> ()
    | file, Some e -> (
        match e.Service.certificate with
        | None -> ()
        | Some cert ->
            with_io (fun () ->
                let oc = open_out file in
                output_string oc (Netembed_explain.Explain.Certificate.to_json cert);
                output_char oc '\n';
                close_out oc))
  in
  (* A submit error has always just logged a diagnostic entry; answer
     with its id so the client can EXPLAIN it. *)
  let submit_error e =
    let entry = Service.last_entry service in
    dump_certificate entry;
    Wire.encode_error
      ?id:(Option.map (fun (en : Service.entry) -> en.Service.id) entry)
      e
  in
  let trace = !chrome_trace <> "" in
  let dump_trace (answer : Service.answer) =
    match (!chrome_trace, answer.Service.trace) with
    | "", _ | _, None -> ()
    | file, Some buf ->
        with_io (fun () ->
            let oc = open_out file in
            output_string oc
              (Telemetry.Trace.to_chrome_json ~trace_id:answer.Service.trace_id buf);
            output_char oc '\n';
            close_out oc)
  in
  (* Reply serialization is a request phase too: stamp it onto the
     windowed series (it cannot appear in its own OK header — the
     header is already built by the time the cost is known). *)
  let timed_encode f =
    let t0 = Unix.gettimeofday () in
    let reply = f () in
    Service.record_phase service Telemetry.Phase.Encode
      (Unix.gettimeofday () -. t0);
    reply
  in
  (* One frame in, one reply out — shared verbatim by the stdio loop
     and every front-end worker domain, so both transports speak the
     same service.  Safe to call concurrently: Service serializes its
     own state, the dump files hide behind io_lock, and the monitor
     tick mutates the model only under the service's model lock. *)
  let handle ~queue_wait frame =
    let n = Atomic.fetch_and_add requests 1 + 1 in
    (* GC counters are per-domain: each worker publishes its own
       reading for the sampler domain to export. *)
    Runtime.publish_minor_words ();
    (match (monitor, !monitor_every) with
    | Some mon, every when every > 0 && n mod every = 0 ->
        with_io (fun () -> Service.exclusively service (fun () -> Monitor.tick mon))
    | _ -> ());
    let cmd = Wire.decode_command frame in
    (* Submits fold the queue wait into their own phase array (so it
       reaches the OK header and exemplars); body-less verbs stamp it
       straight onto the windowed series here. *)
    (match cmd with
    | Ok (Wire.Submit _ | Wire.Allocate _) | Error _ -> ()
    | Ok _ ->
        if queue_wait > 0.0 then
          Service.record_phase service Telemetry.Phase.Queue_wait queue_wait);
    match cmd with
    | Error e -> Wire.encode_error e
    | Ok (Wire.Submit request) -> (
        match Service.submit ~trace ~queue_wait service request with
        | Error e -> submit_error e
        | Ok answer ->
            dump_certificate (Service.explain service answer.Service.id);
            dump_trace answer;
            timed_encode (fun () -> Wire.encode_answer answer))
    | Ok (Wire.Allocate request) -> (
        match Service.submit ~trace ~queue_wait service request with
        | Error e -> submit_error e
        | Ok answer -> (
            dump_certificate (Service.explain service answer.Service.id);
            dump_trace answer;
            match answer.Service.result.Netembed_core.Engine.mappings with
            | [] -> timed_encode (fun () -> Wire.encode_answer answer)
            | mapping :: _ -> (
                match Service.allocate_shared service answer mapping with
                | Ok id ->
                    timed_encode (fun () -> Wire.encode_answer ~allocation:id answer)
                | Error e -> Wire.encode_error ~id:answer.Service.id e)))
    | Ok (Wire.Free id) ->
        if Service.free service id then Wire.encode_freed id
        else Wire.encode_error (Printf.sprintf "unknown allocation %d" id)
    | Ok Wire.Utilization -> Wire.encode_utilization (Service.utilization service)
    | Ok (Wire.Explain id) -> (
        match Service.explain service id with
        | Some entry -> Wire.encode_explanation entry
        | None ->
            Wire.encode_error
              (Printf.sprintf
                 "no diagnostics retained for request %d (unknown, evicted, or \
                  completed quickly)"
                 id))
    | Ok Wire.Top -> Wire.encode_top (Service.top service)
    | Ok Wire.Health -> Wire.encode_health (Health.report (Service.health service))
  in
  (* A saturated admission queue answers with a certificate, not a
     dropped connection: the entry is in the diagnostics ring, so the
     client can EXPLAIN the id it was bounced with. *)
  let reject ~queue_depth ~queue_capacity =
    let entry = Service.reject_backpressure service ~queue_depth ~queue_capacity in
    Wire.encode_error ~id:entry.Service.id
      (Printf.sprintf "server saturated: admission queue full (%d/%d); retry"
         queue_depth queue_capacity)
  in
  if !tcp_port >= 0 then begin
    let config =
      {
        Frontend.workers = sizing.Frontend.workers;
        queue_capacity = max 1 !queue_capacity;
        idle_timeout = !idle_timeout;
        max_frame_bytes = !max_frame_bytes;
        drain_timeout = 5.0;
      }
    in
    let server = Frontend.start ~config ~handle ~reject ~port:!tcp_port () in
    Printf.printf "LISTEN port=%d\n%!" (Frontend.port server);
    (* Graceful drain on SIGTERM/SIGINT: a handler may only flag; the
       main thread does the actual stop. *)
    let quit = Atomic.make false in
    let request_quit _ = Atomic.set quit true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_quit);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_quit);
    (* The wait loop doubles as the health evaluator: every 250 ms the
       machine reclassifies against the live admission-queue depth, so
       /readyz and the netembed_health_state gauge track overload with
       bounded staleness. *)
    let next_eval = ref 0.0 in
    while not (Atomic.get quit) do
      Thread.delay 0.05;
      let now = Unix.gettimeofday () in
      if now >= !next_eval then begin
        next_eval := now +. 0.25;
        ignore
          (Health.evaluate (Service.health service)
             ~queue_depth:(Frontend.queue_depth server)
             ~queue_capacity:(Frontend.queue_capacity server))
      end
    done;
    (* Flip both probes before the drain starts so orchestrators stop
       routing while in-flight requests finish. *)
    Atomic.set draining true;
    Health.set_draining (Service.health service);
    Frontend.stop server;
    finish_runtime ()
  end
  else begin
    let rec serve () =
      match Wire.read_frame ~max_bytes:!max_frame_bytes stdin with
      | None -> ()
      | Some frame ->
          let reply =
            match frame with
            | Error msg -> Wire.encode_error msg
            | Ok frame -> handle ~queue_wait:0.0 frame
          in
          print_string reply;
          flush stdout;
          serve ()
    in
    serve ();
    finish_runtime ()
  end
