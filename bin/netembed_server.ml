(* A standalone NETEMBED mapping service speaking the text wire
   protocol — the paper's Fig.-1 deployment shape ("applications would
   submit their queries and get a list of possible mappings") — over
   stdin/stdout, or over TCP through the concurrent front-end.

   Usage:
     netembed_server --host host.graphml
                     [--tcp-port PORT] [--workers N] [--queue-capacity N]
                     [--idle-timeout SEC] [--max-frame-bytes N]
                     [--monitor-every N] [--metrics-port PORT]
                     [--flight-dump FILE] [--chrome-trace FILE]
                     [--domains N]

   Protocol: frames as defined in Netembed_service.Wire — EMBED
   (search), ALLOC (search and commit the first mapping as a fractional
   ledger allocation), FREE <id>, UTIL, EXPLAIN <request-id> (fetch
   the failure certificate of an earlier request) and TOP (the
   phase-latency triage report); one answer per request, answers in
   request order per connection; EOF terminates a session.  Frames are
   bounded (--max-frame-bytes, default 1 MiB): an oversized frame gets
   a clean ERR and the stream resynchronizes at its terminator.

   Without --tcp-port the server is the historical stdio filter (wrap
   it in inetd/socat/ssh as needed).  With --tcp-port PORT it serves
   TCP on 127.0.0.1:PORT (0 = pick an ephemeral port) through
   Netembed_frontend: an acceptor domain feeds a bounded admission
   queue drained by --workers worker domains (0 = size from the
   machine); when the queue is saturated new frames are rejected
   immediately with a backpressure certificate the client can EXPLAIN.
   The bound port is announced on stdout as "LISTEN port=N".  SIGTERM
   and SIGINT drain gracefully: stop accepting, finish in-flight
   requests, then exit.

   With --monitor-every N, a synthetic monitoring tick refreshes the
   model between every N requests, so long-running sessions see
   drifting measurements.  With --flight-dump FILE, the certificate
   (including the flight-recorder tail) of every diagnosable request is
   written to FILE as it happens — the post-mortem artifact a CI run
   uploads.  With --chrome-trace FILE, every request runs with span
   tracing on and FILE is rewritten with the latest request's Chrome
   trace-event JSON (open in chrome://tracing or Perfetto).

   With --metrics-port PORT, an HTTP listener on 127.0.0.1:PORT serves
   the telemetry registry: GET /metrics (Prometheus text exposition),
   GET /metrics.json, GET /healthz.  It runs in its own OCaml domain
   with one thread per scrape and socket timeouts, so a stalled scraper
   cannot wedge health checks. *)

module Model = Netembed_service.Model
module Service = Netembed_service.Service
module Wire = Netembed_service.Wire
module Monitor = Netembed_service.Monitor
module Frontend = Netembed_frontend.Frontend
module Rng = Netembed_rng.Rng
module Telemetry = Netembed_telemetry.Telemetry

let () =
  let host_file = ref "" in
  let monitor_every = ref 0 in
  let metrics_port = ref 0 in
  let flight_dump = ref "" in
  let chrome_trace = ref "" in
  let domains = ref 0 in
  let tcp_port = ref (-1) in
  let workers = ref 0 in
  let queue_capacity = ref 64 in
  let idle_timeout = ref 30.0 in
  let max_frame_bytes = ref Wire.default_max_frame_bytes in
  let speclist =
    [
      ("--host", Arg.Set_string host_file, "FILE hosting network (GraphML), required");
      ("--tcp-port", Arg.Set_int tcp_port,
       "PORT serve TCP on 127.0.0.1:PORT through the concurrent front-end (0 = \
        ephemeral; announced as LISTEN port=N; default: stdio mode)");
      ("--workers", Arg.Set_int workers,
       "N front-end worker domains (0 = size from the machine)");
      ("--queue-capacity", Arg.Set_int queue_capacity,
       "N bounded admission queue capacity (default 64)");
      ("--idle-timeout", Arg.Set_float idle_timeout,
       "SEC close idle TCP connections after SEC seconds (0 = never, default 30)");
      ("--max-frame-bytes", Arg.Set_int max_frame_bytes,
       "N reject request frames larger than N bytes (default 1 MiB)");
      ("--monitor-every", Arg.Set_int monitor_every,
       "N run a synthetic monitoring tick every N requests (0 = off)");
      ("--metrics-port", Arg.Set_int metrics_port,
       "PORT serve GET /metrics on 127.0.0.1:PORT (0 = off)");
      ("--flight-dump", Arg.Set_string flight_dump,
       "FILE write the latest failure certificate (JSON) here");
      ("--chrome-trace", Arg.Set_string chrome_trace,
       "FILE trace every request; write the latest request's Chrome trace JSON here");
      ("--domains", Arg.Set_int domains,
       "N run exhaustive ECF requests on N domains with work stealing (default: \
        stdio 1 = sequential; TCP mode sizes from the cores the front end leaves \
        free)");
    ]
  in
  Arg.parse speclist (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "netembed_server --host FILE [--tcp-port PORT] [--workers N] [--queue-capacity N] \
     [--idle-timeout SEC] [--max-frame-bytes N] [--monitor-every N] [--metrics-port \
     PORT] [--flight-dump FILE] [--chrome-trace FILE] [--domains N]";
  if !host_file = "" then begin
    prerr_endline "netembed_server: --host is required";
    exit 2
  end;
  (* Size the two pools together so TCP mode does not oversubscribe:
     front-end workers first, search domains from what is left. *)
  let sizing =
    Frontend.plan
      ?workers:(if !workers > 0 then Some !workers else None)
      ?search_domains:(if !domains > 0 then Some !domains else None)
      ()
  in
  let search_domains =
    if !tcp_port >= 0 then sizing.Frontend.search_domains
    else if !domains > 0 then !domains
    else 1
  in
  let model = Model.of_graphml_file !host_file in
  let service = Service.create ~domains:search_domains model in
  if !metrics_port > 0 then begin
    (* A dying scrape connection must not kill the service. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    ignore
      (Frontend.Http.start ~registry:(Service.registry service)
         ~port:!metrics_port ())
  end;
  let monitor =
    if !monitor_every > 0 then Some (Monitor.create (Rng.make 1) model) else None
  in
  let requests = Atomic.make 0 in
  (* Worker domains share the dump files and the monitor; serialize
     both behind one lock (dumps are rare: failures and slow paths). *)
  let io_lock = Mutex.create () in
  let with_io f =
    Mutex.lock io_lock;
    Fun.protect f ~finally:(fun () -> Mutex.unlock io_lock)
  in
  (* Persist the certificate of the request that was just diagnosed —
     [entry] is {!Service.last_entry} right after a failed submit, or
     the entry matching the answered id, so old certificates are never
     re-dumped for unrelated requests. *)
  let dump_certificate entry =
    match (!flight_dump, entry) with
    | "", _ | _, None -> ()
    | file, Some e -> (
        match e.Service.certificate with
        | None -> ()
        | Some cert ->
            with_io (fun () ->
                let oc = open_out file in
                output_string oc (Netembed_explain.Explain.Certificate.to_json cert);
                output_char oc '\n';
                close_out oc))
  in
  (* A submit error has always just logged a diagnostic entry; answer
     with its id so the client can EXPLAIN it. *)
  let submit_error e =
    let entry = Service.last_entry service in
    dump_certificate entry;
    Wire.encode_error
      ?id:(Option.map (fun (en : Service.entry) -> en.Service.id) entry)
      e
  in
  let trace = !chrome_trace <> "" in
  let dump_trace (answer : Service.answer) =
    match (!chrome_trace, answer.Service.trace) with
    | "", _ | _, None -> ()
    | file, Some buf ->
        with_io (fun () ->
            let oc = open_out file in
            output_string oc
              (Telemetry.Trace.to_chrome_json ~trace_id:answer.Service.trace_id buf);
            output_char oc '\n';
            close_out oc)
  in
  (* Reply serialization is a request phase too: stamp it onto the
     windowed series (it cannot appear in its own OK header — the
     header is already built by the time the cost is known). *)
  let timed_encode f =
    let t0 = Unix.gettimeofday () in
    let reply = f () in
    Service.record_phase service Telemetry.Phase.Encode
      (Unix.gettimeofday () -. t0);
    reply
  in
  (* One frame in, one reply out — shared verbatim by the stdio loop
     and every front-end worker domain, so both transports speak the
     same service.  Safe to call concurrently: Service serializes its
     own state, the dump files hide behind io_lock, and the monitor
     tick mutates the model only under the service's model lock. *)
  let handle frame =
    let n = Atomic.fetch_and_add requests 1 + 1 in
    (match (monitor, !monitor_every) with
    | Some mon, every when every > 0 && n mod every = 0 ->
        with_io (fun () -> Service.exclusively service (fun () -> Monitor.tick mon))
    | _ -> ());
    match Wire.decode_command frame with
    | Error e -> Wire.encode_error e
    | Ok (Wire.Submit request) -> (
        match Service.submit ~trace service request with
        | Error e -> submit_error e
        | Ok answer ->
            dump_certificate (Service.explain service answer.Service.id);
            dump_trace answer;
            timed_encode (fun () -> Wire.encode_answer answer))
    | Ok (Wire.Allocate request) -> (
        match Service.submit ~trace service request with
        | Error e -> submit_error e
        | Ok answer -> (
            dump_certificate (Service.explain service answer.Service.id);
            dump_trace answer;
            match answer.Service.result.Netembed_core.Engine.mappings with
            | [] -> timed_encode (fun () -> Wire.encode_answer answer)
            | mapping :: _ -> (
                match Service.allocate_shared service answer mapping with
                | Ok id ->
                    timed_encode (fun () -> Wire.encode_answer ~allocation:id answer)
                | Error e -> Wire.encode_error ~id:answer.Service.id e)))
    | Ok (Wire.Free id) ->
        if Service.free service id then Wire.encode_freed id
        else Wire.encode_error (Printf.sprintf "unknown allocation %d" id)
    | Ok Wire.Utilization -> Wire.encode_utilization (Service.utilization service)
    | Ok (Wire.Explain id) -> (
        match Service.explain service id with
        | Some entry -> Wire.encode_explanation entry
        | None ->
            Wire.encode_error
              (Printf.sprintf
                 "no diagnostics retained for request %d (unknown, evicted, or \
                  completed quickly)"
                 id))
    | Ok Wire.Top -> Wire.encode_top (Service.top service)
  in
  (* A saturated admission queue answers with a certificate, not a
     dropped connection: the entry is in the diagnostics ring, so the
     client can EXPLAIN the id it was bounced with. *)
  let reject ~queue_depth ~queue_capacity =
    let entry = Service.reject_backpressure service ~queue_depth ~queue_capacity in
    Wire.encode_error ~id:entry.Service.id
      (Printf.sprintf "server saturated: admission queue full (%d/%d); retry"
         queue_depth queue_capacity)
  in
  if !tcp_port >= 0 then begin
    let config =
      {
        Frontend.workers = sizing.Frontend.workers;
        queue_capacity = max 1 !queue_capacity;
        idle_timeout = !idle_timeout;
        max_frame_bytes = !max_frame_bytes;
        drain_timeout = 5.0;
      }
    in
    let server = Frontend.start ~config ~handle ~reject ~port:!tcp_port () in
    Printf.printf "LISTEN port=%d\n%!" (Frontend.port server);
    (* Graceful drain on SIGTERM/SIGINT: a handler may only flag; the
       main thread does the actual stop. *)
    let quit = Atomic.make false in
    let request_quit _ = Atomic.set quit true in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle request_quit);
    Sys.set_signal Sys.sigint (Sys.Signal_handle request_quit);
    while not (Atomic.get quit) do
      Thread.delay 0.05
    done;
    Frontend.stop server
  end
  else begin
    let rec serve () =
      match Wire.read_frame ~max_bytes:!max_frame_bytes stdin with
      | None -> ()
      | Some frame ->
          let reply =
            match frame with
            | Error msg -> Wire.encode_error msg
            | Ok frame -> handle frame
          in
          print_string reply;
          flush stdout;
          serve ()
    in
    serve ()
  end
