(* Online multi-tenant churn simulator CLI.

   Streams seeded tenant arrivals/departures through the embedding
   service against a synthetic capacitated substrate and reports
   acceptance, utilization and fragmentation per admission policy —
   the experiment behind the "online churn" section of
   BENCH_RESULTS.json.

   Usage:
     netembed_sim --policy defrag_threshold --rate 2.4 --horizon 300
     netembed_sim --policies all --rates 0.6,1.2,2.4 --json BENCH_RESULTS.json

   Virtual time only: a 300-second horizon finishes in well under a
   wall-clock second on the default 12-host clique, and every figure is
   deterministic in the seed (the cram test pins the summary block). *)

module Sim = Netembed_simulate.Sim
module Regular = Netembed_topology.Regular
module Bench_io = Netembed_workload.Bench_io

let substrate_of_spec spec nodes =
  let shape =
    match String.lowercase_ascii spec with
    | "ring" -> Regular.Ring
    | "star" -> Regular.Star
    | "clique" -> Regular.Clique
    | "line" -> Regular.Line
    | "grid" -> Regular.Grid
    | "torus" -> Regular.Torus
    | "hypercube" -> Regular.Hypercube
    | s when String.length s > 5 && String.sub s 0 5 = "tree:" ->
        Regular.Tree (int_of_string (String.sub s 5 (String.length s - 5)))
    | s -> failwith (Printf.sprintf "unknown substrate shape %S" s)
  in
  Regular.capacitated shape nodes

let float_list s = List.map float_of_string (String.split_on_char ',' s)

let curve_json stats =
  String.concat ", "
    (List.map
       (fun s ->
         let cpu =
           match
             List.find_opt
               (fun (r, k, _) -> r = "cpuMhz" && k = "node")
               s.Sim.s_utilization
           with
           | Some (_, _, u) -> u
           | None -> 0.0
         in
         Printf.sprintf
           "{\"t\": %g, \"arrivals\": %d, \"accepts\": %d, \"rejects\": %d, \
            \"active\": %d, \"acceptance_rate\": %.4f, \"fragmentation\": \
            %.4f, \"cpu_utilization\": %.4f}"
           s.Sim.s_time s.Sim.s_arrivals s.Sim.s_accepts s.Sim.s_rejects
           s.Sim.s_active
           (if s.Sim.s_arrivals = 0 then 0.0
            else float_of_int s.Sim.s_accepts /. float_of_int s.Sim.s_arrivals)
           s.Sim.s_fragmentation cpu)
       stats.Sim.samples)

let row_json cfg (stats : Sim.stats) =
  Printf.sprintf
    "{\"policy\": \"%s\", \"rate\": %g, \"seed\": %d, \"arrivals\": %d, \
     \"accepts\": %d, \"rejects\": %d, \"retry_accepts\": %d, \"departures\": \
     %d, \"migrations\": %d, \"migration_failures\": %d, \"defrag_passes\": \
     %d, \"acceptance_rate\": %.4f, \"revenue_acceptance\": %.4f, \
     \"mean_cpu_utilization\": %.4f, \"peak_fragmentation\": %.4f, \
     \"mean_fragmentation\": %.4f, \"final_fragmentation\": %.4f, \
     \"invariant_violations\": %d, \"acceptance_curve\": [%s]}"
    (Sim.policy_name cfg.Sim.policy)
    cfg.Sim.arrival_rate cfg.Sim.seed stats.Sim.arrivals stats.Sim.accepts
    stats.Sim.rejects stats.Sim.retry_accepts stats.Sim.departures
    stats.Sim.migrations stats.Sim.migration_failures stats.Sim.defrag_passes
    stats.Sim.acceptance_rate stats.Sim.revenue_acceptance
    stats.Sim.mean_cpu_utilization stats.Sim.peak_fragmentation
    stats.Sim.mean_fragmentation stats.Sim.final_fragmentation
    stats.Sim.invariant_violations (curve_json stats)

let main () =
  let d = Sim.default_config in
  let policies = ref (Sim.policy_name d.Sim.policy) in
  let rates = ref (Printf.sprintf "%g" d.Sim.arrival_rate) in
  let seed = ref d.Sim.seed in
  let horizon = ref d.Sim.horizon in
  let substrate = ref "clique" in
  let nodes = ref 12 in
  let hold_mean = ref d.Sim.hold_mean in
  let hold_cap = ref d.Sim.hold_cap in
  let hold_shape = ref d.Sim.hold_shape in
  let size_classes =
    ref
      (String.concat ","
         (Array.to_list (Array.map (Printf.sprintf "%g") d.Sim.size_classes)))
  in
  let size_skew = ref d.Sim.size_skew in
  let link_fraction = ref d.Sim.link_fraction in
  let candidates = ref d.Sim.candidates in
  let frag_threshold = ref d.Sim.frag_threshold in
  let reject_threshold = ref d.Sim.reject_threshold in
  let reject_window = ref d.Sim.reject_window in
  let max_migrations = ref d.Sim.max_migrations in
  let victims = ref (Sim.victim_order_name d.Sim.victim_order) in
  let sample_every = ref d.Sim.sample_every in
  let domains = ref d.Sim.domains in
  let json_file = ref "" in
  let events = ref false in
  let quiet = ref false in
  let strict = ref false in
  let speclist =
    [
      ("--policy", Arg.Set_string policies,
       "P admission policy: admit_greedy | no_defrag | defrag_threshold | \
        all, or a comma list (default defrag_threshold)");
      ("--policies", Arg.Set_string policies, "P alias for --policy");
      ("--rates", Arg.Set_string rates,
       "R1,R2,... tenant arrival rates to sweep, per virtual second \
        (default 1)");
      ("--rate", Arg.Set_string rates, "R alias for --rates");
      ("--seed", Arg.Set_int seed, "N workload seed (default 42)");
      ("--horizon", Arg.Set_float horizon,
       "S arrival horizon in virtual seconds (default 300)");
      ("--substrate", Arg.Set_string substrate,
       "SHAPE ring|star|clique|line|grid|torus|hypercube|tree:ARITY \
        (default clique)");
      ("--nodes", Arg.Set_int nodes, "N substrate size (default 12)");
      ("--hold-mean", Arg.Set_float hold_mean,
       "S mean tenant holding time (default 40)");
      ("--hold-cap", Arg.Set_float hold_cap,
       "S holding-time truncation bound (default 400)");
      ("--hold-shape", Arg.Set_float hold_shape,
       "A Pareto tail exponent of holding times (default 1.5)");
      ("--size-classes", Arg.Set_string size_classes,
       "C1,C2,... tenant cpuMhz demand classes (default 300,600,1200,2400)");
      ("--size-skew", Arg.Set_float size_skew,
       "S Zipf skew over size classes, rank 1 = smallest (default 0.9)");
      ("--link-fraction", Arg.Set_float link_fraction,
       "F share of two-node tenants with a bandwidth demand (default 0.3)");
      ("--candidates", Arg.Set_int candidates,
       "K embeddings enumerated per search (default 24)");
      ("--frag-threshold", Arg.Set_float frag_threshold,
       "F defrag when the fragmentation index reaches F (default 0.45)");
      ("--reject-threshold", Arg.Set_float reject_threshold,
       "F ... or the windowed rejection rate reaches F (default 0.3)");
      ("--reject-window", Arg.Set_int reject_window,
       "N trailing arrivals the rejection rate covers (default 20)");
      ("--max-migrations", Arg.Set_int max_migrations,
       "N migration attempts per defrag pass (default 4)");
      ("--victims", Arg.Set_string victims,
       "ORDER smallest_revenue | highest_blocking (default smallest_revenue)");
      ("--sample-every", Arg.Set_float sample_every,
       "S time-series sampling period (default 10)");
      ("--domains", Arg.Set_int domains,
       "N service worker domains (default 1; results are domain-count \
        independent)");
      ("--json", Arg.Set_string json_file,
       "FILE splice the rows into FILE's top-level online_churn section");
      ("--events", Arg.Set events, " print the full deterministic event log");
      ("--quiet", Arg.Set quiet, " suppress the per-run summary blocks");
      ("--strict", Arg.Set strict,
       " exit 1 on any invariant violation or a run with zero accepts \
        (CI gate)");
    ]
  in
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "netembed_sim [--policy P] [--rates R1,R2] [--horizon S] [--seed N] \
     [--substrate SHAPE --nodes N] [--json FILE] [--events] [--strict]";
  let policy_list =
    match String.lowercase_ascii !policies with
    | "all" -> Sim.all_policies
    | s ->
        List.map
          (fun name ->
            match Sim.policy_of_string name with
            | Some p -> p
            | None ->
                prerr_endline ("netembed_sim: unknown policy " ^ name);
                exit 2)
          (String.split_on_char ',' s)
  in
  let victim_order =
    match Sim.victim_order_of_string !victims with
    | Some v -> v
    | None ->
        prerr_endline ("netembed_sim: unknown victim order " ^ !victims);
        exit 2
  in
  let base =
    {
      d with
      Sim.seed = !seed;
      horizon = !horizon;
      hold_mean = !hold_mean;
      hold_cap = !hold_cap;
      hold_shape = !hold_shape;
      size_classes = Array.of_list (float_list !size_classes);
      size_skew = !size_skew;
      link_fraction = !link_fraction;
      candidates = !candidates;
      frag_threshold = !frag_threshold;
      reject_threshold = !reject_threshold;
      reject_window = !reject_window;
      max_migrations = !max_migrations;
      victim_order;
      sample_every = !sample_every;
      domains = !domains;
    }
  in
  let rate_list = float_list !rates in
  let failed = ref false in
  let rows = ref [] in
  List.iter
    (fun rate ->
      List.iter
        (fun policy ->
          let cfg = { base with Sim.policy; arrival_rate = rate } in
          let stats =
            Sim.run cfg (substrate_of_spec !substrate !nodes)
          in
          if !events then
            List.iter print_endline stats.Sim.event_log;
          if not !quiet then print_string (Sim.summary cfg stats);
          rows := (cfg, stats) :: !rows;
          if stats.Sim.invariant_violations > 0 || stats.Sim.accepts = 0 then
            failed := true)
        policy_list)
    rate_list;
  let rows = List.rev !rows in
  if !json_file <> "" then begin
    let section =
      Printf.sprintf
        "{\n\
        \    \"note\": \"seeded online churn: Poisson arrivals, Zipf sizes, \
         bounded-Pareto holds over a capacitated %s-%d substrate; \
         acceptance_curve samples every %gs of virtual time; \
         defrag_threshold re-homes victims through atomic ledger \
         migration\",\n\
        \    \"substrate\": \"%s-%d\",\n\
        \    \"horizon_s\": %g,\n\
        \    \"seed\": %d,\n\
        \    \"rows\": [\n%s\n    ]\n  }"
        !substrate !nodes !sample_every !substrate !nodes !horizon !seed
        (String.concat ",\n"
           (List.map (fun (cfg, stats) -> "      " ^ row_json cfg stats) rows))
    in
    let doc =
      match Bench_io.read_file !json_file with Some c -> c | None -> "{\n}\n"
    in
    Bench_io.write_file !json_file
      (Bench_io.splice_section doc ~key:"online_churn" ~value:section);
    Printf.printf "# online_churn section written to %s\n%!" !json_file
  end;
  if !strict && !failed then exit 1

let () =
  try main () with
  | Failure msg | Invalid_argument msg ->
      prerr_endline ("netembed_sim: " ^ msg);
      exit 2
