(** The NETEMBED umbrella: one module aliasing every public component,
    so applications can [open] or dot into a single namespace.

    {[
      let host  = Netembed.Graphml.read_file "host.graphml" in
      let query = Netembed.Graphml.read_file "query.graphml" in
      let c     = Netembed.Expr.parse_exn "rEdge.avgDelay <= vEdge.maxDelay" in
      let p     = Netembed.Problem.make ~host ~query c in
      Netembed.Engine.find_first Netembed.Engine.ECF p
    ]}

    Grouping mirrors the architecture (see DESIGN.md): substrates, the
    core engine, the service layer, workloads, baselines and the
    multicore extension. *)

(* Substrates *)
module Value = Netembed_attr.Value
module Attrs = Netembed_attr.Attrs
module Schema = Netembed_attr.Schema
module Rng = Netembed_rng.Rng
module Bitset = Netembed_bitset.Bitset
module Graph = Netembed_graph.Graph
module Traversal = Netembed_graph.Traversal
module Paths = Netembed_graph.Paths
module Metrics = Netembed_graph.Metrics
module Sample = Netembed_graph.Sample
module Xml = Netembed_xml.Xml
module Graphml = Netembed_graphml.Graphml

(* Topologies *)
module Regular = Netembed_topology.Regular
module Brite = Netembed_topology.Brite
module Transit_stub = Netembed_topology.Transit_stub
module Composite = Netembed_topology.Composite
module Overlay = Netembed_topology.Overlay
module Planetlab = Netembed_planetlab.Trace

(* Constraint language *)
module Expr = Netembed_expr.Expr
module Ast = Netembed_expr.Ast
module Eval = Netembed_expr.Eval

(* Core engine *)
module Problem = Netembed_core.Problem
module Mapping = Netembed_core.Mapping
module Filter = Netembed_core.Filter
module Budget = Netembed_core.Budget
module Engine = Netembed_core.Engine
module Verify = Netembed_core.Verify
module Optimize = Netembed_core.Optimize
module Path_embed = Netembed_core.Path_embed
module Symmetry = Netembed_core.Symmetry

(* Observability *)
module Telemetry = Netembed_telemetry.Telemetry

(* Service layer *)
module Ledger = Netembed_ledger.Ledger
module Model = Netembed_service.Model
module Request = Netembed_service.Request
module Service = Netembed_service.Service
module Wire = Netembed_service.Wire
module Monitor = Netembed_service.Monitor
module Schedule = Netembed_service.Schedule

(* Baselines *)
module Bruteforce = Netembed_baselines.Bruteforce
module Annealing = Netembed_baselines.Annealing
module Genetic = Netembed_baselines.Genetic
module Sword = Netembed_baselines.Sword
module Zhu_ammar = Netembed_baselines.Zhu_ammar

(* Multicore & decentralized *)
module Parallel = Netembed_parallel.Parallel
module Hierarchical = Netembed_distributed.Hierarchical

(* Workloads & experiments *)
module Query_gen = Netembed_workload.Query_gen
module Figures = Netembed_workload.Figures
module Stats = Netembed_workload.Stats
