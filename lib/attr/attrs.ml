module M = Map.Make (String)

type t = Value.t M.t

let empty = M.empty
let is_empty = M.is_empty
let cardinal = M.cardinal
let add name v t = M.add name v t
let remove = M.remove
let find name t = M.find_opt name t
let find_exn name t = match M.find_opt name t with Some v -> v | None -> raise Not_found
let get name t = M.find name t
let mem = M.mem

let float name t =
  match M.find_opt name t with
  | Some (Value.Int i) -> Some (float_of_int i)
  | Some (Value.Float f) -> Some f
  | Some (Value.Bool _ | Value.String _ | Value.Range _) | None -> None

let string name t =
  match M.find_opt name t with Some (Value.String s) -> Some s | Some _ | None -> None

let union a b = M.union (fun _ _ vb -> Some vb) a b
let of_list l = List.fold_left (fun acc (k, v) -> M.add k v acc) M.empty l
let to_list t = M.bindings t
let fold f t init = M.fold f t init
let iter = M.iter
let map f t = M.mapi f t
let equal = M.equal Value.equal

let pp ppf t =
  let pp_binding ppf (k, v) = Format.fprintf ppf "%s=%a" k Value.pp v in
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp_binding) (M.bindings t)
