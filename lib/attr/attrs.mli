(** Attribute tables: the per-node / per-link characterization maps.

    An attribute table binds attribute names (e.g. ["avgDelay"],
    ["osType"], ["cpuMhz"]) to typed {!Value.t}s.  Tables are persistent:
    updates return new tables, so query generators can derive constrained
    copies of host attributes without aliasing. *)

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int

val add : string -> Value.t -> t -> t
(** [add name v t] binds [name] to [v], replacing any previous binding. *)

val remove : string -> t -> t

val find : string -> t -> Value.t option
val find_exn : string -> t -> Value.t
(** @raise Not_found if the attribute is absent. *)

val get : string -> t -> Value.t
(** Allocation-free lookup: unlike {!find} it builds no [Some] box, so
    the constraint VM can resolve attribute slots on the hot path
    without touching the minor heap.
    @raise Not_found if the attribute is absent. *)

val mem : string -> t -> bool

val float : string -> t -> float option
(** [float name t] is the numeric value of attribute [name], if present
    and numeric ([Int] widens). *)

val string : string -> t -> string option

val union : t -> t -> t
(** [union a b] contains all bindings of [a] and [b]; [b] wins on
    conflicts. *)

val of_list : (string * Value.t) list -> t
val to_list : t -> (string * Value.t) list
(** Bindings in increasing name order. *)

val fold : (string -> Value.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (string -> Value.t -> unit) -> t -> unit
val map : (string -> Value.t -> Value.t) -> t -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
