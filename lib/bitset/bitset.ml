type t = { n : int; words : int array }

let bits_per_word = 62 (* OCaml native ints carry 63 bits incl. sign; use 62 so
                          a full word is exactly [max_int] *)

let word_count n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { n; words = Array.make (max 1 (word_count n)) 0 }

let universe_size t = t.n

(* Mask for the last, possibly partial word so that full/complement style
   operations never set bits beyond the universe. *)
let last_word_mask n =
  let rem = n mod bits_per_word in
  if rem = 0 then max_int else (1 lsl rem) - 1

let full n =
  let t = create n in
  let wc = word_count n in
  for i = 0 to wc - 1 do
    t.words.(i) <- max_int
  done;
  if n > 0 then t.words.(wc - 1) <- last_word_mask n;
  t

let copy t = { n = t.n; words = Array.copy t.words }

let blit ~dst src =
  if dst.n <> src.n then invalid_arg "Bitset: universe mismatch";
  Array.blit src.words 0 dst.words 0 (Array.length src.words)

let check_index t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of universe"

let add t i =
  check_index t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let remove t i =
  check_index t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  if i < 0 || i >= t.n then false
  else
    let w = i / bits_per_word and b = i mod bits_per_word in
    t.words.(w) land (1 lsl b) <> 0

(* Branch-free SWAR popcount: constant ~12 ops per word, where the
   classic clear-lowest-bit loop costs one iteration per set bit — the
   difference matters because [diff_into_card] popcounts every word of
   the candidate domain on every visited search node, and domains near
   the root are dense.  Masks are the usual 64-bit constants truncated
   to the 62 payload bits of a word (the top mask bits would exceed
   OCaml's 63-bit [max_int]). *)
let popcount x =
  let x = x - ((x lsr 1) land 0x1555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let is_empty t =
  let rec go i = i >= Array.length t.words || (t.words.(i) = 0 && go (i + 1)) in
  go 0

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let equal a b =
  a.n = b.n
  &&
  let rec go i = i >= Array.length a.words || (a.words.(i) = b.words.(i) && go (i + 1)) in
  go 0

let check_same a b = if a.n <> b.n then invalid_arg "Bitset: universe mismatch"

let inter_into ~dst src =
  check_same dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land src.words.(i)
  done

let union_into ~dst src =
  check_same dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let diff_into ~dst src =
  check_same dst src;
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land lnot src.words.(i)
  done

(* Fused diff + popcount: the search core observes the candidate-domain
   size on every visited node, and a separate [cardinal] pass would walk
   the words a second time on the hottest path in the tree. *)
let diff_into_card ~dst src =
  check_same dst src;
  let dw = dst.words and sw = src.words in
  let acc = ref 0 in
  for i = 0 to Array.length dw - 1 do
    let w = Array.unsafe_get dw i land lnot (Array.unsafe_get sw i) in
    Array.unsafe_set dw i w;
    acc := !acc + popcount w
  done;
  !acc

let inter_cardinal a b =
  check_same a b;
  let acc = ref 0 in
  for i = 0 to Array.length a.words - 1 do
    acc := !acc + popcount (a.words.(i) land b.words.(i))
  done;
  !acc

let inter a b =
  let r = copy a in
  inter_into ~dst:r b;
  r

let union a b =
  let r = copy a in
  union_into ~dst:r b;
  r

let diff a b =
  let r = copy a in
  diff_into ~dst:r b;
  r

(* Index of the least significant set bit of a one-bit word: binary
   search over halving masks — six branches, not a 62-step shift loop.
   This sits under every candidate enumerated by the search core. *)
let bit_index lsb =
  let n = ref 0 in
  let x = ref lsb in
  if !x land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    x := !x lsr 32
  end;
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = ref t.words.(w) in
    while !word <> 0 do
      let lsb = !word land - !word in
      f ((w * bits_per_word) + bit_index lsb);
      word := !word land lnot lsb
    done
  done

let next_set_bit t i =
  if i >= t.n then -1
  else begin
    let i = max 0 i in
    let start_w = i / bits_per_word in
    let first = t.words.(start_w) land lnot ((1 lsl (i mod bits_per_word)) - 1) in
    if first <> 0 then (start_w * bits_per_word) + bit_index (first land -first)
    else begin
      let result = ref (-1) in
      (try
         for w = start_w + 1 to Array.length t.words - 1 do
           let word = t.words.(w) in
           if word <> 0 then begin
             result := (w * bits_per_word) + bit_index (word land -word);
             raise Exit
           end
         done
       with Exit -> ());
      !result
    end
  end

let iter_from f t i =
  if i < t.n then begin
    let i = max 0 i in
    let start_w = i / bits_per_word in
    for w = start_w to Array.length t.words - 1 do
      let word =
        ref
          (if w = start_w then
             t.words.(w) land lnot ((1 lsl (i mod bits_per_word)) - 1)
           else t.words.(w))
      in
      while !word <> 0 do
        let lsb = !word land - !word in
        f ((w * bits_per_word) + bit_index lsb);
        word := !word land lnot lsb
      done
    done
  end

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let to_array t =
  let a = Array.make (cardinal t) 0 in
  let k = ref 0 in
  iter
    (fun i ->
      a.(!k) <- i;
      incr k)
    t;
  a

let of_list n l =
  let t = create n in
  List.iter (fun i -> add t i) l;
  t

exception Found of int

let choose t =
  try
    iter (fun i -> raise (Found i)) t;
    None
  with Found i -> Some i

let nth t k =
  if k < 0 then None
  else
    (* Skip whole words by popcount, then scan within the word. *)
    let remaining = ref k in
    let result = ref None in
    (try
       for w = 0 to Array.length t.words - 1 do
         let c = popcount t.words.(w) in
         if !remaining < c then begin
           let word = ref t.words.(w) in
           for _ = 1 to !remaining do
             word := !word land (!word - 1)
           done;
           let lsb = !word land - !word in
           let rec bit_index x acc = if x = 1 then acc else bit_index (x lsr 1) (acc + 1) in
           result := Some ((w * bits_per_word) + bit_index lsb 0);
           raise Exit
         end
         else remaining := !remaining - c
       done
     with Exit -> ());
    !result

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (elements t)
