(** Fixed-universe dense bit sets.

    The ECF/RWB filter matrix stores, for every (query edge, host node)
    pair, the set of candidate host nodes (paper, section V-A).  Hosting
    networks have a fixed node universe [0 .. n-1], so a packed bit
    vector gives O(n/63) intersection and difference — the hot loop of
    the search (expression (2) of the paper). *)

type t

val create : int -> t
(** [create n] is the empty set over universe [\[0, n)]. *)

val universe_size : t -> int
val full : int -> t
val copy : t -> t

val add : t -> int -> unit
val remove : t -> int -> unit
val mem : t -> int -> bool
val cardinal : t -> int
val is_empty : t -> bool

val clear : t -> unit
val equal : t -> t -> bool

(** {1 Bulk operations}

    All binary operations require both operands to share a universe
    size and raise [Invalid_argument] otherwise. *)

val blit : dst:t -> t -> unit
(** [blit ~dst src] overwrites [dst] with the contents of [src] without
    allocating — the load operation of the search core's scratch-domain
    pool. *)

val inter_into : dst:t -> t -> unit
(** [inter_into ~dst src] replaces [dst] with [dst ∩ src]. *)

val union_into : dst:t -> t -> unit
val diff_into : dst:t -> t -> unit
(** [diff_into ~dst src] replaces [dst] with [dst \ src]. *)

val diff_into_card : dst:t -> t -> int
(** [diff_into_card ~dst src] is [diff_into ~dst src] returning
    [cardinal dst], in a single pass over the words. *)

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] is [cardinal (inter a b)] without materializing
    the intersection. *)

(** {1 Iteration} *)

val iter : (int -> unit) -> t -> unit
(** Ascending order. *)

val iter_from : (int -> unit) -> t -> int -> unit
(** [iter_from f t i] applies [f] to every element [>= i], ascending.
    [i] may lie anywhere (negative values behave like 0; values [>= n]
    visit nothing). *)

val next_set_bit : t -> int -> int
(** [next_set_bit t i] is the smallest element [>= i], or [-1] when
    none exists.  Successive calls with [prev + 1] traverse the set
    without a closure — the candidate-enumeration primitive of the
    search core. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val to_array : t -> int array
val of_list : int -> int list -> t

val choose : t -> int option
(** Smallest element, if any. *)

val nth : t -> int -> int option
(** [nth t k] is the [k]-th smallest element (0-based), if it exists.
    Used by RWB to pick a uniformly random candidate without
    materializing the set. *)

val pp : Format.formatter -> t -> unit
