type t = {
  started : float;
  deadline : float option;
  max_visited : int option;
  cancelled : (unit -> bool) option;
  depth_counts : int array option;
  mutable count : int;
  mutable spent : bool;
}

exception Exhausted

let make ?timeout ?max_visited ?cancelled ?depth_counts () =
  let started = Unix.gettimeofday () in
  {
    started;
    deadline = Option.map (fun s -> started +. s) timeout;
    max_visited;
    cancelled;
    depth_counts;
    count = 0;
    spent = false;
  }

let unlimited () = make ()

(* gettimeofday is a ~20ns vDSO call: checking every 64 ticks costs
   well under 1% even at tens of millions of ticks per second, while
   keeping the timeout overshoot small for searches whose individual
   ticks are expensive (LNS candidate enumeration). *)
let clock_check_interval = 64

let tick t =
  t.count <- t.count + 1;
  (match t.max_visited with
  | Some m when t.count > m -> t.spent <- true
  | Some _ | None -> ());
  (match t.deadline with
  | Some d when t.count mod clock_check_interval = 0 && Unix.gettimeofday () > d ->
      t.spent <- true
  | Some _ | None -> ());
  (match t.cancelled with
  | Some f when t.count mod clock_check_interval = 0 && f () -> t.spent <- true
  | Some _ | None -> ());
  if t.spent then raise Exhausted

(* The depth-aware tick of the search cores: one extra option match and
   an array increment over [tick] — no allocation either way.  The
   counts array is the engine's Domain_store.depth_counts, sized
   depths + 1, so any depth the cores tick at is in bounds. *)
let tick_at t ~depth =
  (match t.depth_counts with
  | Some c -> c.(depth) <- c.(depth) + 1
  | None -> ());
  tick t

let visited t = t.count
let exhausted t = t.spent
let elapsed t = Unix.gettimeofday () -. t.started
