(** Search budgets: wall-clock timeout and visited-node cap.

    NETEMBED "allows trading off completeness for timely convergence ...
    by allowing only a subset of the feasible embeddings to be returned
    within a given time constraint (timeout)" (paper, contribution 2).
    Exceeding the budget aborts the search; the engine then classifies
    the outcome as partial or inconclusive (Fig. 15). *)

type t

val make :
  ?timeout:float ->
  ?max_visited:int ->
  ?cancelled:(unit -> bool) ->
  ?depth_counts:int array ->
  unit ->
  t
(** [timeout] in seconds of wall-clock time from [make]; [cancelled] is
    polled alongside the clock and aborts the search when it returns
    true — the cooperative cancellation hook used by the parallel
    searchers to stop losers of a race.  [depth_counts], when given,
    receives one increment per {!tick_at} at the visit's search depth —
    the engine passes the preallocated array owned by its
    {!Domain_store} (length [depths + 1], covering every depth the
    cores tick at), so instrumented searches allocate nothing per
    visited node. *)

val unlimited : unit -> t

exception Exhausted

val tick : t -> unit
(** Count one visited search-tree node.
    @raise Exhausted when the budget is exceeded.  The wall clock and
    the cancellation hook are consulted every 64 ticks, keeping both
    the overhead and the worst-case timeout overshoot negligible. *)

val tick_at : t -> depth:int -> unit
(** {!tick} plus an increment of the attached depth counter (a no-op
    without one).  The search cores use this so visit ticks feed the
    depth distribution in one call. *)

val visited : t -> int
val exhausted : t -> bool
(** True once {!Exhausted} has been raised (or the budget found spent). *)

val elapsed : t -> float
(** Seconds since [make]. *)
