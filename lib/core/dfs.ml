open Netembed_graph
module Rng = Netembed_rng.Rng
module Bitset = Netembed_bitset.Bitset
module Explain = Netembed_explain.Explain

type candidate_order =
  | Ascending
  | Random of Rng.t

type frame = {
  prefix : int array;
  candidates : int array;
}

let frame_depth fr = Array.length fr.prefix

exception Stop_search

(* Position of each query node in the search order, to find which
   neighbours are already assigned at a given depth; then per depth the
   list of already-assigned neighbour query nodes. *)
let assigned_neighbours_table (p : Problem.t) order nq =
  let position = Array.make (max 1 nq) 0 in
  Array.iteri (fun pos q -> position.(q) <- pos) order;
  Array.init nq (fun depth ->
      let q = order.(depth) in
      List.filter_map
        (fun (w, _) -> if position.(w) < depth then Some w else None)
        (Problem.query_neighbours p q)
      |> List.sort_uniq compare |> Array.of_list)

(* Intersection of the filter cells of the already-assigned neighbours
   [nbrs] of query node [q], loaded into the store's scratch bitset at
   [depth] (expression (2)) — or [q]'s node-level candidates when no
   neighbour is assigned yet (expression (1)).  Used hosts are NOT
   subtracted here; callers follow with [exclude_used_observed].  All
   in-place and closure-free: cell lookups go through the exception
   variant so no [Some] is boxed per lookup. *)
let load_intersection store (f : Filter.t) ~assignment ~nbrs ~depth ~q =
  let n_nbrs = Array.length nbrs in
  if n_nbrs = 0 then
    ignore (Domain_store.load store ~depth (Filter.node_candidates_bits f q))
  else begin
    let w0 = nbrs.(0) in
    match Filter.cell_bits_exn f ~q_assigned:w0 ~r_assigned:assignment.(w0) ~q_next:q with
    | exception Not_found -> ignore (Domain_store.load_empty store ~depth)
    | cell ->
        ignore (Domain_store.load store ~depth cell);
        (* Intersect progressively; bail out on empty. *)
        let dom = Domain_store.domain store ~depth in
        let i = ref 1 in
        while !i < n_nbrs && not (Bitset.is_empty dom) do
          let w = nbrs.(!i) in
          (match
             Filter.cell_bits_exn f ~q_assigned:w ~r_assigned:assignment.(w) ~q_next:q
           with
          | exception Not_found -> ignore (Domain_store.load_empty store ~depth)
          | cell -> Domain_store.restrict store ~depth cell);
          incr i
        done
  end

(* The search proper, generalized to resume from a [frame]: the hosts in
   [start.prefix] are pre-assigned to the first [start_depth] order
   positions and the candidate set at [start_depth] is taken verbatim
   from [start.candidates] instead of being recomputed.  [search] is the
   [start_depth = 0] special case; [search_frame] hands the parallel
   scheduler a way to run any stolen subtree to exhaustion. *)
let search_core ~(start : frame option) ?store ?blame (p : Problem.t) (f : Filter.t)
    ~candidate_order ~budget ~on_solution =
  let nq = Graph.node_count p.query in
  let nr = Graph.node_count p.host in
  let order = Filter.order f in
  let start_depth = match start with None -> 0 | Some fr -> frame_depth fr in
  if nq > 0 && start_depth >= nq then
    invalid_arg "Dfs.search_core: frame depth beyond query";
  let store =
    match store with
    | None -> Domain_store.create ~universe:nr ~depths:nq
    | Some s ->
        if Domain_store.universe s <> nr then
          invalid_arg "Dfs.search: store universe mismatch";
        if Domain_store.depths s < nq then invalid_arg "Dfs.search: store too shallow";
        Domain_store.reset s;
        s
  in
  let assignment = Array.make (max 1 nq) (-1) in
  (match start with
  | None -> ()
  | Some fr ->
      Array.iteri
        (fun i h ->
          assignment.(order.(i)) <- h;
          Domain_store.mark_used store h)
        fr.prefix);
  let assigned_neighbours = assigned_neighbours_table p order nq in
  (* Candidate domain for the node at [depth], computed into the store's
     scratch bitset: neighbour-cell intersection (or the frame's
     candidate set at the resume depth), then subtract used hosts.
     Enumeration below walks [next_set_bit] instead of passing a closure
     to [iter]; the only steady-state allocation in the whole search is
     the solution callback's mapping. *)
  let compute_domain_fast depth =
    (match start with
    | Some fr when depth = start_depth ->
        ignore (Domain_store.load_array store ~depth fr.candidates)
    | Some _ | None ->
        load_intersection store f ~assignment ~nbrs:assigned_neighbours.(depth) ~depth
          ~q:order.(depth));
    ignore (Domain_store.exclude_used_observed store ~depth);
    Domain_store.domain store ~depth
  in
  (* Blamed twin of [compute_domain_fast]: same traversal, plus cause
     attribution on wipeout — which neighbour's filter cell emptied the
     intersection, or, when the intersection survived and only the
     used-host subtraction killed it, host contention (with the count of
     contended candidates).  Wipeouts from an empty expression-(1) set
     carry no new information (the filter's own blame pass covers
     them), so they attribute nothing here. *)
  let compute_domain_blamed bl depth =
    let q = order.(depth) in
    let nbrs = assigned_neighbours.(depth) in
    let n_nbrs = Array.length nbrs in
    let culprit = ref (-1) in
    let start_override =
      match start with Some _ -> depth = start_depth | None -> false
    in
    if start_override then (
      match start with
      | Some fr -> ignore (Domain_store.load_array store ~depth fr.candidates)
      | None -> assert false)
    else if n_nbrs = 0 then
      ignore (Domain_store.load store ~depth (Filter.node_candidates_bits f q))
    else begin
      let w0 = nbrs.(0) in
      match
        Filter.cell_bits_exn f ~q_assigned:w0 ~r_assigned:assignment.(w0) ~q_next:q
      with
      | exception Not_found ->
          ignore (Domain_store.load_empty store ~depth);
          culprit := w0
      | cell ->
          ignore (Domain_store.load store ~depth cell);
          let dom = Domain_store.domain store ~depth in
          let i = ref 1 in
          while !i < n_nbrs && not (Bitset.is_empty dom) do
            let w = nbrs.(!i) in
            (match
               Filter.cell_bits_exn f ~q_assigned:w ~r_assigned:assignment.(w) ~q_next:q
             with
            | exception Not_found ->
                ignore (Domain_store.load_empty store ~depth);
                culprit := w
            | cell ->
                Domain_store.restrict store ~depth cell;
                if Bitset.is_empty dom then culprit := w);
            incr i
          done
    end;
    let pre_card = Bitset.cardinal (Domain_store.domain store ~depth) in
    let card = Domain_store.exclude_used_observed store ~depth in
    if card = 0 then begin
      if !culprit >= 0 then
        Explain.Blame.eliminate bl ~q (Explain.Cause.Edge_constraint (q, !culprit))
      else if pre_card > 0 then
        Explain.Blame.record bl ~q Explain.Cause.Host_contention pre_card
    end;
    Domain_store.domain store ~depth
  in
  let compute_domain =
    match blame with None -> compute_domain_fast | Some bl -> compute_domain_blamed bl
  in
  let rec go depth =
    Budget.tick_at budget ~depth;
    if depth = nq then begin
      match on_solution (Mapping.of_array (Array.copy assignment)) with
      | `Continue -> ()
      | `Stop -> raise Stop_search
    end
    else begin
      let q = order.(depth) in
      let dom = compute_domain depth in
      (* The domain already excludes used hosts, and [used] is restored
         to its entry state between sibling candidates, so no per-
         candidate membership check is needed.  The domain bitset at
         this depth is untouched by deeper recursion (each depth owns
         its scratch), so [next_set_bit] resumes correctly after the
         recursive call.  No unwind protection: on abort (stop /
         budget) the whole search state is discarded. *)
      match candidate_order with
      | Ascending ->
          let r = ref (Bitset.next_set_bit dom 0) in
          while !r >= 0 do
            let h = !r in
            assignment.(q) <- h;
            Domain_store.mark_used store h;
            go (depth + 1);
            Domain_store.release_used store h;
            assignment.(q) <- -1;
            r := Bitset.next_set_bit dom (h + 1)
          done;
          Domain_store.note_backtrack store ~depth
      | Random rng ->
          let buf = Domain_store.order_buffer store ~depth in
          let count = Domain_store.fill_order_buffer store ~depth in
          Rng.shuffle_prefix rng buf count;
          for i = 0 to count - 1 do
            let h = buf.(i) in
            assignment.(q) <- h;
            Domain_store.mark_used store h;
            go (depth + 1);
            Domain_store.release_used store h;
            assignment.(q) <- -1
          done;
          Domain_store.note_backtrack store ~depth
    end
  in
  if nq = 0 then ignore (on_solution (Mapping.of_array [||]))
  else match go start_depth with () -> () | exception Stop_search -> ()

let search ?root_candidates ?store ?blame p f ~candidate_order ~budget ~on_solution =
  let start =
    Option.map (fun roots -> { prefix = [||]; candidates = roots }) root_candidates
  in
  search_core ~start ?store ?blame p f ~candidate_order ~budget ~on_solution

let search_frame ?store ?blame p f ~frame ~candidate_order ~budget ~on_solution =
  search_core ~start:(Some frame) ?store ?blame p f ~candidate_order ~budget
    ~on_solution

let root_frame (_p : Problem.t) (f : Filter.t) =
  let order = Filter.order f in
  if Array.length order = 0 then { prefix = [||]; candidates = [||] }
  else { prefix = [||]; candidates = Filter.node_candidates f order.(0) }

(* One-level frame expansion: assign each candidate of the frame's split
   node in turn and materialize the resulting candidate set of the next
   order position as a child frame.  Children with empty domains are
   dropped (the subtree is a wipeout either way), and when the split
   node is the last one each candidate completes a mapping, which is
   emitted through [on_solution] instead.  Subtrees under distinct
   children are disjoint by construction — they fix different hosts for
   the split node — so a scheduler may hand them to different workers
   and the union of their result sets equals the sequential search. *)
let expand_frame ?store (p : Problem.t) (f : Filter.t) frame ~on_solution =
  let nq = Graph.node_count p.query in
  let nr = Graph.node_count p.host in
  let order = Filter.order f in
  let d = frame_depth frame in
  if nq = 0 then begin
    on_solution (Mapping.of_array [||]);
    []
  end
  else if d >= nq then invalid_arg "Dfs.expand_frame: frame depth beyond query"
  else begin
    let store =
      match store with
      | None -> Domain_store.create ~universe:nr ~depths:nq
      | Some s ->
          if Domain_store.universe s <> nr then
            invalid_arg "Dfs.expand_frame: store universe mismatch";
          if Domain_store.depths s < nq then
            invalid_arg "Dfs.expand_frame: store too shallow";
          Domain_store.reset s;
          s
    in
    let assignment = Array.make (max 1 nq) (-1) in
    Array.iteri
      (fun i h ->
        assignment.(order.(i)) <- h;
        Domain_store.mark_used store h)
      frame.prefix;
    let q = order.(d) in
    if d + 1 = nq then begin
      (* Split node is the last order position: every remaining
         candidate completes a mapping. *)
      Array.iter
        (fun c ->
          assignment.(q) <- c;
          on_solution (Mapping.of_array (Array.copy assignment)))
        frame.candidates;
      []
    end
    else begin
      let assigned_neighbours = assigned_neighbours_table p order nq in
      let child_depth = d + 1 in
      let nbrs = assigned_neighbours.(child_depth) in
      let qn = order.(child_depth) in
      let children = ref [] in
      Array.iter
        (fun c ->
          assignment.(q) <- c;
          Domain_store.mark_used store c;
          load_intersection store f ~assignment ~nbrs ~depth:child_depth ~q:qn;
          let card = Domain_store.exclude_used_observed store ~depth:child_depth in
          if card > 0 then begin
            let buf = Domain_store.order_buffer store ~depth:child_depth in
            let count = Domain_store.fill_order_buffer store ~depth:child_depth in
            children :=
              {
                prefix = Array.append frame.prefix [| c |];
                candidates = Array.sub buf 0 count;
              }
              :: !children
          end;
          Domain_store.release_used store c;
          assignment.(q) <- -1)
        frame.candidates;
      List.rev !children
    end
  end

(* ------------------------------------------------------------------ *)
(* Legacy sorted-array path                                            *)
(* ------------------------------------------------------------------ *)

(* The seed implementation, kept verbatim as the reference for the
   differential tests and the representation-ablation bench: candidate
   sets are fresh sorted-array merges at every visited node.  Visits the
   same tree in the same order as [search] with [Ascending]. *)
let search_arrays ?root_candidates (p : Problem.t) (f : Filter.t) ~candidate_order
    ~budget ~on_solution =
  let nq = Graph.node_count p.query in
  let nr = Graph.node_count p.host in
  let order = Filter.order f in
  let assignment = Array.make (max 1 nq) (-1) in
  let used = Array.make (max 1 nr) false in
  let assigned_neighbours = Array.map Array.to_list (assigned_neighbours_table p order nq) in
  (* Candidate set for the node at [depth]: intersect filter cells of
     assigned neighbours (smallest first), or node-level candidates when
     none is assigned yet.  [used] is filtered during enumeration. *)
  let candidates depth =
    let q = order.(depth) in
    match assigned_neighbours.(depth) with
    | [] -> (
        match root_candidates with
        | Some roots when depth = 0 -> roots
        | Some _ | None -> Filter.node_candidates f q)
    | nbrs ->
        let cells =
          List.map
            (fun w -> Filter.candidates_from f ~q_assigned:w ~r_assigned:assignment.(w) ~q_next:q)
            nbrs
        in
        let cells =
          List.sort (fun a b -> compare (Array.length a) (Array.length b)) cells
        in
        (match cells with
        | [] -> [||]
        | first :: rest ->
            (* Intersect progressively; bail out on empty. *)
            let acc = ref first in
            (try
               List.iter
                 (fun c ->
                   if Array.length !acc = 0 then raise Exit;
                   let out = Array.make (min (Array.length !acc) (Array.length c)) 0 in
                   let i = ref 0 and j = ref 0 and k = ref 0 in
                   let la = Array.length !acc and lb = Array.length c in
                   while !i < la && !j < lb do
                     let x = !acc.(!i) and y = c.(!j) in
                     if x = y then begin
                       out.(!k) <- x;
                       incr k;
                       incr i;
                       incr j
                     end
                     else if x < y then incr i
                     else incr j
                   done;
                   acc := Array.sub out 0 !k)
                 rest
             with Exit -> ());
            !acc)
  in
  let rec go depth =
    Budget.tick budget;
    if depth = nq then begin
      match on_solution (Mapping.of_array (Array.copy assignment)) with
      | `Continue -> ()
      | `Stop -> raise Stop_search
    end
    else begin
      let q = order.(depth) in
      let cands = candidates depth in
      let try_candidate r =
        if not used.(r) then begin
          assignment.(q) <- r;
          used.(r) <- true;
          go (depth + 1);
          used.(r) <- false;
          assignment.(q) <- -1
        end
      in
      match candidate_order with
      | Ascending -> Array.iter try_candidate cands
      | Random rng ->
          let shuffled = Array.copy cands in
          Rng.shuffle_in_place rng shuffled;
          Array.iter try_candidate shuffled
    end
  in
  if nq = 0 then ignore (on_solution (Mapping.of_array [||]))
  else match go 0 with () -> () | exception Stop_search -> ()
