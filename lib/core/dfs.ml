open Netembed_graph
module Rng = Netembed_rng.Rng
module Bitset = Netembed_bitset.Bitset
module Explain = Netembed_explain.Explain

type candidate_order =
  | Ascending
  | Random of Rng.t

exception Stop_search

(* Position of each query node in the search order, to find which
   neighbours are already assigned at a given depth; then per depth the
   list of already-assigned neighbour query nodes. *)
let assigned_neighbours_table (p : Problem.t) order nq =
  let position = Array.make (max 1 nq) 0 in
  Array.iteri (fun pos q -> position.(q) <- pos) order;
  Array.init nq (fun depth ->
      let q = order.(depth) in
      List.filter_map
        (fun (w, _) -> if position.(w) < depth then Some w else None)
        (Problem.query_neighbours p q)
      |> List.sort_uniq compare |> Array.of_list)

let search ?root_candidates ?store ?blame (p : Problem.t) (f : Filter.t)
    ~candidate_order ~budget ~on_solution =
  let nq = Graph.node_count p.query in
  let nr = Graph.node_count p.host in
  let order = Filter.order f in
  let store =
    match store with
    | None -> Domain_store.create ~universe:nr ~depths:nq
    | Some s ->
        if Domain_store.universe s <> nr then
          invalid_arg "Dfs.search: store universe mismatch";
        if Domain_store.depths s < nq then invalid_arg "Dfs.search: store too shallow";
        Domain_store.reset s;
        s
  in
  let assignment = Array.make (max 1 nq) (-1) in
  let assigned_neighbours = assigned_neighbours_table p order nq in
  (* Candidate domain for the node at [depth], computed into the store's
     scratch bitset: intersect the filter cells of assigned neighbours
     (expression (2)) — or load node-level candidates when none is
     assigned yet (expression (1)) — then subtract used hosts.  All
     in-place and closure-free: cell lookups go through the exception
     variant so no [Some] is boxed per lookup, and enumeration below
     walks [next_set_bit] instead of passing a closure to [iter].  The
     only steady-state allocation in the whole search is the solution
     callback's mapping. *)
  let compute_domain_fast depth =
    let q = order.(depth) in
    let nbrs = assigned_neighbours.(depth) in
    let n_nbrs = Array.length nbrs in
    if n_nbrs = 0 then (
      match root_candidates with
      | Some roots when depth = 0 -> ignore (Domain_store.load_array store ~depth roots)
      | Some _ | None ->
          ignore (Domain_store.load store ~depth (Filter.node_candidates_bits f q)))
    else begin
      let w0 = nbrs.(0) in
      match
        Filter.cell_bits_exn f ~q_assigned:w0 ~r_assigned:assignment.(w0) ~q_next:q
      with
      | exception Not_found -> ignore (Domain_store.load_empty store ~depth)
      | cell ->
          ignore (Domain_store.load store ~depth cell);
          (* Intersect progressively; bail out on empty. *)
          let dom = Domain_store.domain store ~depth in
          let i = ref 1 in
          while !i < n_nbrs && not (Bitset.is_empty dom) do
            let w = nbrs.(!i) in
            (match
               Filter.cell_bits_exn f ~q_assigned:w ~r_assigned:assignment.(w) ~q_next:q
             with
            | exception Not_found -> ignore (Domain_store.load_empty store ~depth)
            | cell -> Domain_store.restrict store ~depth cell);
            incr i
          done
    end;
    ignore (Domain_store.exclude_used_observed store ~depth);
    Domain_store.domain store ~depth
  in
  (* Blamed twin of [compute_domain_fast]: same traversal, plus cause
     attribution on wipeout — which neighbour's filter cell emptied the
     intersection, or, when the intersection survived and only the
     used-host subtraction killed it, host contention (with the count of
     contended candidates).  Wipeouts from an empty expression-(1) set
     carry no new information (the filter's own blame pass covers
     them), so they attribute nothing here. *)
  let compute_domain_blamed bl depth =
    let q = order.(depth) in
    let nbrs = assigned_neighbours.(depth) in
    let n_nbrs = Array.length nbrs in
    let culprit = ref (-1) in
    if n_nbrs = 0 then (
      match root_candidates with
      | Some roots when depth = 0 -> ignore (Domain_store.load_array store ~depth roots)
      | Some _ | None ->
          ignore (Domain_store.load store ~depth (Filter.node_candidates_bits f q)))
    else begin
      let w0 = nbrs.(0) in
      match
        Filter.cell_bits_exn f ~q_assigned:w0 ~r_assigned:assignment.(w0) ~q_next:q
      with
      | exception Not_found ->
          ignore (Domain_store.load_empty store ~depth);
          culprit := w0
      | cell ->
          ignore (Domain_store.load store ~depth cell);
          let dom = Domain_store.domain store ~depth in
          let i = ref 1 in
          while !i < n_nbrs && not (Bitset.is_empty dom) do
            let w = nbrs.(!i) in
            (match
               Filter.cell_bits_exn f ~q_assigned:w ~r_assigned:assignment.(w) ~q_next:q
             with
            | exception Not_found ->
                ignore (Domain_store.load_empty store ~depth);
                culprit := w
            | cell ->
                Domain_store.restrict store ~depth cell;
                if Bitset.is_empty dom then culprit := w);
            incr i
          done
    end;
    let pre_card = Bitset.cardinal (Domain_store.domain store ~depth) in
    let card = Domain_store.exclude_used_observed store ~depth in
    if card = 0 then begin
      if !culprit >= 0 then
        Explain.Blame.eliminate bl ~q (Explain.Cause.Edge_constraint (q, !culprit))
      else if pre_card > 0 then
        Explain.Blame.record bl ~q Explain.Cause.Host_contention pre_card
    end;
    Domain_store.domain store ~depth
  in
  let compute_domain =
    match blame with None -> compute_domain_fast | Some bl -> compute_domain_blamed bl
  in
  let rec go depth =
    Budget.tick_at budget ~depth;
    if depth = nq then begin
      match on_solution (Mapping.of_array (Array.copy assignment)) with
      | `Continue -> ()
      | `Stop -> raise Stop_search
    end
    else begin
      let q = order.(depth) in
      let dom = compute_domain depth in
      (* The domain already excludes used hosts, and [used] is restored
         to its entry state between sibling candidates, so no per-
         candidate membership check is needed.  The domain bitset at
         this depth is untouched by deeper recursion (each depth owns
         its scratch), so [next_set_bit] resumes correctly after the
         recursive call.  No unwind protection: on abort (stop /
         budget) the whole search state is discarded. *)
      match candidate_order with
      | Ascending ->
          let r = ref (Bitset.next_set_bit dom 0) in
          while !r >= 0 do
            let h = !r in
            assignment.(q) <- h;
            Domain_store.mark_used store h;
            go (depth + 1);
            Domain_store.release_used store h;
            assignment.(q) <- -1;
            r := Bitset.next_set_bit dom (h + 1)
          done;
          Domain_store.note_backtrack store ~depth
      | Random rng ->
          let buf = Domain_store.order_buffer store ~depth in
          let count = Domain_store.fill_order_buffer store ~depth in
          Rng.shuffle_prefix rng buf count;
          for i = 0 to count - 1 do
            let h = buf.(i) in
            assignment.(q) <- h;
            Domain_store.mark_used store h;
            go (depth + 1);
            Domain_store.release_used store h;
            assignment.(q) <- -1
          done;
          Domain_store.note_backtrack store ~depth
    end
  in
  if nq = 0 then ignore (on_solution (Mapping.of_array [||]))
  else match go 0 with () -> () | exception Stop_search -> ()

(* ------------------------------------------------------------------ *)
(* Legacy sorted-array path                                            *)
(* ------------------------------------------------------------------ *)

(* The seed implementation, kept verbatim as the reference for the
   differential tests and the representation-ablation bench: candidate
   sets are fresh sorted-array merges at every visited node.  Visits the
   same tree in the same order as [search] with [Ascending]. *)
let search_arrays ?root_candidates (p : Problem.t) (f : Filter.t) ~candidate_order
    ~budget ~on_solution =
  let nq = Graph.node_count p.query in
  let nr = Graph.node_count p.host in
  let order = Filter.order f in
  let assignment = Array.make (max 1 nq) (-1) in
  let used = Array.make (max 1 nr) false in
  let assigned_neighbours = Array.map Array.to_list (assigned_neighbours_table p order nq) in
  (* Candidate set for the node at [depth]: intersect filter cells of
     assigned neighbours (smallest first), or node-level candidates when
     none is assigned yet.  [used] is filtered during enumeration. *)
  let candidates depth =
    let q = order.(depth) in
    match assigned_neighbours.(depth) with
    | [] -> (
        match root_candidates with
        | Some roots when depth = 0 -> roots
        | Some _ | None -> Filter.node_candidates f q)
    | nbrs ->
        let cells =
          List.map
            (fun w -> Filter.candidates_from f ~q_assigned:w ~r_assigned:assignment.(w) ~q_next:q)
            nbrs
        in
        let cells =
          List.sort (fun a b -> compare (Array.length a) (Array.length b)) cells
        in
        (match cells with
        | [] -> [||]
        | first :: rest ->
            (* Intersect progressively; bail out on empty. *)
            let acc = ref first in
            (try
               List.iter
                 (fun c ->
                   if Array.length !acc = 0 then raise Exit;
                   let out = Array.make (min (Array.length !acc) (Array.length c)) 0 in
                   let i = ref 0 and j = ref 0 and k = ref 0 in
                   let la = Array.length !acc and lb = Array.length c in
                   while !i < la && !j < lb do
                     let x = !acc.(!i) and y = c.(!j) in
                     if x = y then begin
                       out.(!k) <- x;
                       incr k;
                       incr i;
                       incr j
                     end
                     else if x < y then incr i
                     else incr j
                   done;
                   acc := Array.sub out 0 !k)
                 rest
             with Exit -> ());
            !acc)
  in
  let rec go depth =
    Budget.tick budget;
    if depth = nq then begin
      match on_solution (Mapping.of_array (Array.copy assignment)) with
      | `Continue -> ()
      | `Stop -> raise Stop_search
    end
    else begin
      let q = order.(depth) in
      let cands = candidates depth in
      let try_candidate r =
        if not used.(r) then begin
          assignment.(q) <- r;
          used.(r) <- true;
          go (depth + 1);
          used.(r) <- false;
          assignment.(q) <- -1
        end
      in
      match candidate_order with
      | Ascending -> Array.iter try_candidate cands
      | Random rng ->
          let shuffled = Array.copy cands in
          Rng.shuffle_in_place rng shuffled;
          Array.iter try_candidate shuffled
    end
  in
  if nq = 0 then ignore (on_solution (Mapping.of_array [||]))
  else match go 0 with () -> () | exception Stop_search -> ()
