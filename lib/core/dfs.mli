(** The shared depth-first search over the permutations tree used by
    both ECF and RWB (paper, sections V-A and V-B).

    Query nodes are examined in the Lemma-1 order of the filter matrix.
    The candidate set of the node at each depth is the intersection of
    the filter cells of its already-assigned query neighbours
    (expression (2)), within its node-level candidates (expression (1))
    and minus already-used host nodes.  ECF enumerates candidates in
    ascending order (deterministic, exhaustive); RWB enumerates them in
    uniformly random order — "by virtue of the randomness with which
    candidate mappings are selected, and the backtracking-nature of the
    search" — and is normally run in first-match mode.

    Candidate domains are bitsets over the host universe, computed
    in-place into a {!Domain_store} scratch pool: one [blit], O(depth)
    [inter_into]/[diff_into] per visited node, no allocation.  The seed
    sorted-array implementation is retained as {!search_arrays} for
    differential testing and the representation-ablation bench. *)

type candidate_order =
  | Ascending
  | Random of Netembed_rng.Rng.t

val search :
  ?root_candidates:int array ->
  ?store:Domain_store.t ->
  ?blame:Netembed_explain.Explain.Blame.t ->
  Problem.t ->
  Filter.t ->
  candidate_order:candidate_order ->
  budget:Budget.t ->
  on_solution:(Mapping.t -> [ `Continue | `Stop ]) ->
  unit
(** Runs to exhaustion of the (pruned) permutations tree, calling
    [on_solution] on every feasible mapping found; stops early if the
    callback answers [`Stop].

    [blame], when given, attributes every domain wipeout to a cause:
    the query edge whose filter cell emptied the intersection, or host
    contention when only the used-host subtraction did.  The search
    runs a separate domain-computation path in this mode, so the
    unblamed hot loop stays branch-identical to before.

    [root_candidates] restricts the candidate set of the {e first} node
    in the search order (it must be a sorted subset of that node's
    candidates) — the root-partitioning hook of the parallel searcher.

    [store] supplies the scratch-domain pool, amortizing it across
    repeated searches; it is [reset] on entry.  When omitted, a private
    store is created.  Parallel searchers must pass one store per
    domain — stores are single-searcher state.
    @raise Invalid_argument when [store] has the wrong universe size or
    fewer depths than query nodes.
    @raise Budget.Exhausted when the budget runs out. *)

val search_arrays :
  ?root_candidates:int array ->
  Problem.t ->
  Filter.t ->
  candidate_order:candidate_order ->
  budget:Budget.t ->
  on_solution:(Mapping.t -> [ `Continue | `Stop ]) ->
  unit
(** The seed sorted-array implementation: candidate sets are merged into
    freshly allocated arrays at every visited node.  Same contract as
    {!search}; with [Ascending] it visits the same tree in the same
    order, so answer sets (and budget-limited prefixes) coincide — the
    property the differential tests assert.  With [Random] the RNG is
    consumed differently (used hosts are shuffled then skipped rather
    than excluded first), so individual first matches may differ from
    {!search}.  Reference only: slower and allocation-heavy. *)
