(** The shared depth-first search over the permutations tree used by
    both ECF and RWB (paper, sections V-A and V-B).

    Query nodes are examined in the Lemma-1 order of the filter matrix.
    The candidate set of the node at each depth is the intersection of
    the filter cells of its already-assigned query neighbours
    (expression (2)), within its node-level candidates (expression (1))
    and minus already-used host nodes.  ECF enumerates candidates in
    ascending order (deterministic, exhaustive); RWB enumerates them in
    uniformly random order — "by virtue of the randomness with which
    candidate mappings are selected, and the backtracking-nature of the
    search" — and is normally run in first-match mode.

    Candidate domains are bitsets over the host universe, computed
    in-place into a {!Domain_store} scratch pool: one [blit], O(depth)
    [inter_into]/[diff_into] per visited node, no allocation.  The seed
    sorted-array implementation is retained as {!search_arrays} for
    differential testing and the representation-ablation bench. *)

type candidate_order =
  | Ascending
  | Random of Netembed_rng.Rng.t

type frame = {
  prefix : int array;
      (** Hosts assigned to the first [Array.length prefix] positions of
          the search order ([prefix.(i)] hosts [order.(i)]). *)
  candidates : int array;
      (** Sorted remaining candidate hosts for the order position at
          [Array.length prefix], already excluding the prefix hosts. *)
}
(** A resumable search frame: a node of the permutations tree together
    with the not-yet-tried candidates below it.  Frames with the same
    prefix and disjoint candidate sets — or frames whose prefixes
    diverge — root disjoint subtrees, so a parallel scheduler may search
    them independently and the union of the per-frame result sets equals
    the sequential search. *)

val frame_depth : frame -> int
(** Number of already-assigned order positions ([Array.length prefix]). *)

val root_frame : Problem.t -> Filter.t -> frame
(** The whole tree as a single frame: empty prefix, all node-level
    candidates of the first node in the filter order. *)

val expand_frame :
  ?store:Domain_store.t ->
  Problem.t ->
  Filter.t ->
  frame ->
  on_solution:(Mapping.t -> unit) ->
  frame list
(** One-level expansion: one child frame per candidate of the split
    node, each carrying the candidate set of the next order position
    under that assignment (computed exactly as {!search} would).
    Children with empty candidate sets are dropped.  When the split node
    is the last order position, every candidate completes a mapping and
    is emitted through [on_solution] instead; the returned list is then
    empty.  [store] as in {!search} (reset on entry; must not be shared
    with a concurrent searcher).  Does not consume budget. *)

val search_frame :
  ?store:Domain_store.t ->
  ?blame:Netembed_explain.Explain.Blame.t ->
  Problem.t ->
  Filter.t ->
  frame:frame ->
  candidate_order:candidate_order ->
  budget:Budget.t ->
  on_solution:(Mapping.t -> [ `Continue | `Stop ]) ->
  unit
(** Runs the subtree rooted at [frame] to exhaustion: the prefix hosts
    are pre-assigned (and marked used), the split node enumerates
    exactly [frame.candidates], and deeper domains are recomputed as in
    {!search}.  Same contract as {!search} otherwise.
    @raise Budget.Exhausted when the budget runs out. *)

val search :
  ?root_candidates:int array ->
  ?store:Domain_store.t ->
  ?blame:Netembed_explain.Explain.Blame.t ->
  Problem.t ->
  Filter.t ->
  candidate_order:candidate_order ->
  budget:Budget.t ->
  on_solution:(Mapping.t -> [ `Continue | `Stop ]) ->
  unit
(** Runs to exhaustion of the (pruned) permutations tree, calling
    [on_solution] on every feasible mapping found; stops early if the
    callback answers [`Stop].

    [blame], when given, attributes every domain wipeout to a cause:
    the query edge whose filter cell emptied the intersection, or host
    contention when only the used-host subtraction did.  The search
    runs a separate domain-computation path in this mode, so the
    unblamed hot loop stays branch-identical to before.

    [root_candidates] restricts the candidate set of the {e first} node
    in the search order (it must be a sorted subset of that node's
    candidates) — the root-partitioning hook of the parallel searcher.

    [store] supplies the scratch-domain pool, amortizing it across
    repeated searches; it is [reset] on entry.  When omitted, a private
    store is created.  Parallel searchers must pass one store per
    domain — stores are single-searcher state.
    @raise Invalid_argument when [store] has the wrong universe size or
    fewer depths than query nodes.
    @raise Budget.Exhausted when the budget runs out. *)

val search_arrays :
  ?root_candidates:int array ->
  Problem.t ->
  Filter.t ->
  candidate_order:candidate_order ->
  budget:Budget.t ->
  on_solution:(Mapping.t -> [ `Continue | `Stop ]) ->
  unit
(** The seed sorted-array implementation: candidate sets are merged into
    freshly allocated arrays at every visited node.  Same contract as
    {!search}; with [Ascending] it visits the same tree in the same
    order, so answer sets (and budget-limited prefixes) coincide — the
    property the differential tests assert.  With [Random] the RNG is
    consumed differently (used hosts are shuffled then skipped rather
    than excluded first), so individual first matches may differ from
    {!search}.  Reference only: slower and allocation-heavy. *)
