module Bitset = Netembed_bitset.Bitset
module Telemetry = Netembed_telemetry.Telemetry
module Explain = Netembed_explain.Explain

type t = {
  universe : int;
  depths : int;
  scratch : Bitset.t array;
  order_bufs : int array array;
  used : Bitset.t;
  mutable domains_built : int;
  mutable intersections : int;
  (* Telemetry state, preallocated here so instrumented searches stay
     allocation-free in steady state.  Search depth is bounded by
     [depths] and domain cardinality by [universe], so both
     distributions are kept as exact count arrays — one increment per
     visited node, no histogram call on the hot path — and folded into
     log-bucketed Telemetry histograms only at snapshot time. *)
  depth_counts : int array;
  domain_size_counts : int array;
  backtracks : int array;
  wipeouts : int array;
      (** per-depth count of domains that emptied at build time — the
          denominator of backtrack blame *)
  mutable last_used : int;
      (** most recent [mark_used] host, -1 before any — the "chosen
          host" the flight recorder stamps onto events *)
  mutable recorder : Explain.Recorder.t option;
}

type stats = {
  universe : int;
  depths : int;
  scratch_words : int;
  domains_built : int;
  intersections : int;
  backtracks : int;
}

let create ~universe ~depths : t =
  if universe < 0 || depths < 0 then invalid_arg "Domain_store.create";
  {
    universe;
    depths;
    scratch = Array.init depths (fun _ -> Bitset.create universe);
    order_bufs = Array.init depths (fun _ -> Array.make (max 1 universe) 0);
    used = Bitset.create universe;
    domains_built = 0;
    intersections = 0;
    (* +1: the search ticks once more at depth = depths when a complete
       assignment is reached. *)
    depth_counts = Array.make (depths + 1) 0;
    domain_size_counts = Array.make (universe + 1) 0;
    backtracks = Array.make (max 1 depths) 0;
    wipeouts = Array.make (max 1 depths) 0;
    last_used = -1;
    recorder = None;
  }

let universe (t : t) = t.universe
let depths (t : t) = t.depths
let used (t : t) = t.used
let mark_used (t : t) r =
  t.last_used <- r;
  Bitset.add t.used r

let attach_recorder (t : t) r = t.recorder <- Some r
let release_used (t : t) r = Bitset.remove t.used r
let reset (t : t) = Bitset.clear t.used
let domain (t : t) ~depth = t.scratch.(depth)

let load (t : t) ~depth src =
  t.domains_built <- t.domains_built + 1;
  let dst = t.scratch.(depth) in
  Bitset.blit ~dst src;
  dst

let load_array (t : t) ~depth a =
  t.domains_built <- t.domains_built + 1;
  let dst = t.scratch.(depth) in
  Bitset.clear dst;
  Array.iter (Bitset.add dst) a;
  dst

let load_empty (t : t) ~depth =
  t.domains_built <- t.domains_built + 1;
  let dst = t.scratch.(depth) in
  Bitset.clear dst;
  dst

let restrict (t : t) ~depth src =
  t.intersections <- t.intersections + 1;
  Bitset.inter_into ~dst:t.scratch.(depth) src

let exclude_used (t : t) ~depth = Bitset.diff_into ~dst:t.scratch.(depth) t.used

let depth_counts (t : t) = t.depth_counts

let hist_of_counts counts =
  let h = Telemetry.Histogram.make () in
  Array.iteri (fun v n -> Telemetry.Histogram.observe_n h v n) counts;
  h

let depth_hist (t : t) = hist_of_counts t.depth_counts
let domain_size_hist (t : t) = hist_of_counts t.domain_size_counts

(* Shared tail of the two domain-observation entry points: one store
   for the size count, one increment behind the card = 0 check, and a
   single option branch for the flight recorder — nothing here grows
   with explain mode off. *)
let observed (t : t) ~depth card =
  t.domain_size_counts.(card) <- t.domain_size_counts.(card) + 1;
  if card = 0 && depth < Array.length t.wipeouts then
    t.wipeouts.(depth) <- t.wipeouts.(depth) + 1;
  (match t.recorder with
  | None -> ()
  | Some rec_ ->
      if card = 0 then Explain.Recorder.wipeout rec_ ~depth ~host:t.last_used
      else Explain.Recorder.visit rec_ ~depth ~host:t.last_used ~size:card);
  card

let observe_domain (t : t) ~depth =
  ignore (observed t ~depth (Bitset.cardinal t.scratch.(depth)))

(* Fused [exclude_used] + [observe_domain] for the DFS hot path: the
   diff pass already touches every word, so the domain size falls out of
   it for free instead of costing a second walk per visited node. *)
let exclude_used_observed (t : t) ~depth =
  observed t ~depth (Bitset.diff_into_card ~dst:t.scratch.(depth) t.used)

let note_backtrack (t : t) ~depth =
  t.backtracks.(depth) <- t.backtracks.(depth) + 1;
  match t.recorder with
  | None -> ()
  | Some rec_ -> Explain.Recorder.backtrack rec_ ~depth

let backtracks_by_depth (t : t) = t.backtracks
let backtrack_total (t : t) = Array.fold_left ( + ) 0 t.backtracks
let wipeouts_by_depth (t : t) = t.wipeouts

let order_buffer (t : t) ~depth = t.order_bufs.(depth)

let fill_order_buffer (t : t) ~depth =
  let buf = t.order_bufs.(depth) in
  let dom = t.scratch.(depth) in
  (* next_set_bit walk rather than [Bitset.iter]: no closure allocated
     per call — this runs once per visited node under Random order. *)
  let k = ref 0 in
  let r = ref (Bitset.next_set_bit dom 0) in
  while !r >= 0 do
    buf.(!k) <- !r;
    incr k;
    r := Bitset.next_set_bit dom (!r + 1)
  done;
  !k

let stats (t : t) : stats =
  let words_of b = (Bitset.universe_size b + 61) / 62 in
  {
    universe = t.universe;
    depths = t.depths;
    scratch_words =
      Array.fold_left (fun acc b -> acc + max 1 (words_of b)) (max 1 (words_of t.used)) t.scratch;
    domains_built = t.domains_built;
    intersections = t.intersections;
    backtracks = backtrack_total t;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "universe=%d depths=%d scratch_words=%d domains=%d intersections=%d backtracks=%d"
    s.universe s.depths s.scratch_words s.domains_built s.intersections s.backtracks
