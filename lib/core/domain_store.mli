(** Bitset-backed candidate domains for the search core.

    Expression (2) of the paper — the candidate set of the next query
    node as an intersection of filter cells, minus already-used host
    nodes — is the hot loop of ECF/RWB.  A [Domain_store] owns one
    scratch bitset per search depth over the host-node universe, plus a
    per-depth index buffer for randomized enumeration and the shared
    [used] set, so the whole permutations-tree walk performs O(words)
    in-place set algebra and is allocation-free in steady state.

    A store is single-searcher state: parallel domains share the
    read-only {!Filter} but must each own a store (see
    {!Netembed_parallel}). *)

module Bitset = Netembed_bitset.Bitset

type t

val create : universe:int -> depths:int -> t
(** [create ~universe ~depths] preallocates [depths] scratch domains
    (and index buffers) over host universe [\[0, universe)].
    @raise Invalid_argument when either is negative. *)

val universe : t -> int
val depths : t -> int

val reset : t -> unit
(** Clear the [used] set (the scratch domains are overwritten by the
    next [load]).  Cumulative statistics are retained. *)

(** {1 The used-host set} *)

val used : t -> Bitset.t
(** The set of host nodes currently holding an assignment.  Exposed
    read-only by convention; mutate through {!mark_used} /
    {!release_used}. *)

val mark_used : t -> int -> unit
val release_used : t -> int -> unit

(** {1 Scratch domains}

    The domain at each depth is built by one [load*] call followed by
    any number of [restrict] calls and usually one [exclude_used];
    it stays valid until the next [load*] at the same depth. *)

val domain : t -> depth:int -> Bitset.t
(** The scratch bitset of [depth] in its current state. *)

val load : t -> depth:int -> Bitset.t -> Bitset.t
(** Overwrite the scratch domain with a copy of the given set (e.g. a
    filter cell or node-candidate set) and return it. *)

val load_array : t -> depth:int -> int array -> Bitset.t
(** Overwrite the scratch domain with the elements of the array — the
    root-partitioning hook of the parallel searcher. *)

val load_empty : t -> depth:int -> Bitset.t

val restrict : t -> depth:int -> Bitset.t -> unit
(** Intersect the scratch domain with the given set in place. *)

val exclude_used : t -> depth:int -> unit
(** Subtract the [used] set from the scratch domain in place. *)

(** {1 Randomized enumeration} *)

val order_buffer : t -> depth:int -> int array
(** The preallocated index buffer of [depth] (length = universe).
    Meaningful up to the count returned by the latest
    {!fill_order_buffer}. *)

val fill_order_buffer : t -> depth:int -> int
(** Write the elements of the scratch domain of [depth] into its index
    buffer (ascending) and return how many there are.  RWB shuffles
    that prefix in place instead of copying the candidate set. *)

(** {1 Telemetry}

    All telemetry state is preallocated by {!create}, so the search
    cores can record into it without allocating in steady state: depth
    is bounded by [depths] and domain cardinality by [universe], so both
    distributions live in exact count arrays (one increment per visited
    node).  The counters survive {!reset} (they are cumulative per
    store); {!depth_hist} and {!domain_size_hist} fold them into fresh
    log-bucketed histograms, which parallel searchers merge at join via
    {!Netembed_telemetry.Telemetry.Histogram.merge_into}. *)

val depth_counts : t -> int array
(** Per-depth visit counters, length [depths + 1] (a complete
    assignment ticks once at [depth = depths]) — fed by
    {!Budget.tick_at} when the engine attaches them to the budget.
    Owned by the store; read-only by convention. *)

val depth_hist : t -> Netembed_telemetry.Telemetry.Histogram.t
(** Distribution of search depths over visited nodes: a fresh histogram
    folded from {!depth_counts} at call time. *)

val domain_size_hist : t -> Netembed_telemetry.Telemetry.Histogram.t
(** Distribution of candidate-domain cardinalities at build time — fed
    by {!observe_domain}; a fresh histogram folded at call time. *)

val observe_domain : t -> depth:int -> unit
(** Record the cardinality of the current scratch domain of [depth]
    into {!domain_size_hist}. *)

val exclude_used_observed : t -> depth:int -> int
(** [exclude_used] and [observe_domain] fused into a single pass over
    the domain's words — what the DFS hot path calls per visited node.
    Returns the resulting cardinality (0 = wipeout), which the explain
    path uses for cause attribution; plain searches ignore it. *)

val note_backtrack : t -> depth:int -> unit
(** Count one exhausted candidate enumeration at [depth] (the searcher
    returning to its parent). *)

val backtracks_by_depth : t -> int array
(** The per-depth backtrack counters (owned by the store; read-only by
    convention). *)

val backtrack_total : t -> int

val wipeouts_by_depth : t -> int array
(** Per-depth counts of candidate domains found empty at build time —
    together with {!backtracks_by_depth}, the raw material of the
    certificate's hot-spot attribution. *)

val attach_recorder : t -> Netembed_explain.Explain.Recorder.t -> unit
(** Route domain observations ({!observe_domain} /
    {!exclude_used_observed} as sampled visits and wipeouts,
    {!note_backtrack} as backtracks) into a flight recorder.  Costs one
    option branch per observation when never attached. *)

(** {1 Statistics} *)

type stats = {
  universe : int;
  depths : int;
  scratch_words : int;  (** words held by the scratch pool (incl. [used]) *)
  domains_built : int;  (** [load*] calls — one per visited search node with candidates *)
  intersections : int;  (** [restrict] calls — filter-cell intersections performed *)
  backtracks : int;  (** {!note_backtrack} calls — exhausted enumerations *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
