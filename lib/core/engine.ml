module Rng = Netembed_rng.Rng
module Telemetry = Netembed_telemetry.Telemetry

type algorithm = ECF | RWB | LNS

let algorithm_name = function ECF -> "ECF" | RWB -> "RWB" | LNS -> "LNS"
let all_algorithms = [ ECF; RWB; LNS ]

type mode = First | All | At_most of int

type outcome = Complete | Partial | Inconclusive

let outcome_name = function
  | Complete -> "complete"
  | Partial -> "partial"
  | Inconclusive -> "inconclusive"

type options = {
  mode : mode;
  timeout : float option;
  max_visited : int option;
  seed : int;
  collect : bool;
}

let default_options =
  { mode = First; timeout = None; max_visited = None; seed = 42; collect = true }

type result = {
  mappings : Mapping.t list;
  found : int;
  outcome : outcome;
  elapsed : float;
  time_to_first : float option;
  visited : int;
  filter_evals : int;
  domain_stats : Domain_store.stats option;
  telemetry : Telemetry.snapshot;
}

(* Process-wide per-algorithm counters, registered once at module init
   so the exposition shows all three algorithms from the start.  Each
   run adds its totals after the search finishes — never from the hot
   path. *)
let global_counters =
  List.map
    (fun a ->
      let labels = [ ("algorithm", algorithm_name a) ] in
      let reg = Telemetry.default_registry in
      ( a,
        Telemetry.Registry.counter reg ~labels
          ~help:"Search-tree nodes visited" "netembed_visited_nodes_total",
        Telemetry.Registry.counter reg ~labels
          ~help:"Feasible mappings found" "netembed_mappings_found_total",
        Telemetry.Registry.counter reg ~labels
          ~help:"Constraint-expression evaluations (all phases)"
          "netembed_constraint_evals_total" ))
    all_algorithms

let run ?(options = default_options) algorithm problem =
  let store =
    Domain_store.create
      ~universe:(Netembed_graph.Graph.node_count problem.Problem.host)
      ~depths:(Netembed_graph.Graph.node_count problem.Problem.query)
  in
  let budget =
    Budget.make ?timeout:options.timeout ?max_visited:options.max_visited
      ~depth_counts:(Domain_store.depth_counts store) ()
  in
  let found = ref [] in
  let count = ref 0 in
  let time_to_first = ref None in
  let limit = match options.mode with First -> 1 | All -> max_int | At_most k -> max k 0 in
  let on_solution m =
    if !time_to_first = None then time_to_first := Some (Budget.elapsed budget);
    Telemetry.Span.event "solution";
    if options.collect then found := m :: !found;
    incr count;
    if !count >= limit then `Stop else `Continue
  in
  (* The problem's evaluation counter is shared across runs (and across
     the filter build and the searchers), so per-run figures are
     deltas. *)
  let evals_before = Problem.constraint_evals problem in
  let ran_out =
    try
      if limit = 0 then raise Exit;
      (match algorithm with
      | ECF | RWB ->
          let filter =
            Telemetry.Span.with_span "filter_build" (fun () -> Filter.build problem)
          in
          let candidate_order =
            match algorithm with
            | ECF -> Dfs.Ascending
            | RWB -> Dfs.Random (Rng.make options.seed)
            | LNS -> assert false
          in
          Telemetry.Span.with_span "descent" (fun () ->
              Dfs.search ~store problem filter ~candidate_order ~budget ~on_solution)
      | LNS ->
          Telemetry.Span.with_span "descent" (fun () ->
              Lns.search ~store problem ~budget ~on_solution));
      false
    with
    | Budget.Exhausted -> true
    | Exit -> false (* At_most 0: nothing requested, trivially complete *)
  in
  let mappings = List.rev !found in
  let outcome =
    if ran_out then if mappings = [] then Inconclusive else Partial
    else Complete
  in
  let constraint_evals = Problem.constraint_evals problem - evals_before in
  let elapsed = Budget.elapsed budget in
  let visited = Budget.visited budget in
  let stats = Domain_store.stats store in
  let telemetry =
    {
      Telemetry.algorithm = algorithm_name algorithm;
      visited;
      found = !count;
      elapsed_s = elapsed;
      time_to_first_s = !time_to_first;
      constraint_evals;
      domains_built = stats.Domain_store.domains_built;
      intersections = stats.Domain_store.intersections;
      backtracks = stats.Domain_store.backtracks;
      (* depth_hist / domain_size_hist fold the store's exact count
         arrays into fresh histograms, so no copy is needed. *)
      max_depth = Telemetry.Histogram.max_observed (Domain_store.depth_hist store);
      depth_histogram = Domain_store.depth_hist store;
      domain_size_histogram = Domain_store.domain_size_hist store;
    }
  in
  (match List.find_opt (fun (a, _, _, _) -> a = algorithm) global_counters with
  | Some (_, visited_c, found_c, evals_c) ->
      Telemetry.Counter.add visited_c visited;
      Telemetry.Counter.add found_c !count;
      Telemetry.Counter.add evals_c constraint_evals
  | None -> ());
  {
    mappings;
    found = !count;
    outcome;
    elapsed;
    time_to_first = !time_to_first;
    visited;
    filter_evals = constraint_evals;
    domain_stats = Some stats;
    telemetry;
  }

let find_first ?timeout algorithm problem =
  let options = { default_options with mode = First; timeout } in
  match (run ~options algorithm problem).mappings with [] -> None | m :: _ -> Some m

let find_all ?timeout algorithm problem =
  let options = { default_options with mode = All; timeout } in
  (run ~options algorithm problem).mappings
