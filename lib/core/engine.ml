module Rng = Netembed_rng.Rng

type algorithm = ECF | RWB | LNS

let algorithm_name = function ECF -> "ECF" | RWB -> "RWB" | LNS -> "LNS"
let all_algorithms = [ ECF; RWB; LNS ]

type mode = First | All | At_most of int

type outcome = Complete | Partial | Inconclusive

let outcome_name = function
  | Complete -> "complete"
  | Partial -> "partial"
  | Inconclusive -> "inconclusive"

type options = {
  mode : mode;
  timeout : float option;
  max_visited : int option;
  seed : int;
  collect : bool;
}

let default_options =
  { mode = First; timeout = None; max_visited = None; seed = 42; collect = true }

type result = {
  mappings : Mapping.t list;
  found : int;
  outcome : outcome;
  elapsed : float;
  time_to_first : float option;
  visited : int;
  filter_evals : int;
  domain_stats : Domain_store.stats option;
}

let run ?(options = default_options) algorithm problem =
  let budget = Budget.make ?timeout:options.timeout ?max_visited:options.max_visited () in
  let found = ref [] in
  let count = ref 0 in
  let time_to_first = ref None in
  let limit = match options.mode with First -> 1 | All -> max_int | At_most k -> max k 0 in
  let on_solution m =
    if !time_to_first = None then time_to_first := Some (Budget.elapsed budget);
    if options.collect then found := m :: !found;
    incr count;
    if !count >= limit then `Stop else `Continue
  in
  let filter_evals = ref 0 in
  let store =
    Domain_store.create
      ~universe:(Netembed_graph.Graph.node_count problem.Problem.host)
      ~depths:(Netembed_graph.Graph.node_count problem.Problem.query)
  in
  let ran_out =
    try
      if limit = 0 then raise Exit;
      (match algorithm with
      | ECF | RWB ->
          let filter = Filter.build problem in
          filter_evals := Filter.constraint_evaluations filter;
          let candidate_order =
            match algorithm with
            | ECF -> Dfs.Ascending
            | RWB -> Dfs.Random (Rng.make options.seed)
            | LNS -> assert false
          in
          Dfs.search ~store problem filter ~candidate_order ~budget ~on_solution
      | LNS -> Lns.search ~store problem ~budget ~on_solution);
      false
    with
    | Budget.Exhausted -> true
    | Exit -> false (* At_most 0: nothing requested, trivially complete *)
  in
  let mappings = List.rev !found in
  let outcome =
    if ran_out then if mappings = [] then Inconclusive else Partial
    else Complete
  in
  {
    mappings;
    found = !count;
    outcome;
    elapsed = Budget.elapsed budget;
    time_to_first = !time_to_first;
    visited = Budget.visited budget;
    filter_evals = !filter_evals;
    domain_stats = Some (Domain_store.stats store);
  }

let find_first ?timeout algorithm problem =
  let options = { default_options with mode = First; timeout } in
  match (run ~options algorithm problem).mappings with [] -> None | m :: _ -> Some m

let find_all ?timeout algorithm problem =
  let options = { default_options with mode = All; timeout } in
  (run ~options algorithm problem).mappings
