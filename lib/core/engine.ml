module Rng = Netembed_rng.Rng
module Telemetry = Netembed_telemetry.Telemetry
module Explain = Netembed_explain.Explain
module Graph = Netembed_graph.Graph
module Bitset = Netembed_bitset.Bitset
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Eval = Netembed_expr.Eval
module Ast = Netembed_expr.Ast

type algorithm = ECF | RWB | LNS

let algorithm_name = function ECF -> "ECF" | RWB -> "RWB" | LNS -> "LNS"
let all_algorithms = [ ECF; RWB; LNS ]

type mode = First | All | At_most of int

type outcome = Complete | Partial | Inconclusive

let outcome_name = function
  | Complete -> "complete"
  | Partial -> "partial"
  | Inconclusive -> "inconclusive"

type options = {
  mode : mode;
  timeout : float option;
  max_visited : int option;
  seed : int;
  collect : bool;
  explain : bool;
  prefilter : bool;
}

let default_options =
  {
    mode = First;
    timeout = None;
    max_visited = None;
    seed = 42;
    collect = true;
    explain = false;
    prefilter = true;
  }

type result = {
  mappings : Mapping.t list;
  found : int;
  outcome : outcome;
  elapsed : float;
  time_to_first : float option;
  visited : int;
  filter_evals : int;
  domain_stats : Domain_store.stats option;
  telemetry : Telemetry.snapshot;
  report : Explain.Certificate.t option;
  filter : Filter.t option;
}

(* The wire/service verdict vocabulary: [outcome] alone conflates
   "exhausted the space and found nothing" (a proof of infeasibility)
   with "found everything asked for"; the verdict splits them. *)
let verdict_of outcome found =
  match outcome with
  | Complete -> if found = 0 then "unsat" else "complete"
  | Partial -> "partial"
  | Inconclusive -> "exhausted"

let verdict r = verdict_of r.outcome r.found

(* Process-wide per-algorithm counters, registered once at module init
   so the exposition shows all three algorithms from the start.  Each
   run adds its totals after the search finishes — never from the hot
   path. *)
let global_counters =
  List.map
    (fun a ->
      let labels = [ ("algorithm", algorithm_name a) ] in
      let reg = Telemetry.default_registry in
      ( a,
        Telemetry.Registry.counter reg ~labels
          ~help:"Search-tree nodes visited" "netembed_visited_nodes_total",
        Telemetry.Registry.counter reg ~labels
          ~help:"Feasible mappings found" "netembed_mappings_found_total",
        Telemetry.Registry.counter reg ~labels
          ~help:"Constraint-expression evaluations (all phases)"
          "netembed_constraint_evals_total" ))
    all_algorithms

(* ------------------------------------------------------------------ *)
(* Certificate assembly (explain mode)                                 *)
(* ------------------------------------------------------------------ *)

(* Display labels: planetlab hosts carry a "name" attribute, GraphML
   imports an "id"; synthetic graphs get the positional fallback. *)
let node_label g n fallback_prefix =
  let attrs = Graph.node_attrs g n in
  match Attrs.string "name" attrs with
  | Some s -> s
  | None -> (
      match Attrs.string "id" attrs with
      | Some s -> s
      | None -> Printf.sprintf "%s%d" fallback_prefix n)

let host_label (p : Problem.t) r = node_label p.host r "r"
let query_label (p : Problem.t) q = node_label p.query q "q"

let host_node_items (p : Problem.t) =
  List.init (Graph.node_count p.host) (fun r ->
      (* Synthesize the degree as an attribute so the degree-filter
         requirement is checkable like any numeric one. *)
      let attrs = Attrs.add "degree" (Value.Int p.host_degree.(r)) (Graph.node_attrs p.host r) in
      (r, host_label p r, attrs))

(* Per blamed query node: turn the dominant cause into concrete
   attribute requirements and rank the hosts (or host edges) that almost
   meet them — the "needs cpuMhz >= 3000; best host has 2400" lines. *)
let blamed_entry (p : Problem.t) q causes =
  let dominant = match causes with (c, _) :: _ -> Some c | [] -> None in
  let reqs, near =
    match dominant with
    | Some (Explain.Cause.Node_constraint | Explain.Cause.Degree_filter) ->
        let from_constraint =
          match p.node_constraint with
          | None -> []
          | Some c ->
              let attrs_q = Graph.node_attrs p.query q in
              let residual =
                Eval.specialize ~v_edge:Attrs.empty ~v_source:attrs_q ~v_target:attrs_q c
              in
              Explain.requirements ~on:[ Ast.R_source; Ast.R_target ] residual
        in
        let degree_req =
          if dominant = Some Explain.Cause.Degree_filter then
            [
              {
                Explain.subject = Ast.R_source;
                attr = "degree";
                op = `Ge;
                bound = float_of_int p.query_degree.(q);
              };
            ]
          else []
        in
        let reqs = degree_req @ from_constraint in
        (reqs, Explain.near_misses ~reqs ~items:(host_node_items p) ~limit:3)
    | Some (Explain.Cause.Edge_constraint (a, b)) -> (
        match Problem.query_edges_between p a b with
        | [] -> ([], [])
        | (qe, forward) :: _ ->
            let q_src, q_dst = if forward then (a, b) else (b, a) in
            let residual =
              Eval.specialize
                ~v_edge:(Graph.edge_attrs p.query qe)
                ~v_source:(Graph.node_attrs p.query q_src)
                ~v_target:(Graph.node_attrs p.query q_dst)
                p.edge_constraint
            in
            let reqs = Explain.requirements ~on:[ Ast.R_edge ] residual in
            let items =
              Array.to_list (Graph.edges p.host)
              |> List.map (fun (he, u, v) ->
                     ( he,
                       Printf.sprintf "%s-%s" (host_label p u) (host_label p v),
                       Graph.edge_attrs p.host he ))
            in
            (reqs, Explain.near_misses ~reqs ~items ~limit:3))
    | _ -> ([], [])
  in
  {
    Explain.Certificate.node = q;
    node_label = query_label p q;
    causes;
    requirements = reqs;
    near;
  }

(* The minimal certified set: query nodes whose expression-(1) domain is
   already empty (each alone proves infeasibility).  When the conflict
   only appears deeper in the search, fall back to the most-blamed
   nodes. *)
let select_blamed (p : Problem.t) filter bl =
  let nq = Graph.node_count p.query in
  let empties =
    match filter with
    | None -> []
    | Some f ->
        List.filter
          (fun q -> Bitset.is_empty (Filter.node_candidates_bits f q))
          (List.init nq (fun q -> q))
  in
  let chosen =
    match empties with
    | [] -> List.filteri (fun i _ -> i < 3) (Explain.Blame.nodes bl)
    | l -> l
  in
  List.map (fun q -> blamed_entry p q (Explain.Blame.by_node bl q)) chosen

let hot_spot_of (p : Problem.t) filter store =
  let bts = Domain_store.backtracks_by_depth store in
  let wps = Domain_store.wipeouts_by_depth store in
  let best = ref (-1) and best_score = ref 0 in
  Array.iteri
    (fun d n ->
      let score = n + (if d < Array.length wps then wps.(d) else 0) in
      if score > !best_score then begin
        best := d;
        best_score := score
      end)
    bts;
  if !best < 0 then None
  else
    let d = !best in
    let node =
      match filter with
      | Some f when d < Array.length (Filter.order f) -> (Filter.order f).(d)
      | _ -> -1
    in
    Some
      {
        Explain.Certificate.depth = d;
        node;
        node_label = (if node >= 0 then query_label p node else "");
        backtracks = bts.(d);
        wipeouts = (if d < Array.length wps then wps.(d) else 0);
      }

let assemble_certificate ~(problem : Problem.t) ~algorithm ~filter ~blame ~recorder
    ~store ~outcome ~found ~visited =
  let verdict = verdict_of outcome found in
  let message =
    match outcome with
    | Complete when found = 0 ->
        "search space exhausted without a feasible embedding: the query is \
         infeasible on this host"
    | Complete -> Printf.sprintf "found %d feasible embedding(s)" found
    | Partial ->
        Printf.sprintf "budget exhausted after %d embedding(s); enumeration incomplete"
          found
    | Inconclusive ->
        Printf.sprintf
          "budget exhausted after %d visited nodes without an embedding; \
           infeasibility not proved"
          visited
  in
  let blamed = if found = 0 then select_blamed problem filter blame else [] in
  let notes =
    (match algorithm with
    | LNS ->
        [
          "LNS blames lazily: counts are per rejected (node, host) test, not per \
           filtered candidate";
        ]
    | ECF | RWB -> [])
    @
    match outcome with
    | Inconclusive ->
        [ "not a proof: raise the budget or timeout to distinguish unsat from hard" ]
    | Complete | Partial -> []
  in
  Explain.Certificate.make ~blamed
    ?hot_spot:(hot_spot_of problem filter store)
    ~notes
    ~flight:(Explain.Recorder.events recorder)
    ~verdict message

(* Accumulate the wall-clock cost of [f] on the [ph] cell of a
   phase-timings array (seconds).  Exceptions still charge the time. *)
let time_phase phases ph f =
  let t0 = Unix.gettimeofday () in
  Fun.protect f ~finally:(fun () ->
      let i = Telemetry.Phase.index ph in
      phases.(i) <- phases.(i) +. (Unix.gettimeofday () -. t0))

let run ?(options = default_options) ?filter ?trace algorithm problem =
  let store =
    Domain_store.create
      ~universe:(Netembed_graph.Graph.node_count problem.Problem.host)
      ~depths:(Netembed_graph.Graph.node_count problem.Problem.query)
  in
  let budget =
    Budget.make ?timeout:options.timeout ?max_visited:options.max_visited
      ~depth_counts:(Domain_store.depth_counts store) ()
  in
  let blame = if options.explain then Some (Explain.Blame.create ()) else None in
  let recorder = if options.explain then Some (Explain.Recorder.create ()) else None in
  (match recorder with Some r -> Domain_store.attach_recorder store r | None -> ());
  let nq = Netembed_graph.Graph.node_count problem.Problem.query in
  let found = ref [] in
  let count = ref 0 in
  let time_to_first = ref None in
  let limit = match options.mode with First -> 1 | All -> max_int | At_most k -> max k 0 in
  let on_solution m =
    if !time_to_first = None then time_to_first := Some (Budget.elapsed budget);
    Telemetry.Span.event "solution";
    (match recorder with
    | None -> ()
    | Some r -> Explain.Recorder.solution r ~depth:nq);
    if options.collect then found := m :: !found;
    incr count;
    if !count >= limit then `Stop else `Continue
  in
  (* The problem's evaluation counter is shared across runs (and across
     the filter build and the searchers), so per-run figures are
     deltas. *)
  let evals_before = Problem.constraint_evals problem in
  let filter_used = ref None in
  let phases = Telemetry.Phase.make_timings () in
  let ran_out =
    try
      if limit = 0 then raise Exit;
      (match algorithm with
      | ECF | RWB ->
          let filter =
            (* A caller-supplied filter (the service's cross-request
               cache) skips the dominant sequential build phase — and
               with it the filter's blame pass: certificates on this
               path attribute only search-time eliminations. *)
            match filter with
            | Some f -> f
            | None ->
                (* Forcing specialization + bytecode compilation first
                   splits the compile cost out of the build proper. *)
                time_phase phases Telemetry.Phase.Compile (fun () ->
                    Telemetry.Trace.span_opt trace "compile" (fun () ->
                        Problem.prepare problem));
                time_phase phases Telemetry.Phase.Filter_build (fun () ->
                    Telemetry.Trace.span_opt trace "filter_build" (fun () ->
                        Telemetry.Span.with_span "filter_build" (fun () ->
                            Filter.build ~prefilter:options.prefilter ?blame
                              problem)))
          in
          filter_used := Some filter;
          let candidate_order =
            match algorithm with
            | ECF -> Dfs.Ascending
            | RWB -> Dfs.Random (Rng.make options.seed)
            | LNS -> assert false
          in
          time_phase phases Telemetry.Phase.Search (fun () ->
              Telemetry.Trace.span_opt trace "descent" (fun () ->
                  Telemetry.Span.with_span "descent" (fun () ->
                      Dfs.search ~store ?blame problem filter ~candidate_order
                        ~budget ~on_solution)))
      | LNS ->
          time_phase phases Telemetry.Phase.Search (fun () ->
              Telemetry.Trace.span_opt trace "descent" (fun () ->
                  Telemetry.Span.with_span "descent" (fun () ->
                      Lns.search ~store ?blame problem ~budget ~on_solution))));
      false
    with
    | Budget.Exhausted -> true
    | Exit -> false (* At_most 0: nothing requested, trivially complete *)
  in
  let mappings = List.rev !found in
  let outcome =
    if ran_out then if mappings = [] then Inconclusive else Partial
    else Complete
  in
  let constraint_evals = Problem.constraint_evals problem - evals_before in
  let elapsed = Budget.elapsed budget in
  let visited = Budget.visited budget in
  let stats = Domain_store.stats store in
  let telemetry =
    {
      Telemetry.algorithm = algorithm_name algorithm;
      outcome = verdict_of outcome !count;
      visited;
      found = !count;
      elapsed_s = elapsed;
      time_to_first_s = !time_to_first;
      constraint_evals;
      domains_built = stats.Domain_store.domains_built;
      intersections = stats.Domain_store.intersections;
      backtracks = stats.Domain_store.backtracks;
      (* depth_hist / domain_size_hist fold the store's exact count
         arrays into fresh histograms, so no copy is needed. *)
      max_depth = Telemetry.Histogram.max_observed (Domain_store.depth_hist store);
      depth_histogram = Domain_store.depth_hist store;
      domain_size_histogram = Domain_store.domain_size_hist store;
      phases;
    }
  in
  (match List.find_opt (fun (a, _, _, _) -> a = algorithm) global_counters with
  | Some (_, visited_c, found_c, evals_c) ->
      Telemetry.Counter.add visited_c visited;
      Telemetry.Counter.add found_c !count;
      Telemetry.Counter.add evals_c constraint_evals
  | None -> ());
  let report =
    match (blame, recorder) with
    | Some bl, Some rec_ ->
        Some
          (assemble_certificate ~problem ~algorithm ~filter:!filter_used ~blame:bl
             ~recorder:rec_ ~store ~outcome ~found:!count ~visited)
    | _ -> None
  in
  {
    mappings;
    found = !count;
    outcome;
    elapsed;
    time_to_first = !time_to_first;
    visited;
    filter_evals = constraint_evals;
    domain_stats = Some stats;
    telemetry;
    report;
    filter = !filter_used;
  }

let find_first ?timeout algorithm problem =
  let options = { default_options with mode = First; timeout } in
  match (run ~options algorithm problem).mappings with [] -> None | m :: _ -> Some m

let find_all ?timeout algorithm problem =
  let options = { default_options with mode = All; timeout } in
  (run ~options algorithm problem).mappings
