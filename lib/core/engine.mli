(** The unified NETEMBED search engine: pick an algorithm, a mode and a
    budget; get mappings plus the Fig.-15 outcome classification. *)

type algorithm =
  | ECF  (** Exhaustive search with Constraint Filtering (section V-A) *)
  | RWB  (** Random Walk with Backtracking (section V-B) *)
  | LNS  (** Lazy Neighborhood Search (section V-C) *)

val algorithm_name : algorithm -> string
val all_algorithms : algorithm list

type mode =
  | First  (** stop at the first feasible embedding *)
  | All  (** enumerate every feasible embedding *)
  | At_most of int  (** stop after k embeddings *)

type outcome =
  | Complete
      (** the search space was exhausted: the returned set is the
          complete set of feasible embeddings (possibly empty, which
          proves infeasibility) — or the requested number of embeddings
          was reached in [First]/[At_most] mode *)
  | Partial  (** budget ran out after finding >= 1 embedding *)
  | Inconclusive  (** budget ran out with no embedding found *)

val outcome_name : outcome -> string

type options = {
  mode : mode;
  timeout : float option;  (** seconds *)
  max_visited : int option;
  seed : int;  (** RWB candidate-shuffle seed *)
  collect : bool;
      (** when false, mappings are counted but not retained — for
          measurement harnesses that only need [found] and timings
          (an all-matches run can otherwise retain millions of
          mappings).  Default true. *)
  explain : bool;
      (** when true, the run records constraint blame and a flight
          recorder and returns a failure certificate in
          [result.report].  The search selects a separate instrumented
          domain-computation path, so the plain path stays unchanged;
          blamed runs re-evaluate some constraints for attribution.
          Default false. *)
  prefilter : bool;
      (** forwarded to {!Filter.build}: sweep {!Netembed_expr.Bounds}
          atoms over sorted host attribute columns so decidable
          (query edge, host edge) pairs skip constraint evaluation.
          Identical filter either way; [constraint_evals] drops.
          Default true; the bench ablation turns it off to isolate the
          bytecode-VM gain from the pre-filter gain. *)
}

val default_options : options
(** [First] mode, no timeout, seed 42, explain off. *)

type result = {
  mappings : Mapping.t list;
      (** in discovery order; empty when [options.collect] is false *)
  found : int;  (** number of feasible mappings encountered *)
  outcome : outcome;
  elapsed : float;  (** seconds, total *)
  time_to_first : float option;  (** seconds until the first mapping *)
  visited : int;  (** search-tree nodes visited *)
  filter_evals : int;
      (** constraint-expression evaluations during this run, all phases:
          the filter build for ECF/RWB, the lazy edge checks for LNS.
          (Historically this was the filter-build count only, which read
          0 for LNS; all evaluation sites now feed one shared counter —
          {!Problem.eval_counter} — so the algorithms report on the same
          scale.) *)
  domain_stats : Domain_store.stats option;
      (** scratch-pool footprint and per-run domain-computation counts
          of the bitset search core ({!Domain_store.stats}); [None] only
          when the run was answered without building a store *)
  telemetry : Netembed_telemetry.Telemetry.snapshot;
      (** the unified per-run snapshot: the scalar fields above plus
          depth/domain-size histograms and backtrack counts — what the
          CLI's [--stats] prints *)
  report : Netembed_explain.Explain.Certificate.t option;
      (** the failure certificate / diagnostics of an explain-mode run
          ([Some] iff [options.explain]): blamed (query node,
          constraint) pairs with near-miss hosts on UNSAT, the hot
          backtrack depth, and the flight-recorder tail *)
  filter : Filter.t option;
      (** the filter matrix the run searched under ([None] for LNS,
          which filters lazily) — whether freshly built or supplied by
          the caller.  The service's cross-request filter cache stores
          this to skip the build on repeated queries. *)
}

val verdict_of : outcome -> int -> string
(** [verdict_of outcome found] — the verdict computation on raw parts,
    for callers that assemble results outside {!run} (the parallel
    service path). *)

val verdict : result -> string
(** The four-way outcome the service reports: ["unsat"] (complete with
    zero mappings — infeasibility is proved), ["complete"], ["partial"]
    (budget ran out after >= 1 mapping) or ["exhausted"] (budget ran
    out empty-handed — nothing proved).  Also carried in
    [telemetry.outcome], so [snapshot_to_json] preserves the
    unsat/exhausted distinction. *)

val run :
  ?options:options ->
  ?filter:Filter.t ->
  ?trace:Netembed_telemetry.Telemetry.Trace.buffer ->
  algorithm ->
  Problem.t ->
  result
(** Every returned mapping satisfies {!Verify.check} (enforced by the
    algorithms' construction; tests assert it).

    [filter], when given, is searched directly instead of building one
    — it must have been built for an identical problem (same residual
    host graph, query and constraints), which the service's filter
    cache guarantees by keying on (model revision, query signature).
    Skipping the build also skips its blame pass, so explain-mode
    certificates on this path attribute only search-time eliminations.
    Ignored by LNS.

    [trace], when given, receives request-scoped complete spans
    ([compile], [filter_build], [descent]) for Chrome trace export;
    the plain path pays only a [None] branch per phase boundary.  The
    run also fills the [compile] / [filter_build] / [search] cells of
    [telemetry.phases] either way (two clock reads per phase, off the
    search hot path). *)

val find_first : ?timeout:float -> algorithm -> Problem.t -> Mapping.t option
(** Convenience wrapper: first feasible embedding, if found in time. *)

val find_all : ?timeout:float -> algorithm -> Problem.t -> Mapping.t list
(** Convenience wrapper around [All] mode. *)
