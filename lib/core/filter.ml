open Netembed_graph
module Ast = Netembed_expr.Ast
module Bounds = Netembed_expr.Bounds
module Bitset = Netembed_bitset.Bitset
module Explain = Netembed_explain.Explain

type t = {
  cells : (int, Bitset.t) Hashtbl.t;
      (** key: (q_assigned * nq + q_next) * nr + r_assigned; values are
          non-empty candidate sets over the host universe *)
  cell_views : (int, int array) Hashtbl.t;
      (** lazily materialized sorted-array views of [cells] for the
          legacy array path (differential tests, bench ablation) *)
  nq : int;
  nr : int;
  node_cands : Bitset.t array;
  node_cand_views : int array array;
  ls_order : int array;
  mutable nonempty_cells : int;
}

let cell_key t a b r = (((a * t.nq) + b) * t.nr) + r

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* Cells accumulate directly into bitsets over the host universe.  With
   parallel query edges between the same pair, every edge must be
   satisfiable, so per-edge sets are intersected. *)

type ordering = Connected_lemma1 | Lemma1 | Input_order

let build ?(ordering = Connected_lemma1) ?(prefilter = true) ?blame (p : Problem.t) =
  let nq = Graph.node_count p.query and nr = Graph.node_count p.host in
  let t =
    {
      cells = Hashtbl.create 1024;
      cell_views = Hashtbl.create 64;
      nq;
      nr;
      node_cands = Array.make (max 1 nq) (Bitset.create nr);
      node_cand_views = Array.make (max 1 nq) [||];
      ls_order = [||];
      nonempty_cells = 0;
    }
  in
  let host_edges = Graph.edges p.host in
  let undirected = Graph.kind p.host = Graph.Undirected in
  (* Per-query-node acceptability over all host nodes, precomputed once:
     the per-host-edge loop below would otherwise re-evaluate the node
     constraint for the same (q, r) pair once per incident host edge. *)
  let node_ok_bits =
    Array.init nq (fun q ->
        let bits = Bitset.create nr in
        for r = 0 to nr - 1 do
          if Problem.node_ok p ~q ~r then Bitset.add bits r
        done;
        bits)
  in
  (* Column stores for the bounds pre-filter, shared by every residual
     of this build; columns materialize on first touch. *)
  let edge_store =
    lazy
      (Prefilter.create ~size:(Graph.edge_count p.host) ~attrs:(Graph.edge_attrs p.host))
  in
  let node_store =
    lazy
      (Prefilter.create ~size:(Graph.node_count p.host) ~attrs:(Graph.node_attrs p.host))
  in
  (* Per query edge: evaluate the specialized residual against every host
     edge (both host orientations when undirected), collecting, for both
     lookup directions, r_assigned -> candidate bitset. *)
  let add_edge_cells qe a b =
    let residual = Problem.residual p qe ~q_src:a ~q_dst:b in
    let plan =
      if not prefilter then None
      else
        let bounds = Bounds.of_ast residual in
        if bounds.Bounds.atoms = [] && not bounds.Bounds.complete then None
        else
          Some
            (Prefilter.plan ~edges:(Lazy.force edge_store)
               ~nodes:(Lazy.force node_store) bounds)
    in
    let fwd : (int, Bitset.t) Hashtbl.t = Hashtbl.create 64 in
    let bwd : (int, Bitset.t) Hashtbl.t = Hashtbl.create 64 in
    let record tbl r partner =
      let inner =
        match Hashtbl.find_opt tbl r with
        | Some i -> i
        | None ->
            let i = Bitset.create nr in
            Hashtbl.replace tbl r i;
            i
      in
      Bitset.add inner partner
    in
    (* All real evaluations flow through [Problem.edge_pair_ok] and its
       shared telemetry counter; pairs the pre-filter decides never
       reach the evaluator, which is exactly the saving the bench
       ablation measures. *)
    let test he u v =
      match plan with
      | None -> Problem.edge_pair_ok p ~qe ~q_src:a ~q_dst:b ~he ~r_src:u ~r_dst:v
      | Some plan ->
          if not (Prefilter.admits_pair plan ~he ~r_src:u ~r_dst:v) then false
          else if Prefilter.decides_pair plan ~he ~r_src:u ~r_dst:v then true
          else Problem.edge_pair_ok p ~qe ~q_src:a ~q_dst:b ~he ~r_src:u ~r_dst:v
    in
    (* If the residual never touches host-endpoint attributes, its value
       cannot depend on the orientation of the host edge, so one
       evaluation decides both. *)
    let orientation_sensitive =
      Ast.fold_attrs
        (fun obj _ acc ->
          acc
          ||
          match obj with
          | Ast.R_source | Ast.R_target -> true
          | Ast.R_edge | Ast.V_edge | Ast.V_source | Ast.V_target -> false)
        residual false
    in
    Array.iter
      (fun (he, u, v) ->
        let fwd_nodes_ok =
          Bitset.mem node_ok_bits.(a) u && Bitset.mem node_ok_bits.(b) v
        in
        let bwd_nodes_ok =
          undirected && Bitset.mem node_ok_bits.(a) v && Bitset.mem node_ok_bits.(b) u
        in
        if orientation_sensitive then begin
          (* Orientation a->u, b->v. *)
          if fwd_nodes_ok && test he u v then begin
            record fwd u v;
            record bwd v u
          end;
          (* Orientation a->v, b->u (undirected hosts only). *)
          if bwd_nodes_ok && test he v u then begin
            record fwd v u;
            record bwd u v
          end
        end
        else if (fwd_nodes_ok || bwd_nodes_ok) && test he u v then begin
          if fwd_nodes_ok then begin
            record fwd u v;
            record bwd v u
          end;
          if bwd_nodes_ok then begin
            record fwd v u;
            record bwd u v
          end
        end)
      host_edges;
    (fwd, bwd)
  in
  (* Group query edges by unordered endpoint pair to intersect parallel
     edges. *)
  let pending : (int, Bitset.t) Hashtbl.t = Hashtbl.create 1024 in
  let touched_pairs = Hashtbl.create 64 in
  Graph.iter_edges
    (fun qe a b ->
      let fwd, bwd = add_edge_cells qe a b in
      let apply dir_a dir_b tbl =
        Hashtbl.iter
          (fun r partners ->
            let key = cell_key t dir_a dir_b r in
            match Hashtbl.find_opt pending key with
            | None -> Hashtbl.replace pending key partners
            | Some prior -> Bitset.inter_into ~dst:prior partners)
          tbl
      in
      (* If this pair was seen before (parallel edge), cells not re-hit by
         this edge must drop to empty: handled by intersecting only hit
         cells and clearing the rest afterwards. *)
      (match Hashtbl.find_opt touched_pairs (min a b, max a b) with
      | None -> Hashtbl.replace touched_pairs (min a b, max a b) 1
      | Some k ->
          Hashtbl.replace touched_pairs (min a b, max a b) (k + 1));
      apply a b fwd;
      apply b a bwd)
    p.query;
  (* For parallel edges, a cell hit by only some of the edges is not
     jointly satisfiable; detecting that requires counting hits, which
     the merge above does not track.  Generators produce simple graphs;
     for safety, verify parallel pairs the slow way. *)
  Hashtbl.iter
    (fun (a, b) hits ->
      if hits > 1 then begin
        let edges_ab = Problem.query_edges_between p a b in
        (* dir_a maps to [r], dir_b maps to [partner]; every parallel
           query edge needs some satisfying host edge between them. *)
        let jointly_ok dir_a r partner =
          List.for_all
            (fun (qe, forward) ->
              let q_src, q_dst = if forward then (a, b) else (b, a) in
              let image q = if q = dir_a then r else partner in
              let r_src = image q_src and r_dst = image q_dst in
              List.exists
                (fun he -> Problem.edge_pair_ok p ~qe ~q_src ~q_dst ~he ~r_src ~r_dst)
                (Graph.edges_between p.host r_src r_dst))
            edges_ab
        in
        let recheck dir_a dir_b =
          for r = 0 to t.nr - 1 do
            match Hashtbl.find_opt pending (cell_key t dir_a dir_b r) with
            | None -> ()
            | Some partners ->
                let drop =
                  Bitset.fold
                    (fun partner acc ->
                      if jointly_ok dir_a r partner then acc else partner :: acc)
                    partners []
                in
                List.iter (Bitset.remove partners) drop
          done
        in
        recheck a b;
        recheck b a
      end)
    touched_pairs;
  Hashtbl.iter
    (fun key v -> if not (Bitset.is_empty v) then Hashtbl.replace t.cells key v)
    pending;
  t.nonempty_cells <- Hashtbl.length t.cells;
  (* Node-level candidates: intersection over incident edges of the
     sources present in F, within node_ok. *)
  for q = 0 to nq - 1 do
    let incident = Problem.query_neighbours p q in
    let sets =
      List.map
        (fun (w, _) ->
          (* sources r for which cell (q, w, r) is non-empty *)
          let out = Bitset.create nr in
          for r = 0 to t.nr - 1 do
            if Hashtbl.mem t.cells (cell_key t q w r) then Bitset.add out r
          done;
          out)
        incident
    in
    t.node_cands.(q) <-
      (match sets with
      | [] -> Bitset.copy node_ok_bits.(q)
      | first :: rest ->
          List.iter (fun s -> Bitset.inter_into ~dst:first s) rest;
          first);
    t.node_cand_views.(q) <- Bitset.to_array t.node_cands.(q)
  done;
  (* Explain mode: attribute every host excluded from a node's
     expression-(1) candidate set to the filter stage that removed it.
     Precedence mirrors the build: the degree filter fires before the
     node constraint, which fires before edge-compatibility.  Re-testing
     node constraints here re-counts their evaluations — acceptable,
     since blame is only threaded through diagnostic runs. *)
  (match blame with
  | None -> ()
  | Some bl ->
      for q = 0 to nq - 1 do
        let incident = Problem.query_neighbours p q in
        for r = 0 to nr - 1 do
          if not (Bitset.mem t.node_cands.(q) r) then
            if not (Problem.degree_ok p ~q ~r) then
              Explain.Blame.eliminate bl ~q Explain.Cause.Degree_filter
            else if not (Problem.node_constraint_ok p ~q ~r) then
              Explain.Blame.eliminate bl ~q Explain.Cause.Node_constraint
            else (
              match
                List.find_opt
                  (fun (w, _) -> not (Hashtbl.mem t.cells (cell_key t q w r)))
                  incident
              with
              | Some (w, _) ->
                  Explain.Blame.eliminate bl ~q (Explain.Cause.Edge_constraint (q, w))
              | None -> ())
        done
      done);
  (* Search order: Lemma 1 seeds the order with the fewest-candidate
     node; after that, expression (2) only prunes through edges into the
     assigned prefix, so each subsequent node is chosen connected to the
     prefix (most edges into it, ties broken by fewest candidates).
     Disconnected queries reseed by candidate count. *)
  let cand_counts = Array.init (max 1 nq) (fun q -> Bitset.cardinal t.node_cands.(q)) in
  let cand_count q = cand_counts.(q) in
  let order =
    match ordering with
    | Input_order -> Array.init nq (fun q -> q)
    | Lemma1 ->
        let order = Array.init nq (fun q -> q) in
        Array.sort
          (fun q1 q2 ->
            let c = compare (cand_count q1) (cand_count q2) in
            if c <> 0 then c
            else compare (Graph.degree p.query q2) (Graph.degree p.query q1))
          order;
        order
    | Connected_lemma1 ->
        let order = Array.make (max 1 nq) 0 in
        let placed = Array.make (max 1 nq) false in
        let links_to_prefix = Array.make (max 1 nq) 0 in
        for pos = 0 to nq - 1 do
          let best = ref (-1) in
          let better q =
            match !best with
            | -1 -> true
            | b ->
                if links_to_prefix.(q) <> links_to_prefix.(b) then
                  links_to_prefix.(q) > links_to_prefix.(b)
                else if cand_count q <> cand_count b then cand_count q < cand_count b
                else Graph.degree p.query q > Graph.degree p.query b
          in
          for q = 0 to nq - 1 do
            if (not placed.(q)) && better q then best := q
          done;
          let q = !best in
          placed.(q) <- true;
          order.(pos) <- q;
          List.iter
            (fun (w, _) ->
              if not placed.(w) then links_to_prefix.(w) <- links_to_prefix.(w) + 1)
            (Problem.query_neighbours p q)
        done;
        if nq = 0 then [||] else order
  in
  { t with ls_order = order }

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let universe t = t.nr

let cell_bits t ~q_assigned ~r_assigned ~q_next =
  Hashtbl.find_opt t.cells (cell_key t q_assigned q_next r_assigned)

(* Exception variant for the search hot loop: [Hashtbl.find] raises the
   preallocated [Not_found], so a hit boxes nothing, where [find_opt]
   allocates a [Some] per lookup — measurable at millions of visited
   nodes per second. *)
let cell_bits_exn t ~q_assigned ~r_assigned ~q_next =
  Hashtbl.find t.cells (cell_key t q_assigned q_next r_assigned)

let candidates_from t ~q_assigned ~r_assigned ~q_next =
  let key = cell_key t q_assigned q_next r_assigned in
  match Hashtbl.find_opt t.cell_views key with
  | Some a -> a
  | None -> (
      match Hashtbl.find_opt t.cells key with
      | None -> [||]
      | Some bits ->
          let a = Bitset.to_array bits in
          Hashtbl.replace t.cell_views key a;
          a)

let node_candidates_bits t q = t.node_cands.(q)
let node_candidates t q = t.node_cand_views.(q)
let order t = t.ls_order
let cell_count t = t.nonempty_cells
