(** The constraint filter matrix of ECF/RWB (paper, section V-A).

    During the first stage, "the constraint expression is applied to
    each possible pair of virtual and real edges", producing candidate
    mappings per edge.  The sparse 3-D matrix [F] has cells
    [(v, r, vs)] holding the candidate set for [vs] when [v] is mapped
    onto [r].

    Representation: cells are keyed by the oriented query pair [(v,vs)]
    and the host node [r], and hold a {!Netembed_bitset.Bitset.t} over
    the host-node universe, so the search core intersects them in
    O(words) ({!Domain_store}).  Sorted-array views of the same cells
    are materialized lazily for the legacy array path (differential
    tests and the representation-ablation bench).  The negative filter
    F̄ of the paper is implicit: candidate sets are intersected, so
    anything absent from [F] is excluded (equivalent to subtracting the
    union of F̄ for undirected problems; for directed problems both
    lookup directions of each tested orientation are stored).

    The matrix also precomputes per-query-node candidate sets (the
    paper's expression (1), strengthened with the node-level filters of
    {!Problem.node_ok}) and the Lemma-1 search order [LS]: query nodes
    ascending by candidate count. *)

open Netembed_graph

type t

type ordering =
  | Connected_lemma1
      (** default: Lemma-1 seed, then greedy most-links-to-prefix *)
  | Lemma1  (** the paper's literal reading: ascending candidate count *)
  | Input_order  (** no reordering — the ablation baseline *)

val build :
  ?ordering:ordering ->
  ?prefilter:bool ->
  ?blame:Netembed_explain.Explain.Blame.t ->
  Problem.t ->
  t
(** [prefilter] (default [true]) short-circuits the per-pair constraint
    evaluations through {!Prefilter}: atoms extracted from each residual
    by {!Netembed_expr.Bounds} are swept over pre-sorted host attribute
    columns, so pairs a single attribute comparison already rejects (or,
    for fully-extracted constraints, accepts) never reach the evaluator.
    The resulting matrix is identical either way — only the number of
    constraint evaluations changes, which is what the bench ablation
    reports.  Per-query-node [node_ok] verdicts are likewise precomputed
    once over the host universe instead of per incident host edge.

    [blame], when given, receives one elimination per (query node, host)
    pair excluded from the node's expression-(1) candidate set,
    attributed to the first filter stage that rejected it (degree
    filter, node constraint, then the incident query edge with no
    compatible host edge).  Diagnostic runs only: the attribution pass
    re-evaluates node constraints, so constraint-evaluation counts are
    higher than an unblamed build. *)

val universe : t -> int
(** Host-node universe size — the width of every cell bitset. *)

val cell_bits :
  t -> q_assigned:Graph.node -> r_assigned:Graph.node -> q_next:Graph.node ->
  Netembed_bitset.Bitset.t option
(** The cell [F[q_assigned, r_assigned, q_next]] as a bitset over the
    host universe, or [None] when no host edge qualifies.  The returned
    set is owned by the filter and must not be mutated — searchers copy
    it into {!Domain_store} scratch before intersecting. *)

val cell_bits_exn :
  t -> q_assigned:Graph.node -> r_assigned:Graph.node -> q_next:Graph.node ->
  Netembed_bitset.Bitset.t
(** Like {!cell_bits} but raising [Not_found] for a missing cell instead
    of boxing an option — the allocation-free lookup the search hot loop
    uses.  Same ownership rule: the returned set is read-only. *)

val node_candidates_bits : t -> Graph.node -> Netembed_bitset.Bitset.t
(** Bitset form of {!node_candidates}; owned by the filter, read-only. *)

val candidates_from :
  t -> q_assigned:Graph.node -> r_assigned:Graph.node -> q_next:Graph.node ->
  int array
(** [candidates_from f ~q_assigned ~r_assigned ~q_next] is the cell
    [F[q_assigned, r_assigned, q_next]]: sorted host candidates for
    [q_next] given that assignment.  Empty array when no host edge
    qualifies.  Meaningful only when the query links [q_assigned] to
    [q_next].  This is the legacy array view of {!cell_bits},
    materialized (and cached) on first access; the memoization is not
    thread-safe, so the array path must stay single-domain. *)

val node_candidates : t -> Graph.node -> int array
(** Sorted host candidates for a query node irrespective of other
    assignments (expression (1) ∩ node filters). *)

val order : t -> Graph.node array
(** The search order [LS].  Lemma 1 calls for ascending candidate
    count; since expression (2) can only prune a node through edges
    into the already-assigned prefix, the order is additionally kept
    connected: seed = fewest candidates, then greedily the node with
    most edges into the prefix (ties: fewest candidates, then highest
    degree), reseeding by candidate count across query components. *)

val cell_count : t -> int
(** Number of non-empty cells — the space-cost metric that motivates
    LNS. *)
