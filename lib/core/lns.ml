open Netembed_graph
module Bitset = Netembed_bitset.Bitset
module Explain = Netembed_explain.Explain

exception Stop_search

let search ?store ?blame (p : Problem.t) ~budget ~on_solution =
  let nq = Graph.node_count p.query in
  let nr = Graph.node_count p.host in
  if nq = 0 then ignore (on_solution (Mapping.of_array [||]))
  else begin
    let store =
      match store with
      | None -> Domain_store.create ~universe:nr ~depths:nq
      | Some s ->
          if Domain_store.universe s <> nr then
            invalid_arg "Lns.search: store universe mismatch";
          if Domain_store.depths s < nq then invalid_arg "Lns.search: store too shallow";
          Domain_store.reset s;
          s
    in
    let assignment = Array.make nq (-1) in
    let used = Domain_store.used store in
    let covered = Array.make nq false in
    (* links_to_covered.(q): number of query edges from q into the
       covered set; q is a Neighbor iff not covered and count > 0. *)
    let links_to_covered = Array.make nq 0 in
    let covered_count = ref 0 in
    (* Total (in + out) degrees so directed queries count every link. *)
    let q_degree =
      Array.init nq (fun q ->
          p.Problem.query_degree.(q)
          +
          match Graph.kind p.Problem.query with
          | Graph.Undirected -> 0
          | Graph.Directed -> p.Problem.query_in_degree.(q))
    in
    let r_degree = p.Problem.host_degree in
    (* Choose the next node to examine: the neighbour with the most
       links into Covered (heuristic 2); on a fresh component (no
       neighbours), the max-degree uncovered node (heuristic 1 /
       reseed). *)
    let pick_next () =
      let best = ref (-1) and best_links = ref 0 in
      for q = 0 to nq - 1 do
        if (not covered.(q)) && links_to_covered.(q) > 0 then
          if
            links_to_covered.(q) > !best_links
            || (links_to_covered.(q) = !best_links
               && (!best = -1 || q_degree.(q) > q_degree.(!best)))
          then begin
            best := q;
            best_links := links_to_covered.(q)
          end
      done;
      if !best >= 0 then Some (`Neighbour !best)
      else begin
        (* Reseed: max-degree uncovered node. *)
        let seed = ref (-1) in
        for q = 0 to nq - 1 do
          if (not covered.(q)) && (!seed = -1 || q_degree.(q) > q_degree.(!seed)) then
            seed := q
        done;
        if !seed >= 0 then Some (`Seed !seed) else None
      end
    in
    (* All query edges between q and its covered neighbours, with the
       orientation flag (true when stored as q -> w). *)
    let connecting_edges q =
      List.filter_map
        (fun (w, e) ->
          if covered.(w) then
            let src, _ = Graph.endpoints p.query e in
            Some (e, w, src = q)
          else None)
        (Problem.query_neighbours p q)
    in
    (* Does mapping q -> r satisfy every connecting edge?  Host edges are
       looked up lazily in the host adjacency. *)
    let edges_ok q r conn =
      List.for_all
        (fun (qe, w, q_is_src) ->
          let rw = assignment.(w) in
          let q_src, q_dst = if q_is_src then (q, w) else (w, q) in
          let r_src, r_dst = if q_is_src then (r, rw) else (rw, r) in
          List.exists
            (fun he -> Problem.edge_pair_ok p ~qe ~q_src ~q_dst ~he ~r_src ~r_dst)
            (Graph.edges_between p.host r_src r_dst))
        conn
    in
    (* Rejection-path-only blame hooks: resolved to no-ops once when
       blame is absent, so the accepting path pays nothing.  LNS has no
       precomputed domains, so node rejections are attributed directly
       (degree filter vs node constraint) and edge rejections re-walk
       the connecting edges to name the first failing one — the re-walk
       double-counts constraint evaluations, which only diagnostic runs
       pay. *)
    let note_node_reject =
      match blame with
      | None -> fun _ _ -> ()
      | Some bl ->
          fun q r ->
            if not (Problem.degree_ok p ~q ~r) then
              Explain.Blame.eliminate bl ~q Explain.Cause.Degree_filter
            else Explain.Blame.eliminate bl ~q Explain.Cause.Node_constraint
    in
    let note_edge_reject =
      match blame with
      | None -> fun _ _ _ -> ()
      | Some bl ->
          fun q r conn ->
            let failing =
              List.find_opt
                (fun (qe, w, q_is_src) ->
                  let rw = assignment.(w) in
                  let q_src, q_dst = if q_is_src then (q, w) else (w, q) in
                  let r_src, r_dst = if q_is_src then (r, rw) else (rw, r) in
                  not
                    (List.exists
                       (fun he ->
                         Problem.edge_pair_ok p ~qe ~q_src ~q_dst ~he ~r_src ~r_dst)
                       (Graph.edges_between p.host r_src r_dst)))
                conn
            in
            (match failing with
            | Some (_, w, _) ->
                Explain.Blame.eliminate bl ~q (Explain.Cause.Edge_constraint (q, w))
            | None -> ())
    in
    let cover q r =
      assignment.(q) <- r;
      Domain_store.mark_used store r;
      covered.(q) <- true;
      incr covered_count;
      List.iter
        (fun (w, _) -> links_to_covered.(w) <- links_to_covered.(w) + 1)
        (Problem.query_neighbours p q)
    in
    let uncover q r =
      List.iter
        (fun (w, _) -> links_to_covered.(w) <- links_to_covered.(w) - 1)
        (Problem.query_neighbours p q);
      decr covered_count;
      covered.(q) <- false;
      Domain_store.release_used store r;
      assignment.(q) <- -1
    in
    let rec extend () =
      Budget.tick_at budget ~depth:!covered_count;
      if !covered_count = nq then begin
        match on_solution (Mapping.of_array (Array.copy assignment)) with
        | `Continue -> ()
        | `Stop -> raise Stop_search
      end
      else
        match pick_next () with
        | None -> ()
        | Some (`Seed q) ->
            (* Fresh component: any acceptable, unused host node. *)
            let depth = !covered_count in
            for r = 0 to nr - 1 do
              if not (Bitset.mem used r) then begin
                if Problem.node_ok p ~q ~r then begin
                  cover q r;
                  extend ();
                  uncover q r
                end
                else note_node_reject q r
              end
            done;
            Domain_store.note_backtrack store ~depth
        | Some (`Neighbour q) ->
            let conn = connecting_edges q in
            (* Enumerate candidates from the host neighbourhood of the
               covered neighbour whose image has the smallest degree. *)
            let anchor =
              List.fold_left
                (fun best (_, w, _) ->
                  let rw = assignment.(w) in
                  match best with
                  | None -> Some rw
                  | Some prior ->
                      if r_degree.(rw) < r_degree.(prior) then Some rw else best)
                None conn
            in
            (match anchor with
            | None -> assert false (* a Neighbour has >= 1 covered link *)
            | Some anchor ->
                (* Collect the anchor's unused, node-acceptable host
                   neighbourhood into the scratch domain of this depth —
                   deduplication and the used-host subtraction are bitset
                   operations instead of a per-expansion Hashtbl. *)
                let depth = !covered_count in
                let dom = Domain_store.load_empty store ~depth in
                List.iter
                  (fun (r, _) ->
                    if not (Bitset.mem used r) then
                      if Problem.node_ok p ~q ~r then Bitset.add dom r
                      else note_node_reject q r)
                  (match Graph.kind p.Problem.host with
                  | Graph.Undirected -> Graph.succ p.host anchor
                  | Graph.Directed -> Graph.succ p.host anchor @ Graph.pred p.host anchor);
                Domain_store.observe_domain store ~depth;
                Bitset.iter
                  (fun r ->
                    if edges_ok q r conn then begin
                      cover q r;
                      extend ();
                      uncover q r
                    end
                    else note_edge_reject q r conn)
                  dom;
                Domain_store.note_backtrack store ~depth)
    in
    match extend () with () -> () | exception Stop_search -> ()
  end
