(** Lazy Neighborhood Search (paper, section V-C).

    LNS avoids the O(n·|EQ|·|ER|) space of the filter matrices by
    growing a connected partial match and checking constraints lazily.
    Three sets are maintained: [Covered] (matched query nodes),
    [Neighbors] (query nodes adjacent to a covered node) and [External]
    (the rest).  Heuristics (paper):
    + the seed is a maximum-degree query node, so the covered set grows
      into a highly connected region quickly;
    + the next node examined is the neighbour with the most links into
      the covered set, forcing "the largest possible conjunction of
      constraints" and pruning invalid paths early.

    Candidates for the chosen neighbour are enumerated from the
    host-side adjacency of its mapped covered neighbours only (no
    precomputed state), and every connecting edge is verified before the
    node enters the covered set, so covered sets are always valid
    partial matches (the "promising mappings" of the appendix proof).
    The neighbourhood is collected into a {!Domain_store} scratch
    bitset (per covered-depth), which both deduplicates it and subtracts
    used hosts without allocating; candidates come out in ascending
    host order.

    Extension over the paper: disconnected queries are handled by
    reseeding from [External] when [Neighbors] empties before the query
    is exhausted. *)

val search :
  ?store:Domain_store.t ->
  ?blame:Netembed_explain.Explain.Blame.t ->
  Problem.t ->
  budget:Budget.t ->
  on_solution:(Mapping.t -> [ `Continue | `Stop ]) ->
  unit
(** [store] supplies the scratch pool (reset on entry) so the engine can
    report domain statistics; a private one is created when omitted.

    [blame], when given, attributes candidate rejections: node
    rejections to the degree filter or node constraint, edge rejections
    to the first connecting query edge with no satisfying host edge.
    The attribution re-walks connecting edges on rejection, so
    constraint-evaluation counts exceed an unblamed run.
    @raise Invalid_argument when [store] has the wrong universe size or
    fewer depths than query nodes.
    @raise Budget.Exhausted when the budget runs out. *)
