module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Ast = Netembed_expr.Ast
module Bounds = Netembed_expr.Bounds
module Bitset = Netembed_bitset.Bitset

(* One attribute's values across the whole universe, organized for
   range sweeps: numeric values in one sorted column, booleans and
   strings bucketed, the rare range-valued entries listed. *)
type column = {
  present : Bitset.t;
  num_set : Bitset.t;
  num_sorted : (float * int) array;  (* ascending by value *)
  true_set : Bitset.t;
  false_set : Bitset.t;
  strings : (string, Bitset.t) Hashtbl.t;
  others : (Value.t * int) list;
}

type sets = { pass : Bitset.t; dirty : Bitset.t }

type t = {
  size : int;
  attrs : int -> Attrs.t;
  columns : (string, column) Hashtbl.t;
  atom_cache : (Bounds.atom, sets) Hashtbl.t;
}

let create ~size ~attrs =
  { size; attrs; columns = Hashtbl.create 8; atom_cache = Hashtbl.create 16 }

let size t = t.size

let column t name =
  match Hashtbl.find_opt t.columns name with
  | Some c -> c
  | None ->
      let present = Bitset.create t.size in
      let num_set = Bitset.create t.size in
      let true_set = Bitset.create t.size in
      let false_set = Bitset.create t.size in
      let strings = Hashtbl.create 8 in
      let nums = ref [] in
      let others = ref [] in
      for i = 0 to t.size - 1 do
        match Attrs.find name (t.attrs i) with
        | None -> ()
        | Some v -> (
            Bitset.add present i;
            match v with
            | Value.Int n ->
                Bitset.add num_set i;
                nums := (float_of_int n, i) :: !nums
            | Value.Float f ->
                Bitset.add num_set i;
                nums := (f, i) :: !nums
            | Value.Bool true -> Bitset.add true_set i
            | Value.Bool false -> Bitset.add false_set i
            | Value.String s ->
                let bucket =
                  match Hashtbl.find_opt strings s with
                  | Some b -> b
                  | None ->
                      let b = Bitset.create t.size in
                      Hashtbl.replace strings s b;
                      b
                in
                Bitset.add bucket i
            | Value.Range _ -> others := (v, i) :: !others)
      done;
      let num_sorted = Array.of_list !nums in
      Array.sort (fun (a, _) (b, _) -> Float.compare a b) num_sorted;
      let c =
        { present; num_set; num_sorted; true_set; false_set; strings;
          others = !others }
      in
      Hashtbl.replace t.columns name c;
      c

(* First index in [col] whose value is >= [x] under Float.compare's
   total order (so NaN sorts above every real). *)
let lower_bound col x =
  let lo = ref 0 and hi = ref (Array.length col) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let v, _ = col.(mid) in
    if Float.compare v x < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index whose value is > [x]. *)
let upper_bound col x =
  let lo = ref 0 and hi = ref (Array.length col) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let v, _ = col.(mid) in
    if Float.compare v x <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let sweep size col lo hi =
  let out = Bitset.create size in
  for k = lo to hi - 1 do
    let _, i = col.(k) in
    Bitset.add out i
  done;
  out

let empty_set size = Bitset.create size

let compute_sets t atom =
  match atom with
  | Bounds.Cmp { cmp; bound; attr; _ } ->
      let c = column t attr in
      let n = Array.length c.num_sorted in
      let lo, hi =
        match cmp with
        | Bounds.Lt -> (0, lower_bound c.num_sorted bound)
        | Bounds.Le -> (0, upper_bound c.num_sorted bound)
        | Bounds.Gt -> (upper_bound c.num_sorted bound, n)
        | Bounds.Ge -> (lower_bound c.num_sorted bound, n)
      in
      let pass = sweep t.size c.num_sorted lo hi in
      (* present but non-numeric: generic evaluation must decide (it
         will raise, matching the interpreter) *)
      let dirty = Bitset.diff c.present c.num_set in
      { pass; dirty }
  | Bounds.Eq { value; attr; _ } -> (
      let c = column t attr in
      let dirty = empty_set t.size in
      match value with
      | Value.Int _ | Value.Float _ ->
          let f = Value.to_float value in
          let lo = lower_bound c.num_sorted f and hi = upper_bound c.num_sorted f in
          { pass = sweep t.size c.num_sorted lo hi; dirty }
      | Value.Bool true -> { pass = Bitset.copy c.true_set; dirty }
      | Value.Bool false -> { pass = Bitset.copy c.false_set; dirty }
      | Value.String s ->
          let pass =
            match Hashtbl.find_opt c.strings s with
            | Some b -> Bitset.copy b
            | None -> empty_set t.size
          in
          { pass; dirty }
      | Value.Range _ ->
          let pass = empty_set t.size in
          List.iter
            (fun (v, i) -> if Value.equal v value then Bitset.add pass i)
            c.others;
          { pass; dirty })
  | Bounds.Has_bool { value; attr; _ } ->
      let c = column t attr in
      let pass = Bitset.copy (if value then c.true_set else c.false_set) in
      let dirty = Bitset.copy c.present in
      Bitset.diff_into ~dst:dirty c.true_set;
      Bitset.diff_into ~dst:dirty c.false_set;
      { pass; dirty }

let sets t atom =
  match Hashtbl.find_opt t.atom_cache atom with
  | Some s -> s
  | None ->
      let s = compute_sets t atom in
      Hashtbl.replace t.atom_cache atom s;
      s

(* ------------------------------------------------------------------ *)
(* Per-residual plans                                                  *)
(* ------------------------------------------------------------------ *)

type restriction = { admissible : Bitset.t; clean : Bitset.t }

type plan = {
  edge : restriction option;
  src : restriction option;
  tgt : restriction option;
  complete : bool;
  infeasible : bool;
}

let unrestricted = { edge = None; src = None; tgt = None; complete = false; infeasible = false }

let add_restriction t acc atom =
  let { pass; dirty } = sets t atom in
  match acc with
  | None ->
      let admissible = Bitset.copy pass in
      Bitset.union_into ~dst:admissible dirty;
      Some { admissible; clean = Bitset.copy pass }
  | Some r ->
      let adm = Bitset.copy pass in
      Bitset.union_into ~dst:adm dirty;
      Bitset.inter_into ~dst:r.admissible adm;
      Bitset.inter_into ~dst:r.clean pass;
      acc

let plan ~edges ~nodes (b : Bounds.t) =
  let acc =
    List.fold_left
      (fun acc atom ->
        if acc.infeasible then acc
        else
          match fst (Bounds.atom_subject atom) with
          | Ast.R_edge -> { acc with edge = add_restriction edges acc.edge atom }
          | Ast.R_source -> { acc with src = add_restriction nodes acc.src atom }
          | Ast.R_target -> { acc with tgt = add_restriction nodes acc.tgt atom }
          | Ast.V_edge | Ast.V_source | Ast.V_target ->
              (* The residual still references a query-side attribute:
                 specialization leaves those in place only when the
                 query does not carry the attribute, so at filter time
                 (query tables out of scope, empty in the evaluation
                 environment) the atom's conjunct rejects every
                 candidate. *)
              { acc with infeasible = true })
      { unrestricted with complete = b.Bounds.complete }
      b.Bounds.atoms
  in
  acc

let admits r i = match r with None -> true | Some { admissible; _ } -> Bitset.mem admissible i
let clean r i = match r with None -> true | Some { clean; _ } -> Bitset.mem clean i

let admits_pair p ~he ~r_src ~r_dst =
  (not p.infeasible) && admits p.edge he && admits p.src r_src && admits p.tgt r_dst

let decides_pair p ~he ~r_src ~r_dst =
  p.complete && clean p.edge he && clean p.src r_src && clean p.tgt r_dst
