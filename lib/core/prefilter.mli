(** Derived-attribute pre-filters for the ECF filter build.

    The filter matrix tests every (query edge, host edge) pair — the
    quadratic heart of stage one.  Most rejections, though, follow from
    a single attribute comparison ([rEdge.avgDelay <= 12],
    [rSource.os == 'linux']).  {!Netembed_expr.Bounds} extracts those
    atoms from each specialized residual; this module turns each atom
    into a pair of bitsets over a universe of attribute carriers (host
    edges, or host nodes):

    - [pass]: carriers whose attribute value definitely satisfies the
      atom — computed by a binary-searched range sweep over the
      attribute's pre-sorted numeric column (or a bucket lookup for
      strings and booleans);
    - [dirty]: carriers whose value the atom cannot classify (a
      non-numeric value under an ordering atom, say) — generic
      evaluation must run and will surface the interpreter's error.

    A candidate outside [pass ∪ dirty] is dropped without evaluating
    the constraint; a candidate in every atom's [pass] under a
    {e complete} extraction is accepted without evaluating it.  Columns
    and per-atom sets are cached, so a constraint mentioning the same
    attribute across many residuals sorts each column once per build. *)

type t
(** A column store over one universe (host edges or host nodes). *)

val create : size:int -> attrs:(int -> Netembed_attr.Attrs.t) -> t
(** [create ~size ~attrs] stores columns over members [0 .. size-1]
    with [attrs i] the attribute table of member [i].  Columns build
    lazily, on the first atom that touches each attribute. *)

val size : t -> int

type sets = { pass : Netembed_bitset.Bitset.t; dirty : Netembed_bitset.Bitset.t }

val sets : t -> Netembed_expr.Bounds.atom -> sets
(** The atom's pass/dirty classification of every universe member,
    cached per atom.  The returned bitsets are owned by the store:
    read-only. *)

(** {1 Per-residual plans} *)

type restriction = {
  admissible : Netembed_bitset.Bitset.t;  (** ∩ over atoms of [pass ∪ dirty] *)
  clean : Netembed_bitset.Bitset.t;  (** ∩ over atoms of [pass] *)
}

type plan = {
  edge : restriction option;  (** [rEdge]-subject atoms, or [None] *)
  src : restriction option;  (** [rSource]-subject atoms over host nodes *)
  tgt : restriction option;  (** [rTarget]-subject atoms over host nodes *)
  complete : bool;
      (** the residual is exactly its atoms: all-clean candidates need
          no evaluation at all *)
  infeasible : bool;
      (** an atom references a query-side attribute the query does not
          carry — every candidate rejects *)
}

val plan : edges:t -> nodes:t -> Netembed_expr.Bounds.t -> plan
(** Combine one residual's atoms into per-object restrictions against
    an edge universe and a node universe. *)

val admits_pair : plan -> he:int -> r_src:int -> r_dst:int -> bool
(** False means the pair definitely violates some atom: drop without
    evaluating. *)

val decides_pair : plan -> he:int -> r_src:int -> r_dst:int -> bool
(** True means the pair definitely satisfies the whole residual: accept
    without evaluating.  Only ever true for complete extractions. *)
