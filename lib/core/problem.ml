open Netembed_graph
module Eval = Netembed_expr.Eval
module Ast = Netembed_expr.Ast
module Compile = Netembed_expr.Compile
module Vm = Netembed_expr.Vm
module Telemetry = Netembed_telemetry.Telemetry

type evaluator = Interp | Bytecode

type compiled = {
  c_residuals : Ast.t option array;
  c_programs : Compile.program option array;
  mutable c_node_program : Compile.program option;
}

type t = {
  host : Graph.t;
  query : Graph.t;
  edge_constraint : Ast.t;
  node_constraint : Ast.t option;
  degree_filter : bool;
  host_degree : int array;
  query_degree : int array;
  host_in_degree : int array;
  query_in_degree : int array;
  (* Specialized residuals per (query edge, orientation); index 2*qe for
     the stored orientation, 2*qe+1 for the reverse.  Filled lazily.
     [compiled] carries the same table plus the bytecode programs, so a
     service-level cache can hand the whole bundle to the next problem
     over the same query and constraint. *)
  residuals : Ast.t option array;
  compiled : compiled;
  evaluator : evaluator;
  scratch : Vm.scratch;
  evals : Telemetry.Counter.t;
}

let fresh_compiled n =
  {
    c_residuals = Array.make n None;
    c_programs = Array.make n None;
    c_node_program = None;
  }

let make ?node_constraint ?(degree_filter = true) ?(evaluator = Bytecode) ?compiled
    ~host ~query edge_constraint =
  if Graph.kind host <> Graph.kind query then
    invalid_arg "Problem.make: host and query must share directedness";
  if Graph.node_count query > Graph.node_count host then
    invalid_arg "Problem.make: query larger than host";
  let n = max 1 (2 * Graph.edge_count query) in
  let compiled =
    match compiled with
    | Some c when Array.length c.c_residuals = n -> c
    | Some _ | None -> fresh_compiled n
  in
  {
    host;
    query;
    edge_constraint;
    node_constraint;
    degree_filter;
    host_degree = Array.init (Graph.node_count host) (Graph.degree host);
    query_degree = Array.init (Graph.node_count query) (Graph.degree query);
    host_in_degree = Array.init (Graph.node_count host) (Graph.in_degree host);
    query_in_degree = Array.init (Graph.node_count query) (Graph.in_degree query);
    residuals = compiled.c_residuals;
    compiled;
    evaluator;
    scratch = Vm.scratch ();
    evals = Telemetry.Counter.make ();
  }

let eval_counter t = t.evals
let constraint_evals t = Telemetry.Counter.value t.evals
let evaluator t = t.evaluator
let compiled_programs t = t.compiled

let residual_idx t qe ~q_src =
  (2 * qe) + if Graph.edge_source t.query qe = q_src then 0 else 1

let residual t qe ~q_src ~q_dst =
  let idx = residual_idx t qe ~q_src in
  match t.residuals.(idx) with
  | Some r -> r
  | None ->
      let r =
        Eval.specialize
          ~v_edge:(Graph.edge_attrs t.query qe)
          ~v_source:(Graph.node_attrs t.query q_src)
          ~v_target:(Graph.node_attrs t.query q_dst)
          t.edge_constraint
      in
      t.residuals.(idx) <- Some r;
      r

let program t qe ~q_src ~q_dst =
  let idx = residual_idx t qe ~q_src in
  match t.compiled.c_programs.(idx) with
  | Some p -> p
  | None ->
      let p = Compile.compile (residual t qe ~q_src ~q_dst) in
      t.compiled.c_programs.(idx) <- Some p;
      p

let node_program t c =
  match t.compiled.c_node_program with
  | Some p -> p
  | None ->
      let p = Compile.compile c in
      t.compiled.c_node_program <- Some p;
      p

let edge_pair_ok t ~qe ~q_src ~q_dst ~he ~r_src ~r_dst =
  Telemetry.Counter.incr t.evals;
  match t.evaluator with
  | Interp ->
      let residual = residual t qe ~q_src ~q_dst in
      let env =
        Eval.env ~v_edge:Netembed_attr.Attrs.empty
          ~r_edge:(Graph.edge_attrs t.host he)
          ~v_source:Netembed_attr.Attrs.empty ~v_target:Netembed_attr.Attrs.empty
          ~r_source:(Graph.node_attrs t.host r_src)
          ~r_target:(Graph.node_attrs t.host r_dst)
      in
      Eval.accepts env residual
  | Bytecode ->
      let p = program t qe ~q_src ~q_dst in
      Vm.set_env t.scratch ~v_edge:Netembed_attr.Attrs.empty
        ~r_edge:(Graph.edge_attrs t.host he)
        ~v_source:Netembed_attr.Attrs.empty ~v_target:Netembed_attr.Attrs.empty
        ~r_source:(Graph.node_attrs t.host r_src)
        ~r_target:(Graph.node_attrs t.host r_dst);
      Vm.accepts t.scratch p

let degree_ok t ~q ~r =
  (not t.degree_filter)
  || (t.query_degree.(q) <= t.host_degree.(r)
     && t.query_in_degree.(q) <= t.host_in_degree.(r))

let node_constraint_ok t ~q ~r =
  match t.node_constraint with
  | None -> true
  | Some c -> (
      Telemetry.Counter.incr t.evals;
      let attrs_q = Graph.node_attrs t.query q and attrs_r = Graph.node_attrs t.host r in
      match t.evaluator with
      | Interp ->
          let env =
            Eval.env ~v_edge:Netembed_attr.Attrs.empty ~r_edge:Netembed_attr.Attrs.empty
              ~v_source:attrs_q ~v_target:attrs_q ~r_source:attrs_r ~r_target:attrs_r
          in
          Eval.accepts env c
      | Bytecode ->
          let p = node_program t c in
          Vm.set_env t.scratch ~v_edge:Netembed_attr.Attrs.empty
            ~r_edge:Netembed_attr.Attrs.empty ~v_source:attrs_q ~v_target:attrs_q
            ~r_source:attrs_r ~r_target:attrs_r;
          Vm.accepts t.scratch p)

let node_ok t ~q ~r = degree_ok t ~q ~r && node_constraint_ok t ~q ~r

let residual_for_edge t ~q_src ~q_dst =
  match Graph.find_edge t.query q_src q_dst with
  | None -> invalid_arg "Problem.residual_for_edge: no such query edge"
  | Some qe -> residual t qe ~q_src ~q_dst

(* All query edges incident to [q], regardless of direction: for
   undirected queries [succ] already lists both orientations of each
   edge once; for directed ones the in-edges must be added. *)
let query_neighbours t q =
  match Graph.kind t.query with
  | Graph.Undirected -> Graph.succ t.query q
  | Graph.Directed -> Graph.succ t.query q @ Graph.pred t.query q

let query_edges_between t u v =
  List.filter_map
    (fun (w, e) ->
      if w <> v then None
      else
        let src, _ = Graph.endpoints t.query e in
        Some (e, src = u))
    (query_neighbours t u)

let prepare t =
  (* Force every lazy cache so the structure can be shared read-only
     across domains: residuals, compiled programs and the host pair
     index. *)
  Graph.iter_edges
    (fun qe q_src q_dst ->
      ignore (residual t qe ~q_src ~q_dst);
      ignore (residual t qe ~q_src:q_dst ~q_dst:q_src);
      if t.evaluator = Bytecode then begin
        ignore (program t qe ~q_src ~q_dst);
        ignore (program t qe ~q_src:q_dst ~q_dst:q_src)
      end)
    t.query;
  (match (t.evaluator, t.node_constraint) with
  | Bytecode, Some c -> ignore (node_program t c)
  | _ -> ());
  if Graph.node_count t.host > 0 then ignore (Graph.edges_between t.host 0 0)
