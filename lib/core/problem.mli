(** An embedding problem instance: hosting network, query network and
    constraint expression (paper, section IV).

    The constraint is evaluated per (query edge, hosting edge) pair with
    the six Table-I objects in scope.  An optional node constraint (an
    extension over the paper, which folds node conditions into the edge
    expression via [vSource]/[vTarget]) is evaluated per (query node,
    host node) pair with the node tables bound to both source slots.

    Evaluation goes through the bytecode VM by default
    ({!Netembed_expr.Compile} / {!Netembed_expr.Vm}): each residual is
    compiled once per (query edge, orientation) and the program is
    shared by the filter build, DFS, LNS and the parallel searchers.
    The seed tree-walking interpreter remains available as
    [~evaluator:Interp] — it is the differential oracle the conformance
    suite runs both modes against. *)

open Netembed_graph

type evaluator =
  | Interp  (** the seed tree-walking interpreter ({!Netembed_expr.Eval}) *)
  | Bytecode  (** compiled programs on the allocation-free VM (default) *)

type compiled
(** The cached compilation state of a problem: specialized residuals,
    their bytecode programs and the node-constraint program.  Opaque;
    obtained from {!compiled_programs} and fed back to {!make} by the
    service's filter cache so a warm submit over the same query and
    constraint skips specialization and compilation entirely. *)

type t = private {
  host : Graph.t;
  query : Graph.t;
  edge_constraint : Netembed_expr.Ast.t;
  node_constraint : Netembed_expr.Ast.t option;
  degree_filter : bool;
      (** prune host candidates with degree < query degree (sound for
          one-to-one edge-preserving embeddings; on by default) *)
  host_degree : int array;  (** cached [Graph.degree host] per node *)
  query_degree : int array;
  host_in_degree : int array;
  query_in_degree : int array;
  residuals : Netembed_expr.Ast.t option array;
      (** lazy per-(query edge, orientation) specialized constraints *)
  compiled : compiled;
  evaluator : evaluator;
  scratch : Netembed_expr.Vm.scratch;
      (** the problem's one VM scratch — single-writer, like [evals] *)
  evals : Netembed_telemetry.Telemetry.Counter.t;
      (** the shared constraint-evaluation counter: every
          constraint-expression evaluation against this problem — the
          filter build of ECF/RWB, the lazy edge checks of LNS and the
          node-constraint tests — increments it, so the engine reports
          one number for all three algorithms *)
}

val make :
  ?node_constraint:Netembed_expr.Ast.t ->
  ?degree_filter:bool ->
  ?evaluator:evaluator ->
  ?compiled:compiled ->
  host:Graph.t ->
  query:Graph.t ->
  Netembed_expr.Ast.t ->
  t
(** [compiled], when given, must come from a problem over the same query
    graph and constraints (the service's cache keys guarantee this); a
    bundle of the wrong shape is ignored, not trusted.
    @raise Invalid_argument if the graphs' kinds differ or the query has
    more nodes than the host (no injective mapping can exist). *)

val edge_pair_ok :
  t -> qe:Graph.edge -> q_src:Graph.node -> q_dst:Graph.node ->
  he:Graph.edge -> r_src:Graph.node -> r_dst:Graph.node -> bool
(** Does mapping query edge [qe] (oriented [q_src]->[q_dst]) onto host
    edge [he] (oriented [r_src]->[r_dst]) satisfy the constraint?  The
    orientation of [he] as stored is irrelevant: the caller chooses
    which endpoint plays source.  Under [Bytecode] this runs the
    compiled residual on the problem's scratch without allocating. *)

val node_ok : t -> q:Graph.node -> r:Graph.node -> bool
(** Node-level acceptability: degree filter plus the node constraint. *)

val degree_ok : t -> q:Graph.node -> r:Graph.node -> bool
(** The degree-filter half of {!node_ok} alone (always [true] when the
    problem was built with [~degree_filter:false]).  Split out so the
    explain path can attribute an elimination to the degree filter vs
    the node constraint. *)

val node_constraint_ok : t -> q:Graph.node -> r:Graph.node -> bool
(** The node-constraint half of {!node_ok} alone (counts one constraint
    evaluation when a node constraint is present). *)

val eval_counter : t -> Netembed_telemetry.Telemetry.Counter.t
(** The shared constraint-evaluation counter (see the [evals] field).
    Single-writer: concurrent searchers must not share one problem's
    lazy evaluation path (the parallel searchers only read prebuilt
    filter state, so this holds — and the same discipline covers the VM
    [scratch]). *)

val constraint_evals : t -> int
(** [Counter.value (eval_counter t)] — cumulative over the problem's
    lifetime; the engine reports per-run deltas. *)

val evaluator : t -> evaluator

val compiled_programs : t -> compiled
(** The problem's compilation bundle, shared structure included —
    cache it alongside the filter and pass it to the next {!make} over
    the same query and constraint to skip recompilation. *)

val residual :
  t -> Graph.edge -> q_src:Graph.node -> q_dst:Graph.node ->
  Netembed_expr.Ast.t
(** The edge constraint specialized to query edge [qe] in the given
    orientation, cached per (edge, orientation). *)

val program :
  t -> Graph.edge -> q_src:Graph.node -> q_dst:Graph.node ->
  Netembed_expr.Compile.program
(** The compiled form of {!residual}, cached likewise.  Available in
    both evaluator modes (the filter's pre-filter derives its bounds
    from the folded source). *)

val residual_for_edge :
  t -> q_src:Graph.node -> q_dst:Graph.node -> Netembed_expr.Ast.t
(** {!residual} addressed by endpoints instead of edge id; used by the
    filter builder and the explain path. *)

val query_neighbours : t -> Graph.node -> (Graph.node * Graph.edge) list
(** All (neighbour, edge) pairs incident to a query node in either
    direction — what constraint propagation must traverse. *)

val query_edges_between :
  t -> Graph.node -> Graph.node -> (Graph.edge * bool) list
(** Query edges connecting two nodes; the flag is [true] when the edge
    is stored as [u]->[v] (orientation matters for directed problems and
    for asymmetric constraints on undirected ones). *)

val prepare : t -> unit
(** Force the lazy caches (orientation residuals, compiled programs,
    host edge index) so the problem can afterwards be shared read-only
    across domains.  Called by the parallel searchers before
    spawning. *)
