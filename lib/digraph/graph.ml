module Attrs = Netembed_attr.Attrs

type kind = Directed | Undirected
type node = int
type edge = int

type t = {
  kind : kind;
  graph_name : string;
  mutable graph_attrs : Attrs.t;
  node_attrs : Attrs.t Vec.t;
  edge_attrs : Attrs.t Vec.t;
  edge_src : int Vec.t;
  edge_dst : int Vec.t;
  (* Adjacency: out.(v) = (neighbour, edge) list in reverse insertion
     order; undirected graphs record each edge in both lists. *)
  out_adj : (int * int) list Vec.t;
  in_adj : (int * int) list Vec.t;
  (* Lazy (u, v) -> edge-list index for O(1) amortized lookup; built on
     first use and invalidated by later mutation. *)
  mutable pair_index : (int * int, int list) Hashtbl.t option;
}

let create ?(kind = Undirected) ?(name = "") () =
  {
    kind;
    graph_name = name;
    graph_attrs = Attrs.empty;
    node_attrs = Vec.create ~dummy:Attrs.empty;
    edge_attrs = Vec.create ~dummy:Attrs.empty;
    edge_src = Vec.create ~dummy:(-1);
    edge_dst = Vec.create ~dummy:(-1);
    out_adj = Vec.create ~dummy:[];
    in_adj = Vec.create ~dummy:[];
    pair_index = None;
  }

let kind t = t.kind
let name t = t.graph_name
let node_count t = Vec.length t.node_attrs
let edge_count t = Vec.length t.edge_attrs

let add_node t attrs =
  let id = node_count t in
  Vec.push t.node_attrs attrs;
  Vec.push t.out_adj [];
  Vec.push t.in_adj [];
  id

let check_node t v ctx =
  if v < 0 || v >= node_count t then invalid_arg (ctx ^ ": unknown node")

let add_edge t u v attrs =
  check_node t u "Graph.add_edge";
  check_node t v "Graph.add_edge";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  t.pair_index <- None;
  let id = edge_count t in
  Vec.push t.edge_attrs attrs;
  Vec.push t.edge_src u;
  Vec.push t.edge_dst v;
  Vec.set t.out_adj u ((v, id) :: Vec.get t.out_adj u);
  Vec.set t.in_adj v ((u, id) :: Vec.get t.in_adj v);
  (match t.kind with
  | Undirected ->
      Vec.set t.out_adj v ((u, id) :: Vec.get t.out_adj v);
      Vec.set t.in_adj u ((v, id) :: Vec.get t.in_adj u)
  | Directed -> ());
  id

let set_node_attrs t v attrs =
  check_node t v "Graph.set_node_attrs";
  Vec.set t.node_attrs v attrs

let set_edge_attrs t e attrs =
  if e < 0 || e >= edge_count t then invalid_arg "Graph.set_edge_attrs: unknown edge";
  Vec.set t.edge_attrs e attrs

let set_graph_attrs t attrs = t.graph_attrs <- attrs

let node_attrs t v =
  check_node t v "Graph.node_attrs";
  Vec.get t.node_attrs v

let edge_attrs t e =
  if e < 0 || e >= edge_count t then invalid_arg "Graph.edge_attrs: unknown edge";
  Vec.get t.edge_attrs e

let graph_attrs t = t.graph_attrs

let endpoints t e =
  if e < 0 || e >= edge_count t then invalid_arg "Graph.endpoints: unknown edge";
  (Vec.get t.edge_src e, Vec.get t.edge_dst e)

let edge_source t e =
  if e < 0 || e >= edge_count t then invalid_arg "Graph.edge_source: unknown edge";
  Vec.get t.edge_src e

let succ t v =
  check_node t v "Graph.succ";
  Vec.get t.out_adj v

let pred t v =
  check_node t v "Graph.pred";
  Vec.get t.in_adj v

let degree t v = List.length (succ t v)
let out_degree = degree

let in_degree t v =
  check_node t v "Graph.in_degree";
  List.length (Vec.get t.in_adj v)

let pair_index t =
  match t.pair_index with
  | Some idx -> idx
  | None ->
      let idx = Hashtbl.create (max 16 (2 * edge_count t)) in
      let record u v e =
        Hashtbl.replace idx (u, v)
          (e :: Option.value ~default:[] (Hashtbl.find_opt idx (u, v)))
      in
      for e = edge_count t - 1 downto 0 do
        let u = Vec.get t.edge_src e and v = Vec.get t.edge_dst e in
        record u v e;
        match t.kind with Undirected -> record v u e | Directed -> ()
      done;
      t.pair_index <- Some idx;
      idx

let edges_between t u v =
  check_node t u "Graph.edges_between";
  check_node t v "Graph.edges_between";
  Option.value ~default:[] (Hashtbl.find_opt (pair_index t) (u, v))

let find_edge t u v =
  match edges_between t u v with [] -> None | e :: _ -> Some e

let mem_edge t u v = Option.is_some (find_edge t u v)

let iter_nodes f t =
  for v = 0 to node_count t - 1 do
    f v
  done

let iter_edges f t =
  for e = 0 to edge_count t - 1 do
    f e (Vec.get t.edge_src e) (Vec.get t.edge_dst e)
  done

let fold_nodes f t init =
  let acc = ref init in
  iter_nodes (fun v -> acc := f v !acc) t;
  !acc

let fold_edges f t init =
  let acc = ref init in
  iter_edges (fun e u v -> acc := f e u v !acc) t;
  !acc

let nodes t = Array.init (node_count t) (fun i -> i)

let edges t =
  Array.init (edge_count t) (fun e -> (e, Vec.get t.edge_src e, Vec.get t.edge_dst e))

let copy t =
  let g = create ~kind:t.kind ~name:t.graph_name () in
  g.graph_attrs <- t.graph_attrs;
  iter_nodes (fun v -> ignore (add_node g (node_attrs t v))) t;
  iter_edges (fun e u v -> ignore (add_edge g u v (edge_attrs t e))) t;
  g

let induced_subgraph t sel =
  let n = node_count t in
  let new_id = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      check_node t v "Graph.induced_subgraph";
      if new_id.(v) <> -1 then invalid_arg "Graph.induced_subgraph: duplicate node";
      new_id.(v) <- i)
    sel;
  let g = create ~kind:t.kind ~name:t.graph_name () in
  Array.iter (fun v -> ignore (add_node g (node_attrs t v))) sel;
  iter_edges
    (fun e u v ->
      if new_id.(u) <> -1 && new_id.(v) <> -1 then
        ignore (add_edge g new_id.(u) new_id.(v) (edge_attrs t e)))
    t;
  (g, Array.copy sel)

let spanning_subgraph t sel keep_edges =
  let n = node_count t in
  let new_id = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      check_node t v "Graph.spanning_subgraph";
      if new_id.(v) <> -1 then invalid_arg "Graph.spanning_subgraph: duplicate node";
      new_id.(v) <- i)
    sel;
  let g = create ~kind:t.kind ~name:t.graph_name () in
  Array.iter (fun v -> ignore (add_node g (node_attrs t v))) sel;
  Array.iter
    (fun e ->
      let u, v = endpoints t e in
      if new_id.(u) = -1 || new_id.(v) = -1 then
        invalid_arg "Graph.spanning_subgraph: edge outside selection";
      ignore (add_edge g new_id.(u) new_id.(v) (edge_attrs t e)))
    keep_edges;
  (g, Array.copy sel)

let density t =
  let n = float_of_int (node_count t) in
  let m = float_of_int (edge_count t) in
  if node_count t < 2 then 0.0
  else
    match t.kind with
    | Undirected -> m /. (n *. (n -. 1.0) /. 2.0)
    | Directed -> m /. (n *. (n -. 1.0))

let pp_summary ppf t =
  Format.fprintf ppf "%s: %d nodes, %d edges (%s)"
    (if t.graph_name = "" then "<graph>" else t.graph_name)
    (node_count t) (edge_count t)
    (match t.kind with Undirected -> "undirected" | Directed -> "directed")
