(** Attributed graphs: the common representation of hosting and query
    networks (paper, section IV: [R = <V,E>], [Q = <V,E>] plus a
    characterization of nodes and links).

    Nodes and edges are dense integer handles ([0 .. count-1]), which the
    embedding algorithms exploit for array- and bitset-indexed state.
    Graphs are mutable during construction (generators add nodes and
    edges incrementally) and treated as immutable afterwards.

    Undirected graphs store each edge once; adjacency is maintained from
    both endpoints.  Self-loops are rejected; parallel edges are allowed
    (a hosting network may expose several measured links between two
    sites) but generators in this repository never produce them. *)

type kind = Directed | Undirected

type node = int
type edge = int
type t

(** {1 Construction} *)

val create : ?kind:kind -> ?name:string -> unit -> t
(** A fresh empty graph; [kind] defaults to [Undirected]. *)

val add_node : t -> Netembed_attr.Attrs.t -> node
val add_edge : t -> node -> node -> Netembed_attr.Attrs.t -> edge
(** @raise Invalid_argument on self-loops or unknown endpoints. *)

val set_node_attrs : t -> node -> Netembed_attr.Attrs.t -> unit
val set_edge_attrs : t -> edge -> Netembed_attr.Attrs.t -> unit
val set_graph_attrs : t -> Netembed_attr.Attrs.t -> unit

(** {1 Inspection} *)

val kind : t -> kind
val name : t -> string
val node_count : t -> int
val edge_count : t -> int

val node_attrs : t -> node -> Netembed_attr.Attrs.t
val edge_attrs : t -> edge -> Netembed_attr.Attrs.t
val graph_attrs : t -> Netembed_attr.Attrs.t

val endpoints : t -> edge -> node * node
(** Source and target in insertion orientation (meaningful for directed
    graphs; arbitrary but stable for undirected ones). *)

val edge_source : t -> edge -> node
(** [fst (endpoints t e)] without allocating the pair — for per-pair
    hot paths (the constraint evaluator resolves a residual's
    orientation on every evaluation). *)

val succ : t -> node -> (node * edge) list
(** Out-neighbours with the connecting edge.  For undirected graphs this
    is the full neighbourhood. *)

val pred : t -> node -> (node * edge) list
(** In-neighbours.  Equal to {!succ} for undirected graphs. *)

val degree : t -> node -> int
(** [List.length (succ t v)]; for undirected graphs, the ordinary
    degree. *)

val out_degree : t -> node -> int
val in_degree : t -> node -> int

val find_edge : t -> node -> node -> edge option
(** First edge from [u] to [v] ([u]–[v] in either stored orientation for
    undirected graphs). *)

val edges_between : t -> node -> node -> edge list
(** All edges from [u] to [v], via a lazily-built hash index (O(1)
    amortized; the index is rebuilt after any [add_edge]). *)

val mem_edge : t -> node -> node -> bool

val iter_nodes : (node -> unit) -> t -> unit
val iter_edges : (edge -> node -> node -> unit) -> t -> unit
val fold_nodes : (node -> 'a -> 'a) -> t -> 'a -> 'a
val fold_edges : (edge -> node -> node -> 'a -> 'a) -> t -> 'a -> 'a
val nodes : t -> node array
val edges : t -> (edge * node * node) array

(** {1 Derived graphs} *)

val copy : t -> t

val induced_subgraph : t -> node array -> t * node array
(** [induced_subgraph g sel] is the subgraph on the nodes of [sel]
    (attributes shared) together with the array mapping new node ids to
    the original ids ([sel] itself, re-indexed).  Edges between selected
    nodes are all retained.
    @raise Invalid_argument if [sel] contains duplicates. *)

val spanning_subgraph : t -> node array -> edge array -> t * node array
(** Like {!induced_subgraph} but keeping only the listed edges (which
    must connect selected nodes). *)

val density : t -> float
(** [|E| / (|V| choose 2)] for undirected graphs, [|E| / (|V|·(|V|-1))]
    for directed ones; 0 for graphs with fewer than two nodes. *)

val pp_summary : Format.formatter -> t -> unit
(** One-line ["name: N nodes, M edges (undirected)"] summary. *)
