(* Explainability kernel: constraint-blame accounting, near-miss
   analysis and the flight recorder.  Everything here is generic over
   plain ints (query nodes, host nodes, depths) so the library sits
   below the search core — the core threads blame tables and recorders
   through its hot paths, and the engine assembles certificates from
   them.  All recording structures are preallocated (the recorder is a
   ring of int arrays; the blame table only grows on elimination
   events), so instrumented searches stay allocation-light. *)

module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Ast = Netembed_expr.Ast

let json_escape s =
  if
    String.exists
      (fun c -> c = '"' || c = '\\' || Char.code c < 0x20)
      s
  then
    String.concat ""
      (List.map
         (fun c ->
           match c with
           | '"' -> "\\\""
           | '\\' -> "\\\\"
           | '\n' -> "\\n"
           | '\t' -> "\\t"
           | c when Char.code c < 0x20 -> Printf.sprintf "\\u%04x" (Char.code c)
           | c -> String.make 1 c)
         (List.init (String.length s) (String.get s)))
  else s

(* ------------------------------------------------------------------ *)
(* Causes                                                              *)
(* ------------------------------------------------------------------ *)

module Cause = struct
  type t =
    | Degree_filter
    | Node_constraint
    | Edge_constraint of int * int
    | Host_contention
    | Admission of string
    | Budget

  let to_string = function
    | Degree_filter -> "degree filter"
    | Node_constraint -> "node constraint"
    | Edge_constraint (a, b) -> Printf.sprintf "edge constraint on (q%d,q%d)" a b
    | Host_contention -> "host contention (all remaining candidates in use)"
    | Admission r -> Printf.sprintf "admission (aggregate %s demand exceeds residual)" r
    | Budget -> "budget exhausted"

  (* Low-cardinality label for metrics: edge constraints collapse to one
     series regardless of which query pair they hit. *)
  let label = function
    | Degree_filter -> "degree_filter"
    | Node_constraint -> "node_constraint"
    | Edge_constraint _ -> "edge_constraint"
    | Host_contention -> "host_contention"
    | Admission _ -> "admission"
    | Budget -> "budget"
end

(* ------------------------------------------------------------------ *)
(* Blame table                                                         *)
(* ------------------------------------------------------------------ *)

module Blame = struct
  type t = { counts : (int * Cause.t, int) Hashtbl.t }

  let create () = { counts = Hashtbl.create 64 }

  let record t ~q cause n =
    if n > 0 then begin
      let k = (q, cause) in
      match Hashtbl.find_opt t.counts k with
      | Some prior -> Hashtbl.replace t.counts k (prior + n)
      | None -> Hashtbl.replace t.counts k n
    end

  let eliminate t ~q cause = record t ~q cause 1
  let is_empty t = Hashtbl.length t.counts = 0

  let desc (_, a) (_, b) = compare (b : int) a

  let by_node t q =
    Hashtbl.fold
      (fun (q', cause) n acc -> if q' = q then (cause, n) :: acc else acc)
      t.counts []
    |> List.sort desc

  let totals t =
    let agg : (Cause.t, int) Hashtbl.t = Hashtbl.create 8 in
    Hashtbl.iter
      (fun (_, cause) n ->
        Hashtbl.replace agg cause (n + Option.value ~default:0 (Hashtbl.find_opt agg cause)))
      t.counts;
    Hashtbl.fold (fun cause n acc -> (cause, n) :: acc) agg [] |> List.sort desc

  let label_totals t =
    let agg : (string, int) Hashtbl.t = Hashtbl.create 8 in
    Hashtbl.iter
      (fun (_, cause) n ->
        let l = Cause.label cause in
        Hashtbl.replace agg l (n + Option.value ~default:0 (Hashtbl.find_opt agg l)))
      t.counts;
    Hashtbl.fold (fun l n acc -> (l, n) :: acc) agg [] |> List.sort desc

  let total_for t q = List.fold_left (fun acc (_, n) -> acc + n) 0 (by_node t q)

  let nodes t =
    let seen = Hashtbl.create 16 in
    Hashtbl.iter (fun (q, _) _ -> Hashtbl.replace seen q ()) t.counts;
    Hashtbl.fold (fun q () acc -> q :: acc) seen []
    |> List.sort (fun a b -> compare (total_for t b) (total_for t a))
end

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

module Recorder = struct
  type kind = Visit | Wipeout | Backtrack | Solution

  let kind_name = function
    | Visit -> "visit"
    | Wipeout -> "wipeout"
    | Backtrack -> "backtrack"
    | Solution -> "solution"

  let code = function Visit -> 0 | Wipeout -> 1 | Backtrack -> 2 | Solution -> 3
  let of_code = function 0 -> Visit | 1 -> Wipeout | 2 -> Backtrack | _ -> Solution

  type event = { seq : int; kind : kind; depth : int; host : int; size : int }

  type t = {
    capacity : int;
    sample_every : int;
    kinds : int array;
    depths : int array;
    hosts : int array;
    sizes : int array;
    seqs : int array;
    mutable recorded : int;  (* total push calls, monotonic *)
    mutable visits : int;  (* visit ticks seen, for 1/N sampling *)
  }

  let create ?(capacity = 256) ?(sample_every = 32) () =
    if capacity < 1 then invalid_arg "Explain.Recorder.create: capacity";
    if sample_every < 1 then invalid_arg "Explain.Recorder.create: sample_every";
    {
      capacity;
      sample_every;
      kinds = Array.make capacity 0;
      depths = Array.make capacity 0;
      hosts = Array.make capacity (-1);
      sizes = Array.make capacity 0;
      seqs = Array.make capacity 0;
      recorded = 0;
      visits = 0;
    }

  let push t kind ~depth ~host ~size =
    let i = t.recorded mod t.capacity in
    t.kinds.(i) <- code kind;
    t.depths.(i) <- depth;
    t.hosts.(i) <- host;
    t.sizes.(i) <- size;
    t.seqs.(i) <- t.recorded;
    t.recorded <- t.recorded + 1

  let visit t ~depth ~host ~size =
    t.visits <- t.visits + 1;
    if t.visits mod t.sample_every = 0 then push t Visit ~depth ~host ~size

  let wipeout t ~depth ~host = push t Wipeout ~depth ~host ~size:0
  let backtrack t ~depth = push t Backtrack ~depth ~host:(-1) ~size:0
  let solution t ~depth = push t Solution ~depth ~host:(-1) ~size:0
  let recorded t = t.recorded
  let sample_every t = t.sample_every

  let events t =
    let n = min t.recorded t.capacity in
    let start = t.recorded - n in
    List.init n (fun j ->
        let i = (start + j) mod t.capacity in
        {
          seq = t.seqs.(i);
          kind = of_code t.kinds.(i);
          depth = t.depths.(i);
          host = t.hosts.(i);
          size = t.sizes.(i);
        })

  let event_to_json e =
    Printf.sprintf "{\"seq\":%d,\"ev\":\"%s\",\"depth\":%d%s%s}" e.seq
      (kind_name e.kind) e.depth
      (if e.host >= 0 then Printf.sprintf ",\"host\":%d" e.host else "")
      (match e.kind with
      | Visit -> Printf.sprintf ",\"domain_size\":%d" e.size
      | Wipeout | Backtrack | Solution -> "")

  let to_json t =
    Printf.sprintf
      "{\"recorded\":%d,\"capacity\":%d,\"sample_every\":%d,\"events\":[%s]}"
      t.recorded t.capacity t.sample_every
      (String.concat "," (List.map event_to_json (events t)))
end

(* ------------------------------------------------------------------ *)
(* Requirement extraction and near-miss analysis                       *)
(* ------------------------------------------------------------------ *)

type requirement = {
  subject : Ast.obj;
  attr : string;
  op : [ `Ge | `Gt | `Le | `Lt | `Eq ];
  bound : float;
}

let op_name = function
  | `Ge -> ">="
  | `Gt -> ">"
  | `Le -> "<="
  | `Lt -> "<"
  | `Eq -> "=="

let requirement_to_string r =
  Printf.sprintf "%s.%s %s %g" (Ast.obj_name r.subject) r.attr (op_name r.op) r.bound

(* The numeric projection of {!Netembed_expr.Bounds.of_ast}: the same
   conjunctive-spine extraction that drives the filter's attribute
   pre-sweeps also yields the certificate's "attr OP number"
   obligations, so blame and filtering can never disagree about what a
   constraint demands.  String-equality and bare-boolean atoms carry no
   numeric bound and are skipped here. *)
let requirements ~on ast =
  let module Bounds = Netembed_expr.Bounds in
  let b = Bounds.of_ast ast in
  List.filter_map
    (fun atom ->
      let subject, attr = Bounds.atom_subject atom in
      if not (List.mem subject on) then None
      else
        match atom with
        | Bounds.Cmp { cmp; bound; _ } ->
            let op =
              match cmp with
              | Bounds.Lt -> `Lt
              | Bounds.Le -> `Le
              | Bounds.Gt -> `Gt
              | Bounds.Ge -> `Ge
            in
            Some { subject; attr; op; bound }
        | Bounds.Eq { value; _ } when Value.is_numeric value ->
            Some { subject; attr; op = `Eq; bound = Value.to_float value }
        | Bounds.Eq _ | Bounds.Has_bool _ -> None)
    b.Bounds.atoms

let satisfies r value =
  match r.op with
  | `Ge -> value >= r.bound
  | `Gt -> value > r.bound
  | `Le -> value <= r.bound
  | `Lt -> value < r.bound
  | `Eq -> value = r.bound

(* Relative shortfall of a violated requirement — the ranking key for
   near misses; a missing attribute counts as a full miss. *)
let gap r = function
  | None -> 1.0
  | Some v -> Float.abs (v -. r.bound) /. Float.max 1.0 (Float.abs r.bound)

type near_miss = {
  id : int;
  label : string;
  violated : (requirement * float option) list;
      (** each violated requirement with the actual value (None when the
          attribute is missing entirely) *)
  satisfied : int;
}

let check_item reqs attrs =
  List.fold_left
    (fun (viol, sat) r ->
      match Attrs.float r.attr attrs with
      | Some v when satisfies r v -> (viol, sat + 1)
      | Some v -> ((r, Some v) :: viol, sat)
      | None -> ((r, None) :: viol, sat))
    ([], 0) reqs
  |> fun (viol, sat) -> (List.rev viol, sat)

let near_misses ~reqs ~items ~limit =
  if reqs = [] then []
  else
    items
    |> List.map (fun (id, label, attrs) ->
           let violated, satisfied = check_item reqs attrs in
           { id; label; violated; satisfied })
    |> List.filter (fun m -> m.violated <> [])
    |> List.sort (fun a b ->
           let c = compare (List.length a.violated) (List.length b.violated) in
           if c <> 0 then c
           else
             let total m =
               List.fold_left (fun acc (r, v) -> acc +. gap r v) 0.0 m.violated
             in
             compare (total a) (total b))
    |> List.filteri (fun i _ -> i < limit)

let near_miss_to_string m =
  Printf.sprintf "%s: %s" m.label
    (String.concat "; "
       (List.map
          (fun (r, v) ->
            match v with
            | Some v -> Printf.sprintf "needs %s, has %g" (requirement_to_string r) v
            | None -> Printf.sprintf "needs %s, attribute missing" (requirement_to_string r))
          m.violated))

let near_miss_to_json m =
  Printf.sprintf "{\"id\":%d,\"label\":\"%s\",\"satisfied\":%d,\"violated\":[%s]}" m.id
    (json_escape m.label) m.satisfied
    (String.concat ","
       (List.map
          (fun (r, v) ->
            Printf.sprintf "{\"requirement\":\"%s\"%s}"
              (json_escape (requirement_to_string r))
              (match v with Some v -> Printf.sprintf ",\"actual\":%g" v | None -> ""))
          m.violated))

(* ------------------------------------------------------------------ *)
(* Certificates                                                        *)
(* ------------------------------------------------------------------ *)

module Certificate = struct
  type blamed = {
    node : int;
    node_label : string;
    causes : (Cause.t * int) list;
    requirements : requirement list;
    near : near_miss list;
  }

  type hot_spot = {
    depth : int;
    node : int;  (** -1 when the searcher has no static depth->node map *)
    node_label : string;
    backtracks : int;
    wipeouts : int;
  }

  type t = {
    verdict : string;
    message : string;
    blamed : blamed list;
    hot_spot : hot_spot option;
    notes : string list;
    flight : Recorder.event list;
  }

  let make ?(blamed = []) ?hot_spot ?(notes = []) ?(flight = []) ~verdict message =
    { verdict; message; blamed; hot_spot; notes; flight }

  let primary_cause t =
    match t.blamed with
    | { causes = (c, _) :: _; _ } :: _ -> Some c
    | _ -> None

  let to_text t =
    let buf = Buffer.create 512 in
    Buffer.add_string buf (Printf.sprintf "verdict: %s\n%s\n" t.verdict t.message);
    List.iter
      (fun (b : blamed) ->
        Buffer.add_string buf
          (Printf.sprintf "blamed node %s (q%d): domain emptied\n" b.node_label b.node);
        List.iter
          (fun (c, n) ->
            Buffer.add_string buf
              (Printf.sprintf "  - %s eliminated %d candidate(s)\n" (Cause.to_string c) n))
          b.causes;
        if b.requirements <> [] then
          Buffer.add_string buf
            (Printf.sprintf "  requires: %s\n"
               (String.concat " && " (List.map requirement_to_string b.requirements)));
        List.iter
          (fun m ->
            Buffer.add_string buf (Printf.sprintf "  near miss %s\n" (near_miss_to_string m)))
          b.near)
      t.blamed;
    (match t.hot_spot with
    | None -> ()
    | Some h ->
        Buffer.add_string buf
          (Printf.sprintf "hot spot: depth %d%s, %d backtracks, %d wipeouts\n" h.depth
             (if h.node >= 0 then Printf.sprintf " (query node %s, q%d)" h.node_label h.node
              else "")
             h.backtracks h.wipeouts));
    List.iter (fun n -> Buffer.add_string buf (Printf.sprintf "note: %s\n" n)) t.notes;
    if t.flight <> [] then
      Buffer.add_string buf
        (Printf.sprintf "flight recorder: %d recent event(s) captured\n"
           (List.length t.flight));
    Buffer.contents buf

  let blamed_to_json (b : blamed) =
    Printf.sprintf
      "{\"node\":%d,\"label\":\"%s\",\"causes\":[%s],\"requirements\":[%s],\"near_misses\":[%s]}"
      b.node (json_escape b.node_label)
      (String.concat ","
         (List.map
            (fun (c, n) ->
              Printf.sprintf
                "{\"cause\":\"%s\",\"detail\":\"%s\",\"eliminated\":%d}" (Cause.label c)
                (json_escape (Cause.to_string c))
                n)
            b.causes))
      (String.concat ","
         (List.map
            (fun r -> Printf.sprintf "\"%s\"" (json_escape (requirement_to_string r)))
            b.requirements))
      (String.concat "," (List.map near_miss_to_json b.near))

  let to_json t =
    Printf.sprintf
      "{\"verdict\":\"%s\",\"message\":\"%s\",\"blamed\":[%s]%s%s,\"flight\":[%s]}"
      (json_escape t.verdict) (json_escape t.message)
      (String.concat "," (List.map blamed_to_json t.blamed))
      (match t.hot_spot with
      | None -> ""
      | Some h ->
          Printf.sprintf
            ",\"hot_spot\":{\"depth\":%d,\"node\":%d,\"label\":\"%s\",\"backtracks\":%d,\"wipeouts\":%d}"
            h.depth h.node (json_escape h.node_label) h.backtracks h.wipeouts)
      (if t.notes = [] then ""
       else
         Printf.sprintf ",\"notes\":[%s]"
           (String.concat ","
              (List.map (fun n -> Printf.sprintf "\"%s\"" (json_escape n)) t.notes)))
      (String.concat "," (List.map Recorder.event_to_json t.flight))
end
