(** Explainability kernel: constraint blame, near-miss analysis and the
    search flight recorder.

    When an embedding request comes back UNSAT or times out, the raw
    counters of {!Netembed_telemetry} say {e how much} work was done but
    not {e why} it failed.  This library holds the data structures the
    search core records into and the failure-certificate format the
    engine assembles from them:

    - {!Blame}: per (query node, {!Cause.t}) elimination counts — which
      constraint removed how many candidate hosts from which node's
      domain.  Filled by the filter build, the DFS wipeout path and the
      LNS lazy checks when explain mode is on.
    - {!Recorder}: a preallocated ring buffer of recent search events
      (visits sampled at 1/N, wipeouts, backtracks, solutions) — the
      flight recorder dumped on timeout so operators can see the thrash
      point.
    - {!requirements} / {!near_misses}: best-effort extraction of
      ["attr OP number"] obligations from a (specialized) constraint and
      the ranking of hosts that {e almost} satisfy them, producing lines
      like ["n3 needs cpuMhz >= 3000; best host plab-112 has 2400"].
    - {!Certificate}: the failure certificate — verdict, blamed nodes
      with causes and near misses, the hot search depth, and the flight
      dump — with text and JSON renderings.

    The library deliberately knows nothing about {!Netembed_core}
    (problems, filters); query and host nodes are plain ints and labels
    are supplied by the caller, so the core can depend on it. *)

module Cause : sig
  type t =
    | Degree_filter  (** host degree below the query node's degree *)
    | Node_constraint  (** the per-node constraint rejected the host *)
    | Edge_constraint of int * int
        (** no host edge satisfies the constraint of the query edge
            between these two query nodes (blamed node first) *)
    | Host_contention
        (** every surviving candidate was already assigned to another
            query node *)
    | Admission of string
        (** aggregate demand for the named resource exceeds the total
            residual — rejected before search *)
    | Budget  (** the search gave up, nothing was proved *)

  val to_string : t -> string

  val label : t -> string
  (** Low-cardinality metrics label ([degree_filter], [node_constraint],
      [edge_constraint], [host_contention], [admission], [budget]). *)
end

(** Per-(query node, cause) candidate-elimination counts. *)
module Blame : sig
  type t

  val create : unit -> t
  val record : t -> q:int -> Cause.t -> int -> unit
  (** Add [n] eliminations ([n <= 0] is a no-op). *)

  val eliminate : t -> q:int -> Cause.t -> unit
  (** [record t ~q cause 1]. *)

  val is_empty : t -> bool

  val by_node : t -> int -> (Cause.t * int) list
  (** Causes recorded against one query node, most eliminations first. *)

  val totals : t -> (Cause.t * int) list
  (** Aggregated over all nodes, most eliminations first. *)

  val label_totals : t -> (string * int) list
  (** {!totals} aggregated by {!Cause.label} — what the
      blame-by-constraint metrics counters consume. *)

  val total_for : t -> int -> int
  val nodes : t -> int list
  (** Query nodes with any recorded blame, most-blamed first. *)
end

(** Preallocated ring buffer of recent search events. *)
module Recorder : sig
  type kind = Visit | Wipeout | Backtrack | Solution

  val kind_name : kind -> string

  type event = {
    seq : int;  (** monotonic event number since creation *)
    kind : kind;
    depth : int;
    host : int;  (** most recently chosen host (-1 when not applicable) *)
    size : int;  (** candidate-domain cardinality (visits only) *)
  }

  type t

  val create : ?capacity:int -> ?sample_every:int -> unit -> t
  (** [capacity] events retained (default 256); visits are sampled at
      1/[sample_every] (default 32) while wipeouts, backtracks and
      solutions are always recorded.
      @raise Invalid_argument when either is < 1. *)

  val visit : t -> depth:int -> host:int -> size:int -> unit
  val wipeout : t -> depth:int -> host:int -> unit
  val backtrack : t -> depth:int -> unit
  val solution : t -> depth:int -> unit

  val recorded : t -> int
  (** Total events pushed (monotonic; the ring holds the last
      [capacity] of them). *)

  val sample_every : t -> int

  val events : t -> event list
  (** Retained events, oldest first. *)

  val event_to_json : event -> string
  val to_json : t -> string
end

(** {1 Requirements and near misses} *)

type requirement = {
  subject : Netembed_expr.Ast.obj;
  attr : string;
  op : [ `Eq | `Ge | `Gt | `Le | `Lt ];
  bound : float;
}
(** One ["attr OP number"] obligation read off a constraint. *)

val requirement_to_string : requirement -> string

val requirements :
  on:Netembed_expr.Ast.obj list -> Netembed_expr.Ast.t -> requirement list
(** The numeric projection of {!Netembed_expr.Bounds.of_ast}, filtered
    to the [on] objects: comparisons that pin an attribute against a
    closed numeric bound.  The filter's attribute pre-sweeps are driven
    by the same extraction, so certificates and filtering agree by
    construction.  Best-effort: disjunctions, arithmetic around the
    attribute, string atoms and bare booleans are skipped. *)

val satisfies : requirement -> float -> bool

type near_miss = {
  id : int;
  label : string;
  violated : (requirement * float option) list;
      (** violated requirements with the actual value ([None] when the
          attribute is missing) *)
  satisfied : int;  (** requirements the item does satisfy *)
}

val near_misses :
  reqs:requirement list ->
  items:(int * string * Netembed_attr.Attrs.t) list ->
  limit:int ->
  near_miss list
(** Rank the items that violate at least one requirement by (fewest
    violations, smallest relative shortfall) and return the first
    [limit] — the "best host has 2400 of the 3000 MHz you asked for"
    lines of a certificate. *)

val near_miss_to_string : near_miss -> string
val near_miss_to_json : near_miss -> string

(** {1 Failure certificates} *)

module Certificate : sig
  type blamed = {
    node : int;
    node_label : string;
    causes : (Cause.t * int) list;  (** most eliminations first *)
    requirements : requirement list;
    near : near_miss list;
  }

  type hot_spot = {
    depth : int;
    node : int;  (** -1 when the searcher has no static depth->node map *)
    node_label : string;
    backtracks : int;
    wipeouts : int;
  }

  type t = {
    verdict : string;
        (** ["unsat"] (proved infeasible), ["exhausted"]/["partial"]
            (gave up), ["admission"] (rejected before search) or
            ["complete"] (diagnostics for a slow but successful run) *)
    message : string;
    blamed : blamed list;
    hot_spot : hot_spot option;
    notes : string list;
    flight : Recorder.event list;
  }

  val make :
    ?blamed:blamed list ->
    ?hot_spot:hot_spot ->
    ?notes:string list ->
    ?flight:Recorder.event list ->
    verdict:string ->
    string ->
    t

  val primary_cause : t -> Cause.t option
  (** The top cause of the top blamed node, when any. *)

  val to_text : t -> string
  (** Multi-line human rendering (what [netembed_cli explain] prints). *)

  val to_json : t -> string
end

val json_escape : string -> string
