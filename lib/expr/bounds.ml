module Value = Netembed_attr.Value

type cmp = Lt | Le | Gt | Ge

type atom =
  | Cmp of { subject : Ast.obj; attr : string; cmp : cmp; bound : float }
  | Eq of { subject : Ast.obj; attr : string; value : Value.t }
  | Has_bool of { subject : Ast.obj; attr : string; value : bool }

type t = { atoms : atom list; complete : bool }

(* A numeric constant in (possibly folded) expression position. *)
let const_num = function
  | Ast.Num f -> Some f
  | Ast.Lit (Value.Int i) -> Some (float_of_int i)
  | Ast.Lit (Value.Float f) -> Some f
  | _ -> None

(* Any constant at all, as a Value. *)
let const_value = function
  | Ast.Num f -> Some (Value.Float f)
  | Ast.Str s -> Some (Value.String s)
  | Ast.Bool b -> Some (Value.Bool b)
  | Ast.Lit v -> Some v
  | _ -> None

let flip = function Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le

let cmp_of_binop = function
  | Ast.Lt -> Some Lt
  | Ast.Le -> Some Le
  | Ast.Gt -> Some Gt
  | Ast.Ge -> Some Ge
  | _ -> None

(* One conjunct -> at most one atom.  [None] means "not recognizable":
   the conjunct still holds whatever it holds, we just cannot pre-filter
   on it. *)
let atom_of (e : Ast.t) : atom option =
  match e with
  | Ast.Attr (subject, attr) -> Some (Has_bool { subject; attr; value = true })
  | Ast.Unop (Ast.Not, Ast.Attr (subject, attr)) ->
      Some (Has_bool { subject; attr; value = false })
  | Ast.Binop (Ast.Eq, Ast.Attr (subject, attr), rhs) -> (
      match const_value rhs with
      | Some value -> Some (Eq { subject; attr; value })
      | None -> None)
  | Ast.Binop (Ast.Eq, lhs, Ast.Attr (subject, attr)) -> (
      match const_value lhs with
      | Some value -> Some (Eq { subject; attr; value })
      | None -> None)
  | Ast.Binop (op, Ast.Attr (subject, attr), rhs) -> (
      match (cmp_of_binop op, const_num rhs) with
      | Some cmp, Some bound -> Some (Cmp { subject; attr; cmp; bound })
      | _ -> None)
  | Ast.Binop (op, lhs, Ast.Attr (subject, attr)) -> (
      match (cmp_of_binop op, const_num lhs) with
      | Some cmp, Some bound -> Some (Cmp { subject; attr; cmp = flip cmp; bound })
      | _ -> None)
  | Ast.Call ("isBoundTo", [ lhs; Ast.Attr (subject, attr) ]) -> (
      (* Post-specialization shape: the query side is a literal, so the
         call means "the hosting attribute exists and Value.equals it". *)
      match const_value lhs with
      | Some value -> Some (Eq { subject; attr; value })
      | None -> None)
  | _ -> None

let of_ast (e : Ast.t) : t =
  let rec spine e (atoms, complete) =
    match e with
    | Ast.Binop (Ast.And, a, b) -> spine b (spine a (atoms, complete))
    | Ast.Bool true | Ast.Lit (Value.Bool true) ->
        (* a trivially-true conjunct constrains nothing and hides
           nothing *)
        (atoms, complete)
    | e -> (
        match atom_of e with
        | Some a -> (a :: atoms, complete)
        | None -> (atoms, false))
  in
  let atoms, complete = spine e ([], true) in
  { atoms = List.rev atoms; complete }

let of_program (p : Compile.program) = of_ast p.Compile.source

let atom_subject = function
  | Cmp { subject; attr; _ } | Eq { subject; attr; _ } | Has_bool { subject; attr; _ }
    ->
      (subject, attr)

let satisfied atom (v : Value.t) =
  match atom with
  | Cmp { cmp; bound; _ } -> (
      match v with
      | Value.Int _ | Value.Float _ ->
          let c = Float.compare (Value.to_float v) bound in
          let ok =
            match cmp with Lt -> c < 0 | Le -> c <= 0 | Gt -> c > 0 | Ge -> c >= 0
          in
          if ok then `Pass else `Fail
      | Value.Bool _ | Value.String _ | Value.Range _ ->
          (* compare_values would raise: keep the candidate so generic
             evaluation surfaces the same error *)
          `Unknown)
  | Eq { value; _ } -> if Value.equal v value then `Pass else `Fail
  | Has_bool { value; _ } -> (
      match v with
      | Value.Bool b -> if b = value then `Pass else `Fail
      | Value.Int _ | Value.Float _ | Value.String _ | Value.Range _ -> `Unknown)

let interval t obj attr =
  List.fold_left
    (fun ((lo, hi) as acc) atom ->
      match atom with
      | Cmp { subject; attr = a; cmp; bound }
        when subject = obj && String.equal a attr && not (Float.is_nan bound) -> (
          match cmp with
          | Ge | Gt -> (Float.max lo bound, hi)
          | Le | Lt -> (lo, Float.min hi bound))
      | Eq { subject; attr = a; value = Value.Int i }
        when subject = obj && String.equal a attr ->
          let f = float_of_int i in
          (Float.max lo f, Float.min hi f)
      | Eq { subject; attr = a; value = Value.Float f }
        when subject = obj && String.equal a attr && not (Float.is_nan f) ->
          (Float.max lo f, Float.min hi f)
      | _ -> acc)
    (Float.neg_infinity, Float.infinity)
    t.atoms

let cmp_name = function Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let pp_atom ppf = function
  | Cmp { subject; attr; cmp; bound } ->
      Format.fprintf ppf "%s.%s %s %g" (Ast.obj_name subject) attr (cmp_name cmp) bound
  | Eq { subject; attr; value = Value.String s } ->
      Format.fprintf ppf "%s.%s == '%s'" (Ast.obj_name subject) attr s
  | Eq { subject; attr; value } ->
      Format.fprintf ppf "%s.%s == %s" (Ast.obj_name subject) attr
        (Value.to_string value)
  | Has_bool { subject; attr; value = true } ->
      Format.fprintf ppf "%s.%s" (Ast.obj_name subject) attr
  | Has_bool { subject; attr; value = false } ->
      Format.fprintf ppf "!%s.%s" (Ast.obj_name subject) attr
