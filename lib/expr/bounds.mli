(** Static bounds extraction: sound per-object attribute atoms.

    Walking a constraint's conjunctive spine ([&&] only) yields atoms
    of the form "this object's attribute compares thus with this
    constant" — e.g. [rSource.cpuMhz >= 900], [rEdge.os == 'linux'],
    [!rSource.reserved].  Each atom is {e sound} for acceptance
    filtering: if the atom is {b Fail} for an edge or node (the
    attribute is present with a definite non-matching value, or absent),
    then {!Eval.accepts} is false for every environment binding that
    object this way, so the candidate can be dropped without running
    the constraint.  The filter layer exploits this by sweeping
    pre-sorted attribute columns with bitsets before falling back to
    generic VM evaluation on the survivors, and the explain path blames
    near-misses through the same atoms (one extraction, two users —
    this replaces the ad-hoc numeric-requirement walk {!Explain} used
    to carry).

    Caveat, matching {!Eval.accepts}: dropping a candidate early can
    suppress an [Eval_error] another conjunct would have raised for
    that candidate (the interpreter propagates such errors, it does not
    reject).  Well-typed constraints — everything the stock library and
    the differential suite generate — are unaffected, and a value whose
    {e own} atom cannot be decided ({b Unknown}) is never dropped, so
    the surviving evaluation raises exactly what the interpreter
    would. *)

type cmp = Lt | Le | Gt | Ge

type atom =
  | Cmp of { subject : Ast.obj; attr : string; cmp : cmp; bound : float }
      (** ordering against a numeric constant, [compare_values]
          semantics: decided by [Float.compare] for numeric values,
          {b Unknown} for present non-numeric values (generic
          evaluation would raise) *)
  | Eq of { subject : Ast.obj; attr : string; value : Netembed_attr.Value.t }
      (** equality with a constant, [eval_eq] / [Value.equal]
          semantics: always decided, mixed types are simply unequal *)
  | Has_bool of { subject : Ast.obj; attr : string; value : bool }
      (** a bare ([rSource.up]) or negated ([!rSource.reserved])
          attribute used as the conjunct itself; {b Unknown} for
          present non-boolean values *)

type t = {
  atoms : atom list;  (** in conjunct order *)
  complete : bool;
      (** true when the constraint is {e exactly} the conjunction of
          [atoms] — then a candidate passing every atom definitively
          needs no generic evaluation at all *)
}

val of_ast : Ast.t -> t
(** Extract from a (typically residual/specialized) expression.
    Conjuncts that are not recognizable atoms contribute nothing and
    clear [complete]; the result is always sound, sometimes empty. *)

val of_program : Compile.program -> t
(** Extract from the constant-folded source of a compiled program. *)

val atom_subject : atom -> Ast.obj * string

val satisfied : atom -> Netembed_attr.Value.t -> [ `Pass | `Fail | `Unknown ]
(** Classify a {e present} attribute value against an atom.  [`Fail]
    licenses dropping the candidate; [`Unknown] means generic
    evaluation must decide (and may raise).  An {e absent} attribute is
    always a safe drop — every atom rejects it. *)

val interval : t -> Ast.obj -> string -> float * float
(** The implied closed numeric interval for one attribute,
    [(neg_infinity, infinity)] when unconstrained — the derived
    "attribute intervals" view used by documentation and explain
    summaries.  Only {!Cmp} and numeric {!Eq} atoms narrow it. *)

val pp_atom : Format.formatter -> atom -> unit
(** Constraint-language syntax, e.g. [rSource.cpuMhz >= 900]. *)
