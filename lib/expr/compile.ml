module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Telemetry = Netembed_telemetry.Telemetry

type slot = { s_obj : Ast.obj; s_name : string }

type program = {
  code : int array;
  cnum : float array;
  cboxed : Value.t array;
  cmsg : string array;
  slots : slot array;
  max_stack : int;
  max_handlers : int;
  source : Ast.t;
}

module Op = struct
  let halt = 0
  let push_num = 1
  let push_true = 2
  let push_false = 3
  let push_boxed = 4
  let load = 5
  let not_ = 6
  let neg = 7
  let add = 8
  let sub = 9
  let mul = 10
  let div = 11
  let lt = 12
  let le = 13
  let gt = 14
  let ge = 15
  let eq = 16
  let neq = 17
  let as_num = 18
  let boolify = 19
  let jmp = 20
  let jfalse = 21
  let jtrue = 22
  let call = 23
  let fail = 24
  let push_ha = 25
  let push_hb = 26
  let pop_h = 27
end

(* Builtin function ids.  [isBoundTo] is not here: it compiles to a
   handler region, not a call. *)
let builtins = [| ("abs", 1); ("sqrt", 1); ("min", 2); ("max", 2); ("floor", 1); ("ceil", 1) |]

let function_name fid = fst builtins.(fid)

let builtin_id name =
  let rec go i =
    if i >= Array.length builtins then None
    else if String.equal (fst builtins.(i)) name then Some i
    else go (i + 1)
  in
  go 0

let compiles_counter =
  Telemetry.Registry.counter Telemetry.default_registry
    ~help:"Constraint programs compiled to bytecode" "netembed_expr_compiles_total"

let compiles_total () = Telemetry.Counter.value compiles_counter

(* ------------------------------------------------------------------ *)
(* Constant folding                                                    *)
(* ------------------------------------------------------------------ *)

let empty_env =
  Eval.env ~v_edge:Attrs.empty ~r_edge:Attrs.empty ~v_source:Attrs.empty
    ~v_target:Attrs.empty ~r_source:Attrs.empty ~r_target:Attrs.empty

let closed e = Ast.fold_attrs (fun _ _ _ -> false) e true

let rec fold_consts (e : Ast.t) : Ast.t =
  match e with
  | Ast.Bool _ | Ast.Num _ | Ast.Str _ | Ast.Lit _ | Ast.Attr _ -> e
  | Ast.Unop (op, a) -> try_fold (Ast.Unop (op, fold_consts a))
  | Ast.Binop (op, a, b) -> try_fold (Ast.Binop (op, fold_consts a, fold_consts b))
  | Ast.Call (f, args) -> try_fold (Ast.Call (f, List.map fold_consts args))

and try_fold e =
  (* Fold only subtrees that are closed and evaluate cleanly — the same
     rule as [Eval.specialize], so an erroring subtree keeps its error. *)
  if not (closed e) then e
  else match Eval.eval empty_env e with v -> Ast.Lit v | exception _ -> e

(* ------------------------------------------------------------------ *)
(* Static stack / handler requirements                                 *)
(* ------------------------------------------------------------------ *)

let rec stack_need (e : Ast.t) =
  match e with
  | Ast.Bool _ | Ast.Num _ | Ast.Str _ | Ast.Lit _ | Ast.Attr _ -> 1
  | Ast.Unop (_, a) -> stack_need a
  | Ast.Binop ((Ast.And | Ast.Or), a, b) -> max (stack_need a) (stack_need b)
  | Ast.Binop (_, a, b) -> max (stack_need a) (1 + stack_need b)
  | Ast.Call (_, args) ->
      let _, m =
        List.fold_left
          (fun (i, m) a -> (i + 1, max m (i + stack_need a)))
          (0, 1) args
      in
      m

let rec handler_need (e : Ast.t) =
  match e with
  | Ast.Bool _ | Ast.Num _ | Ast.Str _ | Ast.Lit _ | Ast.Attr _ -> 0
  | Ast.Unop (_, a) -> handler_need a
  | Ast.Binop (_, a, b) -> max (handler_need a) (handler_need b)
  | Ast.Call (f, args) ->
      let inner = List.fold_left (fun m a -> max m (handler_need a)) 0 args in
      if String.equal f "isBoundTo" && List.length args = 2 then 1 + inner else inner

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let compile (ast : Ast.t) : program =
  let source = fold_consts ast in
  (* code buffer *)
  let code = ref (Array.make 32 0) in
  let len = ref 0 in
  let emit w =
    if !len = Array.length !code then begin
      let bigger = Array.make (2 * !len) 0 in
      Array.blit !code 0 bigger 0 !len;
      code := bigger
    end;
    !code.(!len) <- w;
    incr len
  in
  let op o = emit o in
  let op1 o a =
    emit o;
    emit a
  in
  (* jump emission: emit a placeholder operand, patch once the target is
     known *)
  let jump_here o =
    emit o;
    emit (-1);
    !len - 1
  in
  let patch at = !code.(at) <- !len in
  (* constant pools *)
  let nums = Hashtbl.create 8 in
  let num_list = ref [] and num_count = ref 0 in
  let num_const f =
    let key = Int64.bits_of_float f in
    match Hashtbl.find_opt nums key with
    | Some k -> k
    | None ->
        let k = !num_count in
        Hashtbl.add nums key k;
        num_list := f :: !num_list;
        incr num_count;
        k
  in
  let boxed_list = ref [] and boxed_count = ref 0 in
  let boxed_const v =
    let rec find i = function
      | [] -> None
      | x :: _ when Value.equal x v -> Some (!boxed_count - 1 - i)
      | _ :: rest -> find (i + 1) rest
    in
    match find 0 !boxed_list with
    | Some k -> k
    | None ->
        let k = !boxed_count in
        boxed_list := v :: !boxed_list;
        incr boxed_count;
        k
  in
  let msg_list = ref [] and msg_count = ref 0 in
  let msg_const m =
    let rec find i = function
      | [] -> None
      | x :: _ when String.equal x m -> Some (!msg_count - 1 - i)
      | _ :: rest -> find (i + 1) rest
    in
    match find 0 !msg_list with
    | Some k -> k
    | None ->
        let k = !msg_count in
        msg_list := m :: !msg_list;
        incr msg_count;
        k
  in
  let slot_tbl = Hashtbl.create 8 in
  let slot_list = ref [] and slot_count = ref 0 in
  let slot obj name =
    match Hashtbl.find_opt slot_tbl (obj, name) with
    | Some k -> k
    | None ->
        let k = !slot_count in
        Hashtbl.add slot_tbl (obj, name) k;
        slot_list := { s_obj = obj; s_name = name } :: !slot_list;
        incr slot_count;
        k
  in
  let push_lit (v : Value.t) =
    match v with
    | Value.Int i -> op1 Op.push_num (num_const (float_of_int i))
    | Value.Float f -> op1 Op.push_num (num_const f)
    | Value.Bool true -> op Op.push_true
    | Value.Bool false -> op Op.push_false
    | Value.String _ | Value.Range _ -> op1 Op.push_boxed (boxed_const v)
  in
  let rec emit_expr (e : Ast.t) =
    match e with
    | Ast.Bool true -> op Op.push_true
    | Ast.Bool false -> op Op.push_false
    | Ast.Num f -> op1 Op.push_num (num_const f)
    | Ast.Str s -> op1 Op.push_boxed (boxed_const (Value.String s))
    | Ast.Lit v -> push_lit v
    | Ast.Attr (obj, name) -> op1 Op.load (slot obj name)
    | Ast.Unop (Ast.Not, a) ->
        emit_expr a;
        op Op.not_
    | Ast.Unop (Ast.Neg, a) ->
        emit_expr a;
        op Op.neg
    | Ast.Binop (Ast.And, a, b) ->
        emit_expr a;
        let jf = jump_here Op.jfalse in
        emit_expr b;
        op Op.boolify;
        let jend = jump_here Op.jmp in
        patch jf;
        op Op.push_false;
        patch jend
    | Ast.Binop (Ast.Or, a, b) ->
        emit_expr a;
        let jt = jump_here Op.jtrue in
        emit_expr b;
        op Op.boolify;
        let jend = jump_here Op.jmp in
        patch jt;
        op Op.push_true;
        patch jend
    | Ast.Binop (Ast.Eq, a, b) ->
        emit_expr a;
        emit_expr b;
        op Op.eq
    | Ast.Binop (Ast.Neq, a, b) ->
        emit_expr a;
        emit_expr b;
        op Op.neq
    | Ast.Binop (Ast.Lt, a, b) ->
        emit_expr a;
        emit_expr b;
        op Op.lt
    | Ast.Binop (Ast.Le, a, b) ->
        emit_expr a;
        emit_expr b;
        op Op.le
    | Ast.Binop (Ast.Gt, a, b) ->
        emit_expr a;
        emit_expr b;
        op Op.gt
    | Ast.Binop (Ast.Ge, a, b) ->
        emit_expr a;
        emit_expr b;
        op Op.ge
    | Ast.Binop (Ast.Add, a, b) -> arith Op.add a b
    | Ast.Binop (Ast.Sub, a, b) -> arith Op.sub a b
    | Ast.Binop (Ast.Mul, a, b) -> arith Op.mul a b
    | Ast.Binop (Ast.Div, a, b) -> arith Op.div a b
    | Ast.Call ("isBoundTo", [ a; b ]) ->
        (* PUSH_HA Ltrue  <a>  POP_H  PUSH_HB Lfalse  <b>  POP_H  EQ
           JMP Lend  Ltrue: PUSH_TRUE  JMP Lend  Lfalse: PUSH_FALSE
           Lend: *)
        let ha = jump_here Op.push_ha in
        emit_expr a;
        op Op.pop_h;
        let hb = jump_here Op.push_hb in
        emit_expr b;
        op Op.pop_h;
        op Op.eq;
        let jend1 = jump_here Op.jmp in
        patch ha;
        op Op.push_true;
        let jend2 = jump_here Op.jmp in
        patch hb;
        op Op.push_false;
        patch jend1;
        patch jend2
    | Ast.Call ("isBoundTo", args) ->
        (* Arity errors raise before evaluating any argument. *)
        op1 Op.fail
          (msg_const
             (Printf.sprintf "isBoundTo expects 2 arguments, got %d" (List.length args)))
    | Ast.Call (f, args) -> (
        (* Arguments evaluate left to right before name/arity checks. *)
        List.iter emit_expr args;
        let n = List.length args in
        match builtin_id f with
        | Some fid when snd builtins.(fid) = n -> op1 Op.call fid
        | Some fid ->
            let want = snd builtins.(fid) in
            op1 Op.fail
              (msg_const
                 (Printf.sprintf "%s expects %d argument%s, got %d" f want
                    (if want = 1 then "" else "s")
                    n))
        | None -> op1 Op.fail (msg_const (Printf.sprintf "unknown function %S" f)))
  and arith o a b =
    emit_expr a;
    op Op.as_num;
    emit_expr b;
    op Op.as_num;
    op o
  in
  emit_expr source;
  op Op.halt;
  Telemetry.Counter.incr compiles_counter;
  {
    code = Array.sub !code 0 !len;
    cnum = Array.of_list (List.rev !num_list);
    cboxed = Array.of_list (List.rev !boxed_list);
    cmsg = Array.of_list (List.rev !msg_list);
    slots = Array.of_list (List.rev !slot_list);
    max_stack = stack_need source;
    max_handlers = handler_need source;
    source;
  }

(* ------------------------------------------------------------------ *)
(* Disassembly                                                         *)
(* ------------------------------------------------------------------ *)

let disassemble (p : program) : string =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line ";; source: %s" (Ast.to_string p.source);
  line ";; stack: %d cells, handlers: %d" p.max_stack p.max_handlers;
  Array.iteri
    (fun i { s_obj; s_name } -> line ";; slot s%d = %s.%s" i (Ast.obj_name s_obj) s_name)
    p.slots;
  Array.iteri (fun i f -> line ";; const n%d = %g" i f) p.cnum;
  Array.iteri (fun i v -> line ";; const b%d = %s" i (Value.to_string v)) p.cboxed;
  Array.iteri (fun i m -> line ";; message m%d = %S" i m) p.cmsg;
  let pc = ref 0 in
  let operand () =
    incr pc;
    p.code.(!pc)
  in
  while !pc < Array.length p.code do
    let at = !pc in
    let o = p.code.(at) in
    let mnemonic, arg =
      if o = Op.halt then ("HALT", "")
      else if o = Op.push_num then ("PUSH_NUM", Printf.sprintf "n%d" (operand ()))
      else if o = Op.push_true then ("PUSH_TRUE", "")
      else if o = Op.push_false then ("PUSH_FALSE", "")
      else if o = Op.push_boxed then ("PUSH_BOXED", Printf.sprintf "b%d" (operand ()))
      else if o = Op.load then ("LOAD", Printf.sprintf "s%d" (operand ()))
      else if o = Op.not_ then ("NOT", "")
      else if o = Op.neg then ("NEG", "")
      else if o = Op.add then ("ADD", "")
      else if o = Op.sub then ("SUB", "")
      else if o = Op.mul then ("MUL", "")
      else if o = Op.div then ("DIV", "")
      else if o = Op.lt then ("LT", "")
      else if o = Op.le then ("LE", "")
      else if o = Op.gt then ("GT", "")
      else if o = Op.ge then ("GE", "")
      else if o = Op.eq then ("EQ", "")
      else if o = Op.neq then ("NEQ", "")
      else if o = Op.as_num then ("AS_NUM", "")
      else if o = Op.boolify then ("BOOLIFY", "")
      else if o = Op.jmp then ("JMP", Printf.sprintf "@%d" (operand ()))
      else if o = Op.jfalse then ("JFALSE", Printf.sprintf "@%d" (operand ()))
      else if o = Op.jtrue then ("JTRUE", Printf.sprintf "@%d" (operand ()))
      else if o = Op.call then ("CALL", function_name (operand ()))
      else if o = Op.fail then ("FAIL", Printf.sprintf "m%d" (operand ()))
      else if o = Op.push_ha then ("PUSH_HA", Printf.sprintf "@%d" (operand ()))
      else if o = Op.push_hb then ("PUSH_HB", Printf.sprintf "@%d" (operand ()))
      else if o = Op.pop_h then ("POP_H", "")
      else (Printf.sprintf "?%d" o, "")
    in
    let annotate =
      if String.length arg > 0 && arg.[0] = 's' then
        match int_of_string_opt (String.sub arg 1 (String.length arg - 1)) with
        | Some s when s < Array.length p.slots ->
            let { s_obj; s_name } = p.slots.(s) in
            Printf.sprintf "  ; %s.%s" (Ast.obj_name s_obj) s_name
        | _ -> ""
      else if String.length arg > 0 && arg.[0] = 'n' then
        match int_of_string_opt (String.sub arg 1 (String.length arg - 1)) with
        | Some k when k < Array.length p.cnum -> Printf.sprintf "  ; %g" p.cnum.(k)
        | _ -> ""
      else ""
    in
    if String.equal arg "" then line "%4d: %s" at mnemonic
    else line "%4d: %-10s %s%s" at mnemonic arg annotate;
    incr pc
  done;
  Buffer.contents b
