(** Bytecode compiler for the constraint language.

    The closure-tree interpreter ({!Eval}) allocates a {!Value.t} box
    per AST node on NETEMBED's hottest path — every filter-matrix cell,
    DFS edge check and LNS lazy check.  [compile] lowers an {!Ast.t}
    once into a compact flat instruction array that {!Vm} then executes
    on a preallocated stack with no per-evaluation allocation:

    - {b constant folding}: closed subtrees that evaluate cleanly are
      folded to literals (the same rule {!Eval.specialize} applies), so
      residual programs carry pre-computed query-side numbers;
    - {b load-slot pooling}: every distinct [object.attribute] pair is
      pooled into one entry of the slot table; repeated references share
      the slot, and the VM memoizes each slot's value per evaluation, so
      a constraint mentioning [rEdge.avgDelay] twice performs one map
      lookup (the stack-machine form of common-subexpression
      elimination);
    - {b unboxed cells}: numbers and booleans travel through a float
      array; only strings and ranges stay boxed (and those boxes are
      shared constants or attribute-table values, never fresh).

    Instructions are emitted in the interpreter's defined left-to-right
    evaluation order (see {!Eval}), so the VM raises the same class of
    error on the same input — the seed interpreter stays the
    differential oracle.  One visible widening: integer values travel as
    IEEE doubles, so [isBoundTo] equality on integer attributes beyond
    2{^53} loses exactness (ordinary [==] already compares through
    floats in the interpreter).

    Every successful [compile] increments the process-wide
    [netembed_expr_compiles_total] counter, which is how the service's
    warm-cache path proves it skipped recompilation. *)

type slot = { s_obj : Ast.obj; s_name : string }
(** One pooled attribute load: which of the six objects, which
    attribute. *)

(** A compiled program.  The representation is exposed read-only for
    {!Vm} (same library) and the disassembler; construct only via
    {!compile}. *)
type program = private {
  code : int array;  (** flat opcode/operand stream, {!Op} encoding *)
  cnum : float array;  (** numeric constant pool *)
  cboxed : Netembed_attr.Value.t array;  (** string/range constant pool *)
  cmsg : string array;  (** error-message pool for [FAIL] *)
  slots : slot array;  (** pooled attribute loads *)
  max_stack : int;  (** stack cells any evaluation can need *)
  max_handlers : int;  (** deepest [isBoundTo] handler nesting *)
  source : Ast.t;  (** the constant-folded AST the code was emitted from *)
}

(** Opcode encoding: [code.(pc)] is one of these numbers, followed
    inline by its operands.  Exposed so {!Vm} and the disassembler agree
    by construction. *)
module Op : sig
  val halt : int  (** stop; the result is the single remaining cell *)

  val push_num : int  (** [k] — push [cnum.(k)] *)

  val push_true : int
  val push_false : int

  val push_boxed : int  (** [k] — push [cboxed.(k)] *)

  val load : int  (** [s] — push the value of slot [s], memoized *)

  val not_ : int
  val neg : int
  val add : int
  val sub : int
  val mul : int

  val div : int  (** fails on a zero divisor, after both operands *)

  val lt : int
  val le : int
  val gt : int
  val ge : int  (** [compare_values] semantics (numeric or string/string) *)

  val eq : int
  val neq : int  (** [eval_eq] semantics — never a type error *)

  val as_num : int  (** coerce the top cell to a number or fail *)

  val boolify : int  (** coerce the top cell to a boolean or fail *)

  val jmp : int  (** [t] — unconditional jump *)

  val jfalse : int  (** [t] — pop a boolean, jump when false *)

  val jtrue : int  (** [t] — pop a boolean, jump when true *)

  val call : int  (** [fid] — apply builtin {!function_name} [fid] *)

  val fail : int  (** [m] — raise [Eval_error cmsg.(m)] *)

  val push_ha : int
  (** [t] — enter an [isBoundTo] first-argument region: a missing
      {e query-side} attribute aborts the region and jumps to [t] (the
      "unconstrained → true" exit); hosting-side misses propagate
      outward. *)

  val push_hb : int
  (** [t] — enter an [isBoundTo] second-argument region: {e any}
      missing attribute jumps to [t] (the "unbindable → false" exit). *)

  val pop_h : int  (** leave the innermost handler region *)
end

val function_name : int -> string
(** Printable name of a builtin function id ([abs], [sqrt], [min],
    [max], [floor], [ceil]). *)

val fold_consts : Ast.t -> Ast.t
(** Bottom-up constant folding: every closed subtree whose evaluation
    neither raises nor references an attribute becomes a literal.
    Subtrees that would raise (division by zero, type errors) are left
    intact so the error still surfaces at evaluation time. *)

val compile : Ast.t -> program
(** Lower to bytecode (folding constants first).  Never raises: even a
    constraint that can only fail compiles — to instructions that raise
    the interpreter's error when executed. *)

val disassemble : program -> string
(** Deterministic multi-line listing: a header with the folded source,
    the slot and constant tables, then one line per instruction.  The
    golden tests pin this output; the CLI exposes it as
    [explain --dump-bytecode]. *)

val compiles_total : unit -> int
(** Programs compiled by this process so far (the value of
    [netembed_expr_compiles_total]). *)
