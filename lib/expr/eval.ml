module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value

type env = {
  v_edge : Attrs.t;
  r_edge : Attrs.t;
  v_source : Attrs.t;
  v_target : Attrs.t;
  r_source : Attrs.t;
  r_target : Attrs.t;
}

let env ~v_edge ~r_edge ~v_source ~v_target ~r_source ~r_target =
  { v_edge; r_edge; v_source; v_target; r_source; r_target }

exception Eval_error of string
exception Missing_attr of Ast.obj * string

let fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

let table env = function
  | Ast.V_edge -> env.v_edge
  | Ast.R_edge -> env.r_edge
  | Ast.V_source -> env.v_source
  | Ast.V_target -> env.v_target
  | Ast.R_source -> env.r_source
  | Ast.R_target -> env.r_target

let lookup env obj name =
  match Attrs.find name (table env obj) with
  | Some v -> v
  | None -> raise (Missing_attr (obj, name))

let as_number v =
  try Value.to_float v
  with Value.Type_error m -> fail "numeric operation: %s" m

let as_boolean v =
  try Value.to_bool v
  with Value.Type_error m -> fail "boolean operation: %s" m

let compare_values a b =
  match (a, b) with
  | Value.String x, Value.String y -> String.compare x y
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
      Float.compare (as_number a) (as_number b)
  | _ ->
      fail "cannot compare %s with %s" (Value.type_name a) (Value.type_name b)

let rec eval env (e : Ast.t) : Value.t =
  match e with
  | Ast.Bool b -> Value.Bool b
  | Ast.Num f -> Value.Float f
  | Ast.Str s -> Value.String s
  | Ast.Lit v -> v
  | Ast.Attr (obj, name) -> lookup env obj name
  | Ast.Unop (Ast.Not, e) -> Value.Bool (not (as_boolean (eval env e)))
  | Ast.Unop (Ast.Neg, e) -> Value.Float (-.as_number (eval env e))
  | Ast.Binop (Ast.And, a, b) ->
      (* Short-circuit, Java-style. *)
      if as_boolean (eval env a) then Value.Bool (as_boolean (eval env b))
      else Value.Bool false
  | Ast.Binop (Ast.Or, a, b) ->
      if as_boolean (eval env a) then Value.Bool true
      else Value.Bool (as_boolean (eval env b))
  | Ast.Binop (Ast.Eq, a, b) -> Value.Bool (eval_eq env a b)
  | Ast.Binop (Ast.Neq, a, b) -> Value.Bool (not (eval_eq env a b))
  | Ast.Binop (Ast.Lt, a, b) ->
      let va = eval env a in
      let vb = eval env b in
      Value.Bool (compare_values va vb < 0)
  | Ast.Binop (Ast.Le, a, b) ->
      let va = eval env a in
      let vb = eval env b in
      Value.Bool (compare_values va vb <= 0)
  | Ast.Binop (Ast.Gt, a, b) ->
      let va = eval env a in
      let vb = eval env b in
      Value.Bool (compare_values va vb > 0)
  | Ast.Binop (Ast.Ge, a, b) ->
      let va = eval env a in
      let vb = eval env b in
      Value.Bool (compare_values va vb >= 0)
  | Ast.Binop (Ast.Add, a, b) ->
      let x = as_number (eval env a) in
      let y = as_number (eval env b) in
      Value.Float (x +. y)
  | Ast.Binop (Ast.Sub, a, b) ->
      let x = as_number (eval env a) in
      let y = as_number (eval env b) in
      Value.Float (x -. y)
  | Ast.Binop (Ast.Mul, a, b) ->
      let x = as_number (eval env a) in
      let y = as_number (eval env b) in
      Value.Float (x *. y)
  | Ast.Binop (Ast.Div, a, b) ->
      let x = as_number (eval env a) in
      let y = as_number (eval env b) in
      if y = 0.0 then fail "division by zero";
      Value.Float (x /. y)
  | Ast.Call ("isBoundTo", [ a; b ]) -> Value.Bool (eval_is_bound_to env a b)
  | Ast.Call ("isBoundTo", args) ->
      fail "isBoundTo expects 2 arguments, got %d" (List.length args)
  | Ast.Call (f, args) ->
      (* Arguments evaluate left to right, before arity or name checks
         (matching the bytecode VM, which compiles them in that order). *)
      let vals = List.rev (List.fold_left (fun acc a -> eval env a :: acc) [] args) in
      eval_call env f vals

and eval_eq env a b =
  let va = eval env a in
  let vb = eval env b in
  match (va, vb) with
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
      Float.equal (as_number va) (as_number vb)
  | _ -> Value.equal va vb

(* isBoundTo(query-side, host-side): if the query side names an attribute
   the query network does not carry, the node is unconstrained (paper:
   only nodes *with* the attribute are forced to match). *)
and eval_is_bound_to env a b =
  match eval env a with
  | exception Missing_attr ((Ast.V_edge | Ast.V_source | Ast.V_target), _) -> true
  | va -> (
      match eval env b with
      | exception Missing_attr _ -> false
      | vb -> Value.equal va vb)

and eval_call _env f args =
  let arity n =
    if List.length args <> n then
      fail "%s expects %d argument%s, got %d" f n (if n = 1 then "" else "s")
        (List.length args)
  in
  let num i = as_number (List.nth args i) in
  match f with
  | "abs" ->
      arity 1;
      Value.Float (Float.abs (num 0))
  | "sqrt" ->
      arity 1;
      let x = num 0 in
      if x < 0.0 then fail "sqrt of negative number";
      Value.Float (sqrt x)
  | "min" ->
      arity 2;
      let x = num 0 in
      let y = num 1 in
      Value.Float (Float.min x y)
  | "max" ->
      arity 2;
      let x = num 0 in
      let y = num 1 in
      Value.Float (Float.max x y)
  | "floor" ->
      arity 1;
      Value.Float (Float.floor (num 0))
  | "ceil" ->
      arity 1;
      Value.Float (Float.ceil (num 0))
  | other -> fail "unknown function %S" other

let accepts env e =
  match eval env e with
  | Value.Bool b -> b
  | v -> fail "constraint evaluated to %s, expected bool" (Value.type_name v)
  | exception Missing_attr _ -> false

let swap_r_orientation env = { env with r_source = env.r_target; r_target = env.r_source }

(* ------------------------------------------------------------------ *)
(* Staged evaluation                                                   *)
(* ------------------------------------------------------------------ *)

(* Filter-matrix construction evaluates the same constraint against the
   same query edge for *every* hosting edge (|EQ| * |ER| pairs).
   [specialize] substitutes the query-side attribute lookups once and
   folds any subtree that became closed, so the per-host-edge residual
   only touches r-side attributes.

   Soundness notes:
   - only *present* v-attributes are substituted; a missing one stays an
     [Attr] node so [accepts] still sees [Missing_attr] at runtime
     (short-circuiting may legitimately avoid it);
   - [isBoundTo] whose first argument is a missing v-attribute folds to
     [true], matching [eval_is_bound_to];
   - subtrees whose evaluation raises (division by zero, type errors)
     are left as residuals so the error surfaces exactly as in the
     unstaged interpreter. *)
let specialize ~v_edge ~v_source ~v_target e =
  let venv =
    {
      v_edge;
      v_source;
      v_target;
      r_edge = Attrs.empty;
      r_source = Attrs.empty;
      r_target = Attrs.empty;
    }
  in
  let rec subst (e : Ast.t) : Ast.t =
    match e with
    | Ast.Bool _ | Ast.Num _ | Ast.Str _ | Ast.Lit _ -> e
    | Ast.Attr ((Ast.V_edge | Ast.V_source | Ast.V_target) as obj, name) -> (
        match Attrs.find name (table venv obj) with
        | Some v -> Ast.Lit v
        | None -> e)
    | Ast.Attr ((Ast.R_edge | Ast.R_source | Ast.R_target), _) -> e
    | Ast.Unop (op, a) -> fold (Ast.Unop (op, subst a))
    | Ast.Binop (op, a, b) -> fold (Ast.Binop (op, subst a, subst b))
    | Ast.Call ("isBoundTo", [ a; b ]) -> (
        let a' = subst a in
        match a' with
        | Ast.Attr ((Ast.V_edge | Ast.V_source | Ast.V_target), _) ->
            (* v-side attribute absent: unconstrained. *)
            Ast.Bool true
        | a' -> Ast.Call ("isBoundTo", [ a'; subst b ]))
    | Ast.Call (f, args) -> fold (Ast.Call (f, List.map subst args))
  and fold e =
    (* Fold only subtrees that are closed and evaluate cleanly. *)
    let closed = Ast.fold_attrs (fun _ _ _ -> false) e true in
    if not closed then e
    else match eval venv e with v -> Ast.Lit v | exception _ -> e
  in
  subst e
