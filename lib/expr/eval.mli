(** Evaluator for constraint expressions.

    "The constraint expression is evaluated when comparing every edge of
    the virtual network with every edge of the hosting network.  If such
    an evaluation returns a true value, the mapping between these edges
    is accepted." (paper, section VI-B)

    An environment supplies the six objects of Table I as attribute
    tables.  Evaluation is dynamically typed with Java-like semantics:
    numbers mix freely, strings compare with [==]/[!=] and ordering,
    booleans only combine logically.

    Missing attributes: a reference to an attribute the network does not
    carry makes the whole constraint evaluate to [false] under
    {!accepts} (the edge pair simply cannot be certified), except inside
    [isBoundTo] whose defined semantics is "unconstrained when the query
    does not carry the attribute".  {!eval} raises instead, for callers
    that want strictness.

    Evaluation order is defined, not incidental: operands evaluate left
    to right; arithmetic operands convert to numbers as soon as each is
    evaluated; comparison operands are both evaluated before the
    (type-checking) comparison; division checks for a zero divisor after
    evaluating both sides; call arguments evaluate left to right before
    the arity or function-name check.  The bytecode compiler ({!Compile}
    / {!Vm}) emits instructions in exactly this order, so interpreter
    and VM raise the same class of error ([Eval_error] vs
    [Missing_attr]) on the same input — the property the differential
    test suite pins. *)

type env = {
  v_edge : Netembed_attr.Attrs.t;
  r_edge : Netembed_attr.Attrs.t;
  v_source : Netembed_attr.Attrs.t;
  v_target : Netembed_attr.Attrs.t;
  r_source : Netembed_attr.Attrs.t;
  r_target : Netembed_attr.Attrs.t;
}

val env :
  v_edge:Netembed_attr.Attrs.t -> r_edge:Netembed_attr.Attrs.t ->
  v_source:Netembed_attr.Attrs.t -> v_target:Netembed_attr.Attrs.t ->
  r_source:Netembed_attr.Attrs.t -> r_target:Netembed_attr.Attrs.t -> env

exception Eval_error of string
exception Missing_attr of Ast.obj * string

val eval : env -> Ast.t -> Netembed_attr.Value.t
(** @raise Eval_error on type errors, division by zero, unknown
    functions or bad arity.
    @raise Missing_attr on a reference to an absent attribute (outside
    [isBoundTo]). *)

val accepts : env -> Ast.t -> bool
(** [accepts env e] is the edge-pair acceptance test: true iff [e]
    evaluates to [Bool true].  Missing attributes yield [false]; type
    errors still raise {!Eval_error} (they indicate a malformed query,
    not a non-matching edge). *)

val swap_r_orientation : env -> env
(** Exchange [r_source]/[r_target] — used to test the reverse
    orientation of an undirected hosting edge. *)

val specialize :
  v_edge:Netembed_attr.Attrs.t ->
  v_source:Netembed_attr.Attrs.t ->
  v_target:Netembed_attr.Attrs.t ->
  Ast.t -> Ast.t
(** Partial evaluation for filter construction: substitute the (fixed)
    query-side attributes into the expression and fold every subtree
    that became closed.  [accepts env (specialize ... e)] agrees with
    [accepts env e] whenever the v-side tables of [env] match the ones
    given here. *)
