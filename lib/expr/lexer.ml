type token =
  | IDENT of string
  | NUMBER of float
  | STRING of string
  | TRUE | FALSE
  | AND | OR | NOT
  | EQ | NEQ | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH
  | LPAREN | RPAREN | COMMA | DOT
  | EOF

type position = { offset : int; line : int; column : int }

(* Offsets are what the scanner naturally tracks; line/column are what a
   human (and the service's error payload) wants.  Recomputing from the
   source on the error path keeps the happy path allocation-free. *)
let position src offset =
  let offset = max 0 (min offset (String.length src)) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to offset - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  { offset; line = !line; column = offset - !bol + 1 }

let pp_position ppf p = Format.fprintf ppf "line %d, column %d" p.line p.column

exception Lex_error of { pos : position; message : string }

let error src pos message = raise (Lex_error { pos = position src pos; message })

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit tok pos = tokens := (tok, pos) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c then begin
      (* number: digits [. digits] [e [+-] digits] *)
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1] then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done
      end;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        let save = !i in
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        if !i < n && is_digit src.[!i] then
          while !i < n && is_digit src.[!i] do
            incr i
          done
        else i := save (* not an exponent after all *)
      end;
      let text = String.sub src start (!i - start) in
      match float_of_string_opt text with
      | Some f -> emit (NUMBER f) start
      | None -> error src start (Printf.sprintf "bad number %S" text)
    end
    else if is_ident_start c then begin
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      let tok =
        match text with "true" -> TRUE | "false" -> FALSE | _ -> IDENT text
      in
      emit tok start
    end
    else if c = '\'' || c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = c then begin
          closed := true;
          incr i
        end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if not !closed then error src start "unterminated string literal";
      emit (STRING (Buffer.contents buf)) start
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "&&" -> emit AND start; i := !i + 2
      | "||" -> emit OR start; i := !i + 2
      | "==" -> emit EQ start; i := !i + 2
      | "!=" -> emit NEQ start; i := !i + 2
      | "<=" -> emit LE start; i := !i + 2
      | ">=" -> emit GE start; i := !i + 2
      | _ -> (
          incr i;
          match c with
          | '!' -> emit NOT start
          | '<' -> emit LT start
          | '>' -> emit GT start
          | '+' -> emit PLUS start
          | '-' -> emit MINUS start
          | '*' -> emit STAR start
          | '/' -> emit SLASH start
          | '(' -> emit LPAREN start
          | ')' -> emit RPAREN start
          | ',' -> emit COMMA start
          | '.' -> emit DOT start
          | c -> error src start (Printf.sprintf "unexpected character %C" c))
    end
  done;
  emit EOF n;
  List.rev !tokens

let token_name = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | NUMBER f -> Printf.sprintf "number %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | TRUE -> "true"
  | FALSE -> "false"
  | AND -> "&&"
  | OR -> "||"
  | NOT -> "!"
  | EQ -> "=="
  | NEQ -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | DOT -> "."
  | EOF -> "end of input"
