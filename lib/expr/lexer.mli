(** Tokenizer for the constraint expression language.

    The paper implements this with JFlex; we hand-roll the equivalent
    scanner.  Tokens carry their source offset for error reporting. *)

type token =
  | IDENT of string
  | NUMBER of float
  | STRING of string   (** single- or double-quoted literal *)
  | TRUE | FALSE
  | AND | OR | NOT
  | EQ | NEQ | LT | LE | GT | GE
  | PLUS | MINUS | STAR | SLASH
  | LPAREN | RPAREN | COMMA | DOT
  | EOF

type position = { offset : int; line : int; column : int }
(** A resolved source location: byte [offset] into the constraint text,
    with 1-based [line] and [column] derived from it. *)

val position : string -> int -> position
(** [position src offset] resolves a byte offset against the source it
    was produced from (offsets out of range are clamped). *)

val pp_position : Format.formatter -> position -> unit
(** ["line L, column C"]. *)

exception Lex_error of { pos : position; message : string }

val tokenize : string -> (token * int) list
(** All tokens with their start offsets, ending with [EOF].
    @raise Lex_error on an unrecognized character or unterminated
    string. *)

val token_name : token -> string
