exception
  Parse_error of { pos : Lexer.position; token : string; message : string }

type stream = { src : string; mutable toks : (Lexer.token * int) list }

let error s pos ~token message =
  raise (Parse_error { pos = Lexer.position s.src pos; token; message })

let peek s = match s.toks with [] -> (Lexer.EOF, String.length s.src) | t :: _ -> t

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let expect s tok =
  let got, pos = peek s in
  if got = tok then advance s
  else
    error s pos ~token:(Lexer.token_name got)
      (Printf.sprintf "expected %s, found %s" (Lexer.token_name tok)
         (Lexer.token_name got))

(* Grammar (Java precedence):
     or    := and ( '||' and )*
     and   := eq  ( '&&' eq )*
     eq    := rel ( ('=='|'!=') rel )*
     rel   := add ( ('<'|'<='|'>'|'>=') add )*
     add   := mul ( ('+'|'-') mul )*
     mul   := unary ( ('*'|'/') unary )*
     unary := ('!'|'-') unary | primary
     primary := literal | ident [ '.' ident | '(' args ')' ] | '(' or ')' *)

let binop_of_token = function
  | Lexer.OR -> Some Ast.Or
  | Lexer.AND -> Some Ast.And
  | Lexer.EQ -> Some Ast.Eq
  | Lexer.NEQ -> Some Ast.Neq
  | Lexer.LT -> Some Ast.Lt
  | Lexer.LE -> Some Ast.Le
  | Lexer.GT -> Some Ast.Gt
  | Lexer.GE -> Some Ast.Ge
  | Lexer.PLUS -> Some Ast.Add
  | Lexer.MINUS -> Some Ast.Sub
  | Lexer.STAR -> Some Ast.Mul
  | Lexer.SLASH -> Some Ast.Div
  | _ -> None

let rec parse_level s min_prec =
  let lhs = parse_unary s in
  let rec loop lhs =
    let tok, _ = peek s in
    match binop_of_token tok with
    | Some op when Ast.precedence op >= min_prec ->
        advance s;
        let rhs = parse_level s (Ast.precedence op + 1) in
        loop (Ast.Binop (op, lhs, rhs))
    | Some _ | None -> lhs
  in
  loop lhs

and parse_unary s =
  match peek s with
  | Lexer.NOT, _ ->
      advance s;
      Ast.Unop (Ast.Not, parse_unary s)
  | Lexer.MINUS, _ ->
      advance s;
      Ast.Unop (Ast.Neg, parse_unary s)
  | _ -> parse_primary s

and parse_primary s =
  let tok, pos = peek s in
  match tok with
  | Lexer.TRUE ->
      advance s;
      Ast.Bool true
  | Lexer.FALSE ->
      advance s;
      Ast.Bool false
  | Lexer.NUMBER f ->
      advance s;
      Ast.Num f
  | Lexer.STRING str ->
      advance s;
      Ast.Str str
  | Lexer.LPAREN ->
      advance s;
      let e = parse_level s 1 in
      expect s Lexer.RPAREN;
      e
  | Lexer.IDENT name -> (
      advance s;
      match peek s with
      | Lexer.DOT, _ -> (
          advance s;
          match peek s with
          | Lexer.IDENT attr, _ -> (
              advance s;
              match Ast.obj_of_name name with
              | Some obj -> Ast.Attr (obj, attr)
              | None ->
                  error s pos
                    ~token:(Lexer.token_name (Lexer.IDENT name))
                    (Printf.sprintf
                       "unknown object %S (expected vEdge, rEdge, vSource, vTarget, rSource or rTarget)"
                       name))
          | bad, bad_pos ->
              error s bad_pos
                ~token:(Lexer.token_name bad)
                "expected an attribute name after '.'")
      | Lexer.LPAREN, _ ->
          advance s;
          let args =
            if fst (peek s) = Lexer.RPAREN then []
            else begin
              let rec more acc =
                let arg = parse_level s 1 in
                match peek s with
                | Lexer.COMMA, _ ->
                    advance s;
                    more (arg :: acc)
                | _ -> List.rev (arg :: acc)
              in
              more []
            end
          in
          expect s Lexer.RPAREN;
          Ast.Call (name, args)
      | _ ->
          error s pos
            ~token:(Lexer.token_name (Lexer.IDENT name))
            (Printf.sprintf "bare identifier %S (attribute access or call expected)" name))
  | tok ->
      error s pos ~token:(Lexer.token_name tok)
        (Printf.sprintf "unexpected %s" (Lexer.token_name tok))

let parse src =
  let s = { src; toks = Lexer.tokenize src } in
  let e = parse_level s 1 in
  (match peek s with
  | Lexer.EOF, _ -> ()
  | tok, pos ->
      error s pos ~token:(Lexer.token_name tok)
        (Printf.sprintf "trailing %s" (Lexer.token_name tok)));
  e

let parse_result src =
  match parse src with
  | e -> Ok e
  | exception Parse_error { pos; token; message } ->
      Error
        (Printf.sprintf "parse error at line %d, column %d (at %s): %s" pos.Lexer.line
           pos.Lexer.column token message)
  | exception Lexer.Lex_error { pos; message } ->
      Error
        (Printf.sprintf "lexical error at line %d, column %d: %s" pos.Lexer.line
           pos.Lexer.column message)
