(** Recursive-descent parser for the constraint language (the paper uses
    CUP; the grammar is the Java boolean-expression subset with standard
    precedence). *)

exception
  Parse_error of { pos : Lexer.position; token : string; message : string }
(** [pos] is the resolved line/column/offset of the offending token and
    [token] its printable name ({!Lexer.token_name}); [message] says
    what the parser wanted instead. *)

val parse : string -> Ast.t
(** @raise Parse_error on syntax errors (with source position and the
    offending token).
    @raise Lexer.Lex_error on lexical errors. *)

val parse_result : string -> (Ast.t, string) result
(** Like {!parse} but folding both error kinds into a one-line message
    of the shape ["parse error at line L, column C (at TOKEN): ..."]. *)
