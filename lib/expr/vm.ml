module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value

(* Stack cells are three parallel arrays: [tag] says where the value
   lives.  Booleans are 0.0 / 1.0 in the float array, so the whole
   numeric/boolean traffic of an evaluation never touches the heap. *)
let t_num = 0
let t_bool = 1
let t_boxed = 2

(* Slot-memo tags reuse the cell tags plus "known missing". *)
let t_missing = 3

let dummy = Value.Bool false

(* The machine registers (sp/hp/pc) are mutable scratch fields, not
   local refs: a ref captured by a helper would be heap-allocated per
   evaluation, and the whole point of this module is that steady-state
   evaluation allocates nothing. *)
type scratch = {
  mutable tag : int array;
  mutable num : float array;
  mutable boxv : Value.t array;
  mutable h_kind : int array;  (* 0 = arg-a (v-side only), 1 = arg-b (all) *)
  mutable h_target : int array;
  mutable h_sp : int array;
  mutable slot_stamp : int array;
  mutable slot_tag : int array;
  mutable slot_num : float array;
  mutable slot_box : Value.t array;
  mutable stamp : int;
  mutable sp : int;
  mutable hp : int;
  mutable pc : int;
  mutable v_edge : Attrs.t;
  mutable r_edge : Attrs.t;
  mutable v_source : Attrs.t;
  mutable v_target : Attrs.t;
  mutable r_source : Attrs.t;
  mutable r_target : Attrs.t;
}

let scratch () =
  {
    tag = Array.make 8 0;
    num = Array.make 8 0.0;
    boxv = Array.make 8 dummy;
    h_kind = Array.make 4 0;
    h_target = Array.make 4 0;
    h_sp = Array.make 4 0;
    slot_stamp = Array.make 8 0;
    slot_tag = Array.make 8 0;
    slot_num = Array.make 8 0.0;
    slot_box = Array.make 8 dummy;
    stamp = 0;
    sp = 0;
    hp = 0;
    pc = 0;
    v_edge = Attrs.empty;
    r_edge = Attrs.empty;
    v_source = Attrs.empty;
    v_target = Attrs.empty;
    r_source = Attrs.empty;
    r_target = Attrs.empty;
  }

let set_env s ~v_edge ~r_edge ~v_source ~v_target ~r_source ~r_target =
  s.v_edge <- v_edge;
  s.r_edge <- r_edge;
  s.v_source <- v_source;
  s.v_target <- v_target;
  s.r_source <- r_source;
  s.r_target <- r_target

let set_r s ~r_edge ~r_source ~r_target =
  s.r_edge <- r_edge;
  s.r_source <- r_source;
  s.r_target <- r_target

let set_env_of s (e : Eval.env) =
  set_env s ~v_edge:e.Eval.v_edge ~r_edge:e.Eval.r_edge ~v_source:e.Eval.v_source
    ~v_target:e.Eval.v_target ~r_source:e.Eval.r_source ~r_target:e.Eval.r_target

let table s = function
  | Ast.V_edge -> s.v_edge
  | Ast.R_edge -> s.r_edge
  | Ast.V_source -> s.v_source
  | Ast.V_target -> s.v_target
  | Ast.R_source -> s.r_source
  | Ast.R_target -> s.r_target

let is_v_side = function
  | Ast.V_edge | Ast.V_source | Ast.V_target -> true
  | Ast.R_edge | Ast.R_source | Ast.R_target -> false

let ensure_capacity s (p : Compile.program) =
  if Array.length s.tag < p.Compile.max_stack then begin
    let n = max p.Compile.max_stack (2 * Array.length s.tag) in
    s.tag <- Array.make n 0;
    s.num <- Array.make n 0.0;
    s.boxv <- Array.make n dummy
  end;
  if Array.length s.h_kind < p.Compile.max_handlers then begin
    let n = max p.Compile.max_handlers (2 * Array.length s.h_kind) in
    s.h_kind <- Array.make n 0;
    s.h_target <- Array.make n 0;
    s.h_sp <- Array.make n 0
  end;
  let nslots = Array.length p.Compile.slots in
  if Array.length s.slot_stamp < nslots then begin
    let n = max nslots (2 * Array.length s.slot_stamp) in
    (* Fresh stamp arrays start at 0, which never equals a live stamp. *)
    s.slot_stamp <- Array.make n 0;
    s.slot_tag <- Array.make n 0;
    s.slot_num <- Array.make n 0.0;
    s.slot_box <- Array.make n dummy
  end

(* Raised (constant constructor: no allocation) when a missing attribute
   rejects the constraint in [accepts] mode. *)
exception Rejected

let fail fmt = Printf.ksprintf (fun m -> raise (Eval.Eval_error m)) fmt

let cell_type_name s i =
  let t = s.tag.(i) in
  if t = t_num then "float"
  else if t = t_bool then "bool"
  else Value.type_name s.boxv.(i)

(* Missing attribute: the innermost isBoundTo handler that covers this
   object kind wins; an arg-a handler only catches query-side misses
   (hosting-side ones propagate outward, as in the interpreter).  With
   no covering handler, [accepts] mode rejects via the constant
   [Rejected] and strict mode raises [Missing_attr]. *)
let rec find_handler s strict obj name i =
  if i < 0 then
    if strict then raise (Eval.Missing_attr (obj, name)) else raise_notrace Rejected
  else if s.h_kind.(i) = 1 || is_v_side obj then i
  else find_handler s strict obj name (i - 1)

let missing s ~strict obj name =
  let i = find_handler s strict obj name (s.hp - 1) in
  (* An arg-a handler was pushed at the call's base stack level; an
     arg-b handler was pushed with the first argument's value already on
     the stack, which the false-exit must discard. *)
  s.sp <- s.h_sp.(i) - s.h_kind.(i);
  s.hp <- i;
  s.pc <- s.h_target.(i)

let pop_as_bool s =
  s.sp <- s.sp - 1;
  let i = s.sp in
  if s.tag.(i) <> t_bool then
    fail "boolean operation: expected bool, got %s" (cell_type_name s i);
  s.num.(i) = 1.0

(* compare_values: numbers order by Float.compare, strings by
   String.compare, anything else is a type error. *)
let compare_cells s =
  let b = s.sp - 1 in
  let a = s.sp - 2 in
  s.sp <- a + 1;
  if s.tag.(a) = t_num && s.tag.(b) = t_num then Float.compare s.num.(a) s.num.(b)
  else if s.tag.(a) = t_boxed && s.tag.(b) = t_boxed then
    match (s.boxv.(a), s.boxv.(b)) with
    | Value.String x, Value.String y -> String.compare x y
    | _ -> fail "cannot compare %s with %s" (cell_type_name s a) (cell_type_name s b)
  else fail "cannot compare %s with %s" (cell_type_name s a) (cell_type_name s b)

(* eval_eq: numbers through Float.equal, same-kind through Value.equal,
   mixed kinds unequal — never an error. *)
let eq_cells s =
  let b = s.sp - 1 in
  let a = s.sp - 2 in
  s.sp <- a + 1;
  if s.tag.(a) = t_num && s.tag.(b) = t_num then Float.equal s.num.(a) s.num.(b)
  else if s.tag.(a) = t_bool && s.tag.(b) = t_bool then s.num.(a) = s.num.(b)
  else if s.tag.(a) = t_boxed && s.tag.(b) = t_boxed then Value.equal s.boxv.(a) s.boxv.(b)
  else false

(* The interpreter loop.  Mirrors Eval's semantics case by case; every
   literal opcode below must match Compile.Op (pinned by the assertion
   at the bottom of this file). *)
let exec ~strict s (p : Compile.program) =
  ensure_capacity s p;
  s.stamp <- s.stamp + 1;
  let stamp = s.stamp in
  let code = p.Compile.code in
  let tag = s.tag and num = s.num and boxv = s.boxv in
  let slot_stamp = s.slot_stamp
  and slot_tag = s.slot_tag
  and slot_num = s.slot_num
  and slot_box = s.slot_box in
  s.sp <- 0;
  s.hp <- 0;
  s.pc <- 0;
  let running = ref true in
  while !running do
    let pc = s.pc in
    match code.(pc) with
    | 0 (* HALT *) -> running := false
    | 1 (* PUSH_NUM *) ->
        tag.(s.sp) <- t_num;
        num.(s.sp) <- p.Compile.cnum.(code.(pc + 1));
        s.sp <- s.sp + 1;
        s.pc <- pc + 2
    | 2 (* PUSH_TRUE *) ->
        tag.(s.sp) <- t_bool;
        num.(s.sp) <- 1.0;
        s.sp <- s.sp + 1;
        s.pc <- pc + 1
    | 3 (* PUSH_FALSE *) ->
        tag.(s.sp) <- t_bool;
        num.(s.sp) <- 0.0;
        s.sp <- s.sp + 1;
        s.pc <- pc + 1
    | 4 (* PUSH_BOXED *) ->
        tag.(s.sp) <- t_boxed;
        boxv.(s.sp) <- p.Compile.cboxed.(code.(pc + 1));
        s.sp <- s.sp + 1;
        s.pc <- pc + 2
    | 5 (* LOAD *) -> (
        let sl = code.(pc + 1) in
        if slot_stamp.(sl) = stamp then begin
          (* memoized: this attribute was already resolved this eval *)
          let t = slot_tag.(sl) in
          if t = t_missing then begin
            let { Compile.s_obj; s_name } = p.Compile.slots.(sl) in
            missing s ~strict s_obj s_name
          end
          else begin
            tag.(s.sp) <- t;
            num.(s.sp) <- slot_num.(sl);
            boxv.(s.sp) <- slot_box.(sl);
            s.sp <- s.sp + 1;
            s.pc <- pc + 2
          end
        end
        else
          let { Compile.s_obj; s_name } = p.Compile.slots.(sl) in
          match Attrs.get s_name (table s s_obj) with
          | v ->
              slot_stamp.(sl) <- stamp;
              (match v with
              | Value.Int i ->
                  slot_tag.(sl) <- t_num;
                  slot_num.(sl) <- float_of_int i
              | Value.Float f ->
                  slot_tag.(sl) <- t_num;
                  slot_num.(sl) <- f
              | Value.Bool b ->
                  slot_tag.(sl) <- t_bool;
                  slot_num.(sl) <- (if b then 1.0 else 0.0)
              | Value.String _ | Value.Range _ ->
                  slot_tag.(sl) <- t_boxed;
                  slot_box.(sl) <- v);
              tag.(s.sp) <- slot_tag.(sl);
              num.(s.sp) <- slot_num.(sl);
              boxv.(s.sp) <- slot_box.(sl);
              s.sp <- s.sp + 1;
              s.pc <- pc + 2
          | exception Not_found ->
              slot_stamp.(sl) <- stamp;
              slot_tag.(sl) <- t_missing;
              missing s ~strict s_obj s_name)
    | 6 (* NOT *) ->
        let i = s.sp - 1 in
        if tag.(i) <> t_bool then
          fail "boolean operation: expected bool, got %s" (cell_type_name s i);
        num.(i) <- 1.0 -. num.(i);
        s.pc <- pc + 1
    | 7 (* NEG *) ->
        let i = s.sp - 1 in
        if tag.(i) <> t_num then
          fail "numeric operation: expected number, got %s" (cell_type_name s i);
        num.(i) <- -.num.(i);
        s.pc <- pc + 1
    | 8 (* ADD *) ->
        s.sp <- s.sp - 1;
        num.(s.sp - 1) <- num.(s.sp - 1) +. num.(s.sp);
        s.pc <- pc + 1
    | 9 (* SUB *) ->
        s.sp <- s.sp - 1;
        num.(s.sp - 1) <- num.(s.sp - 1) -. num.(s.sp);
        s.pc <- pc + 1
    | 10 (* MUL *) ->
        s.sp <- s.sp - 1;
        num.(s.sp - 1) <- num.(s.sp - 1) *. num.(s.sp);
        s.pc <- pc + 1
    | 11 (* DIV *) ->
        s.sp <- s.sp - 1;
        if num.(s.sp) = 0.0 then fail "division by zero";
        num.(s.sp - 1) <- num.(s.sp - 1) /. num.(s.sp);
        s.pc <- pc + 1
    | 12 (* LT *) ->
        let c = compare_cells s in
        tag.(s.sp - 1) <- t_bool;
        num.(s.sp - 1) <- (if c < 0 then 1.0 else 0.0);
        s.pc <- pc + 1
    | 13 (* LE *) ->
        let c = compare_cells s in
        tag.(s.sp - 1) <- t_bool;
        num.(s.sp - 1) <- (if c <= 0 then 1.0 else 0.0);
        s.pc <- pc + 1
    | 14 (* GT *) ->
        let c = compare_cells s in
        tag.(s.sp - 1) <- t_bool;
        num.(s.sp - 1) <- (if c > 0 then 1.0 else 0.0);
        s.pc <- pc + 1
    | 15 (* GE *) ->
        let c = compare_cells s in
        tag.(s.sp - 1) <- t_bool;
        num.(s.sp - 1) <- (if c >= 0 then 1.0 else 0.0);
        s.pc <- pc + 1
    | 16 (* EQ *) ->
        let e = eq_cells s in
        tag.(s.sp - 1) <- t_bool;
        num.(s.sp - 1) <- (if e then 1.0 else 0.0);
        s.pc <- pc + 1
    | 17 (* NEQ *) ->
        let e = eq_cells s in
        tag.(s.sp - 1) <- t_bool;
        num.(s.sp - 1) <- (if e then 0.0 else 1.0);
        s.pc <- pc + 1
    | 18 (* AS_NUM *) ->
        let i = s.sp - 1 in
        if tag.(i) <> t_num then
          fail "numeric operation: expected number, got %s" (cell_type_name s i);
        s.pc <- pc + 1
    | 19 (* BOOLIFY *) ->
        let i = s.sp - 1 in
        if tag.(i) <> t_bool then
          fail "boolean operation: expected bool, got %s" (cell_type_name s i);
        s.pc <- pc + 1
    | 20 (* JMP *) -> s.pc <- code.(pc + 1)
    | 21 (* JFALSE *) -> if pop_as_bool s then s.pc <- pc + 2 else s.pc <- code.(pc + 1)
    | 22 (* JTRUE *) -> if pop_as_bool s then s.pc <- code.(pc + 1) else s.pc <- pc + 2
    | 23 (* CALL *) ->
        (* Arity is checked at compile time; operands convert to numbers
           left to right, as in the (normalized) interpreter. *)
        (let fid = code.(pc + 1) in
         let argc = if fid = 2 || fid = 3 then 2 else 1 in
         for k = argc downto 1 do
           let i = s.sp - k in
           if tag.(i) <> t_num then
             fail "numeric operation: expected number, got %s" (cell_type_name s i)
         done;
         if argc = 1 then begin
           let i = s.sp - 1 in
           let x = num.(i) in
           num.(i) <-
             (match fid with
             | 0 -> Float.abs x
             | 1 ->
                 if x < 0.0 then fail "sqrt of negative number";
                 sqrt x
             | 4 -> Float.floor x
             | _ -> Float.ceil x)
         end
         else begin
           s.sp <- s.sp - 1;
           let x = num.(s.sp - 1) and y = num.(s.sp) in
           num.(s.sp - 1) <- (if fid = 2 then Float.min x y else Float.max x y)
         end);
        s.pc <- pc + 2
    | 24 (* FAIL *) -> raise (Eval.Eval_error p.Compile.cmsg.(code.(pc + 1)))
    | 25 (* PUSH_HA *) ->
        s.h_kind.(s.hp) <- 0;
        s.h_target.(s.hp) <- code.(pc + 1);
        s.h_sp.(s.hp) <- s.sp;
        s.hp <- s.hp + 1;
        s.pc <- pc + 2
    | 26 (* PUSH_HB *) ->
        s.h_kind.(s.hp) <- 1;
        s.h_target.(s.hp) <- code.(pc + 1);
        s.h_sp.(s.hp) <- s.sp;
        s.hp <- s.hp + 1;
        s.pc <- pc + 2
    | 27 (* POP_H *) ->
        s.hp <- s.hp - 1;
        s.pc <- pc + 1
    | op -> fail "corrupt bytecode: opcode %d at %d" op pc
  done

(* The match above uses literal opcodes for speed; pin them to the
   symbolic encoding once, at module init. *)
let () =
  assert (
    Compile.Op.halt = 0 && Compile.Op.push_num = 1 && Compile.Op.push_true = 2
    && Compile.Op.push_false = 3 && Compile.Op.push_boxed = 4 && Compile.Op.load = 5
    && Compile.Op.not_ = 6 && Compile.Op.neg = 7 && Compile.Op.add = 8
    && Compile.Op.sub = 9 && Compile.Op.mul = 10 && Compile.Op.div = 11
    && Compile.Op.lt = 12 && Compile.Op.le = 13 && Compile.Op.gt = 14
    && Compile.Op.ge = 15 && Compile.Op.eq = 16 && Compile.Op.neq = 17
    && Compile.Op.as_num = 18 && Compile.Op.boolify = 19 && Compile.Op.jmp = 20
    && Compile.Op.jfalse = 21 && Compile.Op.jtrue = 22 && Compile.Op.call = 23
    && Compile.Op.fail = 24 && Compile.Op.push_ha = 25 && Compile.Op.push_hb = 26
    && Compile.Op.pop_h = 27)

let accepts s p =
  match exec ~strict:false s p with
  | () ->
      if s.tag.(0) = t_bool then s.num.(0) = 1.0
      else fail "constraint evaluated to %s, expected bool" (cell_type_name s 0)
  | exception Rejected -> false

let eval s p =
  exec ~strict:true s p;
  if s.tag.(0) = t_num then Value.Float s.num.(0)
  else if s.tag.(0) = t_bool then Value.Bool (s.num.(0) = 1.0)
  else s.boxv.(0)

let accepts_env p env =
  let s = scratch () in
  set_env_of s env;
  accepts s p
