(** Stack-machine evaluator for compiled constraint programs.

    A {!scratch} bundles everything one evaluation needs — the value
    stack (tag/float/boxed parallel arrays), the [isBoundTo] handler
    stack, the per-slot memo table and the six attribute-table
    bindings — all preallocated, so the steady-state cost of
    {!accepts} is zero heap allocation: numbers and booleans travel
    unboxed through the float array, strings and ranges are shared
    pointers into the constant pool or the attribute tables, and
    rejection on a missing attribute raises a constant-constructor
    exception.

    A scratch is single-writer state, like {!Netembed_core.Problem}'s
    evaluation counter: give each domain its own.  Capacity grows
    automatically (and amortized) when a program needs deeper stacks or
    more slots than any previous one.

    Semantics are exactly the interpreter's ({!Eval}): same result,
    same error class ([Eval.Eval_error] / [Eval.Missing_attr]) in the
    same cases, modulo two documented representation details — integer
    values widen to floats (so {!eval} returns [Float] where the
    interpreter may return [Int]; compare results with [Value.equal]),
    and error {e messages} may name [float] where the interpreter says
    [int]. *)

type scratch

val scratch : unit -> scratch

(** {1 Binding the six objects} *)

val set_env :
  scratch ->
  v_edge:Netembed_attr.Attrs.t ->
  r_edge:Netembed_attr.Attrs.t ->
  v_source:Netembed_attr.Attrs.t ->
  v_target:Netembed_attr.Attrs.t ->
  r_source:Netembed_attr.Attrs.t ->
  r_target:Netembed_attr.Attrs.t ->
  unit
(** Bind all six attribute tables.  Allocation-free (mutates the
    scratch in place). *)

val set_r :
  scratch ->
  r_edge:Netembed_attr.Attrs.t ->
  r_source:Netembed_attr.Attrs.t ->
  r_target:Netembed_attr.Attrs.t ->
  unit
(** Rebind only the hosting-side tables — the per-candidate step when
    evaluating one residual program against many hosting edges. *)

val set_env_of : scratch -> Eval.env -> unit
(** Bind from an interpreter environment (differential tests). *)

(** {1 Evaluation} *)

val accepts : scratch -> Compile.program -> bool
(** The edge-pair acceptance test, agreeing with {!Eval.accepts} under
    the bound environment: true iff the program evaluates to
    [Bool true]; a missing attribute (outside its [isBoundTo] region)
    yields [false].  Zero allocation at steady state.
    @raise Eval.Eval_error on type errors, division by zero, bad
    arity or unknown functions — exactly when the interpreter does. *)

val eval : scratch -> Compile.program -> Netembed_attr.Value.t
(** Strict evaluation, agreeing with {!Eval.eval} up to [Value.equal]
    (integers widen to [Float]).  Allocates only the resulting box.
    @raise Eval.Eval_error as {!accepts}.
    @raise Eval.Missing_attr on a reference to an absent attribute
    outside [isBoundTo]. *)

val accepts_env : Compile.program -> Eval.env -> bool
(** Convenience for tests: a throwaway scratch, bound from [env]. *)
