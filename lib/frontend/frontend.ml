(* Concurrent domain-pool front-end: acceptor domain -> reader thread
   per connection -> bounded admission queue -> worker domains ->
   per-connection in-order reply writer.  See frontend.mli for the
   picture; the invariants that keep this deadlock-free are spelled out
   inline where they are enforced. *)

module Telemetry = Netembed_telemetry.Telemetry
module Wire = Netembed_service.Wire

module Bounded_queue = struct
  type 'a t = {
    lock : Mutex.t;
    not_empty : Condition.t;
    slots : 'a option array;
    cap : int;
    mutable head : int;  (* index of the next element to pop *)
    mutable len : int;
    mutable closed : bool;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Bounded_queue.create: capacity must be >= 1";
    {
      lock = Mutex.create ();
      not_empty = Condition.create ();
      slots = Array.make capacity None;
      cap = capacity;
      head = 0;
      len = 0;
      closed = false;
    }

  let try_push t x =
    Mutex.lock t.lock;
    let ok = (not t.closed) && t.len < t.cap in
    if ok then begin
      t.slots.((t.head + t.len) mod t.cap) <- Some x;
      t.len <- t.len + 1;
      Condition.signal t.not_empty
    end;
    Mutex.unlock t.lock;
    ok

  let pop t =
    Mutex.lock t.lock;
    while t.len = 0 && not t.closed do
      Condition.wait t.not_empty t.lock
    done;
    let item =
      if t.len = 0 then None
      else begin
        let x = t.slots.(t.head) in
        t.slots.(t.head) <- None;
        t.head <- (t.head + 1) mod t.cap;
        t.len <- t.len - 1;
        x
      end
    in
    Mutex.unlock t.lock;
    item

  let close t =
    Mutex.lock t.lock;
    t.closed <- true;
    Condition.broadcast t.not_empty;
    Mutex.unlock t.lock

  let length t =
    Mutex.lock t.lock;
    let n = t.len in
    Mutex.unlock t.lock;
    n

  let capacity t = t.cap
end

type sizing = { workers : int; search_domains : int }

let plan ?workers ?search_domains () =
  let cores = Domain.recommended_domain_count () in
  let workers =
    match workers with Some w -> max 1 w | None -> max 1 (cores - 1)
  in
  let search_domains =
    match search_domains with
    | Some d -> max 1 d
    | None -> max 1 (cores - workers)
  in
  { workers; search_domains }

type config = {
  workers : int;
  queue_capacity : int;
  idle_timeout : float;
  max_frame_bytes : int;
  drain_timeout : float;
}

let default_config () =
  let sizing = plan () in
  {
    workers = sizing.workers;
    queue_capacity = 64;
    idle_timeout = 30.0;
    max_frame_bytes = Wire.default_max_frame_bytes;
    drain_timeout = 5.0;
  }

(* ------------------------------------------------------------------ *)
(* Buffered, timeout-aware line reading straight off a file descriptor *)
(* (in_channel cannot surface SO_RCVTIMEO's EAGAIN cleanly).           *)
(* ------------------------------------------------------------------ *)

exception Idle

type line_reader = {
  rfd : Unix.file_descr;
  rbuf : Bytes.t;
  mutable rpos : int;
  mutable rlen : int;
  line : Buffer.t;
}

let make_line_reader fd =
  { rfd = fd; rbuf = Bytes.create 4096; rpos = 0; rlen = 0; line = Buffer.create 256 }

let rec refill r =
  match Unix.read r.rfd r.rbuf 0 (Bytes.length r.rbuf) with
  | 0 -> false
  | n ->
      r.rpos <- 0;
      r.rlen <- n;
      true
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      raise Idle
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill r

(* input_line semantics over the raw fd: the line without its '\n';
   [Some partial] at EOF with pending bytes, then [None]. *)
let read_line r =
  Buffer.clear r.line;
  let rec go () =
    if r.rpos >= r.rlen then
      if refill r then go ()
      else if Buffer.length r.line = 0 then None
      else Some (Buffer.contents r.line)
    else begin
      let c = Bytes.get r.rbuf r.rpos in
      r.rpos <- r.rpos + 1;
      if c = '\n' then Some (Buffer.contents r.line)
      else begin
        Buffer.add_char r.line c;
        go ()
      end
    end
  in
  go ()

(* Wire.read_frame's accumulation and resync semantics, over a
   line_reader instead of an in_channel. *)
let read_frame_bounded ~max_bytes r =
  let buf = Buffer.create 1024 in
  let overflow = ref false in
  let finish_eof () =
    if !overflow then Some (Error (Wire.frame_too_large ~limit:max_bytes))
    else if Buffer.length buf = 0 then None
    else Some (Ok (Buffer.contents buf))
  in
  let rec go () =
    match read_line r with
    | None -> finish_eof ()
    | Some "." ->
        if !overflow then Some (Error (Wire.frame_too_large ~limit:max_bytes))
        else Some (Ok (Buffer.contents buf))
    | Some line ->
        if !overflow then go ()
        else if Buffer.length buf + String.length line + 1 > max_bytes then begin
          overflow := true;
          Buffer.clear buf;
          go ()
        end
        else begin
          Buffer.add_string buf line;
          Buffer.add_char buf '\n';
          go ()
        end
  in
  go ()

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    let n = Unix.write_substring fd s !pos (len - !pos) in
    if n <= 0 then raise Exit;
    pos := !pos + n
  done

(* ------------------------------------------------------------------ *)
(* Connections and jobs                                                *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  out_lock : Mutex.t;
  out_done : Condition.t;
  mutable next_write : int;  (* seq of the next reply allowed out *)
  mutable issued : int;  (* frames read off this connection so far *)
  mutable broken : bool;  (* a write failed; swallow the rest *)
}

type job = {
  conn : conn;
  seq : int;
  frame : string;
  enqueued_at : float;  (* stamped at try_push; queue_wait = pop - this *)
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  (* Self-pipe: closing a listening fd does not wake a blocked accept
     on Linux, so the acceptor multiplexes on [wake_r] and [stop]
     writes a byte to [wake_w]. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  bound_port : int;
  queue : job Bounded_queue.t;
  registry : Telemetry.Registry.t;
  handle : queue_wait:float -> string -> string;
  reject : queue_depth:int -> queue_capacity:int -> string;
  depth_gauge : Telemetry.Gauge.t;
  conn_gauge : Telemetry.Gauge.t;
  stopping : bool Atomic.t;
  stopped : bool Atomic.t;
  conns_lock : Mutex.t;
  mutable open_conns : conn list;
  mutable acceptor : unit Domain.t option;
  mutable worker_pool : unit Domain.t array;
}

(* Per-connection reply ordering: every frame gets a ticket [seq] the
   moment it is read, and whoever produces its reply (worker for
   admitted frames, the reader itself for wire errors and rejects)
   waits until [next_write] reaches its ticket.  The earliest unwritten
   seq is always owned by exactly one live party, so the turnstile
   cannot wedge — and pipelined requests answered out of order by the
   worker pool still leave the socket in request order. *)
let write_in_order conn ~seq reply =
  Mutex.lock conn.out_lock;
  while conn.next_write < seq do
    Condition.wait conn.out_done conn.out_lock
  done;
  (if not conn.broken then
     match write_all conn.fd reply with
     | () -> ()
     | exception _ -> conn.broken <- true);
  conn.next_write <- seq + 1;
  Condition.broadcast conn.out_done;
  Mutex.unlock conn.out_lock

let register_conn t conn =
  Mutex.lock t.conns_lock;
  t.open_conns <- conn :: t.open_conns;
  Telemetry.Gauge.set t.conn_gauge (float_of_int (List.length t.open_conns));
  Mutex.unlock t.conns_lock

let unregister_conn t conn =
  Mutex.lock t.conns_lock;
  t.open_conns <- List.filter (fun c -> c != conn) t.open_conns;
  Telemetry.Gauge.set t.conn_gauge (float_of_int (List.length t.open_conns));
  Mutex.unlock t.conns_lock

let set_depth_gauge t =
  Telemetry.Gauge.set t.depth_gauge
    (float_of_int (Bounded_queue.length t.queue))

let worker t idx () =
  let busy_gauge =
    Telemetry.Registry.gauge t.registry
      ~help:"Fraction of wall-clock time this worker spent handling requests"
      ~labels:[ ("worker", string_of_int idx) ]
      "netembed_worker_busy_fraction"
  in
  let started = Unix.gettimeofday () in
  let busy = ref 0.0 in
  let rec loop () =
    match Bounded_queue.pop t.queue with
    | None -> ()
    | Some job ->
        set_depth_gauge t;
        let t0 = Unix.gettimeofday () in
        let queue_wait = Float.max 0.0 (t0 -. job.enqueued_at) in
        let reply =
          try t.handle ~queue_wait job.frame
          with exn -> Wire.encode_error (Printexc.to_string exn)
        in
        write_in_order job.conn ~seq:job.seq reply;
        let now = Unix.gettimeofday () in
        busy := !busy +. (now -. t0);
        let elapsed = now -. started in
        if elapsed > 0.0 then Telemetry.Gauge.set busy_gauge (!busy /. elapsed);
        loop ()
  in
  loop ()

let reader t conn () =
  let lr = make_line_reader conn.fd in
  let next_seq () =
    let seq = conn.issued in
    conn.issued <- seq + 1;
    seq
  in
  let rec loop () =
    if Atomic.get t.stopping then ()
    else
      match read_frame_bounded ~max_bytes:t.config.max_frame_bytes lr with
      | exception Idle -> ()  (* idle timeout: hang up *)
      | exception _ -> conn.broken <- true
      | None -> ()  (* EOF *)
      | Some (Error msg) ->
          let seq = next_seq () in
          write_in_order conn ~seq (Wire.encode_error msg);
          loop ()
      | Some (Ok frame) ->
          let seq = next_seq () in
          let job = { conn; seq; frame; enqueued_at = Unix.gettimeofday () } in
          if Bounded_queue.try_push t.queue job then begin
            set_depth_gauge t;
            loop ()
          end
          else begin
            (* Saturated: shed load right here, with a reply the client
               can EXPLAIN, instead of queueing without bound. *)
            let reply =
              t.reject
                ~queue_depth:(Bounded_queue.length t.queue)
                ~queue_capacity:(Bounded_queue.capacity t.queue)
            in
            write_in_order conn ~seq reply;
            loop ()
          end
  in
  loop ();
  (* Every issued frame has a reply owner (worker or this thread), so
     waiting for next_write to catch up flushes the pipeline before the
     socket closes; next_write advances even past failed writes. *)
  Mutex.lock conn.out_lock;
  while conn.next_write < conn.issued do
    Condition.wait conn.out_done conn.out_lock
  done;
  Mutex.unlock conn.out_lock;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  unregister_conn t conn

let acceptor t () =
  let threads = ref [] in
  let rec loop () =
    match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error (_, _, _) -> ()
    | readable, _, _ when List.mem t.wake_r readable -> ()  (* stop *)
    | _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | exception
            Unix.Unix_error
              ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                | Unix.ECONNABORTED ),
                _,
                _ ) ->
            loop ()
        | exception Unix.Unix_error (_, _, _) -> ()
        | fd, _ ->
            if Atomic.get t.stopping then (
              (try Unix.close fd with Unix.Unix_error _ -> ());
              loop ())
            else begin
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          if t.config.idle_timeout > 0.0 then begin
            (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.idle_timeout
             with Unix.Unix_error _ -> ());
            (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.idle_timeout
             with Unix.Unix_error _ -> ())
          end;
          let conn =
            {
              fd;
              out_lock = Mutex.create ();
              out_done = Condition.create ();
              next_write = 0;
              issued = 0;
              broken = false;
            }
          in
              register_conn t conn;
              threads := Thread.create (reader t conn) () :: !threads;
              loop ()
            end)
  in
  loop ();
  (* The acceptor domain owns its reader threads: joining them here
     means [Domain.join acceptor] in [stop] implies every connection is
     fully drained and closed. *)
  List.iter Thread.join !threads

let start ?config ?(registry = Telemetry.default_registry) ~handle ~reject
    ~port () =
  let config = match config with Some c -> c | None -> default_config () in
  (* A peer hanging up mid-reply must be an EPIPE error, not a fatal
     signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  let depth_gauge =
    Telemetry.Registry.gauge registry
      ~help:"Requests waiting in the front-end admission queue"
      "netembed_admission_queue_depth"
  in
  let conn_gauge =
    Telemetry.Registry.gauge registry
      ~help:"Open front-end client connections" "netembed_frontend_connections"
  in
  let t =
    {
      config;
      listen_fd;
      wake_r;
      wake_w;
      bound_port;
      queue = Bounded_queue.create ~capacity:config.queue_capacity;
      registry;
      handle;
      reject;
      depth_gauge;
      conn_gauge;
      stopping = Atomic.make false;
      stopped = Atomic.make false;
      conns_lock = Mutex.create ();
      open_conns = [];
      acceptor = None;
      worker_pool = [||];
    }
  in
  t.worker_pool <-
    Array.init (max 1 config.workers) (fun i -> Domain.spawn (worker t i));
  t.acceptor <- Some (Domain.spawn (acceptor t));
  t

let port t = t.bound_port
let queue_depth t = Bounded_queue.length t.queue
let queue_capacity t = Bounded_queue.capacity t.queue

let stop t =
  if Atomic.compare_and_set t.stopped false true then begin
    Atomic.set t.stopping true;
    (* No new connections: poke the self-pipe so the acceptor's select
       returns, whatever it was blocked on. *)
    (try ignore (Unix.write_substring t.wake_w "x" 0 1)
     with Unix.Unix_error _ -> ());
    (* Let live connections finish their in-flight frames... *)
    let deadline = Unix.gettimeofday () +. t.config.drain_timeout in
    let open_count () =
      Mutex.lock t.conns_lock;
      let n = List.length t.open_conns in
      Mutex.unlock t.conns_lock;
      n
    in
    while open_count () > 0 && Unix.gettimeofday () < deadline do
      Thread.delay 0.01
    done;
    (* ...then shut down stragglers (shutdown, not close: the reader
       still owns the fd and will close it once its replies flushed,
       and a shut-down fd cannot be recycled under a pending write). *)
    Mutex.lock t.conns_lock;
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      t.open_conns;
    Mutex.unlock t.conns_lock;
    (match t.acceptor with Some d -> Domain.join d | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
    Bounded_queue.close t.queue;
    Array.iter Domain.join t.worker_pool;
    set_depth_gauge t
  end

(* ------------------------------------------------------------------ *)
(* Metrics HTTP listener                                               *)
(* ------------------------------------------------------------------ *)

module Http = struct
  let http_response status content_type body =
    Printf.sprintf
      "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
      status content_type (String.length body) body

  (* Health endpoints are callback-driven so the server can wire them
     to its drain flag and SLO health machine; [fun () -> (ok, body)].
     /healthz is pure liveness (non-200 only once draining); /readyz is
     readiness (non-200 whenever the health machine is not Healthy). *)
  let default_probe () = (true, "ok")

  let probe_response (ok, body) =
    http_response
      (if ok then "200 OK" else "503 Service Unavailable")
      "text/plain" (body ^ "\n")

  let route ~healthz ~readyz registry path =
    match path with
    | "/metrics" ->
        http_response "200 OK" "text/plain; version=0.0.4; charset=utf-8"
          (Telemetry.Registry.to_prometheus registry)
    | "/metrics.json" ->
        http_response "200 OK" "application/json"
          (Telemetry.Registry.to_json registry)
    | "/healthz" -> probe_response (healthz ())
    | "/readyz" -> probe_response (readyz ())
    | _ -> http_response "404 Not Found" "text/plain" "not found\n"

  let handle_client ~timeout ~healthz ~readyz registry fd =
    (try
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
     with Unix.Unix_error _ -> ());
    (try
       let lr = make_line_reader fd in
       let request_line = match read_line lr with Some l -> l | None -> "" in
       (* Drain request headers (bounded); scrapes have no body. *)
       let rec drain n =
         if n > 0 then
           match read_line lr with
           | None -> ()
           | Some l -> if String.trim l <> "" then drain (n - 1)
       in
       drain 100;
       let path =
         match String.split_on_char ' ' request_line with
         | _meth :: p :: _ -> p
         | _ -> "/"
       in
       write_all fd (route ~healthz ~readyz registry path)
     with _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

  let start ?(timeout = 5.0) ?(healthz = default_probe) ?(readyz = default_probe)
      ~registry ~port () =
    let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen sock 16;
    let bound =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    ignore
      (Domain.spawn (fun () ->
           let rec loop () =
             match Unix.accept ~cloexec:true sock with
             | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
             | exception Unix.Unix_error (_, _, _) -> ()
             | fd, _ ->
                 (* One thread per scrape: a scraper that connects and
                    stalls times out on its own thread while /healthz
                    keeps answering. *)
                 ignore
                   (Thread.create
                      (fun () ->
                        handle_client ~timeout ~healthz ~readyz registry fd)
                      ());
                 loop ()
           in
           loop ()));
    bound
end
