(** Concurrent domain-pool front-end for the NETEMBED service.

    The paper's Fig.-1 deployment is a {e service} many distributed
    applications query at once; this module is the front door that
    lets the concurrency-ready engine underneath (work-stealing
    search, filter cache, ledger) actually see concurrent traffic:

    {v
      clients ──TCP──▶ acceptor domain ──▶ reader thread per connection
                                               │  (frames, bounded)
                                               ▼
                                    bounded admission queue  ──full──▶ reject
                                               │                      (backpressure
                                               ▼                       certificate)
                                  N worker domains ──▶ handle frame
                                               │
                                               ▼
                              per-connection ordered reply writer
    v}

    - {b Bounded admission} ({!Bounded_queue}): an MPMC mutex/condvar
      ring.  When it is full the reader rejects the frame immediately
      with the caller-supplied [reject] reply (the server wires this to
      {!Netembed_service.Service.reject_backpressure}, so the client
      gets an [ERR id=...] it can [EXPLAIN] and the reject counter
      moves) instead of queueing unboundedly.
    - {b Pipelining}: the reader keeps pulling frames while earlier
      answers are still being computed; replies are written strictly in
      request order per connection, so the wire contract (answers in
      request order) survives out-of-order completion across workers.
    - {b Lifecycle}: per-connection idle timeout, bounded frame size
      (oversized frames get a clean wire error and the stream
      resynchronizes), and graceful drain on {!stop} — stop accepting,
      finish in-flight requests, then join every domain.

    The module is transport logic only: what a frame {e means} is the
    [handle] closure's business, which must be safe to call from
    several domains at once ({!Netembed_service.Service} is). *)

(** Bounded multi-producer/multi-consumer queue (mutex + condvar ring).
    [try_push] never blocks — a full queue is the backpressure signal —
    while [pop] blocks until an element, or [None] once the queue is
    closed {e and} drained. *)
module Bounded_queue : sig
  type 'a t

  val create : capacity:int -> 'a t
  (** @raise Invalid_argument when [capacity < 1]. *)

  val try_push : 'a t -> 'a -> bool
  (** Enqueue without blocking; [false] when the queue is full or
      closed. *)

  val pop : 'a t -> 'a option
  (** Dequeue, blocking while the queue is open and empty.  [None] once
      the queue is closed and every element has been drained. *)

  val close : 'a t -> unit
  (** Reject further pushes and wake every blocked consumer; elements
      already queued are still delivered. *)

  val length : 'a t -> int
  val capacity : 'a t -> int
end

(** Sizing the two domain pools (front-end workers vs. search domains)
    from what the machine actually has, so a multi-domain service does
    not oversubscribe cores it does not own. *)
type sizing = {
  workers : int;  (** front-end worker domains *)
  search_domains : int;
      (** per-request work-stealing search domains
          ({!Netembed_service.Service.create}'s [domains]) *)
}

val plan : ?workers:int -> ?search_domains:int -> unit -> sizing
(** Defaults: [workers = max 1 (recommended_domain_count - 1)] (one
    core left for the acceptor/readers), and
    [search_domains = max 1 (recommended_domain_count - workers)] —
    the search pool is sized from the cores the front end is {e not}
    using.  Explicit values are clamped to at least 1. *)

type config = {
  workers : int;  (** worker domains draining the admission queue *)
  queue_capacity : int;  (** admission-queue bound *)
  idle_timeout : float;
      (** close a connection after this many seconds without a frame
          (0 = never) *)
  max_frame_bytes : int;  (** per-frame body bound *)
  drain_timeout : float;
      (** on {!stop}, seconds to wait for open connections to finish
          before force-closing them *)
}

val default_config : unit -> config
(** [workers] from {!plan}, queue capacity 64, idle timeout 30 s, frame
    bound {!Netembed_service.Wire.default_max_frame_bytes}, drain
    timeout 5 s. *)

type t

val start :
  ?config:config ->
  ?registry:Netembed_telemetry.Telemetry.Registry.t ->
  handle:(queue_wait:float -> string -> string) ->
  reject:(queue_depth:int -> queue_capacity:int -> string) ->
  port:int ->
  unit ->
  t
(** Bind [127.0.0.1:port] ([port = 0] picks an ephemeral port — read it
    back with {!port}), spawn the acceptor domain and [config.workers]
    worker domains, and serve until {!stop}.

    [handle ~queue_wait frame] computes the reply for one request
    frame; it runs on worker domains concurrently.  [queue_wait] is the
    seconds the frame sat in the admission queue (stamped at enqueue,
    measured at pop) — the server records it as the [queue_wait]
    request phase.  [reject ~queue_depth ~queue_capacity] builds the
    immediate reply for a frame bounced off a saturated admission
    queue; it runs on reader threads and must be cheap.

    Registers [netembed_admission_queue_depth],
    [netembed_frontend_connections] and per-worker
    [netembed_worker_busy_fraction{worker=...}] gauges in [registry]
    (default {!Netembed_telemetry.Telemetry.default_registry}). *)

val port : t -> int
(** The actually-bound TCP port. *)

val queue_depth : t -> int
(** Requests currently waiting in the admission queue. *)

val queue_capacity : t -> int
(** The admission queue's bound ([config.queue_capacity]). *)

val stop : t -> unit
(** Graceful drain: stop accepting, let readers finish their current
    frames and workers drain the queue, write every pending reply,
    force-close connections still open after [config.drain_timeout],
    and join every domain.  Idempotent. *)

(** Minimal HTTP listener for the telemetry exposition ([GET /metrics],
    [/metrics.json], [/healthz], [/readyz]).  One thread per connection
    with socket read/write timeouts, so a scraper that connects and
    then stalls cannot wedge health checks behind it. *)
module Http : sig
  val start :
    ?timeout:float ->
    ?healthz:(unit -> bool * string) ->
    ?readyz:(unit -> bool * string) ->
    registry:Netembed_telemetry.Telemetry.Registry.t ->
    port:int ->
    unit ->
    int
  (** Bind [127.0.0.1:port] (0 = ephemeral), serve from a dedicated
      domain, return the bound port.  [timeout] (default 5 s) bounds
      both reading the request and writing the response per connection.

      [healthz] and [readyz] produce [(ok, body)] for the two probe
      endpoints — 200 with [body] when [ok], 503 otherwise.  [healthz]
      is liveness (the server flips it only while draining, so
      orchestrators stop routing during the shutdown window); [readyz]
      is readiness (wired to the {!Netembed_service.Health} state
      machine — 503 whenever the service is not [Healthy]).  Both
      default to always-ok. *)
end
