open Netembed_graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Mapping = Netembed_core.Mapping

type kind = [ `Node | `Edge ]

type target = Node of Graph.node | Edge of Graph.edge

type line = { target : target; resource : string; amount : float }
type charge = line list

type failure = {
  resource : string;
  kind : kind;
  target : target option;
  requested : float;
  available : float;
}

(* One tracked resource on one element class: parallel arrays indexed by
   the dense node/edge ids. *)
type pool = {
  p_resource : string;
  p_kind : kind;
  p_capacity : float array;
  p_present : bool array;  (* element declared the attribute *)
  p_used : float array;
}

type t = {
  graph : Graph.t;
  node_pools : pool list;
  edge_pools : pool list;
  allocations : (int, charge) Hashtbl.t;
  mutable next_id : int;
  mutable external_id : int option;  (* usage recovered by sync_residual *)
}

let default_node_resources = [ "cpuMhz"; "memMB" ]
let default_edge_resources = [ "bandwidth" ]

let target_name = function
  | Node v -> Printf.sprintf "node %d" v
  | Edge e -> Printf.sprintf "edge %d" e

let failure_to_string f =
  match f.target with
  | Some tgt ->
      Printf.sprintf "over-committed %s on %s: requested %g, available %g" f.resource
        (target_name tgt) f.requested f.available
  | None ->
      Printf.sprintf
        "aggregate %s demand exceeds total residual %s capacity: requested %g, \
         available %g"
        f.resource
        (match f.kind with `Node -> "node" | `Edge -> "edge")
        f.requested f.available

let pool_of_attr graph kind resource =
  let n = match kind with `Node -> Graph.node_count graph | `Edge -> Graph.edge_count graph in
  let capacity = Array.make n 0.0 and present = Array.make n false in
  let attrs i =
    match kind with `Node -> Graph.node_attrs graph i | `Edge -> Graph.edge_attrs graph i
  in
  let any = ref false in
  for i = 0 to n - 1 do
    match Attrs.float resource (attrs i) with
    | Some c when c >= 0.0 ->
        capacity.(i) <- c;
        present.(i) <- true;
        any := true
    | Some _ | None -> ()
  done;
  if !any then
    Some
      {
        p_resource = resource;
        p_kind = kind;
        p_capacity = capacity;
        p_present = present;
        p_used = Array.make n 0.0;
      }
  else None

let of_graph ?(node_resources = default_node_resources)
    ?(edge_resources = default_edge_resources) graph =
  {
    graph;
    node_pools = List.filter_map (pool_of_attr graph `Node) node_resources;
    edge_pools = List.filter_map (pool_of_attr graph `Edge) edge_resources;
    allocations = Hashtbl.create 64;
    next_id = 1;
    external_id = None;
  }

let graph t = t.graph
let node_resources t = List.map (fun p -> p.p_resource) t.node_pools
let edge_resources t = List.map (fun p -> p.p_resource) t.edge_pools
let outstanding t = Hashtbl.length t.allocations

let find_pool t target resource =
  let pools = match target with Node _ -> t.node_pools | Edge _ -> t.edge_pools in
  List.find_opt (fun p -> p.p_resource = resource) pools

let index_of = function Node v -> v | Edge e -> e

let check_index t target =
  let idx = index_of target in
  let limit =
    match target with
    | Node _ -> Graph.node_count t.graph
    | Edge _ -> Graph.edge_count t.graph
  in
  if idx < 0 || idx >= limit then
    invalid_arg (Printf.sprintf "Ledger: unknown %s" (target_name target))

let capacity t target resource =
  check_index t target;
  match find_pool t target resource with
  | Some p -> p.p_capacity.(index_of target)
  | None -> 0.0

let used t target resource =
  check_index t target;
  match find_pool t target resource with
  | Some p -> p.p_used.(index_of target)
  | None -> 0.0

let residual t target resource = capacity t target resource -. used t target resource

let top_residuals t ~resource kind limit =
  let pools = match kind with `Node -> t.node_pools | `Edge -> t.edge_pools in
  match List.find_opt (fun p -> p.p_resource = resource) pools with
  | None -> []
  | Some p ->
      let items = ref [] in
      Array.iteri
        (fun i present ->
          if present then begin
            let tgt = match kind with `Node -> Node i | `Edge -> Edge i in
            items := (tgt, p.p_capacity.(i) -. p.p_used.(i)) :: !items
          end)
        p.p_present;
      List.sort (fun (_, a) (_, b) -> compare (b : float) a) !items
      |> List.filteri (fun i _ -> i < limit)

(* Commit comparisons tolerate last-ulp dust from fractional churn; the
   slack is relative to the capacity so it never admits a real
   violation. *)
let slack cap = 1e-9 *. (Float.abs cap +. 1.0)

(* ------------------------------------------------------------------ *)
(* Demand derivation                                                   *)
(* ------------------------------------------------------------------ *)

let charge_of_mapping t ~query mapping =
  let lines = ref [] in
  let n = Mapping.size mapping in
  for q = 0 to n - 1 do
    let attrs = Graph.node_attrs query q in
    List.iter
      (fun p ->
        match Attrs.float p.p_resource attrs with
        | Some d when d > 0.0 ->
            lines := { target = Node (Mapping.apply mapping q); resource = p.p_resource; amount = d } :: !lines
        | Some _ | None -> ())
      t.node_pools
  done;
  let error = ref None in
  if t.edge_pools <> [] then
    Graph.iter_edges
      (fun qe u v ->
        if !error = None then
          let attrs = Graph.edge_attrs query qe in
          let demands =
            List.filter_map
              (fun p ->
                match Attrs.float p.p_resource attrs with
                | Some d when d > 0.0 -> Some (p.p_resource, d)
                | Some _ | None -> None)
              t.edge_pools
          in
          if demands <> [] then
            let ru = Mapping.apply mapping u and rv = Mapping.apply mapping v in
            match Graph.find_edge t.graph ru rv with
            | Some he ->
                List.iter
                  (fun (resource, amount) ->
                    lines := { target = Edge he; resource; amount } :: !lines)
                  demands
            | None ->
                error :=
                  Some
                    (Printf.sprintf
                       "query edge %d demands link capacity but hosts %d and %d share \
                        no direct link"
                       qe ru rv))
      query;
  match !error with Some m -> Error m | None -> Ok (List.rev !lines)

let admissible t ~query =
  let check pools element_count query_attrs =
    List.fold_left
      (fun acc p ->
        match acc with
        | Error _ -> acc
        | Ok () ->
            let demand = ref 0.0 in
            for i = 0 to element_count - 1 do
              match Attrs.float p.p_resource (query_attrs i) with
              | Some d when d > 0.0 -> demand := !demand +. d
              | Some _ | None -> ()
            done;
            let free = ref 0.0 and cap = ref 0.0 in
            Array.iteri
              (fun i c ->
                if p.p_present.(i) then begin
                  free := !free +. (c -. p.p_used.(i));
                  cap := !cap +. c
                end)
              p.p_capacity;
            if !demand > !free +. slack !cap then
              Error
                {
                  resource = p.p_resource;
                  kind = p.p_kind;
                  target = None;
                  requested = !demand;
                  available = !free;
                }
            else Ok ())
      (Ok ()) pools
  in
  match
    check t.node_pools (Graph.node_count query) (Graph.node_attrs query)
  with
  | Error _ as e -> e
  | Ok () -> check t.edge_pools (Graph.edge_count query) (Graph.edge_attrs query)

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)
(* ------------------------------------------------------------------ *)

(* Aggregate a charge's lines per (target, resource): parallel query
   edges can land on the same host edge, and their joint demand must be
   validated as one figure. *)
let aggregate charge =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun l ->
      if l.amount < 0.0 then
        invalid_arg
          (Printf.sprintf "Ledger: negative amount %g for %s on %s" l.amount l.resource
             (target_name l.target));
      let key = (l.target, l.resource) in
      match Hashtbl.find_opt tbl key with
      | Some a -> Hashtbl.replace tbl key (a +. l.amount)
      | None ->
          Hashtbl.add tbl key l.amount;
          order := key :: !order)
    charge;
  List.rev_map (fun key -> (key, Hashtbl.find tbl key)) !order

(* Recompute the used figure of one (pool, element) exactly from the
   outstanding allocations, in ascending id order for determinism. *)
let recompute t pool idx =
  let ids =
    Hashtbl.fold (fun id _ acc -> id :: acc) t.allocations [] |> List.sort compare
  in
  let tgt_matches = function
    | Node v -> pool.p_kind = `Node && v = idx
    | Edge e -> pool.p_kind = `Edge && e = idx
  in
  let sum = ref 0.0 in
  List.iter
    (fun id ->
      List.iter
        (fun (l : line) ->
          if l.resource = pool.p_resource && tgt_matches l.target then
            sum := !sum +. l.amount)
        (Hashtbl.find t.allocations id))
    ids;
  pool.p_used.(idx) <- !sum

let try_commit t charge =
  let agg = aggregate charge in
  (* Validation pass: nothing is written unless every line fits. *)
  let failure =
    List.fold_left
      (fun acc ((target, resource), amount) ->
        match acc with
        | Some _ -> acc
        | None -> (
            check_index t target;
            match find_pool t target resource with
            | None ->
                Some
                  {
                    resource;
                    kind = (match target with Node _ -> `Node | Edge _ -> `Edge);
                    target = Some target;
                    requested = amount;
                    available = 0.0;
                  }
            | Some p ->
                let idx = index_of target in
                let free = p.p_capacity.(idx) -. p.p_used.(idx) in
                if amount > free +. slack p.p_capacity.(idx) then
                  Some
                    {
                      resource;
                      kind = p.p_kind;
                      target = Some target;
                      requested = amount;
                      available = Float.max 0.0 free;
                    }
                else None))
      None agg
  in
  match failure with
  | Some f -> Error f
  | None ->
      List.iter
        (fun ((target, resource), amount) ->
          let p = Option.get (find_pool t target resource) in
          let idx = index_of target in
          p.p_used.(idx) <- p.p_used.(idx) +. amount)
        agg;
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.add t.allocations id charge;
      Ok id

let release t id =
  match Hashtbl.find_opt t.allocations id with
  | None -> false
  | Some charge ->
      Hashtbl.remove t.allocations id;
      if t.external_id = Some id then t.external_id <- None;
      List.iter
        (fun ((target, resource), _) ->
          match find_pool t target resource with
          | Some p -> recompute t p (index_of target)
          | None -> ())
        (aggregate charge);
      true

let allocation_charge t id = Hashtbl.find_opt t.allocations id

let allocation_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.allocations [] |> List.sort compare

let migrate t id charge' =
  match Hashtbl.find_opt t.allocations id with
  | None -> invalid_arg (Printf.sprintf "Ledger.migrate: unknown allocation %d" id)
  | Some old -> (
      ignore (release t id);
      match try_commit t charge' with
      | Ok id' -> Ok id'
      | Error _ as e -> (
          (* Rollback: the old charge was held an instant ago, so
             re-committing it into the capacity its release freed can
             only fail by last-ulp noise, which the commit slack
             absorbs.  The allocation is restored under its original
             id, so the caller's handle stays valid. *)
          match try_commit t old with
          | Ok rid ->
              Hashtbl.remove t.allocations rid;
              Hashtbl.add t.allocations id old;
              e
          | Error f ->
              invalid_arg
                ("Ledger.migrate: rollback failed — " ^ failure_to_string f)))

let lock t v =
  check_index t (Node v);
  let charge =
    List.filter_map
      (fun p ->
        let free = p.p_capacity.(v) -. p.p_used.(v) in
        if p.p_present.(v) && free > 0.0 then
          Some { target = Node v; resource = p.p_resource; amount = free }
        else None)
      t.node_pools
  in
  match try_commit t charge with
  | Ok id -> id
  | Error f -> invalid_arg ("Ledger.lock: " ^ failure_to_string f)

let credit t charge =
  let agg = aggregate charge in
  match t.external_id with
  | None -> Error "nothing to credit: no external usage recorded"
  | Some ext_id ->
      let ext = Hashtbl.find t.allocations ext_id in
      (* Validate: the external allocation must cover every line. *)
      let covered ((target, resource), amount) =
        let held =
          List.fold_left
            (fun acc (l : line) ->
              if l.target = target && l.resource = resource then acc +. l.amount
              else acc)
            0.0 ext
        in
        if amount > held +. slack held then
          Some
            (Printf.sprintf "cannot credit %g %s on %s: only %g charged" amount
               resource (target_name target) held)
        else None
      in
      let error = List.find_map covered agg in
      (match error with
      | Some m -> Error m
      | None ->
          (* Subtract each aggregated amount from the external lines. *)
          let remaining = Hashtbl.create 16 in
          List.iter (fun (key, amount) -> Hashtbl.replace remaining key amount) agg;
          let ext' =
            List.filter_map
              (fun (l : line) ->
                let key = (l.target, l.resource) in
                match Hashtbl.find_opt remaining key with
                | None -> Some l
                | Some due when due <= 0.0 -> Some l
                | Some due ->
                    if due >= l.amount -. slack l.amount then begin
                      Hashtbl.replace remaining key (due -. l.amount);
                      None
                    end
                    else begin
                      Hashtbl.replace remaining key 0.0;
                      Some { l with amount = l.amount -. due }
                    end)
              ext
          in
          Hashtbl.replace t.allocations ext_id ext';
          List.iter
            (fun ((target, resource), _) ->
              match find_pool t target resource with
              | Some p -> recompute t p (index_of target)
              | None -> ())
            agg;
          Ok ())

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let residual_graph ?base t =
  let base = Option.value ~default:t.graph base in
  if
    Graph.node_count base <> Graph.node_count t.graph
    || Graph.edge_count base <> Graph.edge_count t.graph
  then invalid_arg "Ledger.residual_graph: base graph shape differs";
  let g = Graph.copy base in
  let stamp pools set_attrs get_attrs =
    List.iter
      (fun p ->
        Array.iteri
          (fun i present ->
            if present then
              set_attrs i
                (Attrs.add p.p_resource
                   (Value.Float (Float.max 0.0 (p.p_capacity.(i) -. p.p_used.(i))))
                   (get_attrs i)))
          p.p_present)
      pools
  in
  stamp t.node_pools (Graph.set_node_attrs g) (Graph.node_attrs g);
  stamp t.edge_pools (Graph.set_edge_attrs g) (Graph.edge_attrs g);
  g

let sync_residual t g =
  if
    Graph.node_count g <> Graph.node_count t.graph
    || Graph.edge_count g <> Graph.edge_count t.graph
  then invalid_arg "Ledger.sync_residual: residual graph shape differs";
  Hashtbl.reset t.allocations;
  t.external_id <- None;
  let lines = ref [] in
  let absorb pools mk_target get_attrs =
    List.iter
      (fun p ->
        Array.iteri
          (fun i present ->
            if present then begin
              let used_now =
                match Attrs.float p.p_resource (get_attrs i) with
                | Some r ->
                    Float.max 0.0 (Float.min p.p_capacity.(i) (p.p_capacity.(i) -. r))
                | None -> 0.0
              in
              p.p_used.(i) <- used_now;
              if used_now > 0.0 then
                lines :=
                  { target = mk_target i; resource = p.p_resource; amount = used_now }
                  :: !lines
            end)
          p.p_present)
      pools
  in
  absorb t.node_pools (fun i -> Node i) (Graph.node_attrs g);
  absorb t.edge_pools (fun i -> Edge i) (Graph.edge_attrs g);
  if !lines <> [] then begin
    let id = t.next_id in
    t.next_id <- id + 1;
    Hashtbl.add t.allocations id !lines;
    t.external_id <- Some id
  end

(* Residual-capacity dispersion of one pool: the share of free capacity
   sitting on *partially-used* elements.  An idle pool and a perfectly
   consolidated one both read 0 (all free capacity lies in untouched
   whole elements); a pool whose free capacity is scattered across
   half-full elements reads towards 1 — free capacity exists but no
   whole-element-sized block of it does, which is exactly the state a
   defragmentation pass undoes. *)
let pool_fragmentation p =
  let free_total = ref 0.0 and free_dispersed = ref 0.0 in
  Array.iteri
    (fun i c ->
      if p.p_present.(i) then begin
        let r = Float.max 0.0 (c -. p.p_used.(i)) in
        free_total := !free_total +. r;
        if p.p_used.(i) > 0.0 then free_dispersed := !free_dispersed +. r
      end)
    p.p_capacity;
  if !free_total <= 0.0 then 0.0 else !free_dispersed /. !free_total

let fragmentation t =
  List.map
    (fun p -> (p.p_resource, p.p_kind, pool_fragmentation p))
    (t.node_pools @ t.edge_pools)

let fragmentation_index t =
  match t.node_pools @ t.edge_pools with
  | [] -> 0.0
  | pools ->
      List.fold_left (fun acc p -> acc +. pool_fragmentation p) 0.0 pools
      /. float_of_int (List.length pools)

let utilization t =
  let summarize p =
    let used_total = ref 0.0 and cap_total = ref 0.0 in
    Array.iteri
      (fun i c ->
        if p.p_present.(i) then begin
          used_total := !used_total +. p.p_used.(i);
          cap_total := !cap_total +. c
        end)
      p.p_capacity;
    (p.p_resource, p.p_kind, !used_total, !cap_total)
  in
  List.map summarize t.node_pools @ List.map summarize t.edge_pools
