(** The resource ledger: fractional capacity accounting for the hosting
    network (paper, section III component 3 — resource reservation —
    generalized from whole-node locks to capacity vectors).

    A ledger tracks, per hosting node and per hosting link, how much of
    each declared capacity attribute (e.g. ["cpuMhz"], ["memMB"] on
    nodes, ["bandwidth"] on links) is consumed by outstanding
    allocations.  The accounting contract:

    - {!charge_of_mapping} derives an embedding's demand vector from
      the query's node/link attributes: a query node demanding
      [cpuMhz = 500] charges 500 MHz against its host node, a query
      link demanding [bandwidth = 10] charges 10 units against the
      host link its endpoints map across.
    - {!try_commit} debits a charge atomically: either every line fits
      within the residual capacities and the whole charge is recorded
      under a fresh allocation id, or nothing is debited and the first
      over-committed resource is returned.
    - {!release} credits an allocation back.  Residuals after release
      are recomputed from the outstanding allocations, so a full
      commit/release round-trip restores them {e exactly} (no floating
      drift accumulates).
    - {!residual_graph} materializes a hosting-graph snapshot whose
      capacity attributes hold the {e residual} values, so the search
      core prunes against what is actually free with no change to the
      constraint language: ["rSource.cpuMhz >= vSource.cpuMhz"]
      automatically accounts for co-located tenants.

    Capacity semantics: a resource is {e tracked} when at least one
    node (respectively edge) of the hosting graph carries a numeric
    value for it; elements without the attribute have zero capacity for
    that resource (nothing can be charged against them) and are left
    untouched by {!residual_graph}.  Demands for untracked resources
    are ignored — a host that declares no capacities behaves as the
    unlimited, unaccounted network of the original service.

    Concurrency: a ledger is a plain mutable structure with no internal
    locking — single-writer, like the service model it extends. *)

open Netembed_graph

type t

type kind = [ `Node | `Edge ]

type target = Node of Graph.node | Edge of Graph.edge

type line = { target : target; resource : string; amount : float }
(** One demand entry; [amount >= 0].  Lines against the same
    (target, resource) pair aggregate. *)

type charge = line list

type failure = {
  resource : string;  (** the over-committed resource *)
  kind : kind;
  target : target option;
      (** the first over-committed element; [None] when the failure is
          an aggregate admission shortfall *)
  requested : float;
  available : float;
}

val failure_to_string : failure -> string
(** E.g. ["over-committed cpuMhz on node 3: requested 1200, available 800"]. *)

val default_node_resources : string list
(** [["cpuMhz"; "memMB"]] *)

val default_edge_resources : string list
(** [["bandwidth"]] *)

val of_graph :
  ?node_resources:string list -> ?edge_resources:string list -> Graph.t -> t
(** Open a ledger over the hosting graph.  Capacities are read once,
    here; later attribute updates on the graph do not change them.
    Only resources with at least one numeric occurrence are tracked. *)

val graph : t -> Graph.t
val node_resources : t -> string list
(** The tracked node resources (subset of the requested list). *)

val edge_resources : t -> string list

val capacity : t -> target -> string -> float
(** Declared capacity (0 when the element lacks the attribute or the
    resource is untracked). *)

val used : t -> target -> string -> float
val residual : t -> target -> string -> float
(** [capacity - used]. *)

val top_residuals : t -> resource:string -> kind -> int -> (target * float) list
(** The elements with the largest residual of one tracked resource,
    descending, at most the requested number.  Empty when the resource
    is untracked on that element class.  Feeds the "closest we could
    offer" notes of an admission-rejection certificate. *)

val outstanding : t -> int
(** Number of live allocations. *)

(** {1 Demand derivation} *)

val charge_of_mapping :
  t -> query:Graph.t -> Netembed_core.Mapping.t -> (charge, string) result
(** The demand vector of an embedding: for every query node, its
    tracked node-resource attributes charged against the mapped host
    node; for every query edge with a tracked edge-resource demand, the
    charge lands on the host edge between the mapped endpoints.
    [Error] when a demanding query edge maps across a host pair with no
    direct link (e.g. a path embedding) — such mappings cannot be
    accounted by this ledger.  Demands [<= 0] and untracked resources
    contribute no lines. *)

val admissible : t -> query:Graph.t -> (unit, failure) result
(** Aggregate admission check, mapping-independent: for each tracked
    resource, the query's total demand must not exceed the total
    residual over the whole hosting network.  A necessary condition for
    any embedding of the query to commit — used to reject hopeless
    requests before searching. *)

(** {1 Accounting} *)

val try_commit : t -> charge -> (int, failure) result
(** Debit the charge atomically.  On [Ok id] every line is recorded
    under allocation [id]; on [Error] the ledger is untouched and the
    failure names the first over-committed (target, resource).
    @raise Invalid_argument on a negative line amount or an unknown
    target id. *)

val release : t -> int -> bool
(** Credit allocation [id] back; [false] if the id is unknown (already
    released).  Affected residuals are recomputed exactly from the
    remaining allocations. *)

val allocation_charge : t -> int -> charge option
(** The demand vector held by a live allocation ([None] when the id is
    unknown or already released) — the introspection a defragmentation
    pass needs to credit a victim's own footprint back before
    re-searching it. *)

val allocation_ids : t -> int list
(** The live allocation ids, ascending. *)

val migrate : t -> int -> charge -> (int, failure) result
(** [migrate t id charge'] atomically re-homes allocation [id]: its old
    charge is released and [charge'] committed in one step, returning
    the new allocation id.  On failure {e nothing changes}: the
    original allocation is restored under its original id with its
    original charge (so outstanding handles stay valid) and the failure
    names the over-committed resource.  Because the old charge is
    released first, a migration may land on capacity the victim itself
    is vacating.
    @raise Invalid_argument when [id] is not a live allocation. *)

val lock : t -> Graph.node -> int
(** The degenerate whole-node reservation: charge the {e entire
    residual} of every tracked node resource on the node (afterwards
    nothing fractional fits there).  Always succeeds; release with
    {!release}.  A node with no tracked capacity yields an empty (but
    live) allocation — the boolean reservation flag of the model
    remains the source of exclusion for such hosts. *)

val credit : t -> charge -> (unit, string) result
(** Reverse a charge that is not held as a live allocation — the
    restore path of the stateless CLI ([netembed free]), where usage
    was rebuilt from a residual snapshot via {!sync_residual}.  Fails
    (without changing anything) if any line exceeds the recorded
    external usage. *)

(** {1 Snapshots} *)

val residual_graph : ?base:Graph.t -> t -> Graph.t
(** A copy of [base] (default: the ledger's graph) with every tracked
    capacity attribute replaced by its residual value, on exactly the
    elements that declared it.  All other attributes are preserved.
    @raise Invalid_argument if [base] has different node/edge counts. *)

val sync_residual : t -> Graph.t -> unit
(** Reset usage from a residual snapshot: for every element that
    declared a resource, set [used = capacity - residual_attr]
    (clamped to [0, capacity]).  Outstanding allocations are dropped
    and the recovered usage is held as one external allocation —
    {!credit} can hand pieces of it back. *)

val utilization : t -> (string * kind * float * float) list
(** Per tracked resource: [(name, kind, total_used, total_capacity)],
    node resources first, each list in tracking order. *)

val fragmentation : t -> (string * kind * float) list
(** Per tracked resource: the residual-capacity dispersion in [0, 1] —
    the fraction of the resource's free capacity that sits on
    {e partially-used} elements.  0 when every free unit lies on a
    completely untouched element (idle network, or perfectly
    consolidated tenants); towards 1 when the free capacity is
    scattered across half-full elements, where no whole-element-sized
    block of it exists.  Node resources first, tracking order. *)

val fragmentation_index : t -> float
(** The mean of {!fragmentation} over all tracked resources (0 when
    nothing is tracked) — the scalar the online simulator's
    defragmentation threshold watches. *)
