module Problem = Netembed_core.Problem
module Filter = Netembed_core.Filter
module Dfs = Netembed_core.Dfs
module Budget = Netembed_core.Budget
module Mapping = Netembed_core.Mapping
module Engine = Netembed_core.Engine
module Domain_store = Netembed_core.Domain_store
module Rng = Netembed_rng.Rng
module Graph = Netembed_graph.Graph
module Telemetry = Netembed_telemetry.Telemetry

(* Scratch domains are mutable single-searcher state: every spawned
   domain builds its own store inside the domain, so the read-only
   problem and filter are shared but scratch never is. *)
let private_store problem =
  Domain_store.create
    ~universe:(Graph.node_count problem.Problem.host)
    ~depths:(Graph.node_count problem.Problem.query)

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* Each spawned domain records into a registry it owns (single-writer),
   filled from its private store and budget after its search returns;
   the spawner merges them into the caller's registry at join.  Metric
   names match the sequential engine's, so merged counts accumulate
   onto the same series. *)
let domain_registry ~algorithm ~budget ~store ~found =
  let reg = Telemetry.Registry.create () in
  let labels = [ ("algorithm", algorithm) ] in
  let visited =
    Telemetry.Registry.counter reg ~labels ~help:"Search-tree nodes visited"
      "netembed_visited_nodes_total"
  in
  Telemetry.Counter.add visited (Budget.visited budget);
  let found_c =
    Telemetry.Registry.counter reg ~labels ~help:"Feasible mappings found"
      "netembed_mappings_found_total"
  in
  Telemetry.Counter.add found_c found;
  let depth_h =
    Telemetry.Registry.histogram reg ~labels
      ~help:"Visits per search depth" "netembed_search_depth"
  in
  Telemetry.Histogram.merge_into ~dst:depth_h (Domain_store.depth_hist store);
  let size_h =
    Telemetry.Registry.histogram reg ~labels
      ~help:"Candidate-domain cardinality per computed domain"
      "netembed_domain_size"
  in
  Telemetry.Histogram.merge_into ~dst:size_h (Domain_store.domain_size_hist store);
  reg

(* Round-robin partition of a sorted candidate array into [k] sorted
   shares. *)
let partition k roots =
  let shares = Array.make k [] in
  Array.iteri (fun i r -> shares.(i mod k) <- r :: shares.(i mod k)) roots;
  Array.map (fun l -> Array.of_list (List.rev l)) shares

let ecf_all ?domains ?timeout ?filter ?(registry = Telemetry.default_registry) problem =
  let k = match domains with Some d -> max 1 d | None -> default_domains () in
  Problem.prepare problem;
  let filter = match filter with Some f -> f | None -> Filter.build problem in
  let order = Filter.order filter in
  if Array.length order = 0 then ([ Mapping.of_array [||] ], Engine.Complete)
  else begin
    let roots = Filter.node_candidates filter order.(0) in
    let shares = partition k roots in
    let run share () =
      let acc = ref [] in
      let store = private_store problem in
      let budget =
        Budget.make ?timeout ~depth_counts:(Domain_store.depth_counts store) ()
      in
      let exhausted =
        try
          Dfs.search ~root_candidates:share ~store problem filter
            ~candidate_order:Dfs.Ascending ~budget
            ~on_solution:(fun m ->
              acc := m :: !acc;
              `Continue);
          false
        with Budget.Exhausted -> true
      in
      let mappings = List.rev !acc in
      let reg =
        domain_registry ~algorithm:"ECF" ~budget ~store
          ~found:(List.length mappings)
      in
      (mappings, exhausted, reg)
    in
    let handles =
      Array.map (fun share -> Domain.spawn (run share)) shares
    in
    let results = Array.map Domain.join handles in
    Array.iter
      (fun (_, _, reg) -> Telemetry.Registry.merge_into ~dst:registry reg)
      results;
    let mappings = List.concat_map (fun (m, _, _) -> m) (Array.to_list results) in
    let any_exhausted = Array.exists (fun (_, e, _) -> e) results in
    let outcome =
      if not any_exhausted then Engine.Complete
      else if mappings = [] then Engine.Inconclusive
      else Engine.Partial
    in
    (mappings, outcome)
  end

let rwb_race ?domains ?timeout ?(seed = 42) ?(registry = Telemetry.default_registry)
    problem =
  let k = match domains with Some d -> max 1 d | None -> default_domains () in
  Problem.prepare problem;
  let filter = Filter.build problem in
  let winner : Mapping.t option Atomic.t = Atomic.make None in
  let run i () =
    let store = private_store problem in
    let budget =
      Budget.make ?timeout
        ~cancelled:(fun () -> Atomic.get winner <> None)
        ~depth_counts:(Domain_store.depth_counts store) ()
    in
    let found = ref 0 in
    (try
       Dfs.search ~store problem filter
         ~candidate_order:(Dfs.Random (Rng.make (seed + (1000 * i))))
         ~budget
         ~on_solution:(fun m ->
           incr found;
           ignore (Atomic.compare_and_set winner None (Some m));
           `Stop)
     with Budget.Exhausted -> ());
    domain_registry ~algorithm:"RWB" ~budget ~store ~found:!found
  in
  let handles = Array.init k (fun i -> Domain.spawn (run i)) in
  let regs = Array.map Domain.join handles in
  Array.iter (fun reg -> Telemetry.Registry.merge_into ~dst:registry reg) regs;
  Atomic.get winner

let speedup_probe ?domains problem =
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let seq =
    time (fun () ->
        Engine.run ~options:{ Engine.default_options with Engine.mode = Engine.All }
          Engine.ECF problem)
  in
  let par = time (fun () -> ecf_all ?domains problem) in
  (seq, par)
