module Problem = Netembed_core.Problem
module Filter = Netembed_core.Filter
module Dfs = Netembed_core.Dfs
module Budget = Netembed_core.Budget
module Mapping = Netembed_core.Mapping
module Engine = Netembed_core.Engine
module Domain_store = Netembed_core.Domain_store
module Rng = Netembed_rng.Rng
module Graph = Netembed_graph.Graph
module Telemetry = Netembed_telemetry.Telemetry

type strategy =
  | Static
  | Work_stealing

(* Scratch domains are mutable single-searcher state: every spawned
   domain builds its own store inside the domain, so the read-only
   problem and filter are shared but scratch never is. *)
let private_store problem =
  Domain_store.create
    ~universe:(Graph.node_count problem.Problem.host)
    ~depths:(Graph.node_count problem.Problem.query)

(* [reserved] lets a caller that already runs domains of its own (the
   TCP front-end's acceptor and worker pool) subtract them, so search
   and serving do not oversubscribe the same cores. *)
let default_domains ?(reserved = 0) () =
  max 1 (Domain.recommended_domain_count () - 1 - max 0 reserved)

(* The runtime supports at most ~128 live domains; requests beyond that
   would make [Domain.spawn] fail outright. *)
let clamp_domains k = max 1 (min k 126)

(* Each spawned domain records into a registry it owns (single-writer),
   filled from its private store and budget after its search returns;
   the spawner merges them into the caller's registry at join.  Metric
   names match the sequential engine's, so merged counts accumulate
   onto the same series. *)
let domain_registry ~algorithm ~budget ~store ~found =
  let reg = Telemetry.Registry.create () in
  let labels = [ ("algorithm", algorithm) ] in
  let visited =
    Telemetry.Registry.counter reg ~labels ~help:"Search-tree nodes visited"
      "netembed_visited_nodes_total"
  in
  Telemetry.Counter.add visited (Budget.visited budget);
  let found_c =
    Telemetry.Registry.counter reg ~labels ~help:"Feasible mappings found"
      "netembed_mappings_found_total"
  in
  Telemetry.Counter.add found_c found;
  let depth_h =
    Telemetry.Registry.histogram reg ~labels
      ~help:"Visits per search depth" "netembed_search_depth"
  in
  Telemetry.Histogram.merge_into ~dst:depth_h (Domain_store.depth_hist store);
  let size_h =
    Telemetry.Registry.histogram reg ~labels
      ~help:"Candidate-domain cardinality per computed domain"
      "netembed_domain_size"
  in
  Telemetry.Histogram.merge_into ~dst:size_h (Domain_store.domain_size_hist store);
  reg

(* Round-robin partition of a sorted candidate array into [k] sorted
   shares. *)
let partition k roots =
  let shares = Array.make k [] in
  Array.iteri (fun i r -> shares.(i mod k) <- r :: shares.(i mod k)) roots;
  Array.map (fun l -> Array.of_list (List.rev l)) shares

type stats = {
  mappings : Mapping.t list;
  outcome : Engine.outcome;
  elapsed : float;
  visited_by_domain : int array;
  steals : int;
  frames : int;
  domain_registries : Telemetry.Registry.t list;
  domain_stats : Domain_store.stats list;
}

let visited_total st = Array.fold_left ( + ) 0 st.visited_by_domain

(* ------------------------------------------------------------------ *)
(* Work-stealing deque                                                 *)
(* ------------------------------------------------------------------ *)

(* A mutex-protected resizable ring.  The owner pushes and pops at the
   back (LIFO — depth-first on its own subtree, keeping the frontier
   small); thieves take from the front (FIFO — the shallowest frames,
   which root the largest remaining subtrees, so one steal buys the
   most work).  Frames are coarse (a frame below the split horizon is a
   whole sequential subtree), so a plain mutex is nowhere near
   contended enough to matter; lock-free Chase-Lev is not worth the
   memory-model subtlety here. *)
module Deque = struct
  type 'a t = {
    lock : Mutex.t;
    dummy : 'a;
    mutable buf : 'a array;
    mutable head : int;  (* index of the oldest element *)
    mutable len : int;
    (* The deques are allocated back to back (one Array.init), and a
       bare 6-word record lets two deques' hot [head]/[len] words land
       in the same cache line — every steal probe then bounces the
       owner's line.  The padding spreads successive records past a
       64-byte line. *)
    mutable pad0 : int;
    mutable pad1 : int;
    mutable pad2 : int;
    mutable pad3 : int;
    mutable pad4 : int;
    mutable pad5 : int;
    mutable pad6 : int;
    mutable pad7 : int;
  }

  let create dummy =
    {
      lock = Mutex.create ();
      dummy;
      buf = Array.make 16 dummy;
      head = 0;
      len = 0;
      pad0 = 0;
      pad1 = 0;
      pad2 = 0;
      pad3 = 0;
      pad4 = 0;
      pad5 = 0;
      pad6 = 0;
      pad7 = 0;
    }

  (* Keep the flambda-less compiler from dropping the padding fields as
     unused. *)
  let _touch t = t.pad0 + t.pad1 + t.pad2 + t.pad3 + t.pad4 + t.pad5 + t.pad6 + t.pad7

  let grow t =
    let n = Array.length t.buf in
    let nb = Array.make (2 * n) t.dummy in
    for i = 0 to t.len - 1 do
      nb.(i) <- t.buf.((t.head + i) mod n)
    done;
    t.buf <- nb;
    t.head <- 0

  let push_back t x =
    Mutex.lock t.lock;
    if t.len = Array.length t.buf then grow t;
    t.buf.((t.head + t.len) mod Array.length t.buf) <- x;
    t.len <- t.len + 1;
    Mutex.unlock t.lock

  let pop_back t =
    Mutex.lock t.lock;
    let r =
      if t.len = 0 then None
      else begin
        t.len <- t.len - 1;
        let i = (t.head + t.len) mod Array.length t.buf in
        let x = t.buf.(i) in
        t.buf.(i) <- t.dummy;
        Some x
      end
    in
    Mutex.unlock t.lock;
    r

  let steal_front t =
    Mutex.lock t.lock;
    let r =
      if t.len = 0 then None
      else begin
        let x = t.buf.(t.head) in
        t.buf.(t.head) <- t.dummy;
        t.head <- (t.head + 1) mod Array.length t.buf;
        t.len <- t.len - 1;
        Some x
      end
    in
    Mutex.unlock t.lock;
    r
end

(* ------------------------------------------------------------------ *)
(* Schedulers                                                          *)
(* ------------------------------------------------------------------ *)

let trivial_stats ~mappings ~outcome ~elapsed ~k =
  {
    mappings;
    outcome;
    elapsed;
    visited_by_domain = Array.make k 0;
    steals = 0;
    frames = 0;
    domain_registries = [];
    domain_stats = [];
  }

(* Static root partitioning (the seed strategy): split the root
   candidates round-robin, one domain per NON-EMPTY share.  Empty
   shares (domains > root candidates) spawn nothing — they contribute
   an exhausted-by-construction subtree, so the outcome stays
   [Complete]; spawning them anyway would waste domains and, past the
   runtime's ~128-domain ceiling, crash. *)
let static_run ?trace ~k ~timeout ~registry problem filter =
  let t0 = Unix.gettimeofday () in
  let order = Filter.order filter in
  let roots = Filter.node_candidates filter order.(0) in
  let shares =
    partition k roots |> Array.to_list
    |> List.filter (fun s -> Array.length s > 0)
    |> Array.of_list
  in
  if Array.length shares = 0 then
    (* No root candidate at all: the search space is empty, which a
       sequential run proves by exhausting zero branches. *)
    trivial_stats ~mappings:[] ~outcome:Engine.Complete
      ~elapsed:(Unix.gettimeofday () -. t0)
      ~k
  else begin
    let run i share () =
      (* Worker-owned trace buffer (tid = worker index + 1; the
         dispatching domain is tid 0), merged by the spawner at join so
         the request's Chrome trace carries every domain's spans. *)
      let tbuf =
        match trace with
        | None -> None
        | Some _ -> Some (Telemetry.Trace.create ~tid:(i + 1) ())
      in
      let acc = ref [] in
      let store = private_store problem in
      let budget =
        Budget.make ?timeout ~depth_counts:(Domain_store.depth_counts store) ()
      in
      let exhausted =
        try
          Telemetry.Trace.span_opt tbuf "static_share" (fun () ->
              Dfs.search ~root_candidates:share ~store problem filter
                ~candidate_order:Dfs.Ascending ~budget
                ~on_solution:(fun m ->
                  acc := m :: !acc;
                  `Continue));
          false
        with Budget.Exhausted -> true
      in
      let mappings = List.rev !acc in
      let reg =
        domain_registry ~algorithm:"ECF" ~budget ~store
          ~found:(List.length mappings)
      in
      ( mappings,
        exhausted,
        reg,
        Budget.visited budget,
        Domain_store.stats store,
        tbuf )
    in
    let handles = Array.mapi (fun i share -> Domain.spawn (run i share)) shares in
    let results = Array.map Domain.join handles in
    Array.iter
      (fun (_, _, reg, _, _, tbuf) ->
        Telemetry.Registry.merge_into ~dst:registry reg;
        match (trace, tbuf) with
        | Some dst, Some src -> Telemetry.Trace.merge_into ~dst src
        | _ -> ())
      results;
    let mappings =
      List.concat_map (fun (m, _, _, _, _, _) -> m) (Array.to_list results)
    in
    let any_exhausted = Array.exists (fun (_, e, _, _, _, _) -> e) results in
    let outcome =
      if not any_exhausted then Engine.Complete
      else if mappings = [] then Engine.Inconclusive
      else Engine.Partial
    in
    {
      mappings;
      outcome;
      elapsed = Unix.gettimeofday () -. t0;
      visited_by_domain = Array.map (fun (_, _, _, v, _, _) -> v) results;
      steals = 0;
      frames = 0;
      domain_registries =
        Array.to_list (Array.map (fun (_, _, r, _, _, _) -> r) results);
      domain_stats = Array.to_list (Array.map (fun (_, _, _, _, s, _) -> s) results);
    }
  end

(* Work-stealing scheduler.  The tree is cut into resumable frames
   ({!Dfs.frame}): frames shallower than the split horizon are expanded
   one level (children pushed on the owner's deque, stealable); frames
   at the horizon run to exhaustion as ordinary sequential subtree
   searches.  [pending] counts frames created but not yet fully
   processed — push increments before the frame becomes visible, the
   processing worker decrements after its children (if any) are pushed,
   so [pending = 0] is a race-free global-completion certificate.

   A worker whose budget is exhausted keeps draining frames (dropping
   them unsearched, still decrementing [pending]) so siblings never
   wait on a dead deque; the run is [Partial]/[Inconclusive] then
   anyway.  Idle workers back off to [Unix.sleepf] after a burst of
   failed steals: on machines with fewer cores than domains a spinning
   thief would stall the stop-the-world minor GC of the workers that
   actually hold frames. *)
let ws_run ?trace ~k ~timeout ~split_depth ~registry problem filter =
  let t0 = Unix.gettimeofday () in
  let order = Filter.order filter in
  let nq = Array.length order in
  let split_limit = max 0 (min split_depth (nq - 1)) in
  let dummy = { Dfs.prefix = [||]; candidates = [||] } in
  let deques = Array.init k (fun _ -> Deque.create dummy) in
  let pending = Atomic.make 0 in
  let roots = Filter.node_candidates filter order.(0) in
  let shares = partition k roots in
  Array.iteri
    (fun i share ->
      if Array.length share > 0 then begin
        Atomic.incr pending;
        Deque.push_back deques.(i) { Dfs.prefix = [||]; candidates = share }
      end)
    shares;
  let run i () =
    (* Worker-owned trace buffer (tid = worker index + 1; the
       dispatching domain is tid 0).  Frames are coarse — a frame at
       the split horizon is a whole sequential subtree — so one span
       per frame stays cheap, and stolen frames record on the thief's
       tid while still belonging to the originating request's trace. *)
    let tbuf =
      match trace with
      | None -> None
      | Some _ -> Some (Telemetry.Trace.create ~tid:(i + 1) ())
    in
    let store = private_store problem in
    let budget =
      Budget.make ?timeout ~depth_counts:(Domain_store.depth_counts store) ()
    in
    let acc = ref [] in
    let steals = ref 0 in
    let backoffs = ref 0 in
    let frames_expanded = ref 0 in
    let exhausted = ref false in
    let my = deques.(i) in
    let handle fr =
      if not !exhausted then
        try
          if Dfs.frame_depth fr >= split_limit then
            Telemetry.Trace.span_opt tbuf "search_frame" (fun () ->
                Dfs.search_frame ~store problem filter ~frame:fr
                  ~candidate_order:Dfs.Ascending ~budget
                  ~on_solution:(fun m ->
                    acc := m :: !acc;
                    `Continue))
          else begin
            let children =
              Telemetry.Trace.span_opt tbuf "expand_frame" (fun () ->
                  Dfs.expand_frame ~store problem filter fr
                    ~on_solution:(fun m -> acc := m :: !acc))
            in
            incr frames_expanded;
            List.iter
              (fun c ->
                Atomic.incr pending;
                Deque.push_back my c)
              children
          end
        with Budget.Exhausted -> exhausted := true
    in
    (* The decrement must survive any exception out of [handle]: a lost
       decrement would leave [pending] positive forever and every other
       worker spinning. *)
    let process fr =
      Fun.protect
        ~finally:(fun () -> ignore (Atomic.fetch_and_add pending (-1)))
        (fun () -> handle fr)
    in
    let rec loop failed_steals =
      match Deque.pop_back my with
      | Some fr ->
          process fr;
          loop 0
      | None ->
          if Atomic.get pending = 0 then ()
          else begin
            let stolen = ref None in
            let j = ref 1 in
            while !stolen = None && !j < k do
              (match Deque.steal_front deques.((i + !j) mod k) with
              | Some fr -> stolen := Some fr
              | None -> ());
              incr j
            done;
            match !stolen with
            | Some fr ->
                incr steals;
                process fr;
                loop 0
            | None ->
                (* Short spin burst, then exponentially longer sleeps
                   (0.2 ms doubling to a 3.2 ms cap).  On machines with
                   fewer cores than domains the thieves time-slice
                   against the workers that hold frames: a thief that
                   spins (or wakes every 0.2 ms) steals the productive
                   worker's quantum and stalls its minor-GC barriers —
                   the measured work-stealing regression at 4-8 domains
                   on scarce cores.  Sleeping thieves cost at most one
                   backoff period of wake-up latency when work does
                   appear. *)
                if failed_steals < 16 then Domain.cpu_relax ()
                else begin
                  incr backoffs;
                  let shift = min 4 ((failed_steals - 16) / 8) in
                  Unix.sleepf (0.0002 *. float_of_int (1 lsl shift))
                end;
                loop (failed_steals + 1)
          end
    in
    loop 0;
    let mappings = List.rev !acc in
    let reg =
      domain_registry ~algorithm:"ECF" ~budget ~store ~found:(List.length mappings)
    in
    let steals_c =
      Telemetry.Registry.counter reg
        ~help:"Search frames stolen from sibling deques by idle domains"
        "netembed_steals_total"
    in
    Telemetry.Counter.add steals_c !steals;
    (* Per-domain labeled series ride the same merge: the scheduler's
       imbalance (who stole, who slept) survives the join instead of
       collapsing into one total. *)
    Telemetry.Counter.add
      (Telemetry.Registry.counter reg
         ~help:"Search frames stolen from sibling deques by idle domains"
         ~labels:[ ("domain", string_of_int i) ]
         "netembed_steals_total")
      !steals;
    Telemetry.Counter.add
      (Telemetry.Registry.counter reg
         ~help:"Sleep backoffs taken by idle domains after failed steal sweeps"
         "netembed_steal_backoffs_total")
      !backoffs;
    Telemetry.Counter.add
      (Telemetry.Registry.counter reg
         ~help:"Sleep backoffs taken by idle domains after failed steal sweeps"
         ~labels:[ ("domain", string_of_int i) ]
         "netembed_steal_backoffs_total")
      !backoffs;
    ( mappings,
      !exhausted,
      reg,
      Budget.visited budget,
      !steals,
      !frames_expanded,
      Domain_store.stats store,
      tbuf )
  in
  let handles = Array.init k (fun i -> Domain.spawn (run i)) in
  let results = Array.map Domain.join handles in
  Array.iter
    (fun (_, _, reg, _, _, _, _, tbuf) ->
      Telemetry.Registry.merge_into ~dst:registry reg;
      match (trace, tbuf) with
      | Some dst, Some src -> Telemetry.Trace.merge_into ~dst src
      | _ -> ())
    results;
  let mappings =
    List.concat_map (fun (m, _, _, _, _, _, _, _) -> m) (Array.to_list results)
  in
  let any_exhausted = Array.exists (fun (_, e, _, _, _, _, _, _) -> e) results in
  let outcome =
    if not any_exhausted then Engine.Complete
    else if mappings = [] then Engine.Inconclusive
    else Engine.Partial
  in
  {
    mappings;
    outcome;
    elapsed = Unix.gettimeofday () -. t0;
    visited_by_domain = Array.map (fun (_, _, _, v, _, _, _, _) -> v) results;
    steals = Array.fold_left (fun a (_, _, _, _, s, _, _, _) -> a + s) 0 results;
    frames = Array.fold_left (fun a (_, _, _, _, _, f, _, _) -> a + f) 0 results;
    domain_registries =
      Array.to_list (Array.map (fun (_, _, r, _, _, _, _, _) -> r) results);
    domain_stats =
      Array.to_list (Array.map (fun (_, _, _, _, _, _, s, _) -> s) results);
  }

let ecf_all_stats ?(strategy = Work_stealing) ?domains ?timeout ?(split_depth = 2)
    ?filter ?(registry = Telemetry.default_registry) ?trace problem =
  let k =
    clamp_domains (match domains with Some d -> d | None -> default_domains ())
  in
  Problem.prepare problem;
  let t0 = Unix.gettimeofday () in
  let filter = match filter with Some f -> f | None -> Filter.build problem in
  let order = Filter.order filter in
  if Array.length order = 0 then
    trivial_stats
      ~mappings:[ Mapping.of_array [||] ]
      ~outcome:Engine.Complete
      ~elapsed:(Unix.gettimeofday () -. t0)
      ~k
  else
    match strategy with
    | Static -> static_run ?trace ~k ~timeout ~registry problem filter
    | Work_stealing ->
        ws_run ?trace ~k ~timeout ~split_depth ~registry problem filter

let ecf_all ?strategy ?domains ?timeout ?split_depth ?filter ?registry ?trace
    problem =
  let st =
    ecf_all_stats ?strategy ?domains ?timeout ?split_depth ?filter ?registry ?trace
      problem
  in
  (st.mappings, st.outcome)

let rwb_race ?domains ?timeout ?(seed = 42) ?(rendezvous = fun _ -> ())
    ?(registry = Telemetry.default_registry) problem =
  let k =
    clamp_domains (match domains with Some d -> d | None -> default_domains ())
  in
  Problem.prepare problem;
  let filter = Filter.build problem in
  let winner : Mapping.t option Atomic.t = Atomic.make None in
  let run i () =
    let store = private_store problem in
    let budget =
      Budget.make ?timeout
        ~cancelled:(fun () -> Atomic.get winner <> None)
        ~depth_counts:(Domain_store.depth_counts store) ()
    in
    let found = ref 0 in
    rendezvous i;
    (try
       Dfs.search ~store problem filter
         ~candidate_order:(Dfs.Random (Rng.make (seed + (1000 * i))))
         ~budget
         ~on_solution:(fun m ->
           incr found;
           ignore (Atomic.compare_and_set winner None (Some m));
           `Stop)
     with Budget.Exhausted -> ());
    domain_registry ~algorithm:"RWB" ~budget ~store ~found:!found
  in
  let handles = Array.init k (fun i -> Domain.spawn (run i)) in
  let regs = Array.map Domain.join handles in
  Array.iter (fun reg -> Telemetry.Registry.merge_into ~dst:registry reg) regs;
  Atomic.get winner

let speedup_probe ?domains problem =
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let seq =
    time (fun () ->
        Engine.run ~options:{ Engine.default_options with Engine.mode = Engine.All }
          Engine.ECF problem)
  in
  let par = time (fun () -> ecf_all ?domains problem) in
  (seq, par)
