(** Multicore search — a realization of the paper's future-work remark
    that NETEMBED can be "implemented in a distributed fashion, which
    would be advantageous for both service scalability", scaled down to
    the shared-memory case on OCaml 5 domains.

    Two strategies are provided:

    - {!ecf_all}: the permutations tree is split at the root — the
      candidate set of the first query node in the search order is
      partitioned round-robin across domains, each of which runs the
      ordinary (sequential, exhaustive) ECF on its share.  The union of
      the per-domain results equals sequential ECF's result set, because
      subtrees under distinct root assignments are disjoint.

    - {!rwb_race}: independent RWB searches with different seeds race;
      the first solution cancels the rest (cooperatively, through the
      budget's cancellation hook).

    Both force the problem's lazy caches before spawning
    ({!Netembed_core.Problem.prepare}) and share the problem and filter
    read-only.  Mutable search state is never shared: each spawned
    domain allocates its own {!Netembed_core.Domain_store} scratch pool
    inside the domain, so the bitset filter cells are read concurrently
    while candidate domains are computed into private scratch.

    Telemetry follows the same single-writer discipline: each spawned
    domain fills a private {!Netembed_telemetry.Telemetry.Registry}
    (visited/found counters plus depth and domain-size histograms,
    labeled by algorithm) and the spawner merges them into [registry]
    at join — {!Netembed_telemetry.Telemetry.default_registry} unless
    overridden. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1. *)

val ecf_all :
  ?domains:int ->
  ?timeout:float ->
  ?filter:Netembed_core.Filter.t ->
  ?registry:Netembed_telemetry.Telemetry.Registry.t ->
  Netembed_core.Problem.t ->
  Netembed_core.Mapping.t list * Netembed_core.Engine.outcome
(** All feasible embeddings (order unspecified).  Outcome is [Complete]
    when every domain exhausted its share, [Partial]/[Inconclusive] on
    timeout, as in the sequential engine.

    Filter construction is sequential (it is the dominant cost on
    filter-heavy instances — Amdahl applies); pass a prebuilt [filter]
    to amortize it across runs or to measure pure search scaling. *)

val rwb_race :
  ?domains:int ->
  ?timeout:float ->
  ?seed:int ->
  ?registry:Netembed_telemetry.Telemetry.Registry.t ->
  Netembed_core.Problem.t ->
  Netembed_core.Mapping.t option
(** First feasible embedding found by any racer, if any. *)

val speedup_probe :
  ?domains:int -> Netembed_core.Problem.t -> float * float
(** [(sequential_seconds, parallel_seconds)] for an all-matches ECF run
    — the measurement behind the parallel-ablation bench. *)
