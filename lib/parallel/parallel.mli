(** Multicore search — a realization of the paper's future-work remark
    that NETEMBED can be "implemented in a distributed fashion, which
    would be advantageous for both service scalability", scaled down to
    the shared-memory case on OCaml 5 domains.

    Two exhaustive-search strategies are provided (see
    [docs/parallel.md] for the design):

    - {!Work_stealing} (the default): the permutations tree is cut into
      resumable {!Netembed_core.Dfs.frame}s.  Each domain owns a deque
      of frames; frames above a split horizon are expanded one level
      (children become stealable), frames at the horizon run to
      exhaustion as ordinary sequential subtree searches.  Idle domains
      steal the shallowest frame from a sibling, so a skewed tree no
      longer serializes on one unlucky domain.

    - {!Static} (the seed strategy): the candidate set of the first
      query node in the search order is partitioned round-robin across
      domains, each of which runs sequential ECF on its share with no
      load balancing.  Kept as the ablation baseline and as the
      conformance-oracle second opinion.

    Under either strategy the union of the per-domain result sets
    equals sequential ECF's result set (subtrees under distinct frames
    are disjoint); only the order of the returned list varies between
    runs.  {!rwb_race} races independent randomized searches and
    cancels the losers on the first win.

    All entry points force the problem's lazy caches before spawning
    ({!Netembed_core.Problem.prepare}) and share the problem and filter
    read-only.  Mutable search state is never shared: each spawned
    domain allocates its own {!Netembed_core.Domain_store} scratch pool
    inside the domain, so the bitset filter cells are read concurrently
    while candidate domains are computed into private scratch.

    Telemetry follows the same single-writer discipline: each spawned
    domain fills a private {!Netembed_telemetry.Telemetry.Registry}
    (visited/found counters plus depth and domain-size histograms,
    labeled by algorithm; work-stealing workers add
    [netembed_steals_total]) and the spawner merges them into
    [registry] at join — {!Netembed_telemetry.Telemetry.default_registry}
    unless overridden. *)

type strategy =
  | Static  (** Round-robin root partitioning, no load balancing. *)
  | Work_stealing  (** Frame deques with stealing (default). *)

val default_domains : ?reserved:int -> unit -> int
(** [Domain.recommended_domain_count () - 1 - reserved], at least 1.
    [reserved] (default 0) is the number of domains the caller already
    dedicates elsewhere (e.g. the front-end's worker pool), so the
    search pool is sized from the cores actually left over. *)

type stats = {
  mappings : Netembed_core.Mapping.t list;
  outcome : Netembed_core.Engine.outcome;
  elapsed : float;  (** wall-clock seconds, spawn to last join *)
  visited_by_domain : int array;
      (** search-tree nodes visited by each spawned domain — the
          per-domain work split the scaling ablation reports *)
  steals : int;  (** frames taken from a sibling's deque (0 for Static) *)
  frames : int;  (** frames expanded by the scheduler (0 for Static) *)
  domain_registries : Netembed_telemetry.Telemetry.Registry.t list;
      (** the per-domain registries, already merged into [registry] *)
  domain_stats : Netembed_core.Domain_store.stats list;
}

val visited_total : stats -> int

val ecf_all :
  ?strategy:strategy ->
  ?domains:int ->
  ?timeout:float ->
  ?split_depth:int ->
  ?filter:Netembed_core.Filter.t ->
  ?registry:Netembed_telemetry.Telemetry.Registry.t ->
  ?trace:Netembed_telemetry.Telemetry.Trace.buffer ->
  Netembed_core.Problem.t ->
  Netembed_core.Mapping.t list * Netembed_core.Engine.outcome
(** All feasible embeddings (order unspecified).  Outcome is [Complete]
    when every subtree was exhausted — including the degenerate case
    where [domains] exceeds the root candidate count, so some shares
    are empty — and [Partial]/[Inconclusive] on timeout, as in the
    sequential engine.

    [split_depth] (default 2) is the work-stealing split horizon:
    frames assigned fewer than [split_depth] order positions are
    expanded into stealable children; deeper frames run sequentially.
    Ignored by [Static].

    Filter construction is sequential (it is the dominant cost on
    filter-heavy instances — Amdahl applies); pass a prebuilt [filter]
    to amortize it across runs (the service's cross-request filter
    cache does exactly this) or to measure pure search scaling.

    [trace], when given, receives one complete span per processed
    frame: each worker records into a private buffer (tid = worker
    index + 1) merged into [trace] at join, so spans from stolen
    frames still attribute to the originating request's trace — the
    request-scoped Chrome-trace export of the service.  The untraced
    path pays one [None] branch per frame. *)

val ecf_all_stats :
  ?strategy:strategy ->
  ?domains:int ->
  ?timeout:float ->
  ?split_depth:int ->
  ?filter:Netembed_core.Filter.t ->
  ?registry:Netembed_telemetry.Telemetry.Registry.t ->
  ?trace:Netembed_telemetry.Telemetry.Trace.buffer ->
  Netembed_core.Problem.t ->
  stats
(** As {!ecf_all}, returning the full scheduler accounting. *)

val rwb_race :
  ?domains:int ->
  ?timeout:float ->
  ?seed:int ->
  ?rendezvous:(int -> unit) ->
  ?registry:Netembed_telemetry.Telemetry.Registry.t ->
  Netembed_core.Problem.t ->
  Netembed_core.Mapping.t option
(** First feasible embedding found by any racer, if any.  Racer [i]
    seeds its RNG with [seed + 1000 * i]; the first win cancels the
    rest cooperatively through the budget's cancellation hook.

    [rendezvous i] is called inside racer [i]'s domain after its
    scratch state is built, immediately before its search starts.
    Tests use it as a start barrier — all racers are then known to be
    live before any can win, making cancellation deterministic without
    sleeps.  Default: no-op. *)

val speedup_probe :
  ?domains:int -> Netembed_core.Problem.t -> float * float
(** [(sequential_seconds, parallel_seconds)] for an all-matches ECF run
    — the measurement behind the parallel-ablation bench. *)
