open Netembed_graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Rng = Netembed_rng.Rng

type params = { sites : int; down_fraction : float; pair_success : float }

(* 296 live-fraction^2 * success * C(296,2) = 28,996:
   with 3% down, C(287,2) = 41,041 measured candidates, so success ~ 0.7065. *)
let default = { sites = 296; down_fraction = 0.03; pair_success = 0.7065 }

type region = NA | EU | AS | OC

let regions = [| NA; EU; AS; OC |]
let region_weight = function NA -> 0.40 | EU -> 0.35 | AS -> 0.20 | OC -> 0.05
let region_name = function NA -> "na" | EU -> "eu" | AS -> "as" | OC -> "oc"

let pick_region rng =
  let x = Rng.float rng 1.0 in
  let rec go i acc =
    if i = Array.length regions - 1 then regions.(i)
    else
      let acc = acc +. region_weight regions.(i) in
      if x < acc then regions.(i) else go (i + 1) acc
  in
  go 0 0.0

(* Cluster-pair avg-delay bands (ms), tuned to the paper's quantiles:
   ~23% of links in [10,100], ~70% in [25,175]. *)
let delay_band a b =
  match if a <= b then (a, b) else (b, a) with
  | NA, NA | EU, EU -> (20.0, 115.0)
  | AS, AS | OC, OC -> (25.0, 130.0)
  | NA, EU -> (90.0, 170.0)
  | NA, AS -> (140.0, 230.0)
  | EU, AS -> (150.0, 240.0)
  | NA, OC | EU, OC | AS, OC -> (170.0, 290.0)
  | EU, NA | AS, NA | AS, EU | OC, NA | OC, EU | OC, AS ->
      assert false (* normalized above *)

let os_types = [| "linux-2.4"; "linux-2.6"; "linux-2.6-64" |]

let site_attrs rng idx region =
  let cpu = 1000 + (200 * Rng.int rng 11) in
  let mem = 512 * (1 + Rng.int rng 8) in
  Attrs.of_list
    [
      ("name", Value.String (Printf.sprintf "planetlab%d.site%03d.%s" (1 + Rng.int rng 4) idx (region_name region)));
      ("region", Value.String (region_name region));
      ("osType", Value.String (Rng.pick rng os_types));
      ("cpuMhz", Value.Int cpu);
      ("memMB", Value.Int mem);
    ]

let edge_attrs rng band =
  let lo, hi = band in
  let avg = Rng.uniform rng ~lo ~hi in
  (* Ping min/max sit close to the average on healthy paths (the paper's
     range-containment constraint is near-discriminating: each measured
     link's band fits inside few other links' bands); a small fraction
     of paths show congestion spikes on the max. *)
  let mn = avg *. (1.0 -. 0.01 -. (0.02 *. Rng.float rng 1.0)) in
  let spike =
    if Rng.float rng 1.0 < 0.02 then 0.3 *. Rng.exponential rng ~mean:1.0 else 0.0
  in
  let mx = avg *. (1.0 +. 0.01 +. (0.02 *. Rng.float rng 1.0) +. Float.min spike 1.0) in
  (* Available bandwidth (Mbps): long paths see less; jitter keeps pairs
     distinguishable.  This is the capacity the resource ledger debits. *)
  let bw = Float.max 5.0 (Rng.uniform rng ~lo:40.0 ~hi:100.0 -. (avg /. 5.0)) in
  Attrs.of_list
    [
      ("minDelay", Value.Float mn);
      ("avgDelay", Value.Float avg);
      ("maxDelay", Value.Float mx);
      ("bandwidth", Value.Float bw);
    ]

let generate rng p =
  if p.sites < 2 then invalid_arg "Trace.generate: sites < 2";
  let g = Graph.create ~name:(Printf.sprintf "planetlab-%d" p.sites) () in
  let region = Array.make p.sites NA in
  let up = Array.make p.sites true in
  for i = 0 to p.sites - 1 do
    let r = pick_region rng in
    region.(i) <- r;
    up.(i) <- Rng.float rng 1.0 >= p.down_fraction;
    ignore (Graph.add_node g (site_attrs rng i r))
  done;
  for i = 0 to p.sites - 1 do
    for j = i + 1 to p.sites - 1 do
      if up.(i) && up.(j) && Rng.float rng 1.0 < p.pair_success then
        ignore (Graph.add_edge g i j (edge_attrs rng (delay_band region.(i) region.(j))))
    done
  done;
  g

let delay_fraction_in g ~lo ~hi =
  let m = Graph.edge_count g in
  if m = 0 then 0.0
  else begin
    let hits = ref 0 in
    Graph.iter_edges
      (fun e _ _ ->
        match Attrs.float "avgDelay" (Graph.edge_attrs g e) with
        | Some d when d >= lo && d <= hi -> incr hits
        | Some _ | None -> ())
      g;
    float_of_int !hits /. float_of_int m
  end

let save g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "#sites %d\n" (Graph.node_count g);
      Graph.iter_nodes
        (fun v ->
          let a = Graph.node_attrs g v in
          let str k = Option.value ~default:"?" (Attrs.string k a) in
          let num k = match Attrs.float k a with Some f -> int_of_float f | None -> 0 in
          Printf.fprintf oc "site %d %s %s %s %d %d\n" v (str "name") (str "region")
            (str "osType") (num "cpuMhz") (num "memMB"))
        g;
      Graph.iter_edges
        (fun e u v ->
          let a = Graph.edge_attrs g e in
          let num k = Option.value ~default:0.0 (Attrs.float k a) in
          Printf.fprintf oc "%d %d %.3f %.3f %.3f %.3f\n" u v (num "minDelay")
            (num "avgDelay") (num "maxDelay") (num "bandwidth"))
        g)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let g = Graph.create ~name:(Filename.basename path) () in
      let fail line = failwith (Printf.sprintf "Trace.load: malformed line %S" line) in
      (try
         while true do
           let line = input_line ic in
           match String.split_on_char ' ' (String.trim line) with
           | [] | [ "" ] -> ()
           | [ "#sites"; n ] ->
               let n = try int_of_string n with Failure _ -> fail line in
               for _ = 1 to n do
                 ignore (Graph.add_node g Attrs.empty)
               done
           | [ "site"; id; name; region; os; cpu; mem ] ->
               let id = try int_of_string id with Failure _ -> fail line in
               Graph.set_node_attrs g id
                 (Attrs.of_list
                    [
                      ("name", Value.String name);
                      ("region", Value.String region);
                      ("osType", Value.String os);
                      ("cpuMhz", Value.Int (try int_of_string cpu with Failure _ -> fail line));
                      ("memMB", Value.Int (try int_of_string mem with Failure _ -> fail line));
                    ])
           (* Edge lines: 5 fields from pre-ledger traces (no bandwidth
              column), 6 fields since bandwidth became a tracked capacity. *)
           | [ u; v; mn; avg; mx ] ->
               let int s = try int_of_string s with Failure _ -> fail line in
               let flt s = try float_of_string s with Failure _ -> fail line in
               ignore
                 (Graph.add_edge g (int u) (int v)
                    (Attrs.of_list
                       [
                         ("minDelay", Value.Float (flt mn));
                         ("avgDelay", Value.Float (flt avg));
                         ("maxDelay", Value.Float (flt mx));
                       ]))
           | [ u; v; mn; avg; mx; bw ] ->
               let int s = try int_of_string s with Failure _ -> fail line in
               let flt s = try float_of_string s with Failure _ -> fail line in
               ignore
                 (Graph.add_edge g (int u) (int v)
                    (Attrs.of_list
                       [
                         ("minDelay", Value.Float (flt mn));
                         ("avgDelay", Value.Float (flt avg));
                         ("maxDelay", Value.Float (flt mx));
                         ("bandwidth", Value.Float (flt bw));
                       ]))
           | _ -> fail line
         done
       with End_of_file -> ());
      g)
