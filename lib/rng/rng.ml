type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand seeds into xoshiro state words. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let make seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  (* xoshiro must not be seeded with the all-zero state. *)
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (bits64 t) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling over the top 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let bound64 = Int64.of_int bound in
  let limit = Int64.sub mask (Int64.rem mask bound64) in
  let rec draw () =
    let v = Int64.logand (bits64 t) mask in
    if v > limit then draw () else Int64.to_int (Int64.rem v bound64)
  in
  draw ()

let float t bound =
  (* 53 random bits mapped to [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L
let uniform t ~lo ~hi = lo +. float t (hi -. lo)

let exponential t ~mean =
  let u = float t 1.0 in
  -.mean *. log (1.0 -. u)

let normal t ~mean ~stddev =
  (* Box-Muller; one draw discarded for simplicity of state handling. *)
  let rec nonzero () =
    let u = float t 1.0 in
    if u <= 0.0 then nonzero () else u
  in
  let u1 = nonzero () in
  let u2 = float t 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let pareto t ~shape ~scale =
  let u = float t 1.0 in
  scale /. ((1.0 -. u) ** (1.0 /. shape))

let bounded_pareto t ~shape ~scale ~cap =
  if shape <= 0.0 then invalid_arg "Rng.bounded_pareto: shape <= 0";
  if scale <= 0.0 || cap < scale then
    invalid_arg "Rng.bounded_pareto: need 0 < scale <= cap";
  (* Inverse CDF of the truncated Pareto — no probability mass piles up
     at [cap] the way clamping {!pareto} would. *)
  let u = float t 1.0 in
  let ratio = (scale /. cap) ** shape in
  scale /. ((1.0 -. (u *. (1.0 -. ratio))) ** (1.0 /. shape))

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n <= 0";
  (* Inverse-CDF over the (small) support; fine for workload generation. *)
  let total = ref 0.0 in
  for k = 1 to n do
    total := !total +. (1.0 /. (float_of_int k ** s))
  done;
  let target = float t !total in
  let rec find k acc =
    if k >= n then n
    else
      let acc = acc +. (1.0 /. (float_of_int k ** s)) in
      if acc >= target then k else find (k + 1) acc
  in
  find 1 0.0

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle_prefix t arr k =
  if k < 0 || k > Array.length arr then invalid_arg "Rng.shuffle_prefix";
  for i = k - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Partial Fisher-Yates over an index array. *)
  let idx = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + int t (n - i) in
    let tmp = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- tmp
  done;
  Array.sub idx 0 k
