(** Deterministic pseudo-random number generation.

    Every stochastic component of the reproduction (topology generators,
    the synthetic PlanetLab trace, query sampling, RWB's random candidate
    order, the annealing/genetic baselines) draws from an explicit
    generator state so that experiments are replayable from a seed.

    The generator is xoshiro256** (Blackman & Vigna) seeded through
    splitmix64, both implemented here; states are splittable so parallel
    domains get independent streams. *)

type t

val make : int -> t
(** [make seed] builds a fresh generator from a 63-bit seed. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    independent of [t]'s subsequent output. *)

val copy : t -> t

(** {1 Raw draws} *)

val bits64 : t -> int64
(** Next 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

(** {1 Distributions} *)

val uniform : t -> lo:float -> hi:float -> float
val exponential : t -> mean:float -> float
val normal : t -> mean:float -> stddev:float -> float
val pareto : t -> shape:float -> scale:float -> float

val bounded_pareto : t -> shape:float -> scale:float -> cap:float -> float
(** Truncated Pareto on [\[scale, cap\]] via the inverse CDF (no
    probability atom at [cap], unlike clamping {!pareto}) — heavy-tailed
    tenant holding times whose tail cannot outlive a finite simulation
    horizon.  @raise Invalid_argument unless
    [shape > 0 && 0 < scale <= cap]. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws a rank in [\[1, n\]] with P(k) proportional to
    [1 / k**s]. *)

(** {1 Collections} *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on
    empty input. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val shuffle_prefix : t -> 'a array -> int -> unit
(** [shuffle_prefix t arr k] Fisher-Yates-shuffles [arr.(0 .. k-1)] in
    place, leaving the rest untouched — RWB randomizes the filled
    prefix of a reused enumeration buffer instead of copying the
    candidate set.  @raise Invalid_argument when [k] is out of range. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] is [k] distinct values drawn
    uniformly from [\[0, n)], in random order.
    @raise Invalid_argument if [k > n] or [k < 0]. *)
