module Filter = Netembed_core.Filter
module Problem = Netembed_core.Problem
module Graph = Netembed_graph.Graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value

type entry = {
  filter : Filter.t;
  compiled : Problem.compiled;
  mutable last_use : int;
}

type t = {
  capacity : int;
  tbl : (int * string, entry) Hashtbl.t;
  mutable clock : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ?(capacity = 32) () =
  if capacity < 1 then invalid_arg "Filter_cache.create: capacity must be >= 1";
  { capacity; tbl = Hashtbl.create 64; clock = 0; evictions = 0; invalidations = 0 }

let length t = Hashtbl.length t.tbl
let capacity t = t.capacity
let evictions t = t.evictions
let invalidations t = t.invalidations

(* ------------------------------------------------------------------ *)
(* Query signature                                                     *)
(* ------------------------------------------------------------------ *)

(* The signature is an exact canonical serialization of everything the
   filter build reads from the request: query topology (nodes in id
   order, edges in edge-id order with endpoints), every attribute value
   (tagged by constructor, floats in lossless %h form), and both
   constraint texts verbatim.  Exact-string keying deliberately trades
   hit rate for safety: two requests only share a cache line when the
   build provably reads identical inputs, so a collision can never
   hand a request somebody else's filter.  The host side of the build
   is keyed separately, by model revision. *)
let value_sig buf (v : Value.t) =
  match v with
  | Value.Bool b -> Buffer.add_string buf (if b then "B1" else "B0")
  | Value.Int i ->
      Buffer.add_char buf 'I';
      Buffer.add_string buf (string_of_int i)
  | Value.Float f -> Buffer.add_string buf (Printf.sprintf "F%h" f)
  | Value.String s ->
      Buffer.add_string buf (Printf.sprintf "S%d:" (String.length s));
      Buffer.add_string buf s
  | Value.Range (lo, hi) -> Buffer.add_string buf (Printf.sprintf "R%h,%h" lo hi)

let attrs_sig buf attrs =
  List.iter
    (fun (name, v) ->
      Buffer.add_char buf '|';
      Buffer.add_string buf name;
      Buffer.add_char buf '=';
      value_sig buf v)
    (Attrs.to_list attrs)

let signature ~(query : Graph.t) ~constraint_text ~node_constraint_text =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (match Graph.kind query with Graph.Directed -> "D" | Graph.Undirected -> "U");
  Buffer.add_string buf (string_of_int (Graph.node_count query));
  for n = 0 to Graph.node_count query - 1 do
    Buffer.add_string buf "\nN";
    Buffer.add_string buf (string_of_int n);
    attrs_sig buf (Graph.node_attrs query n)
  done;
  Array.iter
    (fun (e, u, v) ->
      Buffer.add_string buf (Printf.sprintf "\nE%d,%d" u v);
      attrs_sig buf (Graph.edge_attrs query e))
    (Graph.edges query);
  Buffer.add_string buf "\nC=";
  Buffer.add_string buf constraint_text;
  Buffer.add_string buf "\nNC=";
  Buffer.add_string buf (Option.value ~default:"" node_constraint_text);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* LRU mechanics                                                       *)
(* ------------------------------------------------------------------ *)

let find t ~revision ~signature =
  match Hashtbl.find_opt t.tbl (revision, signature) with
  | None -> None
  | Some e ->
      t.clock <- t.clock + 1;
      e.last_use <- t.clock;
      Some (e.filter, e.compiled)

let evict_lru t =
  let worst = ref None in
  Hashtbl.iter
    (fun k (e : entry) ->
      match !worst with
      | Some (_, age) when age <= e.last_use -> ()
      | _ -> worst := Some (k, e.last_use))
    t.tbl;
  match !worst with
  | None -> ()
  | Some (k, _) ->
      Hashtbl.remove t.tbl k;
      t.evictions <- t.evictions + 1

let add t ~revision ~signature ~compiled filter =
  if not (Hashtbl.mem t.tbl (revision, signature)) then begin
    while Hashtbl.length t.tbl >= t.capacity do
      evict_lru t
    done;
    t.clock <- t.clock + 1;
    Hashtbl.replace t.tbl (revision, signature) { filter; compiled; last_use = t.clock }
  end

let invalidate t ~current_revision =
  let stale =
    Hashtbl.fold
      (fun ((rev, _) as k) _ acc -> if rev <> current_revision then k :: acc else acc)
      t.tbl []
  in
  List.iter
    (fun k ->
      Hashtbl.remove t.tbl k;
      t.invalidations <- t.invalidations + 1)
    stale
