(** Cross-request filter cache.

    Building the filter matrix is the dominant sequential phase of an
    ECF/RWB request (the Amdahl bottleneck called out in
    {!Netembed_parallel}); repeated or templated queries — the service
    pattern the paper's interactive scenario implies — rebuild an
    identical matrix every time.  This cache keys built filters by
    [(model revision, query signature)] so a repeat skips the build
    entirely.  Each entry also carries the problem's compiled-constraint
    bundle ({!Netembed_core.Problem.compiled}), so a warm submit skips
    bytecode compilation as well — observable as a flat
    [netembed_expr_compiles_total] counter across repeats.

    Correctness rests on the key covering every input of the build:

    - the {b model revision} stands in for the host side — the model
      bumps it on every topology/attribute update, reservation and
      ledger change, so any two requests at the same revision see the
      same residual host graph;
    - the {b query signature} is an exact canonical serialization of
      the query topology, all node/edge attribute values and both
      constraint texts (see {!signature}).  Exact-string equality means
      a collision can never hand a request somebody else's filter —
      worst case is a spurious miss, which only costs the build.

    Entries from older revisions can never hit again; {!invalidate}
    drops them eagerly so they do not occupy capacity.  Beyond
    capacity, the least-recently-used entry is evicted.

    Not thread-safe: the service serializes submits. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 32 entries.
    @raise Invalid_argument when [capacity < 1]. *)

val signature :
  query:Netembed_graph.Graph.t ->
  constraint_text:string ->
  node_constraint_text:string option ->
  string
(** Canonical serialization of the query-side inputs of a filter
    build.  Stable across processes (no hashing, no addresses). *)

val find :
  t ->
  revision:int ->
  signature:string ->
  (Netembed_core.Filter.t * Netembed_core.Problem.compiled) option
(** Cache lookup; a hit refreshes the entry's recency and returns both
    the filter matrix and the compiled-constraint bundle, so a warm
    submit skips the filter build {e and} the bytecode compilation
    (fed back into {!Netembed_core.Problem.make} via [?compiled]). *)

val add :
  t ->
  revision:int ->
  signature:string ->
  compiled:Netembed_core.Problem.compiled ->
  Netembed_core.Filter.t ->
  unit
(** Insert a freshly built filter together with the problem's compiled
    programs, evicting LRU entries as needed.  No-op if the key is
    already present. *)

val invalidate : t -> current_revision:int -> unit
(** Drop every entry whose revision differs from [current_revision] —
    the model moved on, so they can never hit again. *)

val length : t -> int
val capacity : t -> int

val evictions : t -> int
(** Entries dropped to capacity pressure (LRU), cumulative. *)

val invalidations : t -> int
(** Entries dropped because the model revision moved on, cumulative. *)
