(* SLO burn-rate health state machine.

   The service feeds every finished request (latency + error flag)
   into two pairs of sliding windows — a fast pair that reacts within
   seconds and a slow pair that filters transients — and a periodic
   [evaluate] tick folds those windows plus the admission-queue depth
   into one of four states:

     Healthy    SLOs met
     Degraded   fast-window p99 or error rate over the SLO
     Saturated  queue nearly full, or the fast window burning error
                budget at [fast_burn]x with slow-window corroboration
     Draining   graceful shutdown began (terminal; set explicitly)

   Transitions are damped two ways: a candidate state must win
   [hysteresis] consecutive evaluations before it is published (so one
   bad window slice cannot flap readiness), and queue saturation has a
   high/low watermark band (enter at [queue_high], leave only below
   [queue_low]).  [Draining] bypasses both — once shutdown starts the
   answer must change now.

   All entry points take the internal mutex: observations arrive from
   worker domains while [evaluate] runs on the server's main thread
   and [report] answers HEALTH frames from yet other workers. *)

module Telemetry = Netembed_telemetry.Telemetry
module Windowed = Telemetry.Windowed
module Histogram = Telemetry.Histogram

type state = Healthy | Degraded | Saturated | Draining

let state_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Saturated -> "saturated"
  | Draining -> "draining"

let state_code = function
  | Healthy -> 0
  | Degraded -> 1
  | Saturated -> 2
  | Draining -> 3

type config = {
  latency_slo_s : float;
  error_rate_slo : float;
  fast_burn : float;
  queue_high : float;
  queue_low : float;
  hysteresis : int;
  fast_window : float;
  slow_window : float;
  slices : int;
}

let default_config =
  {
    latency_slo_s = 0.25;
    error_rate_slo = 0.01;
    fast_burn = 10.0;
    queue_high = 0.9;
    queue_low = 0.5;
    hysteresis = 2;
    fast_window = 10.0;
    slow_window = 60.0;
    slices = 5;
  }

type t = {
  config : config;
  lock : Mutex.t;
  (* Latency windows observe microseconds, rendered as seconds; error
     windows observe 0/1 per request, so rate = sum / count. *)
  fast_lat : Windowed.t;
  slow_lat : Windowed.t;
  fast_err : Windowed.t;
  slow_err : Windowed.t;
  gauge : Telemetry.Gauge.t;
  mutable current : state;
  mutable candidate : state;
  mutable streak : int;
  mutable draining : bool;
  mutable last_queue_depth : int;
  mutable last_queue_capacity : int;
}

type report = {
  r_state : state;
  fast_p99_s : float;
  slow_p99_s : float;
  fast_error_rate : float;
  slow_error_rate : float;
  queue_depth : int;
  queue_capacity : int;
}

let create ?(config = default_config) ?clock
    ?(registry = Telemetry.default_registry) () =
  if config.hysteresis < 1 then
    invalid_arg "Health.create: hysteresis must be >= 1";
  if config.fast_window <= 0.0 || config.slow_window <= 0.0 then
    invalid_arg "Health.create: windows must be positive";
  if not (config.queue_low <= config.queue_high) then
    invalid_arg "Health.create: queue_low must be <= queue_high";
  let w window scale = Windowed.create ?clock ~scale ~window ~slices:config.slices () in
  let gauge =
    Telemetry.Registry.gauge registry
      ~help:"Service health state: 0=healthy 1=degraded 2=saturated 3=draining"
      "netembed_health_state"
  in
  Telemetry.Gauge.set gauge 0.0;
  {
    config;
    lock = Mutex.create ();
    fast_lat = w config.fast_window 1e-6;
    slow_lat = w config.slow_window 1e-6;
    fast_err = w config.fast_window 1.0;
    slow_err = w config.slow_window 1.0;
    gauge;
    current = Healthy;
    candidate = Healthy;
    streak = 0;
    draining = false;
    last_queue_depth = 0;
    last_queue_capacity = 0;
  }

let observe_request t ~latency_s ~error =
  Mutex.lock t.lock;
  let us = int_of_float (Float.max 0.0 latency_s *. 1e6) in
  Windowed.observe t.fast_lat us;
  Windowed.observe t.slow_lat us;
  let e = if error then 1 else 0 in
  Windowed.observe t.fast_err e;
  Windowed.observe t.slow_err e;
  Mutex.unlock t.lock

(* Error fraction over the window: observations are 0/1, so the merged
   histogram's sum counts errors and its count counts requests. *)
let rate w =
  let h = Windowed.merged w in
  let c = Histogram.count h in
  if c = 0 then 0.0 else float_of_int (Histogram.sum h) /. float_of_int c

(* Caller holds [t.lock]. *)
let classify t ~queue_frac =
  let fast_p99 = Windowed.quantile t.fast_lat 0.99 in
  let fast_err = rate t.fast_err in
  let slow_err = rate t.slow_err in
  let queue_sat =
    queue_frac
    >= (if t.current = Saturated then t.config.queue_low
        else t.config.queue_high)
  in
  let err_burn = fast_err /. t.config.error_rate_slo in
  let slow_corroborates = slow_err >= t.config.error_rate_slo in
  if queue_sat || (err_burn >= t.config.fast_burn && slow_corroborates) then
    Saturated
  else if
    fast_p99 >= t.config.latency_slo_s || fast_err >= t.config.error_rate_slo
  then Degraded
  else Healthy

let evaluate t ~queue_depth ~queue_capacity =
  Mutex.lock t.lock;
  t.last_queue_depth <- queue_depth;
  t.last_queue_capacity <- queue_capacity;
  (if t.draining then begin
     t.current <- Draining;
     t.candidate <- Draining
   end
   else begin
     let queue_frac =
       if queue_capacity <= 0 then 0.0
       else float_of_int queue_depth /. float_of_int queue_capacity
     in
     let c = classify t ~queue_frac in
     if c = t.candidate then t.streak <- t.streak + 1
     else begin
       t.candidate <- c;
       t.streak <- 1
     end;
     if t.streak >= t.config.hysteresis && t.current <> t.candidate then
       t.current <- t.candidate
   end);
  Telemetry.Gauge.set t.gauge (float_of_int (state_code t.current));
  let s = t.current in
  Mutex.unlock t.lock;
  s

let set_draining t =
  Mutex.lock t.lock;
  t.draining <- true;
  t.current <- Draining;
  t.candidate <- Draining;
  Telemetry.Gauge.set t.gauge (float_of_int (state_code Draining));
  Mutex.unlock t.lock

let state t =
  Mutex.lock t.lock;
  let s = t.current in
  Mutex.unlock t.lock;
  s

let report t =
  Mutex.lock t.lock;
  let r =
    {
      r_state = t.current;
      fast_p99_s = Windowed.quantile t.fast_lat 0.99;
      slow_p99_s = Windowed.quantile t.slow_lat 0.99;
      fast_error_rate = rate t.fast_err;
      slow_error_rate = rate t.slow_err;
      queue_depth = t.last_queue_depth;
      queue_capacity = t.last_queue_capacity;
    }
  in
  Mutex.unlock t.lock;
  r
