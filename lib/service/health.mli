(** SLO burn-rate health state machine for the mapping service.

    Every finished request feeds a fast and a slow pair of sliding
    windows (p99 latency and error rate, over
    {!Netembed_telemetry.Telemetry.Windowed}); a periodic {!evaluate}
    tick folds those windows plus the admission-queue depth into one
    of four states, exported as the [netembed_health_state] gauge
    (0=healthy 1=degraded 2=saturated 3=draining), the wire [HEALTH]
    verb and the HTTP [/readyz] probe.

    Flap damping: a candidate state must win [hysteresis] consecutive
    evaluations before it is published, and queue saturation uses a
    high/low watermark band (enter at [queue_high], leave below
    [queue_low]).  {!set_draining} bypasses both — shutdown must be
    visible immediately.

    Thread-safe: observations arrive from worker domains while
    [evaluate] runs on the server's main thread and [report] answers
    [HEALTH] frames from other workers. *)

type state =
  | Healthy  (** SLOs met *)
  | Degraded  (** fast-window p99 or error rate over the SLO *)
  | Saturated
      (** admission queue nearly full, or the fast window burning
          error budget at [fast_burn]x with slow-window corroboration
          (backpressure rejects count as errors, so sustained shedding
          lands here) *)
  | Draining  (** graceful shutdown began; terminal *)

val state_name : state -> string
(** ["healthy"], ["degraded"], ["saturated"], ["draining"]. *)

val state_code : state -> int
(** The gauge encoding, 0-3 in declaration order. *)

type config = {
  latency_slo_s : float;  (** p99 latency target, seconds *)
  error_rate_slo : float;  (** tolerated error fraction *)
  fast_burn : float;
      (** fast-window error burn (rate / SLO) that, with slow-window
          corroboration, means [Saturated] *)
  queue_high : float;  (** queue fraction entering [Saturated] *)
  queue_low : float;  (** queue fraction below which it is left *)
  hysteresis : int;
      (** consecutive evaluations a candidate state must win *)
  fast_window : float;  (** seconds; reacts to incidents *)
  slow_window : float;  (** seconds; filters transients *)
  slices : int;  (** ring slices per window *)
}

val default_config : config
(** 250 ms p99 / 1% errors, fast burn 10x, queue band 0.9/0.5,
    hysteresis 2, windows 10 s / 60 s over 5 slices. *)

type t

val create :
  ?config:config ->
  ?clock:(unit -> float) ->
  ?registry:Netembed_telemetry.Telemetry.Registry.t ->
  unit ->
  t
(** Registers the [netembed_health_state] gauge (initially 0) in
    [registry] (default the process registry).  [clock] is injected
    into the sliding windows for tests.
    @raise Invalid_argument on non-positive windows, [hysteresis < 1]
    or [queue_low > queue_high]. *)

val observe_request : t -> latency_s:float -> error:bool -> unit
(** Feed one finished request into all four windows.  Backpressure
    rejects are observed with [error:true] and their (near-zero)
    shed latency. *)

val evaluate : t -> queue_depth:int -> queue_capacity:int -> state
(** One tick of the state machine: classify the windows and queue,
    apply hysteresis, publish the gauge, return the (possibly
    unchanged) current state.  Call at a steady cadence — hysteresis
    counts evaluations, not wall-clock. *)

val state : t -> state
(** The current state, read-only (no hysteresis advance) — what
    [/readyz] and the [HEALTH] verb use. *)

val set_draining : t -> unit
(** Enter [Draining] immediately and latch it; subsequent
    [evaluate]s stay there. *)

type report = {
  r_state : state;
  fast_p99_s : float;
  slow_p99_s : float;
  fast_error_rate : float;
  slow_error_rate : float;
  queue_depth : int;  (** as of the last {!evaluate} *)
  queue_capacity : int;
}

val report : t -> report
(** A read-only snapshot of the machine's inputs and state — the
    [HEALTH] verb's payload. *)
