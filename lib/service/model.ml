open Netembed_graph
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Ledger = Netembed_ledger.Ledger

type t = {
  graph : Graph.t;
  mutable rev : int;
  reserved_set : (Graph.node, unit) Hashtbl.t;
  ledger : Ledger.t;
  locks : (Graph.node, int) Hashtbl.t;  (* reservation -> ledger allocation *)
}

let create g =
  let graph = Graph.copy g in
  (* Every node carries an explicit reservation flag so the standard
     node constraint ["!rSource.reserved"] is total. *)
  Graph.iter_nodes
    (fun v ->
      if not (Attrs.mem "reserved" (Graph.node_attrs graph v)) then
        Graph.set_node_attrs graph v
          (Attrs.add "reserved" (Value.Bool false) (Graph.node_attrs graph v)))
    graph;
  {
    graph;
    rev = 0;
    reserved_set = Hashtbl.create 16;
    ledger = Ledger.of_graph graph;
    locks = Hashtbl.create 16;
  }
let of_graphml_file path = create (Netembed_graphml.Graphml.read_file path)
let snapshot t = t.graph
let revision t = t.rev
let ledger t = t.ledger

let residual_snapshot t = Ledger.residual_graph ~base:t.graph t.ledger

let update_edge_attrs t e fresh =
  Graph.set_edge_attrs t.graph e (Attrs.union (Graph.edge_attrs t.graph e) fresh);
  t.rev <- t.rev + 1

let update_node_attrs t v fresh =
  Graph.set_node_attrs t.graph v (Attrs.union (Graph.node_attrs t.graph v) fresh);
  t.rev <- t.rev + 1

exception Conflict of Graph.node

let set_reserved_attr t v flag =
  Graph.set_node_attrs t.graph v
    (Attrs.add "reserved" (Value.Bool flag) (Graph.node_attrs t.graph v))

let reserve t nodes =
  (* The pre-scan must catch both conflicts with prior reservations and
     a node appearing twice in this very call — otherwise a duplicated
     node double-books silently. *)
  let seen = Hashtbl.create (List.length nodes) in
  List.iter
    (fun v ->
      if Hashtbl.mem t.reserved_set v || Hashtbl.mem seen v then raise (Conflict v);
      Hashtbl.replace seen v ())
    nodes;
  List.iter
    (fun v ->
      Hashtbl.replace t.reserved_set v ();
      (* A boolean reservation is the degenerate full-capacity charge:
         the node's entire residual is debited in the ledger. *)
      Hashtbl.replace t.locks v (Ledger.lock t.ledger v);
      set_reserved_attr t v true)
    nodes;
  if nodes <> [] then t.rev <- t.rev + 1

let release t nodes =
  List.iter
    (fun v ->
      if Hashtbl.mem t.reserved_set v then begin
        Hashtbl.remove t.reserved_set v;
        (match Hashtbl.find_opt t.locks v with
        | Some id ->
            ignore (Ledger.release t.ledger id);
            Hashtbl.remove t.locks v
        | None -> ());
        set_reserved_attr t v false
      end)
    nodes;
  if nodes <> [] then t.rev <- t.rev + 1

let reserved t = List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) t.reserved_set [])
let is_reserved t v = Hashtbl.mem t.reserved_set v

let charge_mapping t ~query mapping =
  match Ledger.charge_of_mapping t.ledger ~query mapping with
  | Error m -> Error m
  | Ok charge -> (
      match Ledger.try_commit t.ledger charge with
      | Error f -> Error (Ledger.failure_to_string f)
      | Ok id ->
          t.rev <- t.rev + 1;
          Ok id)

let release_charge t id =
  let ok = Ledger.release t.ledger id in
  if ok then t.rev <- t.rev + 1;
  ok

let migrate_charge t id ~query mapping =
  match Ledger.allocation_charge t.ledger id with
  | None -> Error (Printf.sprintf "allocation %d is not live" id)
  | Some _ -> (
      match Ledger.charge_of_mapping t.ledger ~query mapping with
      | Error m -> Error m
      | Ok charge -> (
          match Ledger.migrate t.ledger id charge with
          | Error f -> Error (Ledger.failure_to_string f)
          | Ok id' ->
              t.rev <- t.rev + 1;
              Ok id'))
