(** The network model: the service-side characterization of the hosting
    infrastructure (paper, section III component 1 — "a model of the
    real network that characterizes the resources available.  Such model
    could be maintained either by a monitoring service, a resource
    manager, or a combination of both").

    The model wraps the hosting graph with revisioned updates (a
    monitoring feed refreshing measured attributes), a resource {!val-ledger}
    tracking fractional capacity consumption
    ({!Netembed_ledger.Ledger}), and reservations — whole-node locks
    realized as the ledger's degenerate full-capacity charge (section
    III component 3). *)

open Netembed_graph

type t

val create : Graph.t -> t
(** Wrap a hosting network; the graph is copied so later monitor updates
    do not alias the caller's graph.  A resource ledger is opened over
    the copy with the default capacity attributes
    ({!Netembed_ledger.Ledger.of_graph}): hosts declaring no capacities
    get an empty ledger and behave exactly as before. *)

val of_graphml_file : string -> t
(** @raise Netembed_graphml.Graphml.Error on malformed input. *)

val snapshot : t -> Graph.t
(** The current hosting graph including reservation state.  Reserved
    nodes carry the ["reserved"] boolean attribute; embedding queries
    exclude them via the standard node filter used by {!Service}. *)

val residual_snapshot : t -> Graph.t
(** Like {!snapshot}, but every tracked capacity attribute is replaced
    by its {e residual} value (capacity minus outstanding charges), so
    a search against it prunes on what is actually free.  This is what
    {!Service.submit} embeds against. *)

val revision : t -> int
(** Bumped on every update, reservation or ledger change. *)

val ledger : t -> Netembed_ledger.Ledger.t
(** The model's resource ledger (capacities read at {!create} time). *)

(** {1 Monitoring updates} *)

val update_edge_attrs : t -> Graph.edge -> Netembed_attr.Attrs.t -> unit
(** Merge fresh measurements into an edge (new values win).  Measured
    attributes flow into snapshots; declared {e capacities} stay as
    read at {!create} time (the ledger is the capacity authority). *)

val update_node_attrs : t -> Graph.node -> Netembed_attr.Attrs.t -> unit

(** {1 Reservations (whole-node locks)} *)

exception Conflict of Graph.node

val reserve : t -> Graph.node list -> unit
(** Mark the nodes reserved and debit their full residual capacity in
    the ledger.  @raise Conflict (naming the first already-reserved or
    duplicated node) without reserving anything — a node listed twice
    in one call is a conflict too. *)

val release : t -> Graph.node list -> unit
val reserved : t -> Graph.node list
val is_reserved : t -> Graph.node -> bool

(** {1 Fractional allocations} *)

val charge_mapping :
  t -> query:Graph.t -> Netembed_core.Mapping.t -> (int, string) result
(** Derive the embedding's demand vector from the query attributes and
    debit it atomically ({!Netembed_ledger.Ledger.try_commit}).
    Returns the allocation id; [Error] names the first over-committed
    resource, leaving the ledger untouched.  Bumps the revision on
    success. *)

val release_charge : t -> int -> bool
(** Credit an allocation back; [false] if the id is unknown. *)

val migrate_charge :
  t ->
  int ->
  query:Graph.t ->
  Netembed_core.Mapping.t ->
  (int, string) result
(** Atomically re-home a live allocation onto a new mapping of the same
    query ({!Netembed_ledger.Ledger.migrate}): release + commit as one
    step, returning the new allocation id.  On failure nothing changes
    — the original allocation survives under its original id — and the
    error names the over-committed resource.  Bumps the revision only
    on success. *)
