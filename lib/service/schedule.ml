open Netembed_graph
module Engine = Netembed_core.Engine
module Problem = Netembed_core.Problem
module Mapping = Netembed_core.Mapping
module Attrs = Netembed_attr.Attrs
module Value = Netembed_attr.Value
module Ledger = Netembed_ledger.Ledger

type lease = {
  hosts : Graph.node list;
  start : float;
  finish : float;
  charges : int list;  (* ledger allocations held for the window *)
}

type t = {
  host : Graph.t;
  ledger : Ledger.t option;
  mutable lease_list : lease list;
}

let create ?ledger host = { host = Graph.copy host; ledger; lease_list = [] }

let leases t = List.sort (fun a b -> Float.compare a.start b.start) t.lease_list

let busy_at t instant =
  List.concat_map
    (fun l -> if l.start <= instant && instant < l.finish then l.hosts else [])
    t.lease_list
  |> List.sort_uniq compare

type placement = { mapping : Mapping.t; start : float; finish : float }

let drop_charges t lease =
  match t.ledger with
  | None -> ()
  | Some ledger -> List.iter (fun id -> ignore (Ledger.release ledger id)) lease.charges

(* The internal gc: leases whose window is over can never influence a
   candidate window again — prune them and credit their charges back. *)
let gc t ~now =
  let expired, live =
    List.partition (fun (l : lease) -> l.finish <= now) t.lease_list
  in
  List.iter (drop_charges t) expired;
  t.lease_list <- live;
  List.length expired

(* Nodes busy at any point of [start, start+duration). *)
let busy_in_window t ~start ~duration =
  List.concat_map
    (fun (l : lease) ->
      if l.start < start +. duration && start < l.finish then l.hosts else [])
    t.lease_list
  |> List.sort_uniq compare

let earliest ?(algorithm = Engine.ECF) ?timeout t ~now ~duration ~query edge_constraint =
  ignore (gc t ~now);
  (* Candidate start times: now, plus each lease expiry after now (the
     available set only grows at those instants). *)
  let candidates =
    now
    :: List.filter_map
         (fun (l : lease) -> if l.finish > now then Some l.finish else None)
         t.lease_list
    |> List.sort_uniq Float.compare
  in
  let try_window start =
    let busy = busy_in_window t ~start ~duration in
    (* Stamp availability and exclude busy nodes through the node
       constraint, so the search itself never proposes them. *)
    let host = Graph.copy t.host in
    Graph.iter_nodes
      (fun v ->
        Graph.set_node_attrs host v
          (Attrs.add "busy" (Value.Bool (List.mem v busy)) (Graph.node_attrs host v)))
      host;
    let node_constraint = Netembed_expr.Expr.parse_exn "!rSource.busy" in
    match Problem.make ~node_constraint ~host ~query edge_constraint with
    | exception Invalid_argument m -> Error m
    | problem -> (
        match Engine.find_first ?timeout algorithm problem with
        | Some mapping -> Ok (Some { mapping; start; finish = start +. duration })
        | None -> Ok None)
  in
  let rec scan = function
    | [] -> Error "no feasible window: the query cannot embed even on the idle network"
    | start :: rest -> (
        match try_window start with
        | Error m -> Error m
        | Ok (Some placement) -> Ok placement
        | Ok None -> scan rest)
  in
  scan candidates

let book t placement =
  let hosts = List.map snd (Mapping.to_list placement.mapping) in
  let charges =
    match t.ledger with
    | None -> []
    | Some ledger ->
        (* A lease is an exclusive hold on its hosts for the window:
           the degenerate full-capacity charge, credited back when the
           lease is pruned after expiry. *)
        List.map (Ledger.lock ledger) hosts
  in
  t.lease_list <-
    { hosts; start = placement.start; finish = placement.finish; charges }
    :: t.lease_list

let release_expired t ~now = gc t ~now
