(** Embedding with temporal resource allocation — the paper's
    scheduling follow-up: "when used in a real application, resources
    once assigned would not be available for some amount of time.  In
    such settings, the embedding problem must be tightly integrated with
    the scheduling problem — to find a window of time (or the closest
    window of time) in which some feasible embedding is available"
    (pursued in the snBench sensor-network framework).

    A {!t} tracks time-bounded leases on hosting nodes.  {!earliest}
    scans candidate start times (now plus every lease expiry — between
    expiries the available set is constant, so these are the only
    decision points) and returns the first window in which the query
    embeds on the then-free nodes.

    When created over a resource ledger, every {!book} also takes the
    degenerate full-capacity charge on the leased hosts
    ({!Netembed_ledger.Ledger.lock}), and the internal gc — run on each
    {!earliest} and {!release_expired} — credits those charges back the
    moment a lease expires, so fractional tenants of the same model see
    scheduled capacity come and go. *)

open Netembed_graph

type t

val create : ?ledger:Netembed_ledger.Ledger.t -> Graph.t -> t
(** A scheduler over the hosting network with no leases.  With
    [?ledger], booked leases hold full-capacity charges on their hosts
    until expiry. *)

type lease = {
  hosts : Graph.node list;
  start : float;
  finish : float;
  charges : int list;
      (** Ledger allocation ids held for the window; [[]] without a
          ledger. *)
}

val leases : t -> lease list
(** Active leases, by start time. *)

val busy_at : t -> float -> Graph.node list
(** Nodes under lease at the given instant. *)

type placement = {
  mapping : Netembed_core.Mapping.t;
  start : float;
  finish : float;
}

val earliest :
  ?algorithm:Netembed_core.Engine.algorithm ->
  ?timeout:float ->
  t ->
  now:float ->
  duration:float ->
  query:Graph.t ->
  Netembed_expr.Ast.t ->
  (placement, string) result
(** Earliest start [>= now] at which the query embeds for [duration]
    seconds using only nodes free for the whole window.  Leases already
    over at [now] are gc'd first (releasing their ledger charges).  A
    lease ending exactly at a candidate start does not block it —
    windows are half-open [\[start, finish)].  The returned placement is
    {e not} booked; call {!book} to commit it.  [Error] when no
    feasible window exists even with every lease expired, or on engine
    errors. *)

val book : t -> placement -> unit
(** Register the placement's hosts as leased for its window, charging
    their full capacity in the ledger when one is attached. *)

val release_expired : t -> now:float -> int
(** Run the gc: drop leases whose window ended at or before [now],
    crediting their ledger charges back; returns how many. *)
