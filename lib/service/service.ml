module Engine = Netembed_core.Engine
module Problem = Netembed_core.Problem
module Mapping = Netembed_core.Mapping
module Expr = Netembed_expr.Expr
module Ast = Netembed_expr.Ast
module Telemetry = Netembed_telemetry.Telemetry
module Ledger = Netembed_ledger.Ledger
module Explain = Netembed_explain.Explain

type entry = {
  id : int;
  summary : string;
  verdict : string;
  elapsed : float;
  certificate : Explain.Certificate.t option;
}

let log_capacity = 64

type t = {
  model : Model.t;
  registry : Telemetry.Registry.t;
  requests : Telemetry.Counter.t;
  request_errors : Telemetry.Counter.t;
  latency_us : Telemetry.Histogram.t;
  relaxation_rounds : Telemetry.Counter.t;
  model_revision : Telemetry.Gauge.t;
  allocations_accepted : Telemetry.Counter.t;
  allocations_rejected : Telemetry.Counter.t;
  admission_rejected : Telemetry.Counter.t;
  active_allocations : Telemetry.Gauge.t;
  utilization_gauges : (string * [ `Node | `Edge ] * Telemetry.Gauge.t) list;
  slow_threshold : float;
  mutable next_id : int;
  (* Bounded slow/failed-query log: a ring of the last [log_capacity]
     diagnosable requests, looked up by request id for EXPLAIN. *)
  log : entry option array;
  mutable logged : int;
}

let kind_label = function `Node -> "node" | `Edge -> "edge"

let create ?(registry = Telemetry.default_registry) ?(slow_threshold = 0.5) model =
  let ledger = Model.ledger model in
  let utilization_gauges =
    List.map
      (fun (resource, kind, _, _) ->
        ( resource,
          kind,
          Telemetry.Registry.gauge registry
            ~help:"Fraction of the hosting network's declared capacity under allocation"
            ~labels:[ ("resource", resource); ("kind", kind_label kind) ]
            "netembed_resource_utilization" ))
      (Ledger.utilization ledger)
  in
  let t =
    {
      model;
      registry;
      requests =
        Telemetry.Registry.counter registry
          ~help:"Requests submitted to the mapping service" "netembed_requests_total";
      request_errors =
        Telemetry.Registry.counter registry
          ~help:"Requests rejected (malformed constraints, admission control or impossible query)"
          "netembed_request_errors_total";
      latency_us =
        Telemetry.Registry.histogram registry
          ~help:"End-to-end request latency in microseconds"
          "netembed_request_latency_us";
      relaxation_rounds =
        Telemetry.Registry.counter registry
          ~help:"Constraint-relaxation rounds applied during negotiation"
          "netembed_relaxation_rounds_total";
      model_revision =
        Telemetry.Registry.gauge registry
          ~help:"Network-model revision the latest answer was computed against"
          "netembed_model_revision";
      allocations_accepted =
        Telemetry.Registry.counter registry
          ~help:"Allocations committed (whole-node reservations and fractional charges)"
          "netembed_allocations_total";
      allocations_rejected =
        Telemetry.Registry.counter registry
          ~help:"Allocations rejected (stale answer, reservation conflict or over-committed resource)"
          "netembed_allocation_rejects_total";
      admission_rejected =
        Telemetry.Registry.counter registry
          ~help:"Queries rejected before search: aggregate demand exceeded total residual capacity"
          "netembed_admission_rejects_total";
      active_allocations =
        Telemetry.Registry.gauge registry
          ~help:"Outstanding ledger allocations" "netembed_active_allocations";
      utilization_gauges;
      slow_threshold;
      next_id = 1;
      log = Array.make log_capacity None;
      logged = 0;
    }
  in
  Telemetry.Gauge.set t.model_revision (float_of_int (Model.revision model));
  t

let model t = t.model
let registry t = t.registry

let utilization t = Ledger.utilization (Model.ledger t.model)

let refresh_utilization t =
  let rows = utilization t in
  List.iter
    (fun (resource, kind, gauge) ->
      match
        List.find_opt (fun (r, k, _, _) -> r = resource && k = kind) rows
      with
      | Some (_, _, used, cap) ->
          Telemetry.Gauge.set gauge (if cap > 0.0 then used /. cap else 0.0)
      | None -> ())
    t.utilization_gauges;
  Telemetry.Gauge.set t.active_allocations
    (float_of_int (Ledger.outstanding (Model.ledger t.model)))

type answer = {
  id : int;
  request : Request.t;
  result : Engine.result;
  model_revision : int;
}

let src = Logs.Src.create "netembed.service" ~doc:"NETEMBED mapping service"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Slow/failed-query log and failure metrics                           *)
(* ------------------------------------------------------------------ *)

let log_entry t entry =
  t.log.(t.logged mod log_capacity) <- Some entry;
  t.logged <- t.logged + 1

let explain t id =
  let found = ref None in
  Array.iter
    (fun e ->
      match e with
      | Some (e : entry) when e.id = id -> found := Some e
      | Some _ | None -> ())
    t.log;
  !found

let last_entry t =
  if t.logged = 0 then None else t.log.((t.logged - 1) mod log_capacity)

let count_unsat t cause =
  Telemetry.Counter.incr
    (Telemetry.Registry.counter t.registry
       ~help:"Requests that ended without a usable mapping, by attributed cause"
       ~labels:[ ("cause", cause) ]
       "netembed_unsat_total")

let count_blame t (cert : Explain.Certificate.t) =
  (* Aggregate the certificate's per-node cause counts into the
     low-cardinality blame-by-constraint counters. *)
  let agg : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (b : Explain.Certificate.blamed) ->
      List.iter
        (fun (c, n) ->
          let l = Explain.Cause.label c in
          Hashtbl.replace agg l (n + Option.value ~default:0 (Hashtbl.find_opt agg l)))
        b.Explain.Certificate.causes)
    cert.Explain.Certificate.blamed;
  Hashtbl.iter
    (fun cause n ->
      Telemetry.Counter.add
        (Telemetry.Registry.counter t.registry
           ~help:"Candidate eliminations charged to each constraint class on failed \
                  or slow queries"
           ~labels:[ ("cause", cause) ]
           "netembed_blame_eliminations_total")
        n)
    agg

let target_label g = function
  | Ledger.Node v -> (
      let attrs = Netembed_graph.Graph.node_attrs g v in
      match Netembed_attr.Attrs.string "name" attrs with
      | Some s -> s
      | None -> Printf.sprintf "node %d" v)
  | Ledger.Edge e -> Printf.sprintf "edge %d" e

let admission_certificate t (f : Ledger.failure) =
  let ledger = Model.ledger t.model in
  let notes =
    List.map
      (fun (tgt, res) ->
        Printf.sprintf "best residual %s: %s has %g" f.Ledger.resource
          (target_label (Ledger.graph ledger) tgt)
          res)
      (Ledger.top_residuals ledger ~resource:f.Ledger.resource f.Ledger.kind 3)
  in
  Explain.Certificate.make ~notes ~verdict:"admission" (Ledger.failure_to_string f)

let request_summary (request : Request.t) verdict elapsed =
  Printf.sprintf "%s %d-node query: %s in %.1f ms"
    (Engine.algorithm_name request.Request.algorithm)
    (Netembed_graph.Graph.node_count request.Request.query)
    verdict (elapsed *. 1000.0)

(* Reserved hosts are excluded by conjoining the reservation guard to
   the user's node constraint. *)
let reservation_guard = Expr.parse_exn "!rSource.reserved"

let submit t (request : Request.t) =
  let t0 = Unix.gettimeofday () in
  Telemetry.Counter.incr t.requests;
  let id = t.next_id in
  t.next_id <- id + 1;
  let finish outcome =
    let dt_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
    Telemetry.Histogram.observe t.latency_us dt_us;
    (match outcome with
    | Error _ -> Telemetry.Counter.incr t.request_errors
    | Ok _ -> ());
    outcome
  in
  let log_failure ?certificate verdict message =
    let elapsed = Unix.gettimeofday () -. t0 in
    log_entry t
      {
        id;
        summary =
          Printf.sprintf "%s — %s" (request_summary request verdict elapsed) message;
        verdict;
        elapsed;
        certificate;
      }
  in
  match Request.parse_constraints request with
  | Error m ->
      log_failure "error" m;
      finish (Error m)
  | Ok (edge_constraint, node_constraint) -> (
      let node_constraint =
        match node_constraint with
        | None -> reservation_guard
        | Some c -> Ast.Binop (Ast.And, reservation_guard, c)
      in
      (* Admission control: a query whose aggregate demand exceeds the
         total residual capacity cannot commit under any mapping —
         reject it before paying for a search. *)
      match Ledger.admissible (Model.ledger t.model) ~query:request.Request.query with
      | Error f ->
          Telemetry.Counter.incr t.admission_rejected;
          count_unsat t "admission";
          log_failure ~certificate:(admission_certificate t f) "admission"
            (Ledger.failure_to_string f);
          finish (Error ("admission: " ^ Ledger.failure_to_string f))
      | Ok () -> (
          (* Embed against residual capacities: co-located tenants have
             already eaten into what constraints like
             rSource.cpuMhz >= vSource.cpuMhz can see. *)
          let host = Model.residual_snapshot t.model in
          match
            Problem.make ~node_constraint ~host ~query:request.Request.query
              edge_constraint
          with
          | exception Invalid_argument m ->
              log_failure "error" m;
              finish (Error m)
          | problem ->
              let options =
                {
                  Engine.default_options with
                  Engine.mode = request.Request.mode;
                  timeout = request.Request.timeout;
                  (* Every service request runs with blame + flight
                     recorder on: certificates must exist for EXPLAIN
                     without a re-run, and service queries are
                     milliseconds-scale, not the bench hot loop. *)
                  explain = true;
                }
              in
              let result =
                Telemetry.Span.with_span "service_submit" (fun () ->
                    Engine.run ~options request.Request.algorithm problem)
              in
              Log.debug (fun m ->
                  m "query %d nodes via %s: %d mapping(s), %s"
                    (Netembed_graph.Graph.node_count request.Request.query)
                    (Engine.algorithm_name request.Request.algorithm)
                    (List.length result.Engine.mappings)
                    (Engine.outcome_name result.Engine.outcome));
              let verdict = Engine.verdict result in
              let slow = result.Engine.elapsed >= t.slow_threshold in
              (match verdict with
              | "unsat" ->
                  let cause =
                    match result.Engine.report with
                    | Some cert -> (
                        match Explain.Certificate.primary_cause cert with
                        | Some c -> Explain.Cause.label c
                        | None -> "search")
                    | None -> "search"
                  in
                  count_unsat t cause
              | "exhausted" -> count_unsat t "budget"
              | _ -> ());
              (match result.Engine.report with
              | Some cert when verdict <> "complete" || slow ->
                  count_blame t cert;
                  log_entry t
                    {
                      id;
                      summary =
                        request_summary request verdict result.Engine.elapsed;
                      verdict;
                      elapsed = result.Engine.elapsed;
                      certificate = Some cert;
                    }
              | Some _ | None -> ());
              let revision = Model.revision t.model in
              Telemetry.Gauge.set t.model_revision (float_of_int revision);
              finish (Ok { id; request; result; model_revision = revision })))

let submit_with_relaxation t request ~steps ~factor =
  let rec go request round =
    match submit t request with
    | Error m -> Error m
    | Ok answer ->
        if answer.result.Engine.mappings <> [] || round >= steps then
          Ok (answer, round)
        else begin
          Telemetry.Counter.incr t.relaxation_rounds;
          go (Request.relax request factor) (round + 1)
        end
  in
  go request 0

let stale_answer_error = "model changed since the answer was computed; re-submit the query"

let allocate t answer mapping =
  if Model.revision t.model <> answer.model_revision then begin
    Telemetry.Counter.incr t.allocations_rejected;
    Error stale_answer_error
  end
  else begin
    let hosts = List.map snd (Mapping.to_list mapping) in
    match Model.reserve t.model hosts with
    | () ->
        Telemetry.Counter.incr t.allocations_accepted;
        refresh_utilization t;
        Ok ()
    | exception Model.Conflict v ->
        Telemetry.Counter.incr t.allocations_rejected;
        Error (Printf.sprintf "host node %d already reserved" v)
  end

let allocate_shared t answer mapping =
  if Model.revision t.model <> answer.model_revision then begin
    Telemetry.Counter.incr t.allocations_rejected;
    Error stale_answer_error
  end
  else
    match Model.charge_mapping t.model ~query:answer.request.Request.query mapping with
    | Ok id ->
        Telemetry.Counter.incr t.allocations_accepted;
        refresh_utilization t;
        Ok id
    | Error m ->
        Telemetry.Counter.incr t.allocations_rejected;
        Error m

let free t id =
  let ok = Model.release_charge t.model id in
  if ok then refresh_utilization t;
  ok

let release_mapping t mapping =
  Model.release t.model (List.map snd (Mapping.to_list mapping));
  refresh_utilization t
