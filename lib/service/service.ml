module Engine = Netembed_core.Engine
module Problem = Netembed_core.Problem
module Mapping = Netembed_core.Mapping
module Expr = Netembed_expr.Expr
module Ast = Netembed_expr.Ast
module Telemetry = Netembed_telemetry.Telemetry
module Ledger = Netembed_ledger.Ledger

type t = {
  model : Model.t;
  registry : Telemetry.Registry.t;
  requests : Telemetry.Counter.t;
  request_errors : Telemetry.Counter.t;
  latency_us : Telemetry.Histogram.t;
  relaxation_rounds : Telemetry.Counter.t;
  model_revision : Telemetry.Gauge.t;
  allocations_accepted : Telemetry.Counter.t;
  allocations_rejected : Telemetry.Counter.t;
  admission_rejected : Telemetry.Counter.t;
  active_allocations : Telemetry.Gauge.t;
  utilization_gauges : (string * [ `Node | `Edge ] * Telemetry.Gauge.t) list;
}

let kind_label = function `Node -> "node" | `Edge -> "edge"

let create ?(registry = Telemetry.default_registry) model =
  let ledger = Model.ledger model in
  let utilization_gauges =
    List.map
      (fun (resource, kind, _, _) ->
        ( resource,
          kind,
          Telemetry.Registry.gauge registry
            ~help:"Fraction of the hosting network's declared capacity under allocation"
            ~labels:[ ("resource", resource); ("kind", kind_label kind) ]
            "netembed_resource_utilization" ))
      (Ledger.utilization ledger)
  in
  let t =
    {
      model;
      registry;
      requests =
        Telemetry.Registry.counter registry
          ~help:"Requests submitted to the mapping service" "netembed_requests_total";
      request_errors =
        Telemetry.Registry.counter registry
          ~help:"Requests rejected (malformed constraints, admission control or impossible query)"
          "netembed_request_errors_total";
      latency_us =
        Telemetry.Registry.histogram registry
          ~help:"End-to-end request latency in microseconds"
          "netembed_request_latency_us";
      relaxation_rounds =
        Telemetry.Registry.counter registry
          ~help:"Constraint-relaxation rounds applied during negotiation"
          "netembed_relaxation_rounds_total";
      model_revision =
        Telemetry.Registry.gauge registry
          ~help:"Network-model revision the latest answer was computed against"
          "netembed_model_revision";
      allocations_accepted =
        Telemetry.Registry.counter registry
          ~help:"Allocations committed (whole-node reservations and fractional charges)"
          "netembed_allocations_total";
      allocations_rejected =
        Telemetry.Registry.counter registry
          ~help:"Allocations rejected (stale answer, reservation conflict or over-committed resource)"
          "netembed_allocation_rejects_total";
      admission_rejected =
        Telemetry.Registry.counter registry
          ~help:"Queries rejected before search: aggregate demand exceeded total residual capacity"
          "netembed_admission_rejects_total";
      active_allocations =
        Telemetry.Registry.gauge registry
          ~help:"Outstanding ledger allocations" "netembed_active_allocations";
      utilization_gauges;
    }
  in
  Telemetry.Gauge.set t.model_revision (float_of_int (Model.revision model));
  t

let model t = t.model
let registry t = t.registry

let utilization t = Ledger.utilization (Model.ledger t.model)

let refresh_utilization t =
  let rows = utilization t in
  List.iter
    (fun (resource, kind, gauge) ->
      match
        List.find_opt (fun (r, k, _, _) -> r = resource && k = kind) rows
      with
      | Some (_, _, used, cap) ->
          Telemetry.Gauge.set gauge (if cap > 0.0 then used /. cap else 0.0)
      | None -> ())
    t.utilization_gauges;
  Telemetry.Gauge.set t.active_allocations
    (float_of_int (Ledger.outstanding (Model.ledger t.model)))

type answer = {
  request : Request.t;
  result : Engine.result;
  model_revision : int;
}

let src = Logs.Src.create "netembed.service" ~doc:"NETEMBED mapping service"

module Log = (val Logs.src_log src : Logs.LOG)

(* Reserved hosts are excluded by conjoining the reservation guard to
   the user's node constraint. *)
let reservation_guard = Expr.parse_exn "!rSource.reserved"

let submit t (request : Request.t) =
  let t0 = Unix.gettimeofday () in
  Telemetry.Counter.incr t.requests;
  let finish outcome =
    let dt_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
    Telemetry.Histogram.observe t.latency_us dt_us;
    (match outcome with
    | Error _ -> Telemetry.Counter.incr t.request_errors
    | Ok _ -> ());
    outcome
  in
  match Request.parse_constraints request with
  | Error m -> finish (Error m)
  | Ok (edge_constraint, node_constraint) -> (
      let node_constraint =
        match node_constraint with
        | None -> reservation_guard
        | Some c -> Ast.Binop (Ast.And, reservation_guard, c)
      in
      (* Admission control: a query whose aggregate demand exceeds the
         total residual capacity cannot commit under any mapping —
         reject it before paying for a search. *)
      match Ledger.admissible (Model.ledger t.model) ~query:request.Request.query with
      | Error f ->
          Telemetry.Counter.incr t.admission_rejected;
          finish (Error ("admission: " ^ Ledger.failure_to_string f))
      | Ok () -> (
          (* Embed against residual capacities: co-located tenants have
             already eaten into what constraints like
             rSource.cpuMhz >= vSource.cpuMhz can see. *)
          let host = Model.residual_snapshot t.model in
          match
            Problem.make ~node_constraint ~host ~query:request.Request.query
              edge_constraint
          with
          | exception Invalid_argument m -> finish (Error m)
          | problem ->
              let options =
                {
                  Engine.default_options with
                  Engine.mode = request.Request.mode;
                  timeout = request.Request.timeout;
                }
              in
              let result =
                Telemetry.Span.with_span "service_submit" (fun () ->
                    Engine.run ~options request.Request.algorithm problem)
              in
              Log.debug (fun m ->
                  m "query %d nodes via %s: %d mapping(s), %s"
                    (Netembed_graph.Graph.node_count request.Request.query)
                    (Engine.algorithm_name request.Request.algorithm)
                    (List.length result.Engine.mappings)
                    (Engine.outcome_name result.Engine.outcome));
              let revision = Model.revision t.model in
              Telemetry.Gauge.set t.model_revision (float_of_int revision);
              finish (Ok { request; result; model_revision = revision })))

let submit_with_relaxation t request ~steps ~factor =
  let rec go request round =
    match submit t request with
    | Error m -> Error m
    | Ok answer ->
        if answer.result.Engine.mappings <> [] || round >= steps then
          Ok (answer, round)
        else begin
          Telemetry.Counter.incr t.relaxation_rounds;
          go (Request.relax request factor) (round + 1)
        end
  in
  go request 0

let stale_answer_error = "model changed since the answer was computed; re-submit the query"

let allocate t answer mapping =
  if Model.revision t.model <> answer.model_revision then begin
    Telemetry.Counter.incr t.allocations_rejected;
    Error stale_answer_error
  end
  else begin
    let hosts = List.map snd (Mapping.to_list mapping) in
    match Model.reserve t.model hosts with
    | () ->
        Telemetry.Counter.incr t.allocations_accepted;
        refresh_utilization t;
        Ok ()
    | exception Model.Conflict v ->
        Telemetry.Counter.incr t.allocations_rejected;
        Error (Printf.sprintf "host node %d already reserved" v)
  end

let allocate_shared t answer mapping =
  if Model.revision t.model <> answer.model_revision then begin
    Telemetry.Counter.incr t.allocations_rejected;
    Error stale_answer_error
  end
  else
    match Model.charge_mapping t.model ~query:answer.request.Request.query mapping with
    | Ok id ->
        Telemetry.Counter.incr t.allocations_accepted;
        refresh_utilization t;
        Ok id
    | Error m ->
        Telemetry.Counter.incr t.allocations_rejected;
        Error m

let free t id =
  let ok = Model.release_charge t.model id in
  if ok then refresh_utilization t;
  ok

let release_mapping t mapping =
  Model.release t.model (List.map snd (Mapping.to_list mapping));
  refresh_utilization t
