module Engine = Netembed_core.Engine
module Problem = Netembed_core.Problem
module Mapping = Netembed_core.Mapping
module Filter = Netembed_core.Filter
module Parallel = Netembed_parallel.Parallel
module Expr = Netembed_expr.Expr
module Ast = Netembed_expr.Ast
module Telemetry = Netembed_telemetry.Telemetry
module Ledger = Netembed_ledger.Ledger
module Explain = Netembed_explain.Explain

type entry = {
  id : int;
  trace_id : int;
  summary : string;
  verdict : string;
  elapsed : float;
  phases : float array;
  slow_search : bool;
  certificate : Explain.Certificate.t option;
}

let log_capacity = 64

(* The sliding window the per-phase latency summaries cover:
   [window_seconds] split into [window_slices] ring slices. *)
let window_seconds = 60.0
let window_slices = 6
let window_label = "60s"

type t = {
  model : Model.t;
  registry : Telemetry.Registry.t;
  (* Concurrent-submit safety: the service is shared by the front-end's
     worker domains, so its mutable state is split across three small
     locks (never nested in one another):
     - [model_lock] serializes every model/ledger mutation and every
       read that must be consistent with one (admission checks,
       residual snapshots paired with the revision they were taken at,
       allocation commit/release, monitor ticks via {!exclusively});
     - [cache_lock] guards the filter cache's table and its hit/miss
       counters, so the hammer test can assert hits + misses = lookups
       exactly;
     - [state_lock] guards the diagnostics ring, the windowed phase
       series, the latency histogram and the request counters.
     The search itself runs outside all three, against an immutable
     residual snapshot. *)
  model_lock : Mutex.t;
  cache_lock : Mutex.t;
  state_lock : Mutex.t;
  requests : Telemetry.Counter.t;
  request_errors : Telemetry.Counter.t;
  latency_us : Telemetry.Histogram.t;
  relaxation_rounds : Telemetry.Counter.t;
  model_revision : Telemetry.Gauge.t;
  allocations_accepted : Telemetry.Counter.t;
  allocations_rejected : Telemetry.Counter.t;
  admission_rejected : Telemetry.Counter.t;
  queue_rejected : Telemetry.Counter.t;
  migrations : Telemetry.Counter.t;
  migration_failures : Telemetry.Counter.t;
  active_allocations : Telemetry.Gauge.t;
  utilization_gauges : (string * [ `Node | `Edge ] * Telemetry.Gauge.t) list;
  slow_threshold : float;
  slow_search_share : float;
  domains : int;
  filter_cache : Filter_cache.t;
  cache_hits : Telemetry.Counter.t;
  cache_misses : Telemetry.Counter.t;
  (* Per-phase request-latency decomposition: one windowed series per
     phase plus a "total" one (µs observations exposed in seconds), and
     lifetime per-phase second totals mirrored onto gauges. *)
  request_seconds : Telemetry.Windowed.t array;
  phase_seconds : Telemetry.Gauge.t array;
  phase_totals : float array;
  next_id : int Atomic.t;
  (* SLO burn-rate health machine: every finished request (and every
     backpressure reject) feeds it; the server's periodic tick calls
     [Health.evaluate] with the live queue depth. *)
  health : Health.t;
  (* Bounded slow/failed-query log: a ring of the last [log_capacity]
     diagnosable requests, looked up by request id for EXPLAIN. *)
  log : entry option array;
  mutable logged : int;
}

let kind_label = function `Node -> "node" | `Edge -> "edge"

let create ?(registry = Telemetry.default_registry) ?(slow_threshold = 0.5)
    ?(slow_search_share = 0.9) ?(domains = 1) ?(filter_cache_capacity = 32)
    ?health_config model =
  let ledger = Model.ledger model in
  (* Pre-register the parallel-search steal counter so the exposition
     shows the series (at 0) before the first multi-domain request;
     work-stealing workers merge their counts onto it at join. *)
  ignore
    (Telemetry.Registry.counter registry
       ~help:"Search frames stolen from sibling deques by idle domains"
       "netembed_steals_total");
  let utilization_gauges =
    List.map
      (fun (resource, kind, _, _) ->
        ( resource,
          kind,
          Telemetry.Registry.gauge registry
            ~help:"Fraction of the hosting network's declared capacity under allocation"
            ~labels:[ ("resource", resource); ("kind", kind_label kind) ]
            "netembed_resource_utilization" ))
      (Ledger.utilization ledger)
  in
  let t =
    {
      model;
      registry;
      model_lock = Mutex.create ();
      cache_lock = Mutex.create ();
      state_lock = Mutex.create ();
      requests =
        Telemetry.Registry.counter registry
          ~help:"Requests submitted to the mapping service" "netembed_requests_total";
      request_errors =
        Telemetry.Registry.counter registry
          ~help:"Requests rejected (malformed constraints, admission control or impossible query)"
          "netembed_request_errors_total";
      latency_us =
        Telemetry.Registry.histogram registry
          ~help:"End-to-end request latency in microseconds"
          "netembed_request_latency_us";
      relaxation_rounds =
        Telemetry.Registry.counter registry
          ~help:"Constraint-relaxation rounds applied during negotiation"
          "netembed_relaxation_rounds_total";
      model_revision =
        Telemetry.Registry.gauge registry
          ~help:"Network-model revision the latest answer was computed against"
          "netembed_model_revision";
      allocations_accepted =
        Telemetry.Registry.counter registry
          ~help:"Allocations committed (whole-node reservations and fractional charges)"
          "netembed_allocations_total";
      allocations_rejected =
        Telemetry.Registry.counter registry
          ~help:"Allocations rejected (stale answer, reservation conflict or over-committed resource)"
          "netembed_allocation_rejects_total";
      admission_rejected =
        Telemetry.Registry.counter registry
          ~help:"Queries rejected before search: aggregate demand exceeded total residual capacity"
          "netembed_admission_rejects_total";
      queue_rejected =
        Telemetry.Registry.counter registry
          ~help:"Requests rejected at the front door because the admission queue was \
                 saturated (backpressure)"
          "netembed_admission_queue_rejects_total";
      migrations =
        Telemetry.Registry.counter registry
          ~help:"Allocations atomically re-homed by a defragmentation pass"
          "netembed_migrations_total";
      migration_failures =
        Telemetry.Registry.counter registry
          ~help:"Migration attempts rolled back (re-embed target over-committed); \
                 the original allocation survives intact"
          "netembed_migration_failures_total";
      active_allocations =
        Telemetry.Registry.gauge registry
          ~help:"Outstanding ledger allocations" "netembed_active_allocations";
      utilization_gauges;
      slow_threshold;
      domains = max 1 domains;
      filter_cache = Filter_cache.create ~capacity:filter_cache_capacity ();
      cache_hits =
        Telemetry.Registry.counter registry
          ~help:"Requests answered with a cached filter matrix (build skipped)"
          "netembed_filter_cache_hits_total";
      cache_misses =
        Telemetry.Registry.counter registry
          ~help:"Requests that had to build their filter matrix"
          "netembed_filter_cache_misses_total";
      request_seconds =
        Array.init
          (Telemetry.Phase.count + 1)
          (fun i ->
            let phase =
              if i < Telemetry.Phase.count then
                Telemetry.Phase.name (Telemetry.Phase.of_index i)
              else "total"
            in
            Telemetry.Registry.windowed registry
              ~help:"Request latency by phase over a sliding window"
              ~labels:[ ("phase", phase); ("window", window_label) ]
              ~scale:1e-6 ~window:window_seconds ~slices:window_slices
              "netembed_request_seconds");
      phase_seconds =
        Array.init Telemetry.Phase.count (fun i ->
            Telemetry.Registry.gauge registry
              ~help:"Cumulative seconds spent in each request phase"
              ~labels:
                [ ("phase", Telemetry.Phase.name (Telemetry.Phase.of_index i)) ]
              "netembed_phase_seconds_total");
      phase_totals = Array.make Telemetry.Phase.count 0.0;
      slow_search_share;
      next_id = Atomic.make 1;
      health = Health.create ?config:health_config ~registry ();
      log = Array.make log_capacity None;
      logged = 0;
    }
  in
  Telemetry.Gauge.set t.model_revision (float_of_int (Model.revision model));
  t

let model t = t.model
let registry t = t.registry
let filter_cache t = t.filter_cache
let domains t = t.domains
let health t = t.health

let with_lock m f =
  Mutex.lock m;
  Fun.protect f ~finally:(fun () -> Mutex.unlock m)

let with_model t f = with_lock t.model_lock f
let with_cache t f = with_lock t.cache_lock f
let with_state t f = with_lock t.state_lock f
let exclusively t f = with_model t f

let utilization t =
  with_model t (fun () -> Ledger.utilization (Model.ledger t.model))

(* Callers hold [model_lock]. *)
let refresh_utilization t =
  let rows = Ledger.utilization (Model.ledger t.model) in
  List.iter
    (fun (resource, kind, gauge) ->
      match
        List.find_opt (fun (r, k, _, _) -> r = resource && k = kind) rows
      with
      | Some (_, _, used, cap) ->
          Telemetry.Gauge.set gauge (if cap > 0.0 then used /. cap else 0.0)
      | None -> ())
    t.utilization_gauges;
  Telemetry.Gauge.set t.active_allocations
    (float_of_int (Ledger.outstanding (Model.ledger t.model)))

(* ------------------------------------------------------------------ *)
(* Phase-latency accounting                                            *)
(* ------------------------------------------------------------------ *)

(* Caller holds [state_lock]: the windowed slices, phase totals and
   gauges are written from every worker domain. *)
let record_phase_unlocked t phase seconds =
  if seconds > 0.0 then begin
    let i = Telemetry.Phase.index phase in
    t.phase_totals.(i) <- t.phase_totals.(i) +. seconds;
    Telemetry.Gauge.set t.phase_seconds.(i) t.phase_totals.(i);
    Telemetry.Windowed.observe t.request_seconds.(i)
      (int_of_float (seconds *. 1e6))
  end

let record_phase t phase seconds =
  with_state t (fun () -> record_phase_unlocked t phase seconds)

(* Feed a request's filled timings array into the per-phase series.
   Phases the request never exercised (0.0 cells) are skipped, so each
   phase's window quantiles cover only requests that paid for it. *)
let record_phases_unlocked t phases =
  Array.iteri
    (fun i s ->
      if i < Telemetry.Phase.count && s > 0.0 then
        record_phase_unlocked t (Telemetry.Phase.of_index i) s)
    phases

type answer = {
  id : int;
  trace_id : int;
  request : Request.t;
  result : Engine.result;
  model_revision : int;
  trace : Telemetry.Trace.buffer option;
}

let src = Logs.Src.create "netembed.service" ~doc:"NETEMBED mapping service"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Slow/failed-query log and failure metrics                           *)
(* ------------------------------------------------------------------ *)

(* Caller holds [state_lock]. *)
let log_entry_unlocked t entry =
  t.log.(t.logged mod log_capacity) <- Some entry;
  t.logged <- t.logged + 1

let log_entry t entry = with_state t (fun () -> log_entry_unlocked t entry)

let explain t id =
  with_state t (fun () ->
      let found = ref None in
      Array.iter
        (fun e ->
          match e with
          | Some (e : entry) when e.id = id -> found := Some e
          | Some _ | None -> ())
        t.log;
      !found)

let last_entry t =
  with_state t (fun () ->
      if t.logged = 0 then None else t.log.((t.logged - 1) mod log_capacity))

(* ------------------------------------------------------------------ *)
(* Backpressure rejections                                             *)
(* ------------------------------------------------------------------ *)

(* A request turned away at the front door because the admission queue
   was saturated.  It still gets a request id and a certificate in the
   diagnostics ring — the reject travels the same explain path as an
   admission failure, so a client can EXPLAIN the id it was bounced
   with and monitoring sees the reject counter move. *)
let reject_backpressure t ~queue_depth ~queue_capacity =
  let id = Atomic.fetch_and_add t.next_id 1 in
  let trace_id = Telemetry.Trace.fresh_id () in
  let message =
    Printf.sprintf
      "backpressure: admission queue saturated (%d/%d in flight); retry with backoff"
      queue_depth queue_capacity
  in
  let certificate =
    Explain.Certificate.make
      ~notes:
        [
          Printf.sprintf "admission queue depth %d of capacity %d" queue_depth
            queue_capacity;
          "the search was never started: no capacity or constraint was evaluated";
        ]
      ~verdict:"backpressure" message
  in
  let entry =
    {
      id;
      trace_id;
      summary = Printf.sprintf "rejected at admission queue — %s" message;
      verdict = "backpressure";
      elapsed = 0.0;
      phases = Telemetry.Phase.make_timings ();
      slow_search = false;
      certificate = Some certificate;
    }
  in
  with_state t (fun () ->
      Telemetry.Counter.incr t.queue_rejected;
      Telemetry.Counter.incr t.request_errors;
      log_entry_unlocked t entry);
  (* Sheds count as errors against the SLO budget: sustained shedding
     is exactly what should drive the health machine to Saturated. *)
  Health.observe_request t.health ~latency_s:0.0 ~error:true;
  entry

(* ------------------------------------------------------------------ *)
(* TOP: busiest phases, worst recent requests, window quantiles        *)
(* ------------------------------------------------------------------ *)

type phase_stat = {
  phase : Telemetry.Phase.t;
  total_s : float;  (** lifetime seconds accumulated in this phase *)
  window_count : int;  (** requests that exercised it inside the window *)
  p50_s : float;
  p95_s : float;
  p99_s : float;
}

type top = {
  busiest : phase_stat list;  (** every phase, sorted by [total_s], busiest first *)
  worst : entry list;  (** ring entries sorted by elapsed, slowest first *)
  window_s : float;
}

let top ?(worst = 5) t =
  with_state t @@ fun () ->
  let stat_of i =
    let w = t.request_seconds.(i) in
    {
      phase = Telemetry.Phase.of_index i;
      total_s = t.phase_totals.(i);
      window_count = Telemetry.Windowed.count w;
      p50_s = Telemetry.Windowed.quantile w 0.50;
      p95_s = Telemetry.Windowed.quantile w 0.95;
      p99_s = Telemetry.Windowed.quantile w 0.99;
    }
  in
  let busiest =
    List.init Telemetry.Phase.count stat_of
    |> List.sort (fun a b -> compare b.total_s a.total_s)
  in
  let entries =
    Array.to_list t.log
    |> List.filter_map Fun.id
    |> List.sort (fun (a : entry) b -> compare b.elapsed a.elapsed)
  in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | e :: rest -> e :: take (n - 1) rest
  in
  { busiest; worst = take worst entries; window_s = window_seconds }

(* The labeled-counter increments below are serialized by [state_lock]
   at the call sites (registration itself is thread-safe in the
   registry). *)
let count_unsat t cause =
  Telemetry.Counter.incr
    (Telemetry.Registry.counter t.registry
       ~help:"Requests that ended without a usable mapping, by attributed cause"
       ~labels:[ ("cause", cause) ]
       "netembed_unsat_total")

let count_blame t (cert : Explain.Certificate.t) =
  (* Aggregate the certificate's per-node cause counts into the
     low-cardinality blame-by-constraint counters. *)
  let agg : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (b : Explain.Certificate.blamed) ->
      List.iter
        (fun (c, n) ->
          let l = Explain.Cause.label c in
          Hashtbl.replace agg l (n + Option.value ~default:0 (Hashtbl.find_opt agg l)))
        b.Explain.Certificate.causes)
    cert.Explain.Certificate.blamed;
  Hashtbl.iter
    (fun cause n ->
      Telemetry.Counter.add
        (Telemetry.Registry.counter t.registry
           ~help:"Candidate eliminations charged to each constraint class on failed \
                  or slow queries"
           ~labels:[ ("cause", cause) ]
           "netembed_blame_eliminations_total")
        n)
    agg

let target_label g = function
  | Ledger.Node v -> (
      let attrs = Netembed_graph.Graph.node_attrs g v in
      match Netembed_attr.Attrs.string "name" attrs with
      | Some s -> s
      | None -> Printf.sprintf "node %d" v)
  | Ledger.Edge e -> Printf.sprintf "edge %d" e

let admission_certificate t (f : Ledger.failure) =
  let ledger = Model.ledger t.model in
  let notes =
    List.map
      (fun (tgt, res) ->
        Printf.sprintf "best residual %s: %s has %g" f.Ledger.resource
          (target_label (Ledger.graph ledger) tgt)
          res)
      (Ledger.top_residuals ledger ~resource:f.Ledger.resource f.Ledger.kind 3)
  in
  Explain.Certificate.make ~notes ~verdict:"admission" (Ledger.failure_to_string f)

let request_summary (request : Request.t) verdict elapsed =
  Printf.sprintf "%s %d-node query: %s in %.1f ms"
    (Engine.algorithm_name request.Request.algorithm)
    (Netembed_graph.Graph.node_count request.Request.query)
    verdict (elapsed *. 1000.0)

(* Reserved hosts are excluded by conjoining the reservation guard to
   the user's node constraint. *)
let reservation_guard = Expr.parse_exn "!rSource.reserved"

(* Exhaustive ECF requests on a multi-domain service run through the
   work-stealing scheduler instead of [Engine.run].  The scheduler has
   no blame/recorder instrumentation (per-domain certificates would
   have to be merged), so the synthesized result carries no [report];
   everything else — verdict, telemetry snapshot, filter for the cache
   — is assembled to the engine's contract.  The per-domain registries
   are merged into [t.registry] by the scheduler itself. *)
let submit_parallel t ?trace ~cached_filter ~(request : Request.t) problem =
  let evals_before = Problem.constraint_evals problem in
  let phases = Telemetry.Phase.make_timings () in
  let time_phase ph f =
    let t0 = Unix.gettimeofday () in
    Fun.protect f ~finally:(fun () ->
        let i = Telemetry.Phase.index ph in
        phases.(i) <- phases.(i) +. (Unix.gettimeofday () -. t0))
  in
  let filter =
    match cached_filter with
    | Some f -> f
    | None ->
        time_phase Telemetry.Phase.Compile (fun () ->
            Telemetry.Trace.span_opt trace "compile" (fun () ->
                Problem.prepare problem));
        time_phase Telemetry.Phase.Filter_build (fun () ->
            Telemetry.Trace.span_opt trace "filter_build" (fun () ->
                Filter.build problem))
  in
  let stats =
    time_phase Telemetry.Phase.Search (fun () ->
        Telemetry.Trace.span_opt trace "descent" (fun () ->
            Parallel.ecf_all_stats ~strategy:Parallel.Work_stealing
              ~domains:t.domains ?timeout:request.Request.timeout ~filter
              ~registry:t.registry ?trace problem))
  in
  let found = List.length stats.Parallel.mappings in
  let visited = Parallel.visited_total stats in
  let constraint_evals = Problem.constraint_evals problem - evals_before in
  with_state t (fun () ->
      Telemetry.Counter.add
        (Telemetry.Registry.counter t.registry
           ~labels:[ ("algorithm", "ECF") ]
           ~help:"Constraint-expression evaluations (all phases)"
           "netembed_constraint_evals_total")
        constraint_evals);
  let domains_built, intersections, backtracks =
    List.fold_left
      (fun (a, b, c) (s : Netembed_core.Domain_store.stats) ->
        ( a + s.Netembed_core.Domain_store.domains_built,
          b + s.Netembed_core.Domain_store.intersections,
          c + s.Netembed_core.Domain_store.backtracks ))
      (0, 0, 0) stats.Parallel.domain_stats
  in
  let depth_hist = Telemetry.Histogram.make () in
  let size_hist = Telemetry.Histogram.make () in
  List.iter
    (fun reg ->
      let labels = [ ("algorithm", "ECF") ] in
      Telemetry.Histogram.merge_into ~dst:depth_hist
        (Telemetry.Registry.histogram reg ~labels "netembed_search_depth");
      Telemetry.Histogram.merge_into ~dst:size_hist
        (Telemetry.Registry.histogram reg ~labels "netembed_domain_size"))
    stats.Parallel.domain_registries;
  let telemetry =
    {
      Telemetry.algorithm = "ECF";
      outcome = Engine.verdict_of stats.Parallel.outcome found;
      visited;
      found;
      elapsed_s = stats.Parallel.elapsed;
      time_to_first_s = None;
      constraint_evals;
      domains_built;
      intersections;
      backtracks;
      max_depth = Telemetry.Histogram.max_observed depth_hist;
      depth_histogram = depth_hist;
      domain_size_histogram = size_hist;
      phases;
    }
  in
  {
    Engine.mappings = stats.Parallel.mappings;
    found;
    outcome = stats.Parallel.outcome;
    elapsed = stats.Parallel.elapsed;
    time_to_first = None;
    visited;
    filter_evals = constraint_evals;
    domain_stats = None;
    telemetry;
    report = None;
    filter = Some filter;
  }

let submit ?(trace = false) ?(queue_wait = 0.0) t (request : Request.t) =
  let t0 = Unix.gettimeofday () in
  with_state t (fun () -> Telemetry.Counter.incr t.requests);
  let id = Atomic.fetch_and_add t.next_id 1 in
  (* Every request gets a trace id (one atomic increment) so exemplars
     and answers correlate even when span recording is off; the buffer
     itself exists only for traced requests. *)
  let trace_id = Telemetry.Trace.fresh_id () in
  let tbuf = if trace then Some (Telemetry.Trace.create ~tid:0 ()) else None in
  (* Service-side phase cells (parse / admission / cache_lookup /
     ledger_commit); the engine fills its own cells on the snapshot and
     the two sets are folded together once a result exists.  The
     front-end's admission-queue wait is handed in ready-made: it was
     over before this call began. *)
  let phases = Telemetry.Phase.make_timings () in
  if queue_wait > 0.0 then
    phases.(Telemetry.Phase.index Telemetry.Phase.Queue_wait) <- queue_wait;
  let time_phase ph f =
    let s0 = Unix.gettimeofday () in
    Fun.protect f ~finally:(fun () ->
        let i = Telemetry.Phase.index ph in
        phases.(i) <- phases.(i) +. (Unix.gettimeofday () -. s0))
  in
  let finish ~phases:ph outcome =
    let dt_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
    let error = match outcome with Error _ -> true | Ok _ -> false in
    with_state t (fun () ->
        Telemetry.Histogram.observe t.latency_us dt_us;
        Telemetry.Windowed.observe t.request_seconds.(Telemetry.Phase.count) dt_us;
        record_phases_unlocked t ph;
        if error then Telemetry.Counter.incr t.request_errors);
    Health.observe_request t.health
      ~latency_s:(float_of_int dt_us *. 1e-6)
      ~error;
    outcome
  in
  let log_failure ?certificate verdict message =
    let elapsed = Unix.gettimeofday () -. t0 in
    log_entry t
      {
        id;
        trace_id;
        summary =
          Printf.sprintf "%s — %s" (request_summary request verdict elapsed) message;
        verdict;
        elapsed;
        phases;
        slow_search = false;
        certificate;
      }
  in
  match
    time_phase Telemetry.Phase.Parse (fun () -> Request.parse_constraints request)
  with
  | Error m ->
      log_failure "error" m;
      finish ~phases (Error m)
  | Ok (edge_constraint, node_constraint) -> (
      let node_constraint =
        match node_constraint with
        | None -> reservation_guard
        | Some c -> Ast.Binop (Ast.And, reservation_guard, c)
      in
      (* Admission control: a query whose aggregate demand exceeds the
         total residual capacity cannot commit under any mapping —
         reject it before paying for a search. *)
      match
        time_phase Telemetry.Phase.Admission (fun () ->
            with_model t (fun () ->
                Ledger.admissible (Model.ledger t.model) ~query:request.Request.query))
      with
      | Error f ->
          with_state t (fun () ->
              Telemetry.Counter.incr t.admission_rejected;
              count_unsat t "admission");
          log_failure ~certificate:(admission_certificate t f) "admission"
            (Ledger.failure_to_string f);
          finish ~phases (Error ("admission: " ^ Ledger.failure_to_string f))
      | Ok () -> (
          (* Embed against residual capacities: co-located tenants have
             already eaten into what constraints like
             rSource.cpuMhz >= vSource.cpuMhz can see.  The snapshot is
             ledger-side work, so it lands on the ledger_commit cell.
             Snapshot and revision are read under one critical section
             so a concurrent allocation cannot slip between them. *)
          let host, revision =
            time_phase Telemetry.Phase.Ledger_commit (fun () ->
                with_model t (fun () ->
                    (Model.residual_snapshot t.model, Model.revision t.model)))
          in
          (* Cross-request filter cache: ECF/RWB requests key their
             filter matrix on (model revision, query signature) and
             skip the build — the dominant sequential phase — on a
             repeat.  A hit also hands back the compiled-constraint
             bundle, threaded into [Problem.make] below so a warm
             submit skips specialization and bytecode compilation too.
             A miss builds inside the engine as before (with blame, so
             cold unsat requests still get full filter-phase
             attribution) and the built filter + programs are stored
             afterwards; LNS filters lazily and bypasses the cache. *)
          let cache_key =
            time_phase Telemetry.Phase.Cache_lookup (fun () ->
                match request.Request.algorithm with
                | Engine.LNS -> None
                | Engine.ECF | Engine.RWB ->
                    (* The signature serialization reads only the
                       request; only the invalidation sweep needs the
                       cache lock. *)
                    with_cache t (fun () ->
                        Filter_cache.invalidate t.filter_cache
                          ~current_revision:revision);
                    Some
                      (Filter_cache.signature ~query:request.Request.query
                         ~constraint_text:request.Request.constraint_text
                         ~node_constraint_text:request.Request.node_constraint_text))
          in
          (* Probe and counter bump are one critical section, so
             hits + misses = lookups holds exactly under concurrent
             submits. *)
          let cache_hit =
            time_phase Telemetry.Phase.Cache_lookup (fun () ->
                match cache_key with
                | None -> None
                | Some key ->
                    with_cache t (fun () ->
                        match
                          Filter_cache.find t.filter_cache ~revision ~signature:key
                        with
                        | Some hit ->
                            Telemetry.Counter.incr t.cache_hits;
                            Some hit
                        | None ->
                            Telemetry.Counter.incr t.cache_misses;
                            None))
          in
          let cached_filter = Option.map fst cache_hit in
          let compiled = Option.map snd cache_hit in
          match
            Problem.make ~node_constraint ?compiled ~host
              ~query:request.Request.query edge_constraint
          with
          | exception Invalid_argument m ->
              log_failure "error" m;
              finish ~phases (Error m)
          | problem ->
              let options =
                {
                  Engine.default_options with
                  Engine.mode = request.Request.mode;
                  timeout = request.Request.timeout;
                  (* Every service request runs with blame + flight
                     recorder on: certificates must exist for EXPLAIN
                     without a re-run, and service queries are
                     milliseconds-scale, not the bench hot loop. *)
                  explain = true;
                }
              in
              let result =
                Telemetry.Span.with_span "service_submit" (fun () ->
                    if
                      t.domains > 1
                      && request.Request.algorithm = Engine.ECF
                      && request.Request.mode = Engine.All
                    then submit_parallel t ?trace:tbuf ~cached_filter ~request problem
                    else
                      Engine.run ~options ?filter:cached_filter ?trace:tbuf
                        request.Request.algorithm problem)
              in
              time_phase Telemetry.Phase.Ledger_commit (fun () ->
                  match (cache_key, result.Engine.filter) with
                  | Some key, Some f ->
                      with_cache t (fun () ->
                          Filter_cache.add t.filter_cache ~revision ~signature:key
                            ~compiled:(Problem.compiled_programs problem) f)
                  | _ -> ());
              Log.debug (fun m ->
                  m "query %d nodes via %s: %d mapping(s), %s"
                    (Netembed_graph.Graph.node_count request.Request.query)
                    (Engine.algorithm_name request.Request.algorithm)
                    (List.length result.Engine.mappings)
                    (Engine.outcome_name result.Engine.outcome));
              let verdict = Engine.verdict result in
              (* Fold the service-side cells into the snapshot's array:
                 from here on [result.telemetry.phases] is the
                 request's full decomposition (the wire header, the
                 exemplar entry and the windowed series all read it). *)
              let rp = result.Engine.telemetry.Telemetry.phases in
              Array.iteri (fun i v -> if v > 0.0 then rp.(i) <- rp.(i) +. v) phases;
              let slow = result.Engine.elapsed >= t.slow_threshold in
              (* A cache-warm request can be fast on the wall clock yet
                 spend nearly everything in the search; flag it when the
                 search share crosses the threshold, with a floor at a
                 tenth of [slow_threshold] so microsecond-scale requests
                 don't flood the ring. *)
              let slow_search =
                result.Engine.elapsed >= 0.1 *. t.slow_threshold
                && rp.(Telemetry.Phase.index Telemetry.Phase.Search)
                   >= t.slow_search_share *. result.Engine.elapsed
              in
              (match tbuf with
              | Some b ->
                  (* The enclosing request span (tid 0) — recorded last,
                     covering parse through bookkeeping, so every other
                     span nests under it. *)
                  Telemetry.Trace.add b ~name:"request" ~start_us:(t0 *. 1e6)
                    ~dur_us:((Unix.gettimeofday () -. t0) *. 1e6)
              | None -> ());
              with_state t (fun () ->
                  (match verdict with
                  | "unsat" ->
                      let cause =
                        match result.Engine.report with
                        | Some cert -> (
                            match Explain.Certificate.primary_cause cert with
                            | Some c -> Explain.Cause.label c
                            | None -> "search")
                        | None -> "search"
                      in
                      count_unsat t cause
                  | "exhausted" -> count_unsat t "budget"
                  | _ -> ());
                  if verdict <> "complete" || slow || slow_search then begin
                    (match result.Engine.report with
                    | Some cert -> count_blame t cert
                    | None -> ());
                    log_entry_unlocked t
                      {
                        id;
                        trace_id;
                        summary =
                          request_summary request verdict result.Engine.elapsed;
                        verdict;
                        elapsed = result.Engine.elapsed;
                        phases = rp;
                        slow_search;
                        certificate = result.Engine.report;
                      }
                  end);
              let revision = Model.revision t.model in
              Telemetry.Gauge.set t.model_revision (float_of_int revision);
              finish ~phases:rp
                (Ok { id; trace_id; request; result; model_revision = revision; trace = tbuf })))

let submit_with_relaxation t request ~steps ~factor =
  let rec go request round =
    match submit t request with
    | Error m -> Error m
    | Ok answer ->
        if answer.result.Engine.mappings <> [] || round >= steps then
          Ok (answer, round)
        else begin
          with_state t (fun () -> Telemetry.Counter.incr t.relaxation_rounds);
          go (Request.relax request factor) (round + 1)
        end
  in
  go request 0

let stale_answer_error = "model changed since the answer was computed; re-submit the query"

(* Commit/release work arriving as separate wire requests still lands
   on the ledger_commit latency series. *)
let timed_ledger_commit t f =
  let t0 = Unix.gettimeofday () in
  Fun.protect f ~finally:(fun () ->
      record_phase t Telemetry.Phase.Ledger_commit (Unix.gettimeofday () -. t0))

(* The stale-answer revision check and the commit/release must be one
   critical section: otherwise a monitor tick between check and commit
   books capacity against a model the answer never saw.  The allocation
   counters ride along under [model_lock] so the hammer test can assert
   accepted + rejected = attempts exactly. *)
let allocate t answer mapping =
  timed_ledger_commit t @@ fun () ->
  with_model t @@ fun () ->
  if Model.revision t.model <> answer.model_revision then begin
    Telemetry.Counter.incr t.allocations_rejected;
    Error stale_answer_error
  end
  else begin
    let hosts = List.map snd (Mapping.to_list mapping) in
    match Model.reserve t.model hosts with
    | () ->
        Telemetry.Counter.incr t.allocations_accepted;
        refresh_utilization t;
        Ok ()
    | exception Model.Conflict v ->
        Telemetry.Counter.incr t.allocations_rejected;
        Error (Printf.sprintf "host node %d already reserved" v)
  end

let allocate_shared t answer mapping =
  timed_ledger_commit t @@ fun () ->
  with_model t @@ fun () ->
  if Model.revision t.model <> answer.model_revision then begin
    Telemetry.Counter.incr t.allocations_rejected;
    Error stale_answer_error
  end
  else
    match Model.charge_mapping t.model ~query:answer.request.Request.query mapping with
    | Ok id ->
        Telemetry.Counter.incr t.allocations_accepted;
        refresh_utilization t;
        Ok id
    | Error m ->
        Telemetry.Counter.incr t.allocations_rejected;
        Error m

let free t id =
  timed_ledger_commit t @@ fun () ->
  with_model t @@ fun () ->
  let ok = Model.release_charge t.model id in
  if ok then refresh_utilization t;
  ok

let allocation_charge t id =
  with_model t (fun () -> Ledger.allocation_charge (Model.ledger t.model) id)

let allocation_ids t =
  with_model t (fun () -> Ledger.allocation_ids (Model.ledger t.model))

(* Migration takes no answer: it re-homes a *live* allocation, so the
   ledger itself is the authority on staleness (an unknown or released
   id fails), and the whole release+commit+rollback is one critical
   section with the counters, so migrations + failures = attempts holds
   exactly under concurrent callers. *)
let migrate t id ~query mapping =
  timed_ledger_commit t @@ fun () ->
  with_model t @@ fun () ->
  match Model.migrate_charge t.model id ~query mapping with
  | Ok id' ->
      Telemetry.Counter.incr t.migrations;
      refresh_utilization t;
      Ok id'
  | Error m ->
      Telemetry.Counter.incr t.migration_failures;
      Error m

let release_mapping t mapping =
  with_model t (fun () ->
      Model.release t.model (List.map snd (Mapping.to_list mapping));
      refresh_utilization t)
