module Engine = Netembed_core.Engine
module Problem = Netembed_core.Problem
module Mapping = Netembed_core.Mapping
module Expr = Netembed_expr.Expr
module Ast = Netembed_expr.Ast
module Telemetry = Netembed_telemetry.Telemetry

type t = {
  model : Model.t;
  registry : Telemetry.Registry.t;
  requests : Telemetry.Counter.t;
  request_errors : Telemetry.Counter.t;
  latency_us : Telemetry.Histogram.t;
  relaxation_rounds : Telemetry.Counter.t;
  model_revision : Telemetry.Gauge.t;
}

let create ?(registry = Telemetry.default_registry) model =
  let t =
    {
      model;
      registry;
      requests =
        Telemetry.Registry.counter registry
          ~help:"Requests submitted to the mapping service" "netembed_requests_total";
      request_errors =
        Telemetry.Registry.counter registry
          ~help:"Requests rejected (malformed constraints or impossible query)"
          "netembed_request_errors_total";
      latency_us =
        Telemetry.Registry.histogram registry
          ~help:"End-to-end request latency in microseconds"
          "netembed_request_latency_us";
      relaxation_rounds =
        Telemetry.Registry.counter registry
          ~help:"Constraint-relaxation rounds applied during negotiation"
          "netembed_relaxation_rounds_total";
      model_revision =
        Telemetry.Registry.gauge registry
          ~help:"Network-model revision the latest answer was computed against"
          "netembed_model_revision";
    }
  in
  Telemetry.Gauge.set t.model_revision (float_of_int (Model.revision model));
  t

let model t = t.model
let registry t = t.registry

type answer = {
  request : Request.t;
  result : Engine.result;
  model_revision : int;
}

let src = Logs.Src.create "netembed.service" ~doc:"NETEMBED mapping service"

module Log = (val Logs.src_log src : Logs.LOG)

(* Reserved hosts are excluded by conjoining the reservation guard to
   the user's node constraint. *)
let reservation_guard = Expr.parse_exn "!rSource.reserved"

let submit t (request : Request.t) =
  let t0 = Unix.gettimeofday () in
  Telemetry.Counter.incr t.requests;
  let finish outcome =
    let dt_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
    Telemetry.Histogram.observe t.latency_us dt_us;
    (match outcome with
    | Error _ -> Telemetry.Counter.incr t.request_errors
    | Ok _ -> ());
    outcome
  in
  match Request.parse_constraints request with
  | Error m -> finish (Error m)
  | Ok (edge_constraint, node_constraint) -> (
      let node_constraint =
        match node_constraint with
        | None -> reservation_guard
        | Some c -> Ast.Binop (Ast.And, reservation_guard, c)
      in
      let host = Model.snapshot t.model in
      match
        Problem.make ~node_constraint ~host ~query:request.Request.query edge_constraint
      with
      | exception Invalid_argument m -> finish (Error m)
      | problem ->
          let options =
            {
              Engine.default_options with
              Engine.mode = request.Request.mode;
              timeout = request.Request.timeout;
            }
          in
          let result =
            Telemetry.Span.with_span "service_submit" (fun () ->
                Engine.run ~options request.Request.algorithm problem)
          in
          Log.debug (fun m ->
              m "query %d nodes via %s: %d mapping(s), %s"
                (Netembed_graph.Graph.node_count request.Request.query)
                (Engine.algorithm_name request.Request.algorithm)
                (List.length result.Engine.mappings)
                (Engine.outcome_name result.Engine.outcome));
          let revision = Model.revision t.model in
          Telemetry.Gauge.set t.model_revision (float_of_int revision);
          finish (Ok { request; result; model_revision = revision }))

let submit_with_relaxation t request ~steps ~factor =
  let rec go request round =
    match submit t request with
    | Error m -> Error m
    | Ok answer ->
        if answer.result.Engine.mappings <> [] || round >= steps then
          Ok (answer, round)
        else begin
          Telemetry.Counter.incr t.relaxation_rounds;
          go (Request.relax request factor) (round + 1)
        end
  in
  go request 0

let allocate t answer mapping =
  if Model.revision t.model <> answer.model_revision then
    Error "model changed since the answer was computed; re-submit the query"
  else begin
    let hosts = List.map snd (Mapping.to_list mapping) in
    match Model.reserve t.model hosts with
    | () -> Ok ()
    | exception Model.Conflict v -> Error (Printf.sprintf "host node %d already reserved" v)
  end

let release_mapping t mapping =
  Model.release t.model (List.map snd (Mapping.to_list mapping))
