(** The NETEMBED mapping service front-end (paper, Fig. 1): applications
    submit resource-requirement queries against the network model and
    receive lists of possible resource assignments.

    The service excludes reserved hosting nodes automatically, embeds
    against {e residual} capacities (so co-located tenants shrink what
    capacity constraints can see), applies admission control before
    searching, supports the interactive negotiate-and-relax loop, and
    can allocate a returned mapping — exclusively ({!allocate}, the
    whole-node reservation) or fractionally ({!allocate_shared}, a
    multi-tenant capacity charge in the model's ledger).

    {b Concurrency.}  A service value may be shared by any number of
    domains submitting, allocating and freeing concurrently (the
    {!Netembed_frontend} worker pool does exactly that).  Internally
    three small mutexes serialize the mutable state — model/ledger
    mutations and the reads that must be consistent with them, the
    filter cache with its hit/miss counters, and the diagnostics ring
    plus the windowed phase series and request counters — while the
    search itself always runs lock-free against an immutable residual
    snapshot.  Request ids and trace ids are atomic.  The per-algorithm
    engine counters (visited nodes, etc.) keep the telemetry kernel's
    racy single-writer model and may undercount slightly under heavy
    parallel load; the service-level counters are exact. *)

type t

type entry = {
  id : int;  (** the request id echoed in wire answers *)
  trace_id : int;  (** trace id allocated at submit (0 = untraceable parse error) *)
  summary : string;  (** one-line description for log listings *)
  verdict : string;
      (** ["unsat"], ["exhausted"], ["partial"], ["admission"],
          ["error"] or ["complete"] (slow-but-successful) *)
  elapsed : float;  (** seconds *)
  phases : float array;
      (** per-phase seconds, indexed by
          {!Netembed_telemetry.Telemetry.Phase.index} — the exemplar
          breakdown EXPLAIN and TOP print *)
  slow_search : bool;
      (** the search phase alone exceeded the configured share of the
          request's wall-clock time (see [slow_search_share]) *)
  certificate : Netembed_explain.Explain.Certificate.t option;
      (** [None] for parse/shape errors and parallel-path requests,
          where there is no per-run blame instrumentation *)
}
(** One diagnosable request retained in the slow/failed-query log. *)

val create :
  ?registry:Netembed_telemetry.Telemetry.Registry.t ->
  ?slow_threshold:float ->
  ?slow_search_share:float ->
  ?domains:int ->
  ?filter_cache_capacity:int ->
  ?health_config:Health.config ->
  Model.t ->
  t
(** The service registers its request metrics
    ([netembed_requests_total], [netembed_request_errors_total], the
    [netembed_request_latency_us] histogram,
    [netembed_relaxation_rounds_total] and the [netembed_model_revision]
    gauge), the allocation counters ([netembed_allocations_total],
    [netembed_allocation_rejects_total],
    [netembed_admission_rejects_total],
    [netembed_active_allocations]), the failure-attribution counters
    ([netembed_unsat_total{cause}] and
    [netembed_blame_eliminations_total{cause}], created lazily on first
    use), the filter-cache counters
    ([netembed_filter_cache_hits_total] /
    [netembed_filter_cache_misses_total]), the parallel-search
    [netembed_steals_total] counter and one
    [netembed_resource_utilization{resource,kind}] gauge per capacity
    resource tracked by the model's ledger, in [registry] —
    {!Netembed_telemetry.Telemetry.default_registry} unless overridden
    (tests pass a private one for isolation).

    [domains] (default 1): exhaustive ECF requests ([All] mode) on a
    service created with [domains > 1] run through the work-stealing
    parallel scheduler ({!Netembed_parallel.Parallel.ecf_all_stats});
    the answer's result then carries no failure certificate
    ([result.report = None]) since blame instrumentation is
    per-domain.  All other requests run the sequential engine
    unchanged.

    [filter_cache_capacity] (default 32) bounds the cross-request
    filter cache ({!Filter_cache}): ECF/RWB requests whose (model
    revision, query signature) was seen before skip the filter build
    — the dominant sequential phase — and bump the hit counter.

    The service also registers the request-latency decomposition: one
    [netembed_request_seconds{phase,window="60s"}] windowed summary per
    phase (plus [phase="total"]) covering a sliding 60-second window,
    and lifetime [netembed_phase_seconds_total{phase}] gauges.

    Successful requests slower than [slow_threshold] seconds (default
    0.5) are kept in the diagnostics log alongside the failures, as are
    requests whose search phase alone takes at least
    [slow_search_share] (default 0.9) of the request's wall-clock time
    while the request is non-trivially slow — catching search-dominated
    requests that stay under the absolute threshold.

    The service also owns a {!Health} state machine (configured by
    [health_config], default {!Health.default_config}) which registers
    the [netembed_health_state] gauge: every finished request and every
    backpressure reject feeds it, and the server's periodic tick drives
    {!Health.evaluate} with the live admission-queue depth. *)

val health : t -> Health.t
(** The service's SLO burn-rate health machine — evaluate it
    periodically with the front-end queue depth, read it for [/readyz]
    and the [HEALTH] verb, latch it with {!Health.set_draining} when
    shutdown begins. *)

val filter_cache : t -> Filter_cache.t
(** The service's cross-request filter cache (introspection for tests
    and monitoring). *)

val domains : t -> int

val model : t -> Model.t

val registry : t -> Netembed_telemetry.Telemetry.Registry.t
(** The registry the service records into — what [GET /metrics]
    serves. *)

val utilization :
  t -> (string * [ `Node | `Edge ] * float * float) list
(** Per tracked capacity resource: [(name, kind, used, capacity)] —
    {!Netembed_ledger.Ledger.utilization} of the model's ledger. *)

type answer = {
  id : int;  (** request id — the handle for {!explain} / [EXPLAIN] *)
  trace_id : int;  (** the request's trace id (spans attribute to it) *)
  request : Request.t;
  result : Netembed_core.Engine.result;
      (** [result.telemetry.phases] carries the full per-request phase
          decomposition (parse .. encode), folded together from the
          service and engine timers *)
  model_revision : int;  (** model revision the answer was computed against *)
  trace : Netembed_telemetry.Telemetry.Trace.buffer option;
      (** the request's span buffer when submitted with [~trace:true]
          ([None] otherwise) — feed to
          {!Netembed_telemetry.Telemetry.Trace.to_chrome_json} *)
}

val submit :
  ?trace:bool -> ?queue_wait:float -> t -> Request.t -> (answer, string) result
(** Run the request against the current {e residual} model snapshot
    ({!Model.residual_snapshot}).  [Error] is returned for malformed
    constraint expressions, an impossible query (larger than the
    hosting network), or an admission rejection — when the query's
    aggregate capacity demand exceeds the network's total residual, no
    mapping can commit, so the search is skipped and the error names
    the exhausted resource.

    Every search runs with explain mode on, so failed answers carry a
    failure certificate in [result.report].  Requests that end without a
    complete answer (and admission rejections, parse errors and slow
    successes) are retained in a bounded ring for later {!explain}
    lookup; ["unsat"] and ["exhausted"] verdicts and admission
    rejections bump [netembed_unsat_total{cause}].

    Every request is decomposed into phases (parse, admission,
    filter-cache lookup, filter build, compile, search, ledger commit)
    fed to the windowed [netembed_request_seconds] summaries;
    [queue_wait] (default 0), the seconds the frame already spent in
    the front-end admission queue, is folded in as the [queue_wait]
    phase.  With [trace] (default false) the request additionally
    records request-scoped spans — including per-frame spans from
    parallel worker domains — into [answer.trace] for Chrome trace
    export. *)

val record_phase : t -> Netembed_telemetry.Telemetry.Phase.t -> float -> unit
(** Feed [seconds] into a phase's windowed summary and lifetime total —
    the hook the wire server uses to stamp the [encode] phase, which
    only exists after [submit] returns. *)

val explain : t -> int -> entry option
(** Look up a retained diagnostic entry by request id ([None] when the
    id is unknown, was evicted from the ring, or completed quickly). *)

val reject_backpressure : t -> queue_depth:int -> queue_capacity:int -> entry
(** Record a request turned away because the front-end's admission
    queue was saturated: allocates a request id, bumps
    [netembed_admission_queue_rejects_total] (and the request-error
    counter), and retains a ["backpressure"]-verdict certificate in the
    diagnostics ring so the client can [EXPLAIN] the id it was bounced
    with.  Constant-time — no model or ledger work — so the front door
    sheds load instead of queueing unboundedly. *)

val exclusively : t -> (unit -> 'a) -> 'a
(** Run [f] holding the service's model/ledger lock — the hook for
    out-of-band model mutations (monitor ticks) that must not interleave
    with concurrent submits' residual snapshots or allocations. *)

val last_entry : t -> entry option
(** The most recently logged diagnostic entry. *)

type phase_stat = {
  phase : Netembed_telemetry.Telemetry.Phase.t;
  total_s : float;  (** lifetime seconds accumulated in this phase *)
  window_count : int;  (** requests that exercised it inside the window *)
  p50_s : float;
  p95_s : float;
  p99_s : float;
}
(** One row of the {!top} report: a phase's lifetime total and its
    sliding-window latency quantiles (only over requests that actually
    exercised the phase). *)

type top = {
  busiest : phase_stat list;  (** every phase, busiest (by [total_s]) first *)
  worst : entry list;  (** retained ring entries, slowest first *)
  window_s : float;  (** the quantiles' window length, seconds *)
}

val top : ?worst:int -> t -> top
(** The slow-request triage report behind the [TOP] wire verb and
    [netembed_cli top]: where wall-clock time goes by phase, and the
    [worst] (default 5) slowest retained requests with their per-phase
    breakdowns. *)

val submit_with_relaxation :
  t -> Request.t -> steps:int -> factor:float -> (answer * int, string) result
(** Interactive negotiation: try the request; while no mapping is found
    and fewer than [steps] relaxations were applied, widen the delay
    constraints by [factor] and retry.  Returns the answer together with
    the number of relaxation rounds used (also accumulated onto the
    [netembed_relaxation_rounds_total] counter). *)

val allocate : t -> answer -> Netembed_core.Mapping.t -> (unit, string) result
(** Reserve the hosts used by the mapping exclusively (the degenerate
    full-capacity charge).  Fails (without reserving anything) if the
    model changed since the answer was computed or if any host is
    already reserved. *)

val allocate_shared :
  t -> answer -> Netembed_core.Mapping.t -> (int, string) result
(** Commit the mapping's fractional demand vector in the ledger,
    leaving the hosts available to further tenants while capacity
    remains.  Returns the allocation id for {!free}.  Fails without
    charging anything if the model changed since the answer was
    computed or a resource would over-commit (the error names it). *)

val free : t -> int -> bool
(** Release a fractional allocation by id; [false] if unknown. *)

val allocation_charge : t -> int -> Netembed_ledger.Ledger.charge option
(** The demand vector held by a live fractional allocation ([None] when
    the id is unknown or already freed) — the introspection a
    defragmentation pass uses to credit a victim's own footprint back
    before re-searching it ({!Netembed_ledger.Ledger.allocation_charge}). *)

val allocation_ids : t -> int list
(** Live fractional-allocation ids, ascending. *)

val migrate :
  t -> int -> query:Netembed_graph.Graph.t -> Netembed_core.Mapping.t ->
  (int, string) result
(** Atomically re-home live allocation [id] onto [mapping] of [query]:
    the old charge is released and the new one committed as one ledger
    step ({!Netembed_ledger.Ledger.migrate}), so the move may reuse
    capacity the tenant itself vacates.  Returns the new allocation id
    and bumps [netembed_migrations_total].  On failure {e nothing
    changes} — the original allocation survives under its original id,
    [netembed_migration_failures_total] is bumped, and the error names
    the over-committed resource.  [netembed_active_allocations] is
    unchanged either way: a migration is a move, not an admission. *)

val release_mapping : t -> Netembed_core.Mapping.t -> unit
(** Release the whole-node reservations of {!allocate}. *)
