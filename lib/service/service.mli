(** The NETEMBED mapping service front-end (paper, Fig. 1): applications
    submit resource-requirement queries against the network model and
    receive lists of possible resource assignments.

    The service excludes reserved hosting nodes automatically, supports
    the interactive negotiate-and-relax loop, and can allocate a
    returned mapping (reserving its hosts in the model). *)

type t

val create : ?registry:Netembed_telemetry.Telemetry.Registry.t -> Model.t -> t
(** The service registers its request metrics
    ([netembed_requests_total], [netembed_request_errors_total], the
    [netembed_request_latency_us] histogram,
    [netembed_relaxation_rounds_total] and the [netembed_model_revision]
    gauge) in [registry] —
    {!Netembed_telemetry.Telemetry.default_registry} unless overridden
    (tests pass a private one for isolation). *)

val model : t -> Model.t

val registry : t -> Netembed_telemetry.Telemetry.Registry.t
(** The registry the service records into — what [GET /metrics]
    serves. *)

type answer = {
  request : Request.t;
  result : Netembed_core.Engine.result;
  model_revision : int;  (** model revision the answer was computed against *)
}

val submit : t -> Request.t -> (answer, string) result
(** Run the request against the current model snapshot.  [Error] is
    returned for malformed constraint expressions or an impossible
    query (larger than the hosting network). *)

val submit_with_relaxation :
  t -> Request.t -> steps:int -> factor:float -> (answer * int, string) result
(** Interactive negotiation: try the request; while no mapping is found
    and fewer than [steps] relaxations were applied, widen the delay
    constraints by [factor] and retry.  Returns the answer together with
    the number of relaxation rounds used (also accumulated onto the
    [netembed_relaxation_rounds_total] counter). *)

val allocate : t -> answer -> Netembed_core.Mapping.t -> (unit, string) result
(** Reserve the hosts used by the mapping.  Fails (without reserving
    anything) if the model changed since the answer was computed or if
    any host is already reserved. *)

val release_mapping : t -> Netembed_core.Mapping.t -> unit
