module Engine = Netembed_core.Engine
module Mapping = Netembed_core.Mapping
module Telemetry = Netembed_telemetry.Telemetry

let mode_to_string = function
  | Engine.First -> "first"
  | Engine.All -> "all"
  | Engine.At_most k -> Printf.sprintf "atmost:%d" k

let mode_of_string s =
  match String.lowercase_ascii s with
  | "first" -> Ok Engine.First
  | "all" -> Ok Engine.All
  | s when String.length s > 7 && String.sub s 0 7 = "atmost:" -> (
      match int_of_string_opt (String.sub s 7 (String.length s - 7)) with
      | Some k when k >= 0 -> Ok (Engine.At_most k)
      | Some _ | None -> Error (Printf.sprintf "bad mode %S" s))
  | s -> Error (Printf.sprintf "bad mode %S" s)

let algorithm_of_string s =
  match String.uppercase_ascii s with
  | "ECF" -> Ok Engine.ECF
  | "RWB" -> Ok Engine.RWB
  | "LNS" -> Ok Engine.LNS
  | s -> Error (Printf.sprintf "unknown algorithm %S" s)

let encode_embed keyword (r : Request.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%s alg=%s mode=%s%s\n" keyword
       (Engine.algorithm_name r.Request.algorithm)
       (mode_to_string r.Request.mode)
       (match r.Request.timeout with
       | None -> ""
       | Some s -> Printf.sprintf " timeout=%g" s));
  Buffer.add_string buf (Printf.sprintf "CONSTRAINT %s\n" r.Request.constraint_text);
  (match r.Request.node_constraint_text with
  | None -> ()
  | Some c -> Buffer.add_string buf (Printf.sprintf "NODECONSTRAINT %s\n" c));
  Buffer.add_string buf "GRAPHML\n";
  Buffer.add_string buf (Netembed_graphml.Graphml.write_string r.Request.query);
  Buffer.add_string buf ".\n";
  Buffer.contents buf

let encode_request r = encode_embed "EMBED" r

(* ------------------------------------------------------------------ *)
(* Bounded frame reading                                               *)
(* ------------------------------------------------------------------ *)

(* A frame is at most [max_bytes] of body (everything before the "."
   terminator).  The bound exists so a malicious or broken client
   cannot grow an unbounded Buffer in the server: past the limit the
   reader stops accumulating, keeps consuming lines until the
   terminator to resynchronize the stream, and hands back a clean wire
   error — the connection stays usable for the next frame. *)
let default_max_frame_bytes = 1 lsl 20

let frame_too_large ~limit =
  Printf.sprintf "frame exceeds the %d-byte limit" limit

let read_frame ?(max_bytes = default_max_frame_bytes) ic =
  let buf = Buffer.create 1024 in
  let overflow = ref false in
  let rec go () =
    match input_line ic with
    | "." ->
        if !overflow then Some (Error (frame_too_large ~limit:max_bytes))
        else Some (Ok (Buffer.contents buf))
    | line ->
        if !overflow then go ()
        else if Buffer.length buf + String.length line + 1 > max_bytes then begin
          overflow := true;
          Buffer.clear buf;
          go ()
        end
        else begin
          Buffer.add_string buf line;
          Buffer.add_char buf '\n';
          go ()
        end
    | exception End_of_file ->
        if !overflow then Some (Error (frame_too_large ~limit:max_bytes))
        else if Buffer.length buf = 0 then None
        else Some (Ok (Buffer.contents buf))
  in
  go ()

let split_kv token =
  match String.index_opt token '=' with
  | None -> (token, "")
  | Some i ->
      (String.sub token 0 i, String.sub token (i + 1) (String.length token - i - 1))

let ( let* ) = Result.bind

let frame_lines text =
  let lines = String.split_on_char '\n' text in
  let rec drop_terminator acc = function
    | [] -> List.rev acc
    | [ "" ] -> List.rev acc
    | "." :: _ -> List.rev acc
    | l :: rest -> drop_terminator (l :: acc) rest
  in
  drop_terminator [] lines

(* Body shared by EMBED and ALLOC: header parameters, then
   CONSTRAINT/NODECONSTRAINT lines, then the GRAPHML document. *)
let decode_embed_frame params rest =
  let* algorithm, mode, timeout =
    List.fold_left
      (fun acc token ->
        let* alg, mode, timeout = acc in
        match split_kv token with
        | "alg", v ->
            let* a = algorithm_of_string v in
            Ok (Some a, mode, timeout)
        | "mode", v ->
            let* m = mode_of_string v in
            Ok (alg, Some m, timeout)
        | "timeout", v -> (
            match float_of_string_opt v with
            | Some f -> Ok (alg, mode, Some f)
            | None -> Error (Printf.sprintf "bad timeout %S" v))
        | k, _ -> Error (Printf.sprintf "unknown parameter %S" k))
      (Ok (None, None, None))
      params
  in
  let algorithm = Option.value ~default:Engine.ECF algorithm in
  let mode = Option.value ~default:Engine.First mode in
  let rec scan lines constraint_text node_constraint =
    match lines with
    | [] -> Error "missing GRAPHML section"
    | line :: rest -> (
        let line_trim = String.trim line in
        if line_trim = "GRAPHML" then
          match constraint_text with
          | None -> Error "missing CONSTRAINT line"
          | Some c -> Ok (c, node_constraint, String.concat "\n" rest)
        else
          match String.index_opt line_trim ' ' with
          | None -> Error (Printf.sprintf "malformed line %S" line_trim)
          | Some i -> (
              let keyword = String.sub line_trim 0 i in
              let payload =
                String.sub line_trim (i + 1) (String.length line_trim - i - 1)
              in
              match keyword with
              | "CONSTRAINT" -> scan rest (Some payload) node_constraint
              | "NODECONSTRAINT" -> scan rest constraint_text (Some payload)
              | k -> Error (Printf.sprintf "unknown keyword %S" k)))
  in
  let* constraint_text, node_constraint, graphml = scan rest None None in
  let* query =
    match Netembed_graphml.Graphml.read_string graphml with
    | g -> Ok g
    | exception Netembed_graphml.Graphml.Error m -> Error m
  in
  Ok (Request.make ?node_constraint ~algorithm ~mode ?timeout ~query constraint_text)

let decode_request text =
  match frame_lines text with
  | [] -> Error "empty request"
  | header :: rest -> (
      match String.split_on_char ' ' (String.trim header) with
      | "EMBED" :: params -> decode_embed_frame params rest
      | _ -> Error "request must start with EMBED")

type command =
  | Submit of Request.t
  | Allocate of Request.t
  | Free of int
  | Utilization
  | Explain of int
  | Top
  | Health

let decode_command text =
  match frame_lines text with
  | [] -> Error "empty request"
  | header :: rest -> (
      match String.split_on_char ' ' (String.trim header) with
      | "EMBED" :: params ->
          Result.map (fun r -> Submit r) (decode_embed_frame params rest)
      | "ALLOC" :: params ->
          Result.map (fun r -> Allocate r) (decode_embed_frame params rest)
      | [ "FREE"; id ] -> (
          match int_of_string_opt id with
          | Some id when id > 0 -> Ok (Free id)
          | Some _ | None -> Error (Printf.sprintf "bad allocation id %S" id))
      | [ "FREE" ] -> Error "FREE requires an allocation id"
      | [ "UTIL" ] -> Ok Utilization
      | [ "EXPLAIN"; id ] -> (
          match int_of_string_opt id with
          | Some id when id > 0 -> Ok (Explain id)
          | Some _ | None -> Error (Printf.sprintf "bad request id %S" id))
      | [ "EXPLAIN" ] -> Error "EXPLAIN requires a request id"
      | [ "TOP" ] -> Ok Top
      | [ "HEALTH" ] -> Ok Health
      | _ ->
          Error
            "request must start with EMBED, ALLOC, FREE, UTIL, EXPLAIN, TOP or \
             HEALTH")

let encode_command = function
  | Submit r -> encode_embed "EMBED" r
  | Allocate r -> encode_embed "ALLOC" r
  | Free id -> Printf.sprintf "FREE %d\n.\n" id
  | Utilization -> "UTIL\n.\n"
  | Explain id -> Printf.sprintf "EXPLAIN %d\n.\n" id
  | Top -> "TOP\n.\n"
  | Health -> "HEALTH\n.\n"

(* Per-phase milliseconds as one space-free header token:
   [parse:0.012,search:48.921] — zero cells are omitted. *)
let phases_token phases =
  let parts = ref [] in
  Array.iteri
    (fun i v ->
      if i < Telemetry.Phase.count && v > 0.0 then
        parts :=
          Printf.sprintf "%s:%.3f"
            (Telemetry.Phase.name (Telemetry.Phase.of_index i))
            (v *. 1000.0)
          :: !parts)
    phases;
  String.concat "," (List.rev !parts)

let phases_of_token v =
  if v = "" then Ok []
  else
    String.split_on_char ',' v
    |> List.fold_left
         (fun acc part ->
           let* acc = acc in
           match String.index_opt part ':' with
           | None -> Error (Printf.sprintf "bad phase token %S" part)
           | Some i -> (
               let name = String.sub part 0 i in
               let ms = String.sub part (i + 1) (String.length part - i - 1) in
               match float_of_string_opt ms with
               | Some f -> Ok ((name, f) :: acc)
               | None -> Error (Printf.sprintf "bad phase token %S" part)))
         (Ok [])
    |> Result.map List.rev

let encode_answer ?allocation (a : Service.answer) =
  let buf = Buffer.create 256 in
  let r = a.Service.result in
  Buffer.add_string buf
    (Printf.sprintf
       "OK id=%d trace=%d outcome=%s verdict=%s count=%d elapsed=%.3f%s%s\n"
       a.Service.id a.Service.trace_id
       (Engine.outcome_name r.Engine.outcome)
       (Engine.verdict r)
       (List.length r.Engine.mappings)
       (r.Engine.elapsed *. 1000.0)
       (match phases_token r.Engine.telemetry.Telemetry.phases with
       | "" -> ""
       | tok -> Printf.sprintf " phases=%s" tok)
       (match allocation with
       | None -> ""
       | Some id -> Printf.sprintf " allocation=%d" id));
  List.iter
    (fun m ->
      Buffer.add_string buf "MAPPING";
      List.iter
        (fun (q, r) -> Buffer.add_string buf (Printf.sprintf " q%d->r%d" q r))
        (Mapping.to_list m);
      Buffer.add_char buf '\n')
    r.Engine.mappings;
  Buffer.add_string buf ".\n";
  Buffer.contents buf

let encode_error ?id m =
  match id with
  | None -> Printf.sprintf "ERR %s\n.\n" m
  | Some id -> Printf.sprintf "ERR id=%d %s\n.\n" id m

module Explanation = Netembed_explain.Explain

let encode_explanation (e : Service.entry) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "OK explain=%d trace=%d verdict=%s elapsed=%.3f%s\n"
       e.Service.id e.Service.trace_id e.Service.verdict
       (e.Service.elapsed *. 1000.0)
       (if e.Service.slow_search then " slow_search=true" else ""));
  Buffer.add_string buf (Printf.sprintf "SUMMARY %s\n" e.Service.summary);
  (match phases_token e.Service.phases with
  | "" -> ()
  | tok -> Buffer.add_string buf (Printf.sprintf "PHASES %s\n" tok));
  (match e.Service.certificate with
  | None -> ()
  | Some cert ->
      let text = Explanation.Certificate.to_text cert in
      let text =
        if String.length text > 0 && text.[String.length text - 1] = '\n' then
          String.sub text 0 (String.length text - 1)
        else text
      in
      List.iter
        (fun line -> Buffer.add_string buf (Printf.sprintf "TEXT %s\n" line))
        (String.split_on_char '\n' text);
      Buffer.add_string buf
        (Printf.sprintf "JSON %s\n" (Explanation.Certificate.to_json cert)));
  Buffer.add_string buf ".\n";
  Buffer.contents buf
let encode_freed id = Printf.sprintf "OK freed=%d\n.\n" id

let encode_top (t : Service.top) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "OK phases=%d worst=%d window=%g\n"
       (List.length t.Service.busiest)
       (List.length t.Service.worst)
       t.Service.window_s);
  List.iter
    (fun (s : Service.phase_stat) ->
      Buffer.add_string buf
        (Printf.sprintf
           "PHASE name=%s total=%.6f count=%d p50=%.3f p95=%.3f p99=%.3f\n"
           (Telemetry.Phase.name s.Service.phase)
           s.Service.total_s s.Service.window_count
           (s.Service.p50_s *. 1000.0)
           (s.Service.p95_s *. 1000.0)
           (s.Service.p99_s *. 1000.0)))
    t.Service.busiest;
  List.iter
    (fun (e : Service.entry) ->
      Buffer.add_string buf
        (Printf.sprintf "SLOW id=%d trace=%d verdict=%s elapsed=%.3f%s%s\n"
           e.Service.id e.Service.trace_id e.Service.verdict
           (e.Service.elapsed *. 1000.0)
           (if e.Service.slow_search then " slow_search=true" else "")
           (match phases_token e.Service.phases with
           | "" -> ""
           | tok -> Printf.sprintf " phases=%s" tok)))
    t.Service.worst;
  Buffer.add_string buf ".\n";
  Buffer.contents buf

let encode_health (r : Health.report) =
  Printf.sprintf
    "OK state=%s code=%d fast_p99=%.3f slow_p99=%.3f fast_err=%.4f \
     slow_err=%.4f queue=%d/%d\n.\n"
    (Health.state_name r.Health.r_state)
    (Health.state_code r.Health.r_state)
    (r.Health.fast_p99_s *. 1000.0)
    (r.Health.slow_p99_s *. 1000.0)
    r.Health.fast_error_rate r.Health.slow_error_rate r.Health.queue_depth
    r.Health.queue_capacity

let kind_to_string = function `Node -> "node" | `Edge -> "edge"

let encode_utilization rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "OK resources=%d\n" (List.length rows));
  List.iter
    (fun (resource, kind, used, capacity) ->
      Buffer.add_string buf
        (Printf.sprintf "UTIL resource=%s kind=%s used=%g capacity=%g\n" resource
           (kind_to_string kind) used capacity))
    rows;
  Buffer.add_string buf ".\n";
  Buffer.contents buf

type decoded_answer = {
  id : int option;
  trace_id : int option;
  outcome : Engine.outcome;
  verdict : string option;
  elapsed_ms : float;
  phases_ms : (string * float) list;
  mappings : (int * int) list list;
  allocation : int option;
}

let outcome_of_string = function
  | "complete" -> Ok Engine.Complete
  | "partial" -> Ok Engine.Partial
  | "inconclusive" -> Ok Engine.Inconclusive
  | s -> Error (Printf.sprintf "unknown outcome %S" s)

let decode_answer text =
  let lines =
    List.filter (fun l -> l <> "" && l <> ".") (String.split_on_char '\n' text)
  in
  match lines with
  | [] -> Error "empty answer"
  | header :: rest -> (
      match String.split_on_char ' ' (String.trim header) with
      | "ERR" :: msg -> Error (String.concat " " msg)
      | "OK" :: params ->
          let* id, trace_id, outcome, verdict, elapsed, phases, allocation =
            List.fold_left
              (fun acc token ->
                let* id, trace_id, outcome, verdict, elapsed, phases, allocation
                    =
                  acc
                in
                match split_kv token with
                | "id", v -> (
                    match int_of_string_opt v with
                    | Some i ->
                        Ok
                          ( Some i,
                            trace_id,
                            outcome,
                            verdict,
                            elapsed,
                            phases,
                            allocation )
                    | None -> Error "bad request id")
                | "trace", v -> (
                    match int_of_string_opt v with
                    | Some i ->
                        Ok (id, Some i, outcome, verdict, elapsed, phases, allocation)
                    | None -> Error "bad trace id")
                | "outcome", v ->
                    let* o = outcome_of_string v in
                    Ok (id, trace_id, Some o, verdict, elapsed, phases, allocation)
                | "verdict", v ->
                    Ok (id, trace_id, outcome, Some v, elapsed, phases, allocation)
                | "elapsed", v -> (
                    match float_of_string_opt v with
                    | Some f ->
                        Ok (id, trace_id, outcome, verdict, f, phases, allocation)
                    | None -> Error "bad elapsed")
                | "phases", v ->
                    let* p = phases_of_token v in
                    Ok (id, trace_id, outcome, verdict, elapsed, p, allocation)
                | "allocation", v -> (
                    match int_of_string_opt v with
                    | Some a ->
                        Ok (id, trace_id, outcome, verdict, elapsed, phases, Some a)
                    | None -> Error "bad allocation id")
                | "count", _ -> acc
                | k, _ -> Error (Printf.sprintf "unknown parameter %S" k))
              (Ok (None, None, None, None, 0.0, [], None))
              params
          in
          let* outcome =
            match outcome with Some o -> Ok o | None -> Error "missing outcome"
          in
          let parse_mapping line =
            let pairs = String.split_on_char ' ' (String.trim line) in
            List.filter_map
              (fun tok ->
                match Scanf.sscanf_opt tok "q%d->r%d" (fun q r -> (q, r)) with
                | Some p -> Some p
                | None -> None)
              pairs
          in
          let mappings =
            List.filter_map
              (fun line ->
                if String.length line >= 7 && String.sub line 0 7 = "MAPPING" then
                  Some (parse_mapping (String.sub line 7 (String.length line - 7)))
                else None)
              rest
          in
          Ok
            {
              id;
              trace_id;
              outcome;
              verdict;
              elapsed_ms = elapsed;
              phases_ms = phases;
              mappings;
              allocation;
            }
      | _ -> Error "answer must start with OK or ERR")

type utilization_row = {
  resource : string;
  kind : [ `Node | `Edge ];
  used : float;
  capacity : float;
}

let decode_utilization text =
  let lines =
    List.filter (fun l -> l <> "" && l <> ".") (String.split_on_char '\n' text)
  in
  match lines with
  | [] -> Error "empty answer"
  | header :: rest -> (
      match String.split_on_char ' ' (String.trim header) with
      | "ERR" :: msg -> Error (String.concat " " msg)
      | "OK" :: _ ->
          let parse_row line =
            let fields =
              List.filter (fun t -> t <> "")
                (String.split_on_char ' ' (String.trim line))
            in
            List.fold_left
              (fun acc token ->
                let* row = acc in
                match split_kv token with
                | "resource", v -> Ok { row with resource = v }
                | "kind", "node" -> Ok { row with kind = `Node }
                | "kind", "edge" -> Ok { row with kind = `Edge }
                | "kind", v -> Error (Printf.sprintf "bad kind %S" v)
                | "used", v -> (
                    match float_of_string_opt v with
                    | Some f -> Ok { row with used = f }
                    | None -> Error "bad used")
                | "capacity", v -> (
                    match float_of_string_opt v with
                    | Some f -> Ok { row with capacity = f }
                    | None -> Error "bad capacity")
                | k, _ -> Error (Printf.sprintf "unknown field %S" k))
              (Ok { resource = ""; kind = `Node; used = 0.0; capacity = 0.0 })
              fields
          in
          let rec rows acc = function
            | [] -> Ok (List.rev acc)
            | line :: rest ->
                if String.length line >= 5 && String.sub line 0 5 = "UTIL " then
                  let* row = parse_row (String.sub line 5 (String.length line - 5)) in
                  rows (row :: acc) rest
                else rows acc rest
          in
          rows [] rest
      | _ -> Error "answer must start with OK or ERR")
