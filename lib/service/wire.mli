(** Plain-text wire protocol for a standalone NETEMBED service.

    NETEMBED "can be integrated as a service and implemented in a
    distributed fashion"; this module defines the request/response
    framing used by the CLI and by the line-oriented server loop, so a
    deployment can put the engine behind any transport.

    Request frames (text, terminated by a line containing only [.]):
    {v
    EMBED alg=<ECF|RWB|LNS> mode=<first|all|atmost:k> [timeout=<sec>]
    CONSTRAINT <expression>
    [NODECONSTRAINT <expression>]
    GRAPHML
    <graphml document for the query network>
    .
    v}
    [ALLOC] takes the same shape as [EMBED] and additionally commits the
    first returned mapping as a fractional ledger allocation.  Three
    body-less commands manage allocations and diagnostics:
    {v
    FREE <allocation-id>
    .

    UTIL
    .

    EXPLAIN <request-id>
    .

    TOP
    .
    v}

    Response frames:
    {v
    OK id=<request-id> trace=<trace-id>
       outcome=<complete|partial|inconclusive>
       verdict=<complete|unsat|partial|exhausted> count=<n> elapsed=<ms>
       [phases=<phase>:<ms>,...] [allocation=<id>]         (one line)
    MAPPING q0->r17 q1->r4 ...       (one line per mapping)
    .
    v}
    The [phases=] token is the request's phase-latency decomposition
    (zero phases omitted; names from
    {!Netembed_telemetry.Telemetry.Phase.name}).  [FREE] answers
    [OK freed=<id>]; [UTIL] answers one
    [UTIL resource=<name> kind=<node|edge> used=<x> capacity=<y>] line
    per tracked resource.  [EXPLAIN] answers the retained failure
    certificate of the identified request:
    {v
    OK explain=<request-id> trace=<trace-id> verdict=<v> elapsed=<ms>
       [slow_search=true]
    SUMMARY <one line>
    PHASES <phase>:<ms>,...                  (when recorded)
    TEXT <human-readable certificate line>   (repeated)
    JSON <single-line certificate json>
    .
    v}
    [TOP] answers the slow-request triage report ({!Service.top}):
    {v
    OK phases=<n> worst=<n> window=<seconds>
    PHASE name=<phase> total=<lifetime-s> count=<in-window>
          p50=<ms> p95=<ms> p99=<ms>        (one line per phase,
                                             busiest first)
    SLOW id=<request-id> trace=<trace-id> verdict=<v> elapsed=<ms>
         [slow_search=true] [phases=...]    (slowest retained first)
    .
    v}
    Errors are [ERR [id=<request-id>] <message>] followed by [.] — the
    id is present when the failing request got far enough to be
    assigned one (so the client can still [EXPLAIN] it). *)

val mode_to_string : Netembed_core.Engine.mode -> string
val mode_of_string : string -> (Netembed_core.Engine.mode, string) result
val algorithm_of_string : string -> (Netembed_core.Engine.algorithm, string) result

val encode_request : Request.t -> string
val decode_request : string -> (Request.t, string) result
(** [EMBED] frames only; {!decode_command} accepts the full verb set. *)

val default_max_frame_bytes : int
(** Default bound on a frame's body (1 MiB) — far above any realistic
    query, far below anything that could pressure the server's heap. *)

val frame_too_large : limit:int -> string
(** The canonical oversized-frame error message, shared by every
    transport so clients see one spelling. *)

val read_frame : ?max_bytes:int -> in_channel -> (string, string) result option
(** Read one frame (lines up to a [.] terminator) from a channel.
    [None] on EOF before any content; [Some (Ok body)] on a complete
    frame (EOF after partial content yields the partial body, matching
    the historical server loop); [Some (Error msg)] when the body
    exceeded [max_bytes] (default {!default_max_frame_bytes}) — the
    reader consumes input through the terminator first, so the stream
    is resynchronized and the next frame parses cleanly. *)

(** One decoded protocol verb. *)
type command =
  | Submit of Request.t  (** [EMBED]: search, do not allocate *)
  | Allocate of Request.t
      (** [ALLOC]: search, then commit the first mapping in the ledger *)
  | Free of int  (** [FREE <id>]: release a fractional allocation *)
  | Utilization  (** [UTIL]: report per-resource ledger utilization *)
  | Explain of int
      (** [EXPLAIN <request-id>]: fetch the retained failure certificate
          of an earlier request *)
  | Top
      (** [TOP]: the phase-latency triage report — busiest phases with
          sliding-window quantiles, plus the slowest retained requests *)
  | Health
      (** [HEALTH]: the SLO health machine's state and window inputs —
          one
          [OK state=<s> code=<0-3> fast_p99=<ms> slow_p99=<ms>
          fast_err=<rate> slow_err=<rate> queue=<depth>/<capacity>]
          line *)

val decode_command : string -> (command, string) result
val encode_command : command -> string

val encode_answer : ?allocation:int -> Service.answer -> string
(** [?allocation] adds [allocation=<id>] to the [OK] header (the
    [ALLOC] response). *)

val encode_error : ?id:int -> string -> string
(** [?id] tags the error with the request id it was assigned, when the
    request got far enough to receive one. *)

val encode_explanation : Service.entry -> string
(** The [EXPLAIN] response: header, [SUMMARY], the certificate as
    [TEXT] lines and one single-line [JSON] rendering. *)

val encode_freed : int -> string
(** The [FREE] success response, [OK freed=<id>]. *)

val encode_top : Service.top -> string
(** The [TOP] response: one [PHASE] line per phase (busiest first, with
    window quantiles in ms) and one [SLOW] line per retained slow
    request. *)

val encode_health : Health.report -> string
(** The [HEALTH] response: state name and gauge code, fast/slow-window
    p99 (ms) and error rates, and the queue depth as of the last
    health evaluation. *)

val encode_utilization :
  (string * [ `Node | `Edge ] * float * float) list -> string
(** The [UTIL] response from {!Service.utilization} rows. *)

type decoded_answer = {
  id : int option;  (** request id ([None] from a pre-id server) *)
  trace_id : int option;
      (** the request's trace id ([None] from a pre-tracing server) *)
  outcome : Netembed_core.Engine.outcome;
  verdict : string option;
      (** the four-way verdict ({!Netembed_core.Engine.verdict});
          [None] from a pre-verdict server *)
  elapsed_ms : float;
  phases_ms : (string * float) list;
      (** per-phase milliseconds from the [phases=] header token, in
          phase order (empty from a pre-tracing server) *)
  mappings : (int * int) list list;  (** association lists per mapping *)
  allocation : int option;
      (** allocation id from an [ALLOC] response; [None] for [EMBED] *)
}

val decode_answer : string -> (decoded_answer, string) result

type utilization_row = {
  resource : string;
  kind : [ `Node | `Edge ];
  used : float;
  capacity : float;
}

val decode_utilization : string -> (utilization_row list, string) result
